//! `tsp-inspect` — render flight recordings and profiler artifacts into
//! human-readable views.
//!
//! Everything is derived from the artifacts alone; the solver is never
//! re-run. Subcommands:
//!
//! ```text
//! tsp-inspect heatmap   --recording run.jsonl [--chain N] [--buckets B] [--pgm out.pgm]
//! tsp-inspect svg       --recording run.jsonl --gen style:n:seed [--chain N] [--iteration K] [--out t.svg]
//! tsp-inspect timeline  --recording run.jsonl [--chain N]
//! tsp-inspect anomalies --recording run.jsonl [--chain N] [--plateau T] [--instance f.tsp | --gen ...]
//! tsp-inspect flame     --input run.folded | --manifest manifest.json  [--top N]
//! tsp-inspect mem       --input memory.json | --manifest manifest.json
//! tsp-inspect serve     <artifacts-dir>
//! tsp-inspect alerts    <artifacts-dir | alerts.jsonl>
//! ```
//!
//! `--instance` loads a TSPLIB file, `--gen uniform:512:42` regenerates
//! a synthetic instance; the recording's digest header guards against
//! passing the wrong one. `flame` and `mem` read profiler output
//! (collapsed stacks / memory-ledger JSON), either directly via
//! `--input` or located through a run manifest's artifact index.

use std::fs;
use std::path::Path;
use std::process::ExitCode;
use tsp_apps::inspect::{
    detect_anomalies, heatmap_grid, load_alert_transitions, render_alert_timeline, render_flame,
    render_heatmap_pgm, render_heatmap_text, render_serve_waterfall, render_timeline, serve_spans,
    timeline, tour_svg,
};
use tsp_core::Instance;
use tsp_prof::{parse_collapsed, Manifest, MemoryReport};
use tsp_replay::{digest_instance, parse_recording, Recording};
use tsp_tsplib::{generate, Style};

const USAGE: &str = "usage: tsp-inspect <heatmap|svg|timeline|anomalies|flame|mem|serve|alerts> ...
  recordings (--recording <file.jsonl> required):
  common:     --chain N            chain to inspect (default 0)
  heatmap:    --buckets B          grid resolution (default 32)
              --pgm FILE           also write a PGM (P2) image
  svg:        --iteration K        tour snapshot after ILS iteration K (default 0)
              --out FILE           write the SVG here (default stdout)
  anomalies:  --plateau T          non-improving run that counts as a stall (default 20)
  instance:   --instance FILE.tsp  TSPLIB instance (svg requires one source)
              --gen STYLE:N:SEED   regenerate, e.g. uniform:512:42
  profiler artifacts (--input FILE or --manifest manifest.json required):
  flame:      --input FILE         collapsed-stack file (profiler flamegraph export)
              --top N              rows to show (default 15)
  mem:        --input FILE         memory-ledger report JSON
  both:       --manifest FILE      locate the artifact through a run manifest instead
  serve artifacts:
  serve:      <artifacts-dir>      per-request waterfall from <dir>/<job>/request.json spans
  alerts:     <artifacts-dir|alerts.jsonl>  firing timeline from the alert journal";

struct Args {
    command: String,
    recording: Option<String>,
    chain: u64,
    iteration: u64,
    buckets: usize,
    plateau: u64,
    top: usize,
    pgm: Option<String>,
    out: Option<String>,
    instance: Option<String>,
    gen_spec: Option<String>,
    input: Option<String>,
    manifest: Option<String>,
    serve_dir: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let command = argv.first().cloned().ok_or("missing subcommand")?;
    if !matches!(
        command.as_str(),
        "heatmap" | "svg" | "timeline" | "anomalies" | "flame" | "mem" | "serve" | "alerts"
    ) {
        return Err(format!("unknown subcommand {command:?}"));
    }
    let mut args = Args {
        command,
        recording: None,
        chain: 0,
        iteration: 0,
        buckets: 32,
        plateau: 20,
        top: 15,
        pgm: None,
        out: None,
        instance: None,
        gen_spec: None,
        input: None,
        manifest: None,
        serve_dir: None,
    };
    // `serve` and `alerts` take one positional argument: the
    // artifacts directory (or, for `alerts`, the journal file itself).
    if matches!(args.command.as_str(), "serve" | "alerts") {
        let [dir] = &argv[1..] else {
            return Err(format!(
                "{} wants exactly one artifacts directory",
                args.command
            ));
        };
        args.serve_dir = Some(dir.clone());
        return Ok(args);
    }
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--recording" => args.recording = Some(value("--recording")?),
            "--chain" => {
                args.chain = value("--chain")?.parse().map_err(|_| "bad --chain")?;
            }
            "--iteration" => {
                args.iteration = value("--iteration")?
                    .parse()
                    .map_err(|_| "bad --iteration")?;
            }
            "--buckets" => {
                args.buckets = value("--buckets")?.parse().map_err(|_| "bad --buckets")?;
                if args.buckets == 0 {
                    return Err("--buckets must be positive".into());
                }
            }
            "--plateau" => {
                args.plateau = value("--plateau")?.parse().map_err(|_| "bad --plateau")?;
            }
            "--pgm" => args.pgm = Some(value("--pgm")?),
            "--out" => args.out = Some(value("--out")?),
            "--instance" => args.instance = Some(value("--instance")?),
            "--gen" => args.gen_spec = Some(value("--gen")?),
            "--top" => {
                args.top = value("--top")?.parse().map_err(|_| "bad --top")?;
                if args.top == 0 {
                    return Err("--top must be positive".into());
                }
            }
            "--input" => args.input = Some(value("--input")?),
            "--manifest" => args.manifest = Some(value("--manifest")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let wants_recording = !matches!(args.command.as_str(), "flame" | "mem");
    if wants_recording && args.recording.is_none() {
        return Err("--recording is required".into());
    }
    Ok(args)
}

/// `style:n:seed` → a regenerated synthetic instance.
fn parse_gen(spec: &str) -> Result<Instance, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [style, n, seed] = parts.as_slice() else {
        return Err(format!("--gen wants style:n:seed, got {spec:?}"));
    };
    let style = match *style {
        "uniform" => Style::Uniform,
        "clustered" => Style::Clustered { clusters: 8 },
        "grid" => Style::Grid,
        other => return Err(format!("unknown style {other:?} (uniform|clustered|grid)")),
    };
    let n: usize = n.parse().map_err(|_| format!("bad city count {n:?}"))?;
    let seed: u64 = seed.parse().map_err(|_| format!("bad seed {seed:?}"))?;
    Ok(generate("gen", n, style, seed))
}

/// Resolve `--instance` / `--gen` and digest-check against the header.
fn resolve_instance(args: &Args, recording: &Recording) -> Result<Option<Instance>, String> {
    let inst = match (&args.instance, &args.gen_spec) {
        (Some(_), Some(_)) => return Err("pass --instance or --gen, not both".into()),
        (Some(path), None) => tsp_tsplib::load(path).map_err(|e| format!("{path}: {e}"))?,
        (None, Some(spec)) => parse_gen(spec)?,
        (None, None) => return Ok(None),
    };
    if digest_instance(&inst) != recording.header.instance_digest {
        return Err(format!(
            "instance digest {:016x} does not match the recording's {:016x} — \
             this is not the instance the run was recorded on",
            digest_instance(&inst),
            recording.header.instance_digest
        ));
    }
    Ok(Some(inst))
}

/// Load the text of the profiler artifact a `flame`/`mem` subcommand
/// operates on: either the file named by `--input`, or the artifact of
/// the given `kind` indexed by a `--manifest` (paths in a manifest are
/// relative to the manifest file itself).
fn artifact_source(args: &Args, kind: &str) -> Result<String, String> {
    match (&args.input, &args.manifest) {
        (Some(_), Some(_)) => Err("pass --input or --manifest, not both".into()),
        (Some(path), None) => fs::read_to_string(path).map_err(|e| format!("{path}: {e}")),
        (None, Some(mpath)) => {
            let text = fs::read_to_string(mpath).map_err(|e| format!("{mpath}: {e}"))?;
            let manifest = Manifest::parse(&text)?;
            let rel = manifest
                .path_of(kind)
                .ok_or_else(|| format!("manifest lists no {kind:?} artifact"))?;
            let dir = Path::new(mpath).parent().unwrap_or_else(|| Path::new("."));
            let path = dir.join(rel);
            println!("run {}: {kind} from {}", manifest.run_id, path.display());
            fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))
        }
        (None, None) => Err(format!(
            "{} needs --input FILE or --manifest manifest.json",
            args.command
        )),
    }
}

fn emit(out: &Option<String>, content: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            fs::write(path, content).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    // The profiler-artifact subcommands have no recording to load.
    match args.command.as_str() {
        "flame" => {
            let text = artifact_source(&args, "flamegraph")?;
            let stacks = parse_collapsed(&text)?;
            return emit(&args.out, &render_flame(&stacks, args.top));
        }
        "serve" => {
            let dir = args.serve_dir.as_deref().unwrap();
            let spans = serve_spans(Path::new(dir))?;
            print!("{}", render_serve_waterfall(&spans));
            return Ok(());
        }
        "alerts" => {
            let dir = args.serve_dir.as_deref().unwrap();
            let transitions = load_alert_transitions(Path::new(dir))?;
            print!("{}", render_alert_timeline(&transitions));
            return Ok(());
        }
        "mem" => {
            let text = artifact_source(&args, "memory")?;
            let report = MemoryReport::parse(&text)?;
            let mut rendered = report.render();
            rendered.push_str(if report.balanced() {
                "status: balanced (every allocation freed)\n"
            } else {
                "status: UNBALANCED (live or leaked bytes remain)\n"
            });
            return emit(&args.out, &rendered);
        }
        _ => {}
    }
    let path = args.recording.as_deref().unwrap();
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let recording = parse_recording(&text)?;
    if !recording.chains().contains(&args.chain) {
        return Err(format!(
            "recording has no chain {} (chains present: {:?})",
            args.chain,
            recording.chains()
        ));
    }
    println!(
        "recording: {} (n={}, {} chains, {} events)",
        recording.header.instance_name,
        recording.header.n,
        recording.header.chains,
        recording.len()
    );
    match args.command.as_str() {
        "heatmap" => {
            let grid = heatmap_grid(&recording, args.chain, args.buckets);
            print!("{}", render_heatmap_text(&grid));
            if let Some(pgm_path) = &args.pgm {
                fs::write(pgm_path, render_heatmap_pgm(&grid))
                    .map_err(|e| format!("{pgm_path}: {e}"))?;
                println!("wrote {pgm_path}");
            }
            Ok(())
        }
        "svg" => {
            let inst = resolve_instance(&args, &recording)?
                .ok_or("svg needs coordinates: pass --instance or --gen")?;
            let svg = tour_svg(&recording, args.chain, args.iteration, &inst)?;
            emit(&args.out, &svg)
        }
        "timeline" => {
            let points = timeline(&recording, args.chain);
            print!("{}", render_timeline(&points));
            Ok(())
        }
        "anomalies" => {
            let inst = resolve_instance(&args, &recording)?;
            let report = detect_anomalies(&recording, args.chain, inst.as_ref(), args.plateau);
            print!("{report}");
            if report.any() {
                println!("status: ANOMALIES FOUND");
            } else {
                println!("status: clean");
            }
            Ok(())
        }
        _ => unreachable!("parse_args validated the subcommand"),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tsp-inspect: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
