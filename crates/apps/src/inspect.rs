//! Search introspection over flight recordings — the library half of
//! the `tsp-inspect` binary.
//!
//! Everything here renders from the recording alone: no solver is
//! re-run. Sweep events carry the applied `(i, j, delta)` moves (the
//! heatmap and timeline), the event stream re-derives tour snapshots
//! through [`TourReconstructor`], and the acceptance/kick events drive
//! the stall report.
//!
//! [`TourReconstructor`]: tsp_replay::TourReconstructor

use std::fmt;
use tsp_core::Instance;
use tsp_replay::{tour_at_iteration, Recording, ReplayEvent};
use tsp_serve::{RequestSpan, Stage};
use tsp_telemetry::{parse_alerts_jsonl, AlertState, AlertTransition};

/// Aggregate the applied moves of `chain` into a `buckets × buckets`
/// grid over the `(i, j)` candidate matrix, each cell summing the
/// improvement magnitude `|delta|` of the moves that landed in it.
/// Rows index `i`, columns `j`; only the `j > i` triangle is ever
/// populated, mirroring the kernels' candidate space.
pub fn heatmap_grid(recording: &Recording, chain: u64, buckets: usize) -> Vec<Vec<f64>> {
    assert!(buckets > 0, "at least one bucket");
    let n = recording.header.n.max(1);
    let mut grid = vec![vec![0.0f64; buckets]; buckets];
    let scale = |pos: u32| -> usize {
        let b = (pos as usize * buckets) / n;
        b.min(buckets - 1)
    };
    for event in recording.chain_events(chain) {
        if let ReplayEvent::Sweep { i, j, delta, .. } = event {
            grid[scale(i)][scale(j)] += f64::from(delta.unsigned_abs());
        }
    }
    grid
}

/// Render a heatmap grid as text, one shaded character per cell,
/// scaled to the hottest cell.
pub fn render_heatmap_text(grid: &[Vec<f64>]) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let max = grid
        .iter()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for row in grid {
        for &cell in row {
            let level = ((cell / max) * (SHADES.len() - 1) as f64).round() as usize;
            out.push(SHADES[level.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

/// Render a heatmap grid as a plain-text PGM (P2) image, 8-bit grey,
/// scaled to the hottest cell.
pub fn render_heatmap_pgm(grid: &[Vec<f64>]) -> String {
    let h = grid.len();
    let w = grid.first().map_or(0, Vec::len);
    let max = grid
        .iter()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = format!("P2\n{w} {h}\n255\n");
    for row in grid {
        let line: Vec<String> = row
            .iter()
            .map(|&cell| (((cell / max) * 255.0).round() as u32).min(255).to_string())
            .collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

/// Render the chain's incumbent tour after `iteration` as an SVG
/// drawing (closed polyline over the instance coordinates). The tour
/// is reconstructed from the event log; `inst` only supplies the
/// coordinates, and must match the recording's digest-checked instance.
pub fn tour_svg(
    recording: &Recording,
    chain: u64,
    iteration: u64,
    inst: &Instance,
) -> Result<String, String> {
    if !inst.is_coordinate_based() {
        return Err("SVG rendering needs a coordinate-based instance".into());
    }
    if inst.len() != recording.header.n {
        return Err(format!(
            "instance has {} cities but the recording was taken on {}",
            inst.len(),
            recording.header.n
        ));
    }
    let tour = tour_at_iteration(recording, chain, iteration)?;
    let pts: Vec<(f32, f32)> = tour
        .as_slice()
        .iter()
        .map(|&c| {
            let p = inst.point(c as usize);
            (p.x, p.y)
        })
        .collect();
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (f32::MAX, f32::MAX, f32::MIN, f32::MIN);
    for &(x, y) in &pts {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    let pad = ((max_x - min_x).max(max_y - min_y) * 0.02).max(1.0);
    let (w, h) = (max_x - min_x + 2.0 * pad, max_y - min_y + 2.0 * pad);
    let mut path = String::new();
    for (k, &(x, y)) in pts.iter().enumerate() {
        let cmd = if k == 0 { 'M' } else { 'L' };
        path.push_str(&format!("{cmd}{} {} ", x - min_x + pad, y - min_y + pad));
    }
    path.push('Z');
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {w} {h}\" width=\"800\">\n\
         <title>{} chain {chain} iteration {iteration}</title>\n\
         <path d=\"{path}\" fill=\"none\" stroke=\"#1f4e79\" stroke-width=\"{}\"/>\n",
        recording.header.instance_name,
        (w.max(h) / 400.0).max(0.5),
    );
    let r = (w.max(h) / 250.0).max(0.75);
    for &(x, y) in &pts {
        svg.push_str(&format!(
            "<circle cx=\"{}\" cy=\"{}\" r=\"{r}\" fill=\"#c0392b\"/>\n",
            x - min_x + pad,
            y - min_y + pad
        ));
    }
    svg.push_str("</svg>\n");
    Ok(svg)
}

/// Render parsed collapsed-stack lines (`tsp_prof::parse_collapsed`
/// output) as a top-`top` table: weight, share of the total, and the
/// call path — the text half of `tsp-inspect flame`.
pub fn render_flame(stacks: &[(String, u64)], top: usize) -> String {
    let total: u64 = stacks.iter().map(|(_, w)| w).sum();
    if total == 0 {
        return "flamegraph: no stacks with nonzero weight\n".into();
    }
    let mut sorted: Vec<&(String, u64)> = stacks.iter().collect();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut out = format!(
        "{} stacks, total weight {total} ns (modeled)\n\
         weight ns       share   path\n",
        stacks.len()
    );
    for (path, weight) in sorted.into_iter().take(top) {
        out.push_str(&format!(
            "{weight:<15} {:>5.1}%  {path}\n",
            *weight as f64 / total as f64 * 100.0
        ));
    }
    out
}

/// One row of the move-delta timeline: an ILS iteration's descended
/// candidate and the acceptance verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// ILS iteration (0 = the initial descent, always "accepted").
    pub iteration: u64,
    /// Tour length of the descended candidate.
    pub length: i64,
    /// Whether the acceptance criterion took it.
    pub accepted: bool,
}

/// The candidate-length timeline of a chain, one point per iteration.
pub fn timeline(recording: &Recording, chain: u64) -> Vec<TimelinePoint> {
    let mut points = Vec::new();
    for event in recording.chain_events(chain) {
        match event {
            ReplayEvent::DescentEnd {
                iteration: 0,
                length,
                ..
            } => points.push(TimelinePoint {
                iteration: 0,
                length,
                accepted: true,
            }),
            ReplayEvent::Acceptance {
                iteration,
                candidate_length,
                accepted,
                ..
            } => points.push(TimelinePoint {
                iteration,
                length: candidate_length,
                accepted,
            }),
            _ => {}
        }
    }
    points
}

/// Render a timeline as text: a sparkline over candidate lengths (low
/// = better) and a per-iteration table of length / verdict.
pub fn render_timeline(points: &[TimelinePoint]) -> String {
    if points.is_empty() {
        return "timeline: no iterations recorded\n".into();
    }
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = points.iter().map(|p| p.length).min().unwrap();
    let max = points.iter().map(|p| p.length).max().unwrap();
    let span = (max - min).max(1) as f64;
    let mut out = String::from("candidate length per iteration (▁ = best seen):\n  ");
    for p in points {
        let level = (((p.length - min) as f64 / span) * (BARS.len() - 1) as f64).round() as usize;
        out.push(BARS[level.min(BARS.len() - 1)]);
    }
    out.push('\n');
    out.push_str(&format!(
        "  {} iterations, lengths {min}..{max}\n",
        points.len()
    ));
    for p in points {
        out.push_str(&format!(
            "  iter {:>5}  length {:>10}  {}\n",
            p.iteration,
            p.length,
            if p.accepted { "accepted" } else { "rejected" }
        ));
    }
    out
}

/// Stall and data-quality findings over one chain of a recording.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnomalyReport {
    /// Iterations inspected (excluding the initial descent).
    pub iterations: u64,
    /// Longest run of consecutive iterations without improving the
    /// best-known length.
    pub longest_plateau: u64,
    /// Plateau threshold the report was built with.
    pub plateau_threshold: u64,
    /// Acceptance rate over the trailing quarter of the run.
    pub trailing_acceptance_rate: f64,
    /// Acceptance rate over the whole run.
    pub acceptance_rate: f64,
    /// Coordinates that are NaN or infinite (needs an instance).
    pub bad_coordinates: usize,
    /// Pairs of cities sharing bit-identical coordinates (needs an
    /// instance; only counted when an instance is supplied).
    pub duplicate_coordinates: usize,
}

impl AnomalyReport {
    /// `true` when the chain plateaued past the threshold.
    pub fn plateaued(&self) -> bool {
        self.longest_plateau >= self.plateau_threshold && self.plateau_threshold > 0
    }

    /// `true` when acceptances collapsed in the trailing window (under
    /// 10% late in a run that accepted at twice that rate overall).
    pub fn acceptance_collapsed(&self) -> bool {
        self.iterations >= 8
            && self.trailing_acceptance_rate < 0.1
            && self.acceptance_rate >= 2.0 * self.trailing_acceptance_rate
    }

    /// `true` when anything in the report warrants attention.
    pub fn any(&self) -> bool {
        self.plateaued()
            || self.acceptance_collapsed()
            || self.bad_coordinates > 0
            || self.duplicate_coordinates > 0
    }
}

impl fmt::Display for AnomalyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "anomaly report ({} iterations):", self.iterations)?;
        if self.plateaued() {
            writeln!(
                f,
                "  PLATEAU: {} consecutive non-improving iterations (threshold {})",
                self.longest_plateau, self.plateau_threshold
            )?;
        } else {
            writeln!(
                f,
                "  plateau: longest non-improving run {} (threshold {})",
                self.longest_plateau, self.plateau_threshold
            )?;
        }
        if self.acceptance_collapsed() {
            writeln!(
                f,
                "  ACCEPTANCE COLLAPSE: trailing rate {:.3} vs overall {:.3}",
                self.trailing_acceptance_rate, self.acceptance_rate
            )?;
        } else {
            writeln!(
                f,
                "  acceptance: trailing rate {:.3}, overall {:.3}",
                self.trailing_acceptance_rate, self.acceptance_rate
            )?;
        }
        if self.bad_coordinates > 0 {
            writeln!(
                f,
                "  BAD COORDINATES: {} NaN/infinite",
                self.bad_coordinates
            )?;
        }
        if self.duplicate_coordinates > 0 {
            writeln!(
                f,
                "  DEGENERATE COORDINATES: {} duplicated city position pair(s)",
                self.duplicate_coordinates
            )?;
        }
        if !self.any() {
            writeln!(f, "  no anomalies")?;
        }
        Ok(())
    }
}

/// Scan one chain for stalls (no-improvement plateaus, acceptance-rate
/// collapse) and, when an instance is supplied, for NaN/degenerate
/// coordinates.
pub fn detect_anomalies(
    recording: &Recording,
    chain: u64,
    inst: Option<&Instance>,
    plateau_threshold: u64,
) -> AnomalyReport {
    let points = timeline(recording, chain);
    let mut report = AnomalyReport {
        plateau_threshold,
        ..AnomalyReport::default()
    };

    let mut best = i64::MAX;
    let mut run = 0u64;
    let mut accepted_total = 0u64;
    let iters: Vec<&TimelinePoint> = points.iter().filter(|p| p.iteration > 0).collect();
    // Seed the best from the initial descent when present.
    if let Some(initial) = points.iter().find(|p| p.iteration == 0) {
        best = initial.length;
    }
    for p in &iters {
        if p.accepted && p.length < best {
            best = p.length;
            run = 0;
        } else {
            run += 1;
            report.longest_plateau = report.longest_plateau.max(run);
        }
        if p.accepted {
            accepted_total += 1;
        }
    }
    report.iterations = iters.len() as u64;
    if !iters.is_empty() {
        report.acceptance_rate = accepted_total as f64 / iters.len() as f64;
        let window = (iters.len() / 4).max(1);
        let tail = &iters[iters.len() - window..];
        report.trailing_acceptance_rate =
            tail.iter().filter(|p| p.accepted).count() as f64 / window as f64;
    }

    if let Some(inst) = inst {
        if inst.is_coordinate_based() {
            let pts: Vec<(u32, u32)> = (0..inst.len())
                .map(|c| {
                    let p = inst.point(c);
                    report.bad_coordinates += usize::from(!p.x.is_finite() || !p.y.is_finite());
                    (p.x.to_bits(), p.y.to_bits())
                })
                .collect();
            let mut sorted = pts;
            sorted.sort_unstable();
            report.duplicate_coordinates = sorted.windows(2).filter(|w| w[0] == w[1]).count();
        }
    }
    report
}

/// Collect every `<dir>/<job>/request.json` span a serve run left
/// behind, sorted by job id — the data source of `tsp-inspect serve`.
pub fn serve_spans(dir: &std::path::Path) -> Result<Vec<RequestSpan>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut spans = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path().join("request.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // not a job dir, or the span was never written
        };
        spans.push(RequestSpan::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    if spans.is_empty() {
        return Err(format!(
            "{}: no <job>/request.json artifacts (was the service run with request spans on?)",
            dir.display()
        ));
    }
    spans.sort_by(|a, b| a.job_id.cmp(&b.job_id));
    Ok(spans)
}

/// The bar glyph for the stage window *ending* at `stage`: queue wait,
/// lease wait, the solve itself, artifact writing, or bookkeeping.
fn stage_glyph(stage: Stage) -> char {
    match stage {
        Stage::Dequeued => 'q',
        Stage::Leased => 'l',
        Stage::Artifacts => 's',
        Stage::Done | Stage::Failed | Stage::Cancelled | Stage::Expired => 'a',
        Stage::Rejected => 'x',
        _ => '.',
    }
}

/// Render serve-request spans as a per-request waterfall: one row per
/// job with its lane, terminal state, end-to-end wall time and trace
/// id, plus a stage bar on a shared time axis (`q` queue wait, `l`
/// lease wait, `s` solve, `a` artifacts/terminal bookkeeping, `x`
/// rejected) — the text half of `tsp-inspect serve`.
pub fn render_serve_waterfall(spans: &[RequestSpan]) -> String {
    const BAR: f64 = 40.0;
    let max_e2e = spans
        .iter()
        .filter_map(RequestSpan::end_to_end_seconds)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = format!(
        "{} request span(s), time axis 0..{:.3}s\n\
         job           tenant      lane   state      e2e(s)  modeled(s)  trace            waterfall\n",
        spans.len(),
        max_e2e
    );
    for span in spans {
        let lane = span
            .stage(Stage::Leased)
            .and_then(|s| Some(format!("d{}/s{}", s.device?, s.stream?)))
            .unwrap_or_else(|| "-".into());
        let state = span
            .terminal()
            .map_or("open", |s| s.stage.as_str())
            .to_string();
        let e2e = span
            .end_to_end_seconds()
            .map_or("-".into(), |s| format!("{s:.4}"));
        let modeled = span
            .modeled_seconds()
            .map_or("-".into(), |s| format!("{s:.4}"));
        let trace = if span.trace_id.is_empty() {
            "-".to_string()
        } else {
            span.trace_id.chars().take(16).collect()
        };
        // Walk the adjacent stamp windows, growing the bar to each
        // window's end position so rounding never drifts off-axis.
        let mut bar = String::new();
        for w in span.stages.windows(2) {
            let end = ((w[1].wall_seconds / max_e2e) * BAR).round() as usize;
            while bar.len() < end.min(BAR as usize) {
                bar.push(stage_glyph(w[1].stage));
            }
        }
        out.push_str(&format!(
            "{:<13} {:<11} {:<6} {:<9} {:>7}  {:>10}  {:<16} |{bar}\n",
            span.job_id, span.tenant, lane, state, e2e, modeled, trace
        ));
    }
    out
}

/// Load the alert journal behind `path`: either an `alerts.jsonl`
/// file directly, or a serve artifacts directory containing one —
/// the data source of `tsp-inspect alerts`.
pub fn load_alert_transitions(path: &std::path::Path) -> Result<Vec<AlertTransition>, String> {
    let file = if path.is_dir() {
        path.join("alerts.jsonl")
    } else {
        path.to_path_buf()
    };
    let text = std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
    parse_alerts_jsonl(&text).map_err(|e| format!("{}: {e}", file.display()))
}

/// The display key of an alert instance: `rule{k=v,…}`.
fn instance_key(rule: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return rule.to_string();
    }
    let labels: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{rule}{{{}}}", labels.join(","))
}

/// Render an alert journal as a human-readable firing timeline: every
/// state transition in evaluation order, then the derived *firing
/// intervals* per alert instance (open intervals mean the journal
/// ends with the alert still firing) — the text half of
/// `tsp-inspect alerts`. Pure over the artifact: no service, registry
/// or clock is consulted.
pub fn render_alert_timeline(transitions: &[AlertTransition]) -> String {
    if transitions.is_empty() {
        return "no alert transitions (a healthy run)\n".to_string();
    }
    let mut rules: Vec<&str> = transitions.iter().map(|t| t.rule.as_str()).collect();
    rules.sort_unstable();
    rules.dedup();
    let mut out = format!(
        "{} alert transition(s) across {} rule(s), window {:.3}s..{:.3}s\n",
        transitions.len(),
        rules.len(),
        transitions.first().map(|t| t.seconds).unwrap_or(0.0),
        transitions.last().map(|t| t.seconds).unwrap_or(0.0),
    );
    out.push_str("   seconds  severity  transition            alert\n");
    for tr in transitions {
        out.push_str(&format!(
            "{:>10.3}  {:<8}  {:<8} -> {:<8}  {}={}\n",
            tr.seconds,
            tr.severity.as_str(),
            tr.from.as_str(),
            tr.to.as_str(),
            instance_key(&tr.rule, &tr.labels),
            tr.value,
        ));
    }
    // Firing intervals per instance, in first-fired order. An
    // interval opens on a `-> firing` transition and closes on the
    // next transition away from it.
    let mut intervals: Vec<(String, f64, Option<f64>)> = Vec::new();
    for tr in transitions {
        let key = instance_key(&tr.rule, &tr.labels);
        if tr.to == AlertState::Firing {
            intervals.push((key, tr.seconds, None));
        } else if tr.from == AlertState::Firing {
            if let Some(open) = intervals
                .iter_mut()
                .rev()
                .find(|(k, _, end)| *k == key && end.is_none())
            {
                open.2 = Some(tr.seconds);
            }
        }
    }
    out.push_str("firing intervals:\n");
    if intervals.is_empty() {
        out.push_str("  (none — nothing ever fired)\n");
    }
    for (key, start, end) in &intervals {
        match end {
            Some(end) => out.push_str(&format!(
                "  {key}: {start:.3}s..{end:.3}s ({:.3}s firing)\n",
                end - start
            )),
            None => out.push_str(&format!("  {key}: {start:.3}s.. (STILL FIRING)\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp::prelude::{Construction, FlightRecorder, IlsOptions, Solver};
    use tsp_tsplib::{generate, Style};

    fn recorded(n: usize, iters: u64) -> (Instance, Recording) {
        let inst = generate("inspect", n, Style::Uniform, 5);
        let flight = FlightRecorder::attached();
        let solver = Solver::builder()
            .construction(Construction::Random(9))
            .ils(
                IlsOptions::default()
                    .with_max_iterations(iters)
                    .with_seed(3),
            )
            .record(flight)
            .build();
        solver.run(&inst).unwrap();
        let recording = solver.recording(&inst).unwrap();
        (inst, recording)
    }

    #[test]
    fn alert_timeline_renders_transitions_and_firing_intervals() {
        let journal = concat!(
            "{\"seconds\":1.25,\"rule\":\"LaneStalled\",\"severity\":\"critical\",",
            "\"labels\":{\"lane\":\"0\"},\"from\":\"inactive\",\"to\":\"firing\",\"value\":0.3}\n",
            "{\"seconds\":2,\"rule\":\"QueueAgeSlo\",\"severity\":\"warning\",",
            "\"from\":\"inactive\",\"to\":\"pending\",\"value\":31.5}\n",
            "{\"seconds\":3.5,\"rule\":\"LaneStalled\",\"severity\":\"critical\",",
            "\"labels\":{\"lane\":\"0\"},\"from\":\"firing\",\"to\":\"resolved\",\"value\":0}\n",
            "{\"seconds\":4,\"rule\":\"QueueAgeSlo\",\"severity\":\"warning\",",
            "\"from\":\"pending\",\"to\":\"firing\",\"value\":40}\n",
        );
        let transitions = parse_alerts_jsonl(journal).unwrap();
        let text = render_alert_timeline(&transitions);
        assert!(
            text.contains("4 alert transition(s) across 2 rule(s)"),
            "{text}"
        );
        assert!(text.contains("LaneStalled{lane=0}"), "{text}");
        // The lane-stall interval closed; the queue-age one did not.
        assert!(
            text.contains("LaneStalled{lane=0}: 1.250s..3.500s (2.250s firing)"),
            "{text}"
        );
        assert!(
            text.contains("QueueAgeSlo: 4.000s.. (STILL FIRING)"),
            "{text}"
        );
        // A healthy run renders the explicit no-alerts line.
        assert!(render_alert_timeline(&[]).contains("healthy run"));
    }

    #[test]
    fn flame_table_ranks_by_weight_and_shows_shares() {
        let stacks = vec![
            ("solve;descent;sweep;kernel:dense".to_string(), 750u64),
            ("solve;descent;sweep;h2d".to_string(), 250u64),
        ];
        let text = render_flame(&stacks, 10);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("total weight 1000"));
        assert!(lines[2].contains("kernel:dense") && lines[2].contains("75.0%"));
        assert!(lines[3].contains("h2d") && lines[3].contains("25.0%"));
        // Top-N truncation.
        assert_eq!(render_flame(&stacks, 1).lines().count(), 3);
        assert!(render_flame(&[], 5).contains("no stacks"));
    }

    #[test]
    fn heatmap_counts_every_applied_move() {
        let (_, rec) = recorded(48, 6);
        let moves = rec
            .chain_events(0)
            .iter()
            .filter(|e| matches!(e, ReplayEvent::Sweep { .. }))
            .count();
        assert!(moves > 0);
        let grid = heatmap_grid(&rec, 0, 8);
        let total: f64 = grid.iter().flatten().sum();
        assert!(total > 0.0);
        // Moves live strictly in the upper triangle (j > i buckets or
        // the diagonal when both land in one bucket).
        for (r, row) in grid.iter().enumerate() {
            for (c, &cell) in row.iter().enumerate() {
                if c < r {
                    assert_eq!(cell, 0.0, "move bucketed below the diagonal at ({r},{c})");
                }
            }
        }
        let text = render_heatmap_text(&grid);
        assert_eq!(text.lines().count(), 8);
        let pgm = render_heatmap_pgm(&grid);
        assert!(pgm.starts_with("P2\n8 8\n255\n"));
        assert!(pgm.lines().count() == 3 + 8);
    }

    #[test]
    fn svg_renders_without_rerunning_the_solver() {
        let (inst, rec) = recorded(32, 4);
        let svg = tour_svg(&rec, 0, 0, &inst).unwrap();
        assert!(svg.starts_with("<svg"));
        // One circle per city plus the closed tour path.
        assert_eq!(svg.matches("<circle").count(), 32);
        assert!(svg.contains("Z\""));
    }

    #[test]
    fn timeline_tracks_iterations() {
        let (_, rec) = recorded(40, 5);
        let points = timeline(&rec, 0);
        assert_eq!(points.len(), 6); // initial descent + 5 iterations
        assert_eq!(points[0].iteration, 0);
        assert!(points[0].accepted);
        let text = render_timeline(&points);
        assert!(text.contains("6 iterations"));
    }

    #[test]
    fn plateau_is_flagged_on_a_stalled_chain() {
        // A tiny instance stalls fast: Better-only acceptance on 16
        // cities finds its best quickly and then rejects for the rest
        // of the run — a seeded plateau.
        let inst = generate("stall", 16, Style::Uniform, 11);
        let flight = FlightRecorder::attached();
        let solver = Solver::builder()
            .construction(Construction::Random(2))
            .ils(
                IlsOptions::default()
                    .with_max_iterations(30u64)
                    .with_seed(4),
            )
            .record(flight)
            .build();
        solver.run(&inst).unwrap();
        let rec = solver.recording(&inst).unwrap();
        let report = detect_anomalies(&rec, 0, Some(&inst), 10);
        assert!(report.plateaued(), "{report}");
        assert!(report.any());
        assert!(report.to_string().contains("PLATEAU"));
        assert_eq!(report.bad_coordinates, 0);
    }

    #[test]
    fn serve_waterfall_renders_lanes_stages_and_trace_ids() {
        let mut done = RequestSpan::new("job-00000000", "dispatch");
        done.trace_id = "0af7651916cd43dd8448eb211c80319c".into();
        done.run_id = "00ff00ff00ff00ff".into();
        done.stamp(Stage::Received, 0.0, 0.0);
        done.stamp(Stage::Admitted, 0.001, 0.0);
        done.stamp(Stage::Queued, 0.001, 0.0);
        done.stamp(Stage::Dequeued, 0.010, 0.0);
        done.stamp_lease(0.012, 1, 0);
        done.stamp(Stage::Solving, 0.013, 0.0);
        done.stamp(Stage::Artifacts, 0.090, 0.004);
        done.stamp(Stage::Done, 0.100, 0.004);
        let mut rejected = RequestSpan::new("job-00000001", "burst");
        rejected.stamp(Stage::Received, 0.0, 0.0);
        rejected.stamp(Stage::Rejected, 0.002, 0.0);

        let dir = std::env::temp_dir().join(format!(
            "tsp-inspect-serve-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for span in [&done, &rejected] {
            let job_dir = dir.join(&span.job_id);
            std::fs::create_dir_all(&job_dir).unwrap();
            std::fs::write(job_dir.join("request.json"), span.to_json().to_string()).unwrap();
        }
        // A stray non-job directory is skipped, not an error.
        std::fs::create_dir_all(dir.join("not-a-job")).unwrap();

        let spans = serve_spans(&dir).unwrap();
        assert_eq!(spans, vec![done, rejected]);
        let rendered = render_serve_waterfall(&spans);
        assert!(rendered.contains("2 request span(s)"), "{rendered}");
        assert!(rendered.contains("d1/s0"), "lane column: {rendered}");
        assert!(rendered.contains("0af7651916cd43dd"), "trace: {rendered}");
        assert!(
            rendered.contains('q') && rendered.contains('s'),
            "{rendered}"
        );
        assert!(rendered.contains("rejected"), "{rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_spans_reports_an_empty_directory() {
        let dir = std::env::temp_dir().join(format!(
            "tsp-inspect-serve-empty-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(serve_spans(&dir).unwrap_err().contains("request.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degenerate_coordinates_are_reported() {
        use tsp_core::{Metric, Point};
        let (_, rec) = recorded(32, 2);
        // An instance with a duplicated city (valid geometry, zero
        // distance between the twins).
        let mut pts: Vec<Point> = (0..32)
            .map(|i| Point::new(i as f32, (i % 7) as f32))
            .collect();
        pts[5] = pts[4];
        let degenerate = Instance::new("twins", Metric::Euc2d, pts).unwrap();
        let report = detect_anomalies(&rec, 0, Some(&degenerate), 1000);
        assert_eq!(report.duplicate_coordinates, 1);
        assert!(report.any());
        assert!(report.to_string().contains("DEGENERATE"));
    }
}
