//! # tsp-apps
//!
//! Host package for the repository's runnable examples (`examples/` at
//! the workspace root) and the cross-crate integration suite (`tests/`
//! at the workspace root). It re-exports the public API surface the
//! examples exercise, so `cargo doc -p tsp-apps` shows the whole stack.

pub use gpu_sim;
pub use tsp;
pub use tsp_2opt;
pub use tsp_construction;
pub use tsp_core;
pub use tsp_ils;
pub use tsp_prof;
pub use tsp_replay;
pub use tsp_serve;
pub use tsp_telemetry;
pub use tsp_trace;
pub use tsp_tsplib;

pub mod inspect;
