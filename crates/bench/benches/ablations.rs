//! Criterion: ablation variants under wall-clock (host) time. The
//! *modeled* ablation numbers come from `--bin ablations`; this bench
//! tracks the host cost of each kernel variant in the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::spec;
use tsp_2opt::{GpuTwoOpt, Strategy, TwoOptEngine};
use tsp_core::Tour;
use tsp_tsplib::{generate, Style};

fn bench_strategies(c: &mut Criterion) {
    let n = 1024usize;
    let inst = generate("bench-abl", n, Style::Uniform, 1);
    let tour = Tour::identity(n);
    let mut group = c.benchmark_group("ablation_strategies");
    for (label, strategy) in [
        ("shared_ordered", Strategy::Shared),
        ("shared_unordered", Strategy::Unordered),
        ("global_only", Strategy::GlobalOnly),
        ("tiled_256", Strategy::Tiled { tile: 256 }),
    ] {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            let mut eng = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
            b.iter(|| eng.best_move(&inst, &tour).unwrap())
        });
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let n = 512usize;
    let inst = generate("bench-ext", n, Style::Uniform, 2);
    let tour = Tour::identity(n);
    let mut group = c.benchmark_group("extension_engines");
    group.bench_with_input(BenchmarkId::new("multi_gpu_4", n), &n, |b, _| {
        let mut eng = tsp_2opt::MultiGpuTwoOpt::homogeneous(spec::gtx_680_cuda(), 4);
        b.iter(|| eng.best_move(&inst, &tour).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("gpu_oropt", n), &n, |b, _| {
        let mut eng = tsp_2opt::GpuOrOpt::new(spec::gtx_680_cuda());
        b.iter(|| eng.best_move(&inst, &tour).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("dlb_descent", n), &n, |b, _| {
        b.iter(|| {
            let mut t = tour.clone();
            tsp_2opt::dlb::optimize(&inst, &mut t, 10)
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_strategies, bench_extensions
}
criterion_main!(benches);
