//! Criterion: construction heuristics (the Table II "Initial Length
//! from MF" column's producer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsp_construction::{multiple_fragment, nearest_neighbor, space_filling};
use tsp_tsplib::{generate, Style};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    for &n in &[500usize, 2000] {
        let inst = generate("bench-con", n, Style::Uniform, 1);
        group.bench_with_input(BenchmarkId::new("multiple_fragment", n), &n, |b, _| {
            b.iter(|| multiple_fragment(&inst))
        });
        group.bench_with_input(BenchmarkId::new("nearest_neighbor", n), &n, |b, _| {
            b.iter(|| nearest_neighbor(&inst, 0))
        });
        group.bench_with_input(BenchmarkId::new("space_filling", n), &n, |b, _| {
            b.iter(|| space_filling(&inst))
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_construction
}
criterion_main!(benches);
