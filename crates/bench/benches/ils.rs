//! Criterion: Fig. 11's unit of work — one ILS iteration (perturb +
//! descend to the local minimum) per engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::spec;
use tsp_2opt::{optimize, GpuTwoOpt, SearchOptions, SequentialTwoOpt};
use tsp_core::Tour;
use tsp_ils::Perturbation;
use tsp_tsplib::{generate, Style};

/// One perturbation + descent, starting each iteration from the same
/// local minimum.
fn bench_ils_iteration(c: &mut Criterion) {
    let n = 200;
    let inst = generate("bench-ils", n, Style::Clustered { clusters: 8 }, 1);
    // Pre-descend to a local minimum once.
    let mut base = Tour::identity(n);
    let mut seq = SequentialTwoOpt::new();
    optimize(&mut seq, &inst, &mut base, SearchOptions::default()).unwrap();

    let mut group = c.benchmark_group("fig11_ils_iteration");
    group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
        let mut eng = SequentialTwoOpt::new();
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
        b.iter(|| {
            let mut t = base.clone();
            Perturbation::DoubleBridge.apply(&mut t, &mut rng);
            optimize(&mut eng, &inst, &mut t, SearchOptions::default()).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("gpu_sim", n), &n, |b, _| {
        let mut eng = GpuTwoOpt::new(spec::gtx_680_cuda());
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
        b.iter(|| {
            let mut t = base.clone();
            Perturbation::DoubleBridge.apply(&mut t, &mut rng);
            optimize(&mut eng, &inst, &mut t, SearchOptions::default()).unwrap()
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_ils_iteration
}
criterion_main!(benches);
