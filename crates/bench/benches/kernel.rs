//! Criterion: functional kernel launches on the simulated device —
//! the host-side counterpart of Fig. 9's kernel sweep (the modeled
//! GFLOP/s themselves come from `--bin fig9`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::{spec, Device, LaunchConfig};
use tsp_2opt::bestmove::EMPTY_KEY;
use tsp_2opt::gpu::small::OrderedSharedKernel;
use tsp_2opt::gpu::tiled::TiledKernel;
use tsp_2opt::indexing::pair_count;
use tsp_core::Point;

fn points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let a = i as f32 * 2.399963;
            Point::new(500.0 + 400.0 * a.cos(), 500.0 + 400.0 * a.sin())
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let dev = Device::new(spec::gtx_680_cuda());
    let mut group = c.benchmark_group("fig9_kernel");
    for &n in &[512usize, 2048, 6144] {
        let (coords, _) = dev.copy_to_device(&points(n)).unwrap();
        group.throughput(Throughput::Elements(pair_count(n)));
        group.bench_with_input(BenchmarkId::new("shared", n), &n, |b, _| {
            let out = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
            b.iter(|| {
                out.fill(EMPTY_KEY);
                dev.launch(
                    LaunchConfig::new(32, 1024),
                    &OrderedSharedKernel {
                        coords: &coords,
                        out: &out,
                    },
                )
                .unwrap()
            })
        });
    }
    // One tiled launch past the shared-memory capacity.
    let n = 10_000;
    let (coords, _) = dev.copy_to_device(&points(n)).unwrap();
    group.throughput(Throughput::Elements(pair_count(n)));
    group.bench_with_input(BenchmarkId::new("tiled", n), &n, |b, _| {
        let out = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        b.iter(|| {
            out.fill(EMPTY_KEY);
            let k = TiledKernel {
                coords: &coords,
                out: &out,
                tile: 1250,
            };
            let grid = k.grid_dim();
            dev.launch(LaunchConfig::new(grid, 1024), &k).unwrap()
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_kernels
}
criterion_main!(benches);
