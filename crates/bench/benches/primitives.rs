//! Criterion: the hot primitives — delta evaluation, the triangular
//! index inversion, and the packed-key codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tsp_2opt::bestmove::{pack, unpack};
use tsp_2opt::delta::delta_ordered;
use tsp_2opt::indexing::{index_to_pair, pair_count};
use tsp_core::Point;

fn bench_primitives(c: &mut Criterion) {
    let n = 1024usize;
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let a = i as f32 * 2.399963;
            Point::new(500.0 + 400.0 * a.cos(), 500.0 + 400.0 * a.sin())
        })
        .collect();

    c.bench_function("delta_ordered", |b| {
        let mut k = 0u64;
        let pairs = pair_count(n);
        b.iter(|| {
            let (i, j) = index_to_pair(k % pairs);
            k += 7919;
            black_box(delta_ordered(&pts, i as usize, j as usize))
        })
    });

    c.bench_function("index_to_pair", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 7919;
            black_box(index_to_pair(k & 0xFFFF_FFFF))
        })
    });

    c.bench_function("pack_unpack", |b| {
        let mut d = -1000i32;
        b.iter(|| {
            d = d.wrapping_add(17);
            black_box(unpack(pack(d % 100_000, 123, 456)))
        })
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_primitives
}
criterion_main!(benches);
