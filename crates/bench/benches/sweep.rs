//! Criterion: wall-clock cost of one full 2-opt sweep per engine —
//! the host-side counterpart of Table II's single-run columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::spec;
use tsp_2opt::{CpuParallelTwoOpt, GpuTwoOpt, SequentialTwoOpt, TwoOptEngine};
use tsp_core::Tour;
use tsp_tsplib::{generate, Style};

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_sweep");
    for &n in &[100usize, 500, 1000] {
        let inst = generate("bench-sweep", n, Style::Uniform, 1);
        let tour = Tour::identity(n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            let mut eng = SequentialTwoOpt::new();
            b.iter(|| eng.best_move(&inst, &tour).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cpu_parallel", n), &n, |b, _| {
            let mut eng = CpuParallelTwoOpt::new();
            b.iter(|| eng.best_move(&inst, &tour).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("gpu_sim", n), &n, |b, _| {
            let mut eng = GpuTwoOpt::new(spec::gtx_680_cuda());
            b.iter(|| eng.best_move(&inst, &tour).unwrap())
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_sweep
}
criterion_main!(benches);
