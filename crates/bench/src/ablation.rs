//! Ablation studies for the design choices called out in DESIGN.md §5.
//!
//! 1. shared-memory staging on/off (the paper's Optimization 1);
//! 2. coordinate pre-ordering on/off (Optimization 2);
//! 3. thread striding vs. one-thread-per-pair (§IV.A's launch shape);
//! 4. tile size of the §IV.B division scheme;
//! 5. best- vs. first-improvement pivoting;
//! 6. neighbourhood pruning depth (§VII future work).

use crate::common::{fmt_time, render_table};
use gpu_sim::{spec, LaunchConfig};
use tsp_2opt::gpu::model::{model_small_sweep, model_tiled_sweep};
use tsp_2opt::pruned::PrunedTwoOpt;
use tsp_2opt::{
    optimize, GpuTwoOpt, PivotRule, SearchOptions, SequentialTwoOpt, Strategy, TwoOptEngine,
};
use tsp_core::Tour;
use tsp_tsplib::{generate, Style};

/// A generic (label, value-columns) result row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label.
    pub label: String,
    /// Column values, pre-formatted.
    pub values: Vec<String>,
    /// The raw figure of merit (for tests).
    pub metric: f64,
}

/// Ablation 1 + 2: kernel variants at one size (modeled sweep time).
pub fn memory_variants(n: usize) -> Vec<Row> {
    memory_variants_traced(n, &tsp_trace::Recorder::disabled())
}

/// [`memory_variants`] with a [`tsp_trace::Recorder`] attached, so the
/// trace shows the three kernel variants side by side.
pub fn memory_variants_traced(n: usize, recorder: &tsp_trace::Recorder) -> Vec<Row> {
    let dev = spec::gtx_680_cuda();
    let inst = generate("abl-mem", n, Style::Uniform, 1);
    let tour = Tour::identity(n);
    [
        ("ordered + shared (paper)", Strategy::Shared),
        ("unordered + shared (Fig. 5)", Strategy::Unordered),
        ("ordered, global only", Strategy::GlobalOnly),
    ]
    .into_iter()
    .map(|(label, strategy)| {
        let mut eng = GpuTwoOpt::new(dev.clone())
            .with_strategy(strategy)
            .with_recorder(recorder.clone());
        let (_, p) = eng.best_move(&inst, &tour).expect("kernel runs");
        Row {
            label: label.into(),
            values: vec![
                fmt_time(p.kernel_seconds),
                fmt_time(p.modeled_seconds()),
                format!("{:.0} M/s", p.checks_per_second() / 1e6),
            ],
            metric: p.kernel_seconds,
        }
    })
    .collect()
}

/// Ablation 3: striding vs. one-thread-per-pair launch shapes (modeled).
pub fn striding_variants(n: usize) -> Vec<Row> {
    let dev = spec::gtx_680_cuda();
    let pairs = tsp_2opt::indexing::pair_count(n);
    let block = 1024u32;
    let strided = model_small_sweep(&dev, n, LaunchConfig::new(dev.compute_units * 4, block));
    let one_per_pair_grid = pairs.div_ceil(block as u64) as u32;
    let flat = model_small_sweep(&dev, n, LaunchConfig::new(one_per_pair_grid, block));
    vec![
        Row {
            label: format!("strided, {} blocks (paper)", dev.compute_units * 4),
            values: vec![
                fmt_time(strided.kernel_seconds),
                format!("{:.0}", strided.gflops()),
            ],
            metric: strided.kernel_seconds,
        },
        Row {
            label: format!("one thread per pair, {one_per_pair_grid} blocks"),
            values: vec![
                fmt_time(flat.kernel_seconds),
                format!("{:.0}", flat.gflops()),
            ],
            metric: flat.kernel_seconds,
        },
    ]
}

/// Ablation 4: tile-size sweep for the division scheme (modeled).
pub fn tile_sizes(n: usize) -> Vec<Row> {
    let dev = spec::gtx_680_cuda();
    [128usize, 256, 512, 1024, 2048, 3071]
        .into_iter()
        .map(|tile| {
            let m = model_tiled_sweep(&dev, n, 256, tile);
            Row {
                label: format!("tile = {tile}"),
                values: vec![fmt_time(m.kernel_seconds), format!("{:.0}", m.gflops())],
                metric: m.kernel_seconds,
            }
        })
        .collect()
}

/// Ablation 5: pivot rule (functional descent).
pub fn pivot_rules(n: usize) -> Vec<Row> {
    let inst = generate("abl-pivot", n, Style::Uniform, 2);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
    let start = Tour::random(n, &mut rng);
    [
        ("best improvement (paper)", PivotRule::BestImprovement),
        ("first improvement", PivotRule::FirstImprovement),
    ]
    .into_iter()
    .map(|(label, rule)| {
        let mut tour = start.clone();
        let mut eng = SequentialTwoOpt::new().with_pivot(rule);
        let stats = optimize(&mut eng, &inst, &mut tour, SearchOptions::default())
            .expect("descent succeeds");
        Row {
            label: label.into(),
            values: vec![
                stats.sweeps.to_string(),
                stats.profile.pairs_checked.to_string(),
                stats.final_length.to_string(),
            ],
            metric: stats.profile.pairs_checked as f64 / stats.sweeps.max(1) as f64,
        }
    })
    .collect()
}

/// Ablation 6: pruning depth (functional descent; quality vs. work).
pub fn pruning_depths(n: usize) -> Vec<Row> {
    let inst = generate("abl-prune", n, Style::Uniform, 4);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(5);
    let start = Tour::random(n, &mut rng);

    let mut rows = Vec::new();
    {
        let mut tour = start.clone();
        let mut eng = SequentialTwoOpt::new();
        let stats =
            optimize(&mut eng, &inst, &mut tour, SearchOptions::default()).expect("descent");
        rows.push(Row {
            label: "full neighbourhood (paper)".into(),
            values: vec![
                stats.profile.pairs_checked.to_string(),
                stats.final_length.to_string(),
            ],
            metric: stats.final_length as f64,
        });
    }
    for k in [4usize, 8, 16] {
        let mut tour = start.clone();
        let mut eng = PrunedTwoOpt::new(&inst, k);
        let stats =
            optimize(&mut eng, &inst, &mut tour, SearchOptions::default()).expect("descent");
        rows.push(Row {
            label: format!("pruned, k = {k}"),
            values: vec![
                stats.profile.pairs_checked.to_string(),
                stats.final_length.to_string(),
            ],
            metric: stats.final_length as f64,
        });
    }
    rows
}

/// §VI future work: multi-device scaling (modeled concurrent makespan).
pub fn multi_device_scaling(n: usize) -> Vec<Row> {
    let inst = generate("abl-multi", n, Style::Uniform, 6);
    let tour = Tour::identity(n);
    (1..=4usize)
        .map(|count| {
            let mut eng = tsp_2opt::MultiGpuTwoOpt::homogeneous(spec::gtx_680_cuda(), count);
            let (_, p) = eng.best_move(&inst, &tour).expect("kernel runs");
            Row {
                label: format!("{count} x GTX 680"),
                values: vec![
                    fmt_time(p.kernel_seconds),
                    fmt_time(p.modeled_seconds()),
                    format!("{:.0} M/s", p.checks_per_second() / 1e6),
                ],
                metric: p.modeled_seconds(),
            }
        })
        .collect()
}

/// Serial Algorithm 2 vs. double-buffered streams (overlapped H2D).
pub fn transfer_overlap(sizes: &[usize]) -> Vec<Row> {
    let dev = spec::gtx_680_cuda();
    sizes
        .iter()
        .flat_map(|&n| {
            let inst = generate("abl-overlap", n, Style::Uniform, 11);
            let tour = Tour::identity(n);
            let mut serial = GpuTwoOpt::new(dev.clone());
            let (_, ps) = serial.best_move(&inst, &tour).expect("kernel runs");
            let mut piped = GpuTwoOpt::new(dev.clone()).with_overlapped_transfers();
            let (_, pp) = piped.best_move(&inst, &tour).expect("kernel runs");
            [
                Row {
                    label: format!("n = {n}, serial (paper)"),
                    values: vec![fmt_time(ps.modeled_seconds())],
                    metric: ps.modeled_seconds(),
                },
                Row {
                    label: format!("n = {n}, overlapped"),
                    values: vec![fmt_time(pp.modeled_seconds())],
                    metric: pp.modeled_seconds(),
                },
            ]
        })
        .collect()
}

/// Device-resident descent vs. the serial Algorithm-2 pipeline: same
/// random start, capped descents, modeled per-descent totals. The
/// resident pipeline replaces the per-sweep coordinate upload with an
/// on-device segment reversal, so its advantage grows with `n` (the
/// upload costs `latency + 8n bytes` per sweep; the reversal only moves
/// the reversed segment through global memory).
pub fn device_resident(sizes: &[usize]) -> Vec<Row> {
    let dev = spec::gtx_680_cuda();
    let opts = SearchOptions::new().with_max_sweeps(5u64);
    sizes
        .iter()
        .flat_map(|&n| {
            let inst = generate("abl-resident", n, Style::Uniform, 13);
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(14);
            let start = Tour::random(n, &mut rng);

            let mut t_serial = start.clone();
            let mut serial = GpuTwoOpt::new(dev.clone());
            let a = optimize(&mut serial, &inst, &mut t_serial, opts).expect("descent");

            let mut t_resident = start.clone();
            let mut resident = GpuTwoOpt::new(dev.clone()).with_strategy(Strategy::DeviceResident);
            let b = optimize(&mut resident, &inst, &mut t_resident, opts).expect("descent");
            assert_eq!(
                t_serial.as_slice(),
                t_resident.as_slice(),
                "pipelines must walk the same descent"
            );

            [
                Row {
                    label: format!("n = {n}, serial Algorithm 2 (paper)"),
                    values: vec![
                        fmt_time(a.profile.modeled_seconds()),
                        fmt_time(a.profile.h2d_seconds),
                        fmt_time(a.profile.reversal_seconds),
                    ],
                    metric: a.profile.modeled_seconds(),
                },
                Row {
                    label: format!("n = {n}, device-resident"),
                    values: vec![
                        fmt_time(b.profile.modeled_seconds()),
                        fmt_time(b.profile.h2d_seconds),
                        fmt_time(b.profile.reversal_seconds),
                    ],
                    metric: b.profile.modeled_seconds(),
                },
            ]
        })
        .collect()
}

/// DLB + candidate lists vs. the dense sweep (the "complex pruning
/// schemes and specialized data structures" the paper contrasts its
/// brute-force kernel against).
pub fn dlb_vs_sweep(n: usize) -> Vec<Row> {
    let inst = generate("abl-dlb", n, Style::Uniform, 7);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(8);
    let start = Tour::random(n, &mut rng);

    let mut rows = Vec::new();
    {
        let mut tour = start.clone();
        let mut eng = SequentialTwoOpt::new();
        let stats =
            optimize(&mut eng, &inst, &mut tour, SearchOptions::default()).expect("descent");
        rows.push(Row {
            label: "dense best-improvement sweeps".into(),
            values: vec![
                stats.profile.pairs_checked.to_string(),
                stats.final_length.to_string(),
            ],
            metric: stats.profile.pairs_checked as f64,
        });
    }
    {
        let mut tour = start.clone();
        let stats = tsp_2opt::dlb::optimize(&inst, &mut tour, 12);
        rows.push(Row {
            label: "don't-look bits + 12-NN lists".into(),
            values: vec![stats.checks.to_string(), tour.length(&inst).to_string()],
            metric: stats.checks as f64,
        });
    }
    rows
}

/// Render one ablation block.
pub fn render(title: &str, header: &[&str], rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut v = vec![r.label.clone()];
            v.extend(r.values.iter().cloned());
            v
        })
        .collect();
    format!("## {title}\n\n{}\n", render_table(header, &body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_and_ordering_pay_off() {
        let rows = memory_variants(2048);
        // ordered+shared <= unordered+shared < global-only.
        assert!(rows[0].metric <= rows[1].metric * 1.001);
        assert!(rows[1].metric < rows[2].metric);
    }

    #[test]
    fn striding_beats_one_thread_per_pair() {
        let rows = striding_variants(4096);
        // One-per-pair re-stages the coordinates in every one of its many
        // blocks; striding amortizes the staging ("reuse 99 times").
        assert!(rows[0].metric < rows[1].metric, "{rows:?}");
    }

    #[test]
    fn bigger_tiles_are_cheaper_at_scale() {
        let rows = tile_sizes(20_000);
        // Staging overhead shrinks with tile size: the largest tile must
        // beat the smallest clearly.
        assert!(rows.last().unwrap().metric < rows[0].metric, "{rows:?}");
    }

    #[test]
    fn first_improvement_sweeps_are_cheaper_but_more_numerous() {
        let rows = pivot_rules(150);
        // Fewer checks per sweep...
        assert!(rows[1].metric < rows[0].metric, "{rows:?}");
        // ...but more sweeps to reach the local minimum (why the paper's
        // GPU reduction is a best-improvement pivot).
        let sweeps_best: u64 = rows[0].values[0].parse().unwrap();
        let sweeps_first: u64 = rows[1].values[0].parse().unwrap();
        assert!(sweeps_first > sweeps_best, "{rows:?}");
    }

    #[test]
    fn multi_device_scales_near_linearly_at_size() {
        let rows = multi_device_scaling(4000);
        // 4 devices at n=4000 must cut the end-to-end time well below a
        // single device (transfers replicate, kernels split).
        assert!(
            rows[3].metric < rows[0].metric * 0.45,
            "1 dev {} vs 4 dev {}",
            rows[0].metric,
            rows[3].metric
        );
    }

    #[test]
    fn overlap_helps_most_where_transfers_dominate() {
        let rows = transfer_overlap(&[200, 4000]);
        // Small n: transfers dominate, overlap nearly halves the sweep.
        let small_gain = rows[0].metric / rows[1].metric;
        // Large n: kernel dominates, overlap gains little.
        let large_gain = rows[2].metric / rows[3].metric;
        assert!(small_gain > large_gain, "{small_gain} vs {large_gain}");
        assert!(small_gain > 1.25, "small-instance gain {small_gain}");
        assert!(large_gain < 1.25, "large-instance gain {large_gain}");
    }

    #[test]
    fn device_resident_wins_from_a_thousand_cities() {
        // ISSUE acceptance: the modeled per-descent total of the
        // resident pipeline is strictly below serial Algorithm 2 for
        // n >= 1000 (1536 here); at 512 the rows exist for the report
        // but no ordering is asserted (upload latency is small there).
        let rows = device_resident(&[512, 1536]);
        assert_eq!(rows.len(), 4);
        let serial_1536 = rows[2].metric;
        let resident_1536 = rows[3].metric;
        assert!(
            resident_1536 < serial_1536,
            "resident {resident_1536} vs serial {serial_1536}"
        );
        // The steady state really dropped the upload: the resident
        // descent's accumulated H2D is one refresh, far below serial's
        // five sweeps' worth.
        let serial_h2d = &rows[2].values[1];
        let resident_h2d = &rows[3].values[1];
        assert_ne!(serial_h2d, resident_h2d);
    }

    #[test]
    fn dlb_does_orders_of_magnitude_less_work() {
        let rows = dlb_vs_sweep(250);
        assert!(rows[1].metric * 20.0 < rows[0].metric, "{rows:?}");
    }

    #[test]
    fn pruning_trades_quality_for_work() {
        let rows = pruning_depths(200);
        let full = rows[0].metric;
        for r in &rows[1..] {
            // Within 15% of the full-neighbourhood quality.
            assert!(
                (r.metric - full) / full < 0.15,
                "{}: {} vs {}",
                r.label,
                r.metric,
                full
            );
        }
    }
}
