//! Runs the ablation studies of DESIGN.md §5.
//!
//! Usage: `ablations [--trace-out <path>]`
//!   --trace-out — write a Chrome-trace JSON of the kernel memory
//!                 variants ablation (load in <https://ui.perfetto.dev>).

use tsp_bench::ablation;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_out, _) = tsp_bench::trace::split_trace_out(&args);
    let recorder = tsp_bench::trace::recorder_for(&trace_out);
    println!("Ablation studies (GTX 680 CUDA model)\n");
    print!(
        "{}",
        ablation::render(
            "Optimization 1 & 2: kernel memory variants (n = 2048, one sweep)",
            &["variant", "kernel", "total", "checks/s"],
            &ablation::memory_variants_traced(2048, &recorder),
        )
    );
    if let Some(path) = &trace_out {
        tsp_bench::trace::write_trace(path, &recorder);
    }
    print!(
        "{}",
        ablation::render(
            "Thread striding vs one-thread-per-pair (n = 4096)",
            &["launch shape", "kernel", "GFLOP/s"],
            &ablation::striding_variants(4096),
        )
    );
    print!(
        "{}",
        ablation::render(
            "Tile size of the division scheme (n = 20000)",
            &["tile", "kernel", "GFLOP/s"],
            &ablation::tile_sizes(20_000),
        )
    );
    print!(
        "{}",
        ablation::render(
            "Pivot rule (n = 300, descent to local minimum)",
            &["rule", "sweeps", "pairs checked", "final length"],
            &ablation::pivot_rules(300),
        )
    );
    print!(
        "{}",
        ablation::render(
            "Neighbourhood pruning (n = 300, descent to local minimum)",
            &["neighbourhood", "pairs checked", "final length"],
            &ablation::pruning_depths(300),
        )
    );
    print!(
        "{}",
        ablation::render(
            "Multi-device scaling, one sweep (n = 4000; paper \u{a7}VI future work)",
            &["fleet", "kernel", "total", "checks/s"],
            &ablation::multi_device_scaling(4000),
        )
    );
    print!(
        "{}",
        ablation::render(
            "Dense sweeps vs don't-look bits (n = 250, descent)",
            &["algorithm", "checks", "final length"],
            &ablation::dlb_vs_sweep(250),
        )
    );
    print!(
        "{}",
        ablation::render(
            "Serial Algorithm 2 vs overlapped transfers (one sweep)",
            &["configuration", "total"],
            &ablation::transfer_overlap(&[200, 1000, 4000]),
        )
    );
    print!(
        "{}",
        ablation::render(
            "Serial Algorithm 2 vs device-resident descent (5 sweeps)",
            &["configuration", "total", "h2d", "reversal"],
            &ablation::device_resident(&[512, 1536]),
        )
    );
}
