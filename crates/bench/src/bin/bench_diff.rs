//! Compare a current bench snapshot against a committed baseline.
//!
//! ```text
//! bench_diff [--tol R] [--tol SUBSTR=R]... [--advisory] <baseline.json> <current.json>
//! ```
//!
//! `--tol R` sets the default relative tolerance (default 0.05);
//! `--tol SUBSTR=R` overrides it for leaf paths containing `SUBSTR`.
//! With `--advisory` regressions are reported but the exit code stays 0
//! (for CI jobs that are informational at first).
//!
//! Exit status: 0 clean or advisory, 1 regression, 2 usage/IO error.

use tsp_bench::diff::{diff_files, Tolerances};

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff [--tol R] [--tol SUBSTR=R]... [--advisory] <baseline.json> <current.json>"
    );
    std::process::exit(2);
}

fn main() {
    let mut tol = Tolerances::default();
    let mut advisory = false;
    let mut files = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--advisory" {
            advisory = true;
        } else if a == "--tol" || a.starts_with("--tol=") {
            let value = match a.strip_prefix("--tol=") {
                Some(v) => v.to_string(),
                None => args.next().unwrap_or_else(|| usage()),
            };
            match value.split_once('=') {
                Some((key, r)) => match r.parse::<f64>() {
                    Ok(r) => tol.overrides.push((key.to_string(), r)),
                    Err(_) => usage(),
                },
                None => match value.parse::<f64>() {
                    Ok(r) => tol.rel = r,
                    Err(_) => usage(),
                },
            }
        } else if a.starts_with("--") {
            usage();
        } else {
            files.push(a);
        }
    }
    let [baseline, current] = files.as_slice() else {
        usage();
    };

    match diff_files(baseline, current, &tol) {
        Ok(report) => {
            print!("{}", report.render());
            if report.has_regressions() {
                if advisory {
                    eprintln!("(advisory mode: regressions do not fail the job)");
                } else {
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("bench_diff: {e}");
            std::process::exit(2);
        }
    }
}
