//! Regenerates the paper's Fig. 10 (speedup vs the 2x Xeon E5-2660
//! OpenCL CPU baseline) and checks the paper's headline claims.

fn main() {
    let curves = tsp_bench::fig10::compute();
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", tsp_bench::fig10::to_csv(&curves));
        return;
    }
    println!("Fig. 10 — speedup vs 2x Xeon E5-2660 (Intel OpenCL)\n");
    print!("{}", tsp_bench::fig10::render(&curves));
    let xs: Vec<f64> = tsp_bench::fig10::SIZES.iter().map(|&n| n as f64).collect();
    let series: Vec<(&str, Vec<f64>)> = curves
        .iter()
        .map(|c| (c.device.as_str(), c.speedup.clone()))
        .collect();
    println!();
    print!(
        "{}",
        tsp_bench::common::ascii_chart("Speedup vs problem size (log x)", &xs, &series, 14, 72)
    );
}
