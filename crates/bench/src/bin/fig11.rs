//! Regenerates the paper's Fig. 11 (ILS convergence, GPU vs CPU).
//!
//! Usage: `fig11 [n] [iterations] [--csv] [--trace-out <path>]`
//!   n           — instance size (default 600; the paper uses 24978,
//!                 which takes far longer to run functionally)
//!   iterations  — ILS perturbation count (default 30)
//!   --trace-out — write a Chrome-trace JSON of the GPU run
//!                 (load in <https://ui.perfetto.dev>).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_out, args) = tsp_bench::trace::split_trace_out(&args);
    let csv = args.iter().any(|a| a == "--csv");
    let mut nums = args.iter().filter_map(|s| s.parse::<u64>().ok());
    let n: usize = nums.next().unwrap_or(600) as usize;
    let iters: u64 = nums.next().unwrap_or(30);
    eprintln!("running ILS on a clustered instance of n = {n}, {iters} iterations...");
    let recorder = tsp_bench::trace::recorder_for(&trace_out);
    let c = tsp_bench::fig11::compute_traced(n, iters, 0x2013, &recorder);
    if let Some(path) = &trace_out {
        tsp_bench::trace::write_trace(path, &recorder);
    }
    if csv {
        print!("{}", tsp_bench::fig11::to_csv(&c));
    } else {
        print!("{}", tsp_bench::fig11::render(&c));
    }
}
