//! Regenerates the paper's Fig. 9 (GFLOP/s during 2-opt, 8 devices).

fn main() {
    let curves = tsp_bench::fig9::compute();
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", tsp_bench::fig9::to_csv(&curves));
        return;
    }
    println!("Fig. 9 — GFLOP/s (distance calculation) vs problem size\n");
    print!("{}", tsp_bench::fig9::render(&curves));
    let xs: Vec<f64> = tsp_bench::fig9::SIZES.iter().map(|&n| n as f64).collect();
    let series: Vec<(&str, Vec<f64>)> = curves
        .iter()
        .map(|c| (c.device.as_str(), c.gflops.clone()))
        .collect();
    println!();
    print!(
        "{}",
        tsp_bench::common::ascii_chart("GFLOP/s vs problem size (log x)", &xs, &series, 16, 72)
    );
    println!(
        "\nPaper reference points: 680 GFLOP/s (GTX 680 CUDA), 830 GFLOP/s (Radeon 7970 OpenCL)."
    );
}
