//! Regenerates the paper's Fig. 9 (GFLOP/s during 2-opt, 8 devices).
//!
//! Usage: `fig9 [--csv] [--trace-out <path>]`
//!   --trace-out — the figure itself is model-priced, so this records a
//!                 small functional sweep sample of the kernels the
//!                 model prices (load in <https://ui.perfetto.dev>).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_out, args) = tsp_bench::trace::split_trace_out(&args);
    if let Some(path) = &trace_out {
        let recorder = tsp_trace::Recorder::enabled();
        tsp_bench::trace::traced_sweep_sample(&[128, 512, 2048], &recorder);
        tsp_bench::trace::write_trace(path, &recorder);
    }
    let curves = tsp_bench::fig9::compute();
    if args.iter().any(|a| a == "--csv") {
        print!("{}", tsp_bench::fig9::to_csv(&curves));
        return;
    }
    println!("Fig. 9 — GFLOP/s (distance calculation) vs problem size\n");
    print!("{}", tsp_bench::fig9::render(&curves));
    let xs: Vec<f64> = tsp_bench::fig9::SIZES.iter().map(|&n| n as f64).collect();
    let series: Vec<(&str, Vec<f64>)> = curves
        .iter()
        .map(|c| (c.device.as_str(), c.gflops.clone()))
        .collect();
    println!();
    print!(
        "{}",
        tsp_bench::common::ascii_chart("GFLOP/s vs problem size (log x)", &xs, &series, 16, 72)
    );
    println!(
        "\nPaper reference points: 680 GFLOP/s (GTX 680 CUDA), 830 GFLOP/s (Radeon 7970 OpenCL)."
    );
}
