//! Dense vs candidate-list 2-opt: modeled per-sweep cost and
//! functional descent quality; writes `BENCH_candidate.json` with
//! `--json-out <path>`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json-out" {
            json_out = it.next();
        } else if let Some(p) = a.strip_prefix("--json-out=") {
            json_out = Some(p.to_string());
        } else {
            rest.push(a);
        }
    }

    let models = tsp_bench::fig_candidate::model_rows();
    let quality = tsp_bench::fig_candidate::quality_rows(0x2013);
    if rest.iter().any(|a| a == "--csv") {
        print!("{}", tsp_bench::fig_candidate::to_csv(&models, &quality));
    } else {
        print!("{}", tsp_bench::fig_candidate::render(&models, &quality));
    }
    if let Some(path) = json_out {
        std::fs::write(&path, tsp_bench::fig_candidate::to_json(&models, &quality))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
