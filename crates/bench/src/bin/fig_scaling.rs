//! Modeled device/stream scaling of sharded ILS multistart; writes
//! `BENCH_scaling.json` with `--json-out <path>`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_out = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json-out" {
            json_out = it.next();
        } else if let Some(p) = a.strip_prefix("--json-out=") {
            json_out = Some(p.to_string());
        } else {
            rest.push(a);
        }
    }
    let n: usize = rest.first().and_then(|s| s.parse().ok()).unwrap_or(96);
    let shards: usize = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let iterations: u64 = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);

    let rows = tsp_bench::fig_scaling::compute(n, shards, iterations, 0x2013);
    if rest.iter().any(|a| a == "--csv") {
        print!("{}", tsp_bench::fig_scaling::to_csv(&rows));
    } else {
        println!(
            "Sharded multistart scaling — {shards} chains, n = {n}, {iterations} ILS iterations\n"
        );
        print!("{}", tsp_bench::fig_scaling::render(&rows));
    }
    if let Some(path) = json_out {
        std::fs::write(&path, tsp_bench::fig_scaling::to_json(&rows))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
