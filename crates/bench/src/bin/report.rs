//! One-shot reproduction report: regenerates every table and figure into
//! `reports/` (text + CSV), so a reviewer can diff a full run against
//! the committed expectations in EXPERIMENTS.md.
//!
//! Usage: `report [out_dir] [max_functional_n]`
//! (defaults: `reports`, 1500).

use std::fs;
use std::path::Path;

fn write(path: &Path, name: &str, contents: &str) {
    let p = path.join(name);
    fs::write(&p, contents).unwrap_or_else(|e| panic!("cannot write {}: {e}", p.display()));
    eprintln!("wrote {}", p.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .find(|a| a.parse::<usize>().is_err())
        .cloned()
        .unwrap_or_else(|| "reports".to_string());
    let cap: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(1500);
    let out = Path::new(&out_dir);
    fs::create_dir_all(out).expect("cannot create report directory");

    eprintln!("== Table I");
    let t1 = tsp_bench::table1::compute();
    write(out, "table1.txt", &tsp_bench::table1::render(&t1));

    eprintln!("== Table II (functional up to n = {cap})");
    let t2 = tsp_bench::table2::compute(cap);
    write(out, "table2.txt", &tsp_bench::table2::render(&t2));
    write(out, "table2.csv", &tsp_bench::table2::to_csv(&t2));

    eprintln!("== Fig. 9");
    let f9 = tsp_bench::fig9::compute();
    write(out, "fig9.txt", &tsp_bench::fig9::render(&f9));
    write(out, "fig9.csv", &tsp_bench::fig9::to_csv(&f9));

    eprintln!("== Fig. 10");
    let f10 = tsp_bench::fig10::compute();
    write(out, "fig10.txt", &tsp_bench::fig10::render(&f10));
    write(out, "fig10.csv", &tsp_bench::fig10::to_csv(&f10));

    eprintln!("== Fig. 11 (n = 600, 30 iterations)");
    let f11 = tsp_bench::fig11::compute(600, 30, 0x2013);
    write(out, "fig11.txt", &tsp_bench::fig11::render(&f11));
    write(out, "fig11.csv", &tsp_bench::fig11::to_csv(&f11));

    eprintln!("== Ablations");
    let mut ab = String::new();
    ab += &tsp_bench::ablation::render(
        "Optimization 1 & 2: kernel memory variants (n = 2048)",
        &["variant", "kernel", "total", "checks/s"],
        &tsp_bench::ablation::memory_variants(2048),
    );
    ab += &tsp_bench::ablation::render(
        "Thread striding vs one-thread-per-pair (n = 4096)",
        &["launch shape", "kernel", "GFLOP/s"],
        &tsp_bench::ablation::striding_variants(4096),
    );
    ab += &tsp_bench::ablation::render(
        "Tile size of the division scheme (n = 20000)",
        &["tile", "kernel", "GFLOP/s"],
        &tsp_bench::ablation::tile_sizes(20_000),
    );
    ab += &tsp_bench::ablation::render(
        "Pivot rule (n = 300)",
        &["rule", "sweeps", "pairs checked", "final length"],
        &tsp_bench::ablation::pivot_rules(300),
    );
    ab += &tsp_bench::ablation::render(
        "Neighbourhood pruning (n = 300)",
        &["neighbourhood", "pairs checked", "final length"],
        &tsp_bench::ablation::pruning_depths(300),
    );
    ab += &tsp_bench::ablation::render(
        "Multi-device scaling (n = 4000)",
        &["fleet", "kernel", "total", "checks/s"],
        &tsp_bench::ablation::multi_device_scaling(4000),
    );
    ab += &tsp_bench::ablation::render(
        "Dense sweeps vs don't-look bits (n = 250)",
        &["algorithm", "checks", "final length"],
        &tsp_bench::ablation::dlb_vs_sweep(250),
    );
    ab += &tsp_bench::ablation::render(
        "Serial Algorithm 2 vs overlapped transfers",
        &["configuration", "total"],
        &tsp_bench::ablation::transfer_overlap(&[200, 1000, 4000]),
    );
    write(out, "ablations.txt", &ab);

    eprintln!("== Scaling (sharded multistart, 32 chains over device pools, n = 96)");
    let sc = tsp_bench::fig_scaling::compute(96, 32, 2, 0x2013);
    write(out, "scaling.txt", &tsp_bench::fig_scaling::render(&sc));
    write(out, "scaling.csv", &tsp_bench::fig_scaling::to_csv(&sc));
    write(
        out,
        "BENCH_scaling.json",
        &tsp_bench::fig_scaling::to_json(&sc),
    );

    eprintln!("== Dense vs candidate-list kernels (modeled + functional)");
    let cm = tsp_bench::fig_candidate::model_rows();
    let cq = tsp_bench::fig_candidate::quality_rows(0x2013);
    write(
        out,
        "candidate.txt",
        &tsp_bench::fig_candidate::render(&cm, &cq),
    );
    write(
        out,
        "candidate.csv",
        &tsp_bench::fig_candidate::to_csv(&cm, &cq),
    );
    write(
        out,
        "BENCH_candidate.json",
        &tsp_bench::fig_candidate::to_json(&cm, &cq),
    );

    eprintln!("== Convergence journals (per kernel strategy, n = 256)");
    let cj = tsp_bench::convergence::compute(256, 8, 0x2013);
    write(out, "convergence.csv", &tsp_bench::convergence::to_csv(&cj));

    eprintln!("== Candidate-vs-dense convergence journal (n = 256)");
    let cc = tsp_bench::fig_candidate::convergence_journals(256, 8, 0x2013);
    write(
        out,
        "candidate_convergence.csv",
        &tsp_bench::convergence::to_csv(&cc),
    );

    eprintln!("== Profiler snapshot (per kernel strategy, n = 96)");
    let pr = tsp_bench::prof::compute(96, 0x2013);
    write(out, "prof.txt", &tsp_bench::prof::render(&pr));
    write(out, "BENCH_prof.json", &tsp_bench::prof::to_json(&pr));

    eprintln!("== Traces (Chrome JSON; load in <https://ui.perfetto.dev>)");
    write(
        out,
        "ils.trace.json",
        &tsp_bench::trace::ils_trace_json(512, 3, 0x2013),
    );
    write(
        out,
        "BENCH_trace.json",
        &tsp_bench::trace::bench_trace_json(150, 0x2013),
    );
    write(
        out,
        "BENCH_metrics.json",
        &tsp_bench::trace::bench_metrics_json(150, 0x2013),
    );

    eprintln!("\nreport complete: {}", out.display());
}
