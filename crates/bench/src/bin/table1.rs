//! Regenerates the paper's Table I (memory needed: LUT vs. coordinates).

fn main() {
    let rows = tsp_bench::table1::compute();
    println!("Table I — 2-opt single run, memory needed\n");
    print!("{}", tsp_bench::table1::render(&rows));
    println!(
        "\nShared-memory capacity check (48 kB): {} cities single-range, {} per tiled range",
        tsp_core::lut::max_cities_in_shared(48 * 1024),
        tsp_core::lut::max_tile_in_shared(48 * 1024),
    );
}
