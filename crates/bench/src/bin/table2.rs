//! Regenerates the paper's Table II (2-opt single-run timings on the
//! GTX 680).
//!
//! Usage: `table2 [max_functional_n] [--csv] [--trace-out <path>]`
//!   max_functional_n — rows up to this size run functionally
//!                      (default 2500; larger rows are model-priced and
//!                      marked `~`).
//!   --trace-out      — write a Chrome-trace JSON of the functional rows
//!                      (load in <https://ui.perfetto.dev>).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_out, args) = tsp_bench::trace::split_trace_out(&args);
    let csv = args.iter().any(|a| a == "--csv");
    let cap: usize = args.iter().find_map(|s| s.parse().ok()).unwrap_or(2500);
    eprintln!("running functional rows up to n = {cap} (argument overrides)...");
    let recorder = tsp_bench::trace::recorder_for(&trace_out);
    let rows = tsp_bench::table2::compute_traced(cap, &recorder);
    if let Some(path) = &trace_out {
        tsp_bench::trace::write_trace(path, &recorder);
    }
    if csv {
        print!("{}", tsp_bench::table2::to_csv(&rows));
        return;
    }
    println!("Table II — 2-opt, time needed for a single run (GTX 680 CUDA model)\n");
    print!("{}", tsp_bench::table2::render(&rows));
    println!("\n`~` marks model-extrapolated time-to-minimum (instance too large for functional execution here).");
}
