//! Shared rendering helpers for the harness binaries.

/// Render a fixed-width text table: `header` then `rows`.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        let mut parts = Vec::with_capacity(cols);
        for (c, cell) in cells.iter().enumerate().take(cols) {
            parts.push(format!("{:>width$}", cell, width = widths[c]));
        }
        out.push_str(&parts.join("  "));
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Format seconds with the unit Table II uses at this magnitude
/// (µs / ms / s / min / h).
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.0} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.1} ms", seconds * 1e3)
    } else if seconds < 120.0 {
        format!("{:.2} s", seconds)
    } else if seconds < 7200.0 {
        format!("{:.1} min", seconds / 60.0)
    } else {
        format!("{:.1} h", seconds / 3600.0)
    }
}

/// Format a (possibly large) count with thousands separators.
pub fn fmt_count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Render a set of named series as a log-x ASCII chart — a terminal
/// stand-in for the paper's figures. `points` are `(x, y)` pairs; all
/// series must share their x values.
pub fn ascii_chart(
    title: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
    height: usize,
    width: usize,
) -> String {
    assert!(!xs.is_empty() && height >= 2 && width >= 8);
    let marks = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let y_max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(f64::MIN, f64::max)
        .max(1e-300);
    let y_min = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(f64::MAX, f64::min)
        .min(y_max);
    let (lx0, lx1) = (
        xs[0].max(1e-300).log10(),
        xs[xs.len() - 1].max(1e-300).log10(),
    );
    let span = (y_max - y_min).max(1e-300);

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        for (i, (&x, &y)) in xs.iter().zip(ys.iter()).enumerate() {
            let _ = i;
            let cx = if lx1 > lx0 {
                ((x.max(1e-300).log10() - lx0) / (lx1 - lx0) * (width - 1) as f64).round() as usize
            } else {
                0
            };
            let cy = ((y - y_min) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = marks[si % marks.len()];
        }
    }

    let mut out = format!("{title}\n");
    out.push_str(&format!("{y_max:>10.0} ┐\n"));
    for row in &grid {
        out.push_str("           │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{y_min:>10.0} ┴"));
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "           {:<width$}\n",
        format!("log x: {} .. {}", xs[0], xs[xs.len() - 1]),
        width = width
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", marks[si % marks.len()], name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_places_extremes_on_edges() {
        let xs = vec![100.0, 1000.0, 10_000.0];
        let s = ascii_chart(
            "t",
            &xs,
            &[
                ("up", vec![0.0, 50.0, 100.0]),
                ("down", vec![100.0, 50.0, 0.0]),
            ],
            8,
            40,
        );
        assert!(s.contains("t\n"));
        assert!(s.contains("* up"));
        assert!(s.contains("o down"));
        // The max label and min label appear.
        assert!(s.contains("100 ┐"));
        assert!(s.contains("0 ┴"));
    }

    #[test]
    fn chart_handles_flat_series() {
        let xs = vec![1.0, 10.0];
        let s = ascii_chart("flat", &xs, &[("c", vec![5.0, 5.0])], 4, 20);
        assert!(s.contains("c"));
    }

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bb"));
        assert!(lines[2].ends_with(" 2"));
    }

    #[test]
    fn time_units_switch_at_magnitudes() {
        assert_eq!(fmt_time(81e-6), "81 us");
        assert_eq!(fmt_time(0.055), "55.0 ms");
        assert_eq!(fmt_time(13.4), "13.40 s");
        assert_eq!(fmt_time(600.0), "10.0 min");
        assert_eq!(fmt_time(9000.0), "2.5 h");
    }

    #[test]
    fn counts_group_thousands() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(2855145), "2,855,145");
    }
}
