//! Convergence journals rendered per kernel strategy.
//!
//! Runs one short GPU ILS chain per [`Strategy`] with a
//! [`tsp_telemetry::Journal`] attached and renders every journal into
//! one CSV keyed by strategy — the `report` binary's
//! `reports/convergence.csv`. Because the modeled pipeline is
//! deterministic and every strategy returns bit-identical moves, the
//! *tour* columns agree across strategies while the modeled-seconds
//! column shows each strategy's cost profile: the journal makes that
//! comparison a one-file plot instead of a scripting exercise.

use gpu_sim::spec;
use tsp_2opt::{GpuTwoOpt, Strategy};
use tsp_core::Tour;
use tsp_ils::{iterated_local_search, IlsOptions};
use tsp_telemetry::{Journal, JournalRecord};
use tsp_tsplib::{generate, Style};

/// The strategies the convergence report sweeps, with stable labels
/// (column key of the CSV).
pub fn strategies() -> Vec<(String, Strategy)> {
    vec![
        ("auto".to_string(), Strategy::Auto),
        ("shared".to_string(), Strategy::Shared),
        ("tiled64".to_string(), Strategy::Tiled { tile: 64 }),
        ("global_only".to_string(), Strategy::GlobalOnly),
        ("device_resident".to_string(), Strategy::DeviceResident),
    ]
}

/// One strategy's journal.
#[derive(Debug, Clone)]
pub struct StrategyJournal {
    /// Stable strategy label.
    pub strategy: String,
    /// The chain's journal records, in emission order.
    pub records: Vec<JournalRecord>,
    /// Final best length (must agree across strategies).
    pub best_length: i64,
}

/// Run one journaled ILS chain per strategy on the same instance,
/// start and seed.
pub fn compute(n: usize, iterations: u64, seed: u64) -> Vec<StrategyJournal> {
    let inst = generate("convergence", n, Style::Clustered { clusters: 8 }, seed);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let start = Tour::random(n, &mut rng);

    strategies()
        .into_iter()
        .map(|(label, strategy)| {
            let journal = Journal::attached();
            let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
            let out = iterated_local_search(
                &mut engine,
                &inst,
                start.clone(),
                IlsOptions::new()
                    .with_max_iterations(iterations)
                    .with_seed(seed)
                    .with_journal(journal.clone()),
            )
            .expect("generated instances are coordinate-based");
            StrategyJournal {
                strategy: label,
                records: journal.records(),
                best_length: out.best_length,
            }
        })
        .collect()
}

/// Render journals as one CSV keyed by strategy.
pub fn to_csv(journals: &[StrategyJournal]) -> String {
    let mut s = String::from(
        "strategy,chain,iteration,event,modeled_seconds,wall_seconds,tour_length,gap_to_best\n",
    );
    for j in journals {
        for r in &j.records {
            s += &format!(
                "{},{},{},{},{},{},{},{}\n",
                j.strategy,
                r.chain,
                r.iteration,
                r.event.as_str(),
                r.modeled_seconds,
                r.wall_seconds,
                r.tour_length,
                r.gap_to_best,
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_telemetry::JournalEvent;

    #[test]
    fn every_strategy_journals_the_same_search() {
        let journals = compute(96, 3, 11);
        assert_eq!(journals.len(), strategies().len());
        let first = &journals[0];
        assert!(!first.records.is_empty());
        for j in &journals {
            // Same search everywhere: identical lengths per record.
            assert_eq!(j.best_length, first.best_length);
            assert_eq!(j.records.len(), first.records.len());
            for (a, b) in j.records.iter().zip(&first.records) {
                assert_eq!(a.iteration, b.iteration);
                assert_eq!(a.tour_length, b.tour_length);
                assert_eq!(a.event, b.event);
            }
            assert_eq!(j.records[0].event, JournalEvent::Initial);
            assert_eq!(j.records.last().unwrap().event, JournalEvent::Final);
        }
        // But the modeled cost differs between e.g. shared and
        // global-only kernels.
        let shared = journals.iter().find(|j| j.strategy == "shared").unwrap();
        let global = journals
            .iter()
            .find(|j| j.strategy == "global_only")
            .unwrap();
        assert_ne!(
            shared.records.last().unwrap().modeled_seconds,
            global.records.last().unwrap().modeled_seconds,
        );
    }

    #[test]
    fn csv_has_one_row_per_record_plus_header() {
        let journals = compute(64, 2, 5);
        let csv = to_csv(&journals);
        let rows: usize = journals.iter().map(|j| j.records.len()).sum();
        assert_eq!(csv.lines().count(), rows + 1);
        assert!(csv.starts_with("strategy,chain,iteration,event,"));
        assert!(csv.contains("\nauto,0,0,initial,"));
    }
}
