//! Bench-snapshot regression diffing.
//!
//! Every `BENCH_*.json` artifact the `report` binary emits is pure
//! JSON with numeric leaves (modeled seconds, GFLOP/s, overlap
//! fractions, scaling ratios, workload counters). [`diff`] flattens
//! two such snapshots into dotted-path/number pairs, compares each
//! shared leaf under a relative tolerance, and classifies the change
//! by a per-key *direction* heuristic — more modeled seconds is a
//! regression, fewer GFLOP/s is a regression, and a change to a
//! deterministic workload counter (bytes, flops, row counts) is
//! flagged no matter the sign, because the modeled pipeline is
//! bit-reproducible and any drift there means the workload itself
//! changed.
//!
//! The `bench_diff` binary wraps this for CI:
//!
//! ```text
//! bench_diff crates/bench/baselines/BENCH_scaling.json reports/BENCH_scaling.json
//! bench_diff --tol 0.02 --tol seconds=0.10 baseline.json current.json
//! bench_diff --advisory baseline.json current.json   # report, exit 0
//! ```
//!
//! Exit status: 0 when clean (or `--advisory`), 1 on any regression or
//! structural mismatch, 2 on usage/IO errors.

use tsp_trace::json::{self, Json};

/// How a numeric leaf is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are regressions (times, shares of overhead).
    HigherIsWorse,
    /// Smaller numbers are regressions (throughput, speedup, overlap).
    LowerIsWorse,
    /// Any drift beyond tolerance is a regression (deterministic
    /// workload counters and configuration echoes).
    AnyChange,
}

/// Classify a leaf by the last segment of its path. The heuristics
/// mirror the vocabulary of the snapshot writers (`fig_scaling`,
/// `MetricsSnapshot::to_json`): timing keys end in `seconds`,
/// throughput keys are `gflops` / `speedup` / `throughput` /
/// `overlap`, everything else is treated as a deterministic counter.
pub fn direction_for(path: &str) -> Direction {
    let leaf = path
        .rsplit('.')
        .next()
        .unwrap_or(path)
        .trim_end_matches(|c: char| c == ']' || c.is_ascii_digit())
        .trim_end_matches('[');
    if leaf.contains("seconds") || leaf.ends_with("share") {
        Direction::HigherIsWorse
    } else if leaf.contains("gflops")
        || leaf.contains("speedup")
        || leaf.contains("throughput")
        || leaf.contains("overlap")
    {
        Direction::LowerIsWorse
    } else {
        Direction::AnyChange
    }
}

/// Relative tolerances: a default plus substring-matched per-path
/// overrides (first match wins, in insertion order).
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Default relative tolerance.
    pub rel: f64,
    /// `(substring, tolerance)` overrides applied to matching paths.
    pub overrides: Vec<(String, f64)>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            rel: 0.05,
            overrides: Vec::new(),
        }
    }
}

impl Tolerances {
    /// The tolerance that applies to `path`.
    pub fn for_path(&self, path: &str) -> f64 {
        self.overrides
            .iter()
            .find(|(needle, _)| path.contains(needle.as_str()))
            .map(|(_, tol)| *tol)
            .unwrap_or(self.rel)
    }
}

/// One compared leaf that moved.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Dotted path of the leaf (`rows[3].wall_seconds`).
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `(current - baseline) / |baseline|` (`inf` off a zero baseline).
    pub rel_change: f64,
    /// Tolerance that applied.
    pub tolerance: f64,
    /// Direction used to judge it.
    pub direction: Direction,
    /// Whether the change counts as a regression.
    pub regression: bool,
}

/// Result of a snapshot comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Leaves whose value moved at all, in path order.
    pub findings: Vec<Finding>,
    /// Leaves present on one side only (always regressions).
    pub structure_errors: Vec<String>,
    /// Numeric leaves compared.
    pub compared: usize,
}

impl DiffReport {
    /// Whether the current snapshot regressed the baseline.
    pub fn has_regressions(&self) -> bool {
        !self.structure_errors.is_empty() || self.findings.iter().any(|f| f.regression)
    }

    /// Human-readable summary (one line per moved leaf).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.structure_errors {
            s += &format!("STRUCTURE  {e}\n");
        }
        for f in &self.findings {
            let pct = if f.rel_change.is_finite() {
                format!("{:+.2}%", 100.0 * f.rel_change)
            } else {
                "new-from-zero".to_string()
            };
            s += &format!(
                "{}  {}  {} -> {}  ({pct}, tol {:.2}%)\n",
                if f.regression {
                    "REGRESSION"
                } else {
                    "ok        "
                },
                f.path,
                f.baseline,
                f.current,
                100.0 * f.tolerance,
            );
        }
        let regressions =
            self.structure_errors.len() + self.findings.iter().filter(|f| f.regression).count();
        s += &format!(
            "{} leaves compared, {} moved, {} regression(s)\n",
            self.compared,
            self.findings.len(),
            regressions,
        );
        s
    }
}

/// Flatten every numeric leaf of `json` into `(path, value)` pairs, in
/// document order. Strings, bools and nulls are ignored (they are
/// labels, not measurements) — except that they still contribute to
/// the path space, so a string-vs-number swap shows up as a missing
/// leaf on one side.
pub fn flatten(json: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(json, String::new(), &mut out);
    out
}

fn walk(json: &Json, path: String, out: &mut Vec<(String, f64)>) {
    match json {
        Json::Num(v) => out.push((path, *v)),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(item, format!("{path}[{i}]"), out);
            }
        }
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(v, child, out);
            }
        }
        Json::Null | Json::Bool(_) | Json::Str(_) => {}
    }
}

/// Compare `current` against `baseline` under `tol`.
pub fn diff(baseline: &Json, current: &Json, tol: &Tolerances) -> DiffReport {
    let base = flatten(baseline);
    let cur = flatten(current);
    let mut report = DiffReport::default();

    let cur_map: std::collections::BTreeMap<&str, f64> =
        cur.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let base_paths: std::collections::BTreeSet<&str> =
        base.iter().map(|(p, _)| p.as_str()).collect();

    for (path, b) in &base {
        let Some(&c) = cur_map.get(path.as_str()) else {
            report
                .structure_errors
                .push(format!("{path}: present in baseline, missing in current"));
            continue;
        };
        report.compared += 1;
        if b == &c || (b.is_nan() && c.is_nan()) {
            continue;
        }
        let rel_change = if *b == 0.0 {
            if c == 0.0 {
                0.0
            } else {
                f64::INFINITY * c.signum()
            }
        } else {
            (c - b) / b.abs()
        };
        let tolerance = tol.for_path(path);
        let direction = direction_for(path);
        let regression = match direction {
            Direction::HigherIsWorse => rel_change > tolerance,
            Direction::LowerIsWorse => rel_change < -tolerance,
            Direction::AnyChange => rel_change.abs() > tolerance,
        };
        report.findings.push(Finding {
            path: path.clone(),
            baseline: *b,
            current: c,
            rel_change,
            tolerance,
            direction,
            regression,
        });
    }
    for (path, _) in &cur {
        if !base_paths.contains(path.as_str()) {
            report
                .structure_errors
                .push(format!("{path}: missing in baseline, present in current"));
        }
    }
    report
}

/// Parse both files and diff them. Returns `Err` with a message on
/// IO/parse failures (the binary maps this to exit code 2).
pub fn diff_files(baseline: &str, current: &str, tol: &Tolerances) -> Result<DiffReport, String> {
    let read = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
    };
    Ok(diff(&read(baseline)?, &read(current)?, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaling_like(wall: f64, gflops: f64) -> Json {
        let mut row = Json::obj();
        row.set("devices", Json::from(2.0))
            .set("wall_seconds", Json::from(wall))
            .set("gflops", Json::from(gflops))
            .set("overlap", Json::from(0.5));
        let mut root = Json::obj();
        root.set("experiment", Json::from("x"))
            .set("rows", Json::Arr(vec![row]));
        root
    }

    #[test]
    fn identical_snapshots_are_clean() {
        let a = scaling_like(1.0, 100.0);
        let report = diff(&a, &a, &Tolerances::default());
        assert!(!report.has_regressions());
        assert!(report.findings.is_empty());
        assert_eq!(report.compared, 4);
    }

    #[test]
    fn ten_percent_slowdown_fails_the_default_tolerance() {
        let base = scaling_like(1.0, 100.0);
        let slow = scaling_like(1.1, 100.0);
        let report = diff(&base, &slow, &Tolerances::default());
        assert!(report.has_regressions());
        let f = &report.findings[0];
        assert_eq!(f.path, "rows[0].wall_seconds");
        assert_eq!(f.direction, Direction::HigherIsWorse);
        assert!((f.rel_change - 0.1).abs() < 1e-12);
    }

    #[test]
    fn speedups_regress_downward_only() {
        let base = scaling_like(1.0, 100.0);
        let faster = scaling_like(1.0, 130.0); // +30% GFLOP/s: fine
        assert!(!diff(&base, &faster, &Tolerances::default()).has_regressions());
        let slower = scaling_like(1.0, 80.0); // -20% GFLOP/s: regression
        let report = diff(&base, &slower, &Tolerances::default());
        assert!(report.has_regressions());
        assert_eq!(report.findings[0].direction, Direction::LowerIsWorse);
    }

    #[test]
    fn counter_drift_flags_in_either_direction() {
        let mut base = Json::obj();
        base.set("flops", Json::from(1000.0));
        let mut fewer = Json::obj();
        fewer.set("flops", Json::from(800.0));
        let report = diff(&base, &fewer, &Tolerances::default());
        assert!(report.has_regressions());
        assert_eq!(report.findings[0].direction, Direction::AnyChange);
    }

    #[test]
    fn overrides_take_precedence_over_the_default() {
        let base = scaling_like(1.0, 100.0);
        let slow = scaling_like(1.1, 100.0);
        let tol = Tolerances {
            rel: 0.05,
            overrides: vec![("wall_seconds".into(), 0.25)],
        };
        assert!(!diff(&base, &slow, &tol).has_regressions());
    }

    #[test]
    fn structural_mismatch_is_a_regression() {
        let base = scaling_like(1.0, 100.0);
        let mut cur = Json::obj();
        cur.set("experiment", Json::from("x"))
            .set("rows", Json::Arr(vec![]));
        let report = diff(&base, &cur, &Tolerances::default());
        assert!(report.has_regressions());
        assert_eq!(report.structure_errors.len(), 4);
        let text = report.render();
        assert!(text.contains("STRUCTURE"));
    }
}
