//! Fig. 10 — speedup of the GPU devices over the parallel CPU baseline
//! (2 × Xeon E5-2660, Intel OpenCL), per problem size; plus the paper's
//! two headline claims:
//!
//! * abstract/§VI: a single 2-opt pass is "approximately 5 to 45 times"
//!   faster than the parallel CPU implementation using 6 cores;
//! * §I: the optimization converges "up to 300 times faster compared to
//!   the sequential CPU version".

use crate::common::render_table;
use gpu_sim::{spec, DeviceSpec};
use tsp_2opt::cpu_model::model_cpu_sweep_seconds;
use tsp_2opt::gpu::model::model_auto_sweep;
use tsp_2opt::indexing::pair_count;

/// Problem sizes swept.
pub const SIZES: &[usize] = &[
    100, 200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000,
];

/// One device's speedup curve vs. the Xeon baseline.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Device name.
    pub device: String,
    /// Speedup at each entry of [`SIZES`].
    pub speedup: Vec<f64>,
}

/// Modeled end-to-end sweep time (kernel + transfers) for a GPU device.
fn gpu_total(s: &DeviceSpec, n: usize) -> f64 {
    model_auto_sweep(s, n).total_seconds()
}

/// Modeled sweep time for a CPU device.
fn cpu_total(s: &DeviceSpec, n: usize) -> f64 {
    model_cpu_sweep_seconds(s, pair_count(n))
}

/// Compute the four curves of Fig. 10.
pub fn compute() -> Vec<Curve> {
    let xeon = spec::xeon_e5_2660_x2();
    spec::fig10_devices()
        .into_iter()
        .map(|s| Curve {
            speedup: SIZES
                .iter()
                .map(|&n| cpu_total(&xeon, n) / gpu_total(&s, n))
                .collect(),
            device: s.name,
        })
        .collect()
}

/// The abstract's claim: single-sweep speedup of the GTX 680 over the
/// 6-core host CPU, at the extremes of the size sweep. The small end is
/// transfer-bound (the GPU can even lose below n ≈ 500, matching the
/// paper's own small-instance caveat); the large end lands in the
/// claimed 45x region.
pub fn claim_5_to_45x() -> (f64, f64) {
    let gpu = spec::gtx_680_cuda();
    let host = spec::core_i7_3960x();
    let lo = cpu_total(&host, *SIZES.first().unwrap()) / gpu_total(&gpu, *SIZES.first().unwrap());
    let hi = SIZES
        .iter()
        .map(|&n| cpu_total(&host, n) / gpu_total(&gpu, n))
        .fold(f64::MIN, f64::max);
    (lo, hi)
}

/// The §I claim: sweep-rate ratio of the GPU over the *sequential* CPU
/// at large sizes (convergence is sweep-bound, so the per-sweep ratio is
/// the convergence ratio).
pub fn claim_up_to_300x() -> f64 {
    let gpu = spec::gtx_680_cuda();
    let seq = spec::sequential_cpu();
    SIZES
        .iter()
        .map(|&n| cpu_total(&seq, n) / gpu_total(&gpu, n))
        .fold(f64::MIN, f64::max)
}

/// Render as CSV for external plotting.
pub fn to_csv(curves: &[Curve]) -> String {
    let mut out = String::from("problem_size");
    for c in curves {
        out.push(',');
        out.push_str(&c.device.replace(',', ";"));
    }
    out.push('\n');
    for (i, &n) in SIZES.iter().enumerate() {
        out.push_str(&n.to_string());
        for c in curves {
            out.push_str(&format!(",{:.3}", c.speedup[i]));
        }
        out.push('\n');
    }
    out
}

/// Render as a sizes × devices table plus the claims.
pub fn render(curves: &[Curve]) -> String {
    let mut header: Vec<String> = vec!["Problem size".into()];
    header.extend(curves.iter().map(|c| c.device.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let body: Vec<Vec<String>> = SIZES
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut row = vec![n.to_string()];
            row.extend(curves.iter().map(|c| format!("{:.1}x", c.speedup[i])));
            row
        })
        .collect();
    let mut out = render_table(&header_refs, &body);
    let (lo, hi) = claim_5_to_45x();
    out.push_str(&format!(
        "\nPaper claim check — 2-opt pass vs 6-core host CPU: {lo:.1}x (small) .. {hi:.1}x (large); paper says 5..45x\n"
    ));
    out.push_str(&format!(
        "Paper claim check — vs sequential CPU: up to {:.0}x; paper says up to 300x\n",
        claim_up_to_300x()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_grow_with_problem_size() {
        for c in compute() {
            let first = c.speedup[0];
            let last = *c.speedup.last().unwrap();
            assert!(
                last > first * 2.0,
                "{}: speedup should grow, {first} -> {last}",
                c.device
            );
        }
    }

    #[test]
    fn asymptotic_speedup_in_paper_band() {
        // Fig. 10 tops out around 30-45x for the fastest devices vs the
        // dual Xeon.
        let curves = compute();
        for c in &curves {
            let last = *c.speedup.last().unwrap();
            assert!(
                (10.0..60.0).contains(&last),
                "{}: asymptotic speedup {last}",
                c.device
            );
        }
        // The 7970 GHz Edition leads, as in the paper's legend order.
        let ghz = curves
            .iter()
            .find(|c| c.device.contains("GHz"))
            .unwrap()
            .speedup
            .last()
            .copied()
            .unwrap();
        for c in &curves {
            assert!(ghz >= *c.speedup.last().unwrap() - 1e-9, "{}", c.device);
        }
    }

    #[test]
    fn headline_claims_hold() {
        let (lo, hi) = claim_5_to_45x();
        // At the smallest sizes the GPU is transfer/latency-bound and
        // loses to the CPU — the paper's own caveat ("does not give any
        // substantial speedup ... smaller than 200"); the 5..45x band is
        // about where the GPU is actually loaded.
        assert!(lo < 5.0, "small-size speedup {lo}");
        assert!((30.0..55.0).contains(&hi), "large-size speedup {hi}");
        let seq = claim_up_to_300x();
        assert!((150.0..400.0).contains(&seq), "sequential ratio {seq}");
    }

    #[test]
    fn csv_has_all_rows() {
        let csv = to_csv(&compute());
        assert_eq!(csv.lines().count(), SIZES.len() + 1);
    }

    #[test]
    fn small_sizes_show_little_gpu_advantage() {
        // §V: "the GPU ILS version does not give any substantial speedup
        // ... in case of small problems". At n=100 the GPU's fixed
        // overheads keep the edge modest.
        let curves = compute();
        for c in &curves {
            assert!(c.speedup[0] < 15.0, "{}: {}", c.device, c.speedup[0]);
        }
    }
}
