//! Fig. 11 — Iterated Local Search convergence speed with the GPU 2-opt
//! versus the CPU implementations (the paper plots sw24978; the harness
//! defaults to a scaled-down clustered stand-in so the functional run
//! finishes in seconds, `--n 24978` reproduces the full size).
//!
//! The paper's setup: "the initial solution s0 is a random tour. We used
//! a simple double-bridge move as a perturbation technique."

use crate::common::{fmt_time, render_table};
use gpu_sim::spec;
use tsp_2opt::{GpuTwoOpt, SequentialTwoOpt};
use tsp_core::Tour;
use tsp_ils::{iterated_local_search, IlsOptions, TracePoint};
use tsp_trace::Recorder;
use tsp_tsplib::{generate, Style};

/// Result of the convergence experiment.
#[derive(Debug)]
pub struct Convergence {
    /// Instance size.
    pub n: usize,
    /// GPU trace (modeled seconds, best length).
    pub gpu: Vec<TracePoint>,
    /// Sequential-CPU trace.
    pub cpu: Vec<TracePoint>,
    /// Convergence-speed ratio: modeled CPU time to reach the GPU's
    /// final quality, divided by the GPU's modeled time to reach it.
    pub speedup_to_quality: f64,
}

/// Modeled time at which `trace` first reaches `target` length
/// (`None` if it never does).
pub fn time_to_reach(trace: &[TracePoint], target: i64) -> Option<f64> {
    trace
        .iter()
        .find(|p| p.best_length <= target)
        .map(|p| p.modeled_seconds)
}

/// Run the experiment: same instance, same seed, same iteration budget,
/// GPU engine vs. sequential CPU engine.
pub fn compute(n: usize, iterations: u64, seed: u64) -> Convergence {
    compute_traced(n, iterations, seed, &Recorder::disabled())
}

/// [`compute`] with a [`Recorder`] attached to the GPU run (kernel,
/// transfer and ILS telemetry); the CPU baseline stays untraced so the
/// trace shows exactly one engine's timeline.
pub fn compute_traced(n: usize, iterations: u64, seed: u64, recorder: &Recorder) -> Convergence {
    // Clustered points mirror the sw (Sweden) road-network instance.
    let inst = generate("fig11", n, Style::Clustered { clusters: 24 }, seed);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let start = Tour::random(n, &mut rng);

    let opts = IlsOptions::new()
        .with_max_iterations(iterations)
        .with_seed(seed);
    let gpu_opts = opts.clone().with_recorder(recorder.clone());
    let mut gpu_engine = GpuTwoOpt::new(spec::gtx_680_cuda()).with_recorder(recorder.clone());
    let gpu = iterated_local_search(&mut gpu_engine, &inst, start.clone(), gpu_opts)
        .expect("generated instances are coordinate-based");
    let mut cpu_engine = SequentialTwoOpt::new();
    let cpu = iterated_local_search(&mut cpu_engine, &inst, start, opts)
        .expect("generated instances are coordinate-based");

    // Both runs apply identical move sequences (engines agree
    // bit-for-bit and share the perturbation seed), so quality curves
    // coincide and only the time axis differs.
    let target = gpu.best_length.max(cpu.best_length);
    let t_gpu = time_to_reach(&gpu.trace, target).unwrap_or(f64::INFINITY);
    let t_cpu = time_to_reach(&cpu.trace, target).unwrap_or(f64::INFINITY);
    Convergence {
        n,
        gpu: gpu.trace,
        cpu: cpu.trace,
        speedup_to_quality: t_cpu / t_gpu,
    }
}

/// Render both traces as CSV (engine, iteration, modeled seconds, length).
pub fn to_csv(c: &Convergence) -> String {
    let mut out = String::from("engine,iteration,modeled_seconds,best_length\n");
    for (name, trace) in [("gpu", &c.gpu), ("cpu_sequential", &c.cpu)] {
        for p in trace {
            out.push_str(&format!(
                "{},{},{:.9},{}\n",
                name, p.iteration, p.modeled_seconds, p.best_length
            ));
        }
    }
    out
}

/// Render both traces side by side.
pub fn render(c: &Convergence) -> String {
    let mut out = format!(
        "ILS convergence, n = {} (random start, double-bridge perturbation)\n\n",
        c.n
    );
    let rows: Vec<Vec<String>> = c
        .gpu
        .iter()
        .map(|p| {
            vec![
                p.iteration.to_string(),
                fmt_time(p.modeled_seconds),
                p.best_length.to_string(),
            ]
        })
        .collect();
    out.push_str("GPU (GTX 680 CUDA):\n");
    out.push_str(&render_table(
        &["iter", "modeled time", "best length"],
        &rows,
    ));
    let rows: Vec<Vec<String>> = c
        .cpu
        .iter()
        .map(|p| {
            vec![
                p.iteration.to_string(),
                fmt_time(p.modeled_seconds),
                p.best_length.to_string(),
            ]
        })
        .collect();
    out.push_str("\nSequential CPU:\n");
    out.push_str(&render_table(
        &["iter", "modeled time", "best length"],
        &rows,
    ));
    out.push_str(&format!(
        "\nConvergence speedup to final quality: {:.0}x (paper: up to 300x at n = 24978)\n",
        c.speedup_to_quality
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_converges_much_faster_at_mid_size() {
        let c = compute(400, 15, 42);
        assert!(!c.gpu.is_empty() && !c.cpu.is_empty());
        // Identical quality curves (same engines' moves, same seed).
        assert_eq!(
            c.gpu.last().unwrap().best_length,
            c.cpu.last().unwrap().best_length
        );
        // Modeled GPU time is well below modeled sequential-CPU time;
        // the advantage grows with n (the paper's 300x is at n = 24978).
        assert!(
            c.speedup_to_quality > 5.0,
            "speedup {}",
            c.speedup_to_quality
        );
        let small = compute(80, 5, 42);
        assert!(
            small.speedup_to_quality < c.speedup_to_quality,
            "advantage must grow with n: {} vs {}",
            small.speedup_to_quality,
            c.speedup_to_quality
        );
    }

    #[test]
    fn small_instances_show_little_advantage() {
        // §V: "the GPU ILS version does not give any substantial speedup
        // over the CPU implementation in case of small problems (smaller
        // than 200)".
        let c = compute(60, 10, 7);
        assert!(
            c.speedup_to_quality < 10.0,
            "speedup {} should be modest at n=60",
            c.speedup_to_quality
        );
    }

    #[test]
    fn csv_covers_both_traces() {
        let c = compute(120, 5, 1);
        let csv = to_csv(&c);
        assert_eq!(csv.lines().count(), 1 + c.gpu.len() + c.cpu.len());
        assert!(csv.contains("cpu_sequential"));
    }

    #[test]
    fn traces_improve_monotonically() {
        let c = compute(200, 10, 3);
        for trace in [&c.gpu, &c.cpu] {
            for w in trace.windows(2) {
                assert!(w[0].best_length > w[1].best_length);
                assert!(w[0].modeled_seconds <= w[1].modeled_seconds);
            }
        }
    }
}
