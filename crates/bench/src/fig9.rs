//! Fig. 9 — "GFLOP/s (distance calculation) observed during the run" for
//! all eight devices across problem sizes.
//!
//! GPU devices are priced through the exact analytic kernel model; CPU
//! devices through the same roofline with their CPU specs (the paper's
//! CPU baselines are OpenCL targets of the same kernel).

use crate::common::render_table;
use gpu_sim::{spec, DeviceKind, DeviceSpec};
use tsp::TspError;
use tsp_2opt::cpu_model::model_cpu_sweep_seconds;
use tsp_2opt::delta::FLOPS_PER_CHECK;
use tsp_2opt::gpu::model::model_auto_sweep;
use tsp_2opt::indexing::pair_count;

/// Problem sizes swept (log-spaced like the paper's x-axis).
pub const SIZES: &[usize] = &[
    100, 200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000,
];

/// One device's curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Device name.
    pub device: String,
    /// GFLOP/s at each entry of [`SIZES`].
    pub gflops: Vec<f64>,
}

/// Modeled GFLOP/s of one sweep on one device.
pub fn device_gflops(spec: &DeviceSpec, n: usize) -> f64 {
    match spec.kind {
        DeviceKind::Gpu => model_auto_sweep(spec, n).gflops(),
        DeviceKind::Cpu => {
            let pairs = pair_count(n);
            let t = model_cpu_sweep_seconds(spec, pairs);
            if t <= 0.0 {
                0.0
            } else {
                (pairs * FLOPS_PER_CHECK) as f64 / t / 1e9
            }
        }
    }
}

/// Compute all eight curves.
pub fn compute() -> Vec<Curve> {
    spec::fig9_devices()
        .into_iter()
        .map(|s| Curve {
            gflops: SIZES.iter().map(|&n| device_gflops(&s, n)).collect(),
            device: s.name,
        })
        .collect()
}

/// Render as CSV (one row per size, one column per device) for
/// external plotting.
pub fn to_csv(curves: &[Curve]) -> String {
    let mut out = String::from("problem_size");
    for c in curves {
        out.push(',');
        out.push_str(&c.device.replace(',', ";"));
    }
    out.push('\n');
    for (i, &n) in SIZES.iter().enumerate() {
        out.push_str(&n.to_string());
        for c in curves {
            out.push_str(&format!(",{:.2}", c.gflops[i]));
        }
        out.push('\n');
    }
    out
}

/// Parse a [`to_csv`] document back into `(sizes, curves)`.
///
/// Truncated or malformed input — a missing header, a ragged row, a
/// non-numeric cell — is a [`TspError::Parse`], never a panic, so
/// external plotting pipelines that feed edited CSVs back in get a
/// diagnostic instead of aborting the harness.
pub fn from_csv(text: &str) -> Result<(Vec<usize>, Vec<Curve>), TspError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| TspError::Parse("fig9 CSV is empty: missing header row".into()))?;
    let mut cols = header.split(',');
    match cols.next() {
        Some("problem_size") => {}
        other => {
            return Err(TspError::Parse(format!(
                "fig9 CSV header must start with \"problem_size\", got {other:?}"
            )))
        }
    }
    let mut curves: Vec<Curve> = cols
        .map(|device| Curve {
            device: device.to_string(),
            gflops: Vec::new(),
        })
        .collect();
    if curves.is_empty() {
        return Err(TspError::Parse(
            "fig9 CSV header names no device columns".into(),
        ));
    }
    let mut sizes = Vec::new();
    let ncols = curves.len();
    for (i, line) in lines.enumerate() {
        let row = i + 2; // 1-based, after the header
        let mut cells = line.split(',');
        let size = cells
            .next()
            .expect("split yields at least one cell")
            .parse::<usize>()
            .map_err(|e| TspError::Parse(format!("fig9 CSV row {row}: bad problem size: {e}")))?;
        sizes.push(size);
        for curve in &mut curves {
            let cell = cells.next().ok_or_else(|| {
                TspError::Parse(format!(
                    "fig9 CSV row {row} is truncated: expected {ncols} device cells"
                ))
            })?;
            let gflops = cell.parse::<f64>().map_err(|e| {
                TspError::Parse(format!(
                    "fig9 CSV row {row}, device {:?}: bad GFLOP/s cell {cell:?}: {e}",
                    curve.device
                ))
            })?;
            curve.gflops.push(gflops);
        }
        if cells.next().is_some() {
            return Err(TspError::Parse(format!(
                "fig9 CSV row {row} has more cells than the header has columns"
            )));
        }
    }
    Ok((sizes, curves))
}

/// Render as a sizes × devices table.
pub fn render(curves: &[Curve]) -> String {
    let mut header: Vec<String> = vec!["Problem size".into()];
    header.extend(curves.iter().map(|c| c.device.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let body: Vec<Vec<String>> = SIZES
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut row = vec![n.to_string()];
            row.extend(curves.iter().map(|c| format!("{:.0}", c.gflops[i])));
            row
        })
        .collect();
    render_table(&header_refs, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve<'a>(curves: &'a [Curve], pat: &str) -> &'a Curve {
        curves
            .iter()
            .find(|c| c.device.contains(pat))
            .unwrap_or_else(|| panic!("no device matching {pat}"))
    }

    #[test]
    fn peak_values_match_paper_observations() {
        let curves = compute();
        // §V: 680 GFLOP/s GTX 680 CUDA, 830 GFLOP/s Radeon 7970.
        let gtx = curve(&curves, "GTX 680 (CUDA)")
            .gflops
            .last()
            .copied()
            .unwrap();
        assert!((600.0..760.0).contains(&gtx), "GTX peak {gtx}");
        let radeon = curve(&curves, "7970 (OpenCL)")
            .gflops
            .last()
            .copied()
            .unwrap();
        assert!((740.0..920.0).contains(&radeon), "Radeon peak {radeon}");
    }

    #[test]
    fn gpu_curves_rise_with_size_cpu_curves_stay_flat() {
        let curves = compute();
        let gtx = curve(&curves, "GTX 680 (CUDA)");
        assert!(gtx.gflops[0] < gtx.gflops[4]);
        assert!(gtx.gflops[4] < *gtx.gflops.last().unwrap());
        let xeon = curve(&curves, "Xeon");
        let spread =
            xeon.gflops.iter().cloned().fold(f64::MIN, f64::max) / xeon.gflops[2].max(1e-9);
        assert!(spread < 1.5, "CPU curve should be nearly flat: {spread}");
    }

    #[test]
    fn device_ordering_matches_fig9_legend() {
        // At the largest size: 7970 GHz > 7970 > GTX680 CUDA > GTX680
        // OpenCL > 6990 > 5970 > CPUs.
        let curves = compute();
        let last = |pat: &str| *curve(&curves, pat).gflops.last().unwrap();
        assert!(last("GHz Edition") > last("7970 (OpenCL)"));
        assert!(last("7970 (OpenCL)") > last("GTX 680 (CUDA)"));
        assert!(last("GTX 680 (CUDA)") > last("GTX 680 (OpenCL)"));
        assert!(last("GTX 680 (OpenCL)") > last("6990"));
        assert!(last("6990") > last("5970"));
        assert!(last("5970") > last("Xeon"));
        assert!(last("Xeon") > last("Opteron") * 0.5); // both CPUs low
    }

    #[test]
    fn render_has_all_sizes() {
        let s = render(&compute());
        for n in SIZES {
            assert!(s.contains(&n.to_string()));
        }
    }

    #[test]
    fn csv_is_rectangular() {
        let curves = compute();
        let csv = to_csv(&curves);
        // The parser enforces rectangularity (every row exactly one
        // size cell plus one cell per device column).
        let (sizes, parsed) = from_csv(&csv).expect("writer output must parse");
        assert_eq!(sizes, SIZES);
        assert_eq!(parsed.len(), curves.len());
        for (p, c) in parsed.iter().zip(&curves) {
            assert_eq!(p.device, c.device.replace(',', ";"));
            assert_eq!(p.gflops.len(), SIZES.len());
            for (&a, &b) in p.gflops.iter().zip(&c.gflops) {
                // Cells are written with two decimals.
                assert!((a - b).abs() <= 0.005 + 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn truncated_csv_is_a_parse_error_not_a_panic() {
        use tsp::TspError;
        let full = to_csv(&compute());

        // Empty input: the old `lines.next().unwrap()` panicked here.
        let err = from_csv("").unwrap_err();
        assert!(matches!(err, TspError::Parse(_)), "{err}");
        assert!(err.to_string().starts_with("parse error:"), "{err}");

        // Wrong header.
        assert!(from_csv("n,GTX\n100,1.0\n").is_err());
        // Header with no device columns.
        assert!(from_csv("problem_size\n").is_err());

        // A row cut off mid-line.
        let cut = &full[..full.find('\n').unwrap() + 20];
        let err = from_csv(cut).unwrap_err();
        assert!(err.to_string().contains("row 2"), "{err}");

        // A non-numeric cell.
        let bad = full.replacen("100,", "hundred,", 1);
        assert!(from_csv(&bad).is_err());

        // An extra cell.
        let mut lines: Vec<String> = full.lines().map(String::from).collect();
        lines[1].push_str(",9.99");
        assert!(from_csv(&lines.join("\n")).is_err());
    }
}
