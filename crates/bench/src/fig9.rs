//! Fig. 9 — "GFLOP/s (distance calculation) observed during the run" for
//! all eight devices across problem sizes.
//!
//! GPU devices are priced through the exact analytic kernel model; CPU
//! devices through the same roofline with their CPU specs (the paper's
//! CPU baselines are OpenCL targets of the same kernel).

use crate::common::render_table;
use gpu_sim::{spec, DeviceKind, DeviceSpec};
use tsp_2opt::cpu_model::model_cpu_sweep_seconds;
use tsp_2opt::delta::FLOPS_PER_CHECK;
use tsp_2opt::gpu::model::model_auto_sweep;
use tsp_2opt::indexing::pair_count;

/// Problem sizes swept (log-spaced like the paper's x-axis).
pub const SIZES: &[usize] = &[
    100, 200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000,
];

/// One device's curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Device name.
    pub device: String,
    /// GFLOP/s at each entry of [`SIZES`].
    pub gflops: Vec<f64>,
}

/// Modeled GFLOP/s of one sweep on one device.
pub fn device_gflops(spec: &DeviceSpec, n: usize) -> f64 {
    match spec.kind {
        DeviceKind::Gpu => model_auto_sweep(spec, n).gflops(),
        DeviceKind::Cpu => {
            let pairs = pair_count(n);
            let t = model_cpu_sweep_seconds(spec, pairs);
            if t <= 0.0 {
                0.0
            } else {
                (pairs * FLOPS_PER_CHECK) as f64 / t / 1e9
            }
        }
    }
}

/// Compute all eight curves.
pub fn compute() -> Vec<Curve> {
    spec::fig9_devices()
        .into_iter()
        .map(|s| Curve {
            gflops: SIZES.iter().map(|&n| device_gflops(&s, n)).collect(),
            device: s.name,
        })
        .collect()
}

/// Render as CSV (one row per size, one column per device) for
/// external plotting.
pub fn to_csv(curves: &[Curve]) -> String {
    let mut out = String::from("problem_size");
    for c in curves {
        out.push(',');
        out.push_str(&c.device.replace(',', ";"));
    }
    out.push('\n');
    for (i, &n) in SIZES.iter().enumerate() {
        out.push_str(&n.to_string());
        for c in curves {
            out.push_str(&format!(",{:.2}", c.gflops[i]));
        }
        out.push('\n');
    }
    out
}

/// Render as a sizes × devices table.
pub fn render(curves: &[Curve]) -> String {
    let mut header: Vec<String> = vec!["Problem size".into()];
    header.extend(curves.iter().map(|c| c.device.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let body: Vec<Vec<String>> = SIZES
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut row = vec![n.to_string()];
            row.extend(curves.iter().map(|c| format!("{:.0}", c.gflops[i])));
            row
        })
        .collect();
    render_table(&header_refs, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve<'a>(curves: &'a [Curve], pat: &str) -> &'a Curve {
        curves
            .iter()
            .find(|c| c.device.contains(pat))
            .unwrap_or_else(|| panic!("no device matching {pat}"))
    }

    #[test]
    fn peak_values_match_paper_observations() {
        let curves = compute();
        // §V: 680 GFLOP/s GTX 680 CUDA, 830 GFLOP/s Radeon 7970.
        let gtx = curve(&curves, "GTX 680 (CUDA)")
            .gflops
            .last()
            .copied()
            .unwrap();
        assert!((600.0..760.0).contains(&gtx), "GTX peak {gtx}");
        let radeon = curve(&curves, "7970 (OpenCL)")
            .gflops
            .last()
            .copied()
            .unwrap();
        assert!((740.0..920.0).contains(&radeon), "Radeon peak {radeon}");
    }

    #[test]
    fn gpu_curves_rise_with_size_cpu_curves_stay_flat() {
        let curves = compute();
        let gtx = curve(&curves, "GTX 680 (CUDA)");
        assert!(gtx.gflops[0] < gtx.gflops[4]);
        assert!(gtx.gflops[4] < *gtx.gflops.last().unwrap());
        let xeon = curve(&curves, "Xeon");
        let spread =
            xeon.gflops.iter().cloned().fold(f64::MIN, f64::max) / xeon.gflops[2].max(1e-9);
        assert!(spread < 1.5, "CPU curve should be nearly flat: {spread}");
    }

    #[test]
    fn device_ordering_matches_fig9_legend() {
        // At the largest size: 7970 GHz > 7970 > GTX680 CUDA > GTX680
        // OpenCL > 6990 > 5970 > CPUs.
        let curves = compute();
        let last = |pat: &str| *curve(&curves, pat).gflops.last().unwrap();
        assert!(last("GHz Edition") > last("7970 (OpenCL)"));
        assert!(last("7970 (OpenCL)") > last("GTX 680 (CUDA)"));
        assert!(last("GTX 680 (CUDA)") > last("GTX 680 (OpenCL)"));
        assert!(last("GTX 680 (OpenCL)") > last("6990"));
        assert!(last("6990") > last("5970"));
        assert!(last("5970") > last("Xeon"));
        assert!(last("Xeon") > last("Opteron") * 0.5); // both CPUs low
    }

    #[test]
    fn render_has_all_sizes() {
        let s = render(&compute());
        for n in SIZES {
            assert!(s.contains(&n.to_string()));
        }
    }

    #[test]
    fn csv_is_rectangular() {
        let curves = compute();
        let csv = to_csv(&curves);
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        assert_eq!(header_cols, curves.len() + 1);
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), header_cols, "{line}");
            rows += 1;
        }
        assert_eq!(rows, SIZES.len());
    }
}
