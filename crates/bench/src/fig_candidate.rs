//! Dense sweep vs the candidate-list (k-NN + don't-look bits) sweep —
//! the §VII "neighborhood pruning" follow-on, measured on both axes.
//!
//! Two panels, one JSON document (`BENCH_candidate.json`):
//!
//! * **Modeled cost** — per-sweep seconds from the analytic timing
//!   model at paper-relevant sizes. The dense column is the better of
//!   the auto-dispatched re-upload pipeline and the device-resident
//!   steady state; the candidate columns are a cold (all-active) sweep
//!   of [`model_candidate_sweep`] and its list-resident variant. This
//!   is where the O(n·k) sweep earns its keep: the speedup column must
//!   clear 10× at n = 10⁵.
//! * **Functional quality** — full descents from the same
//!   Multiple-Fragment start, dense [`Strategy::DeviceResident`] vs
//!   [`Strategy::Candidate`], at sizes the functional simulator
//!   handles comfortably. Pins the quality gap the candidate search
//!   trades for its asymptotics, and the pair-count reduction that
//!   pays for it.
//!
//! [`model_candidate_sweep`]: tsp_2opt::gpu::model_candidate_sweep
//! [`Strategy::DeviceResident`]: tsp_2opt::Strategy::DeviceResident
//! [`Strategy::Candidate`]: tsp_2opt::Strategy::Candidate

use crate::common::render_table;
use crate::convergence::StrategyJournal;
use gpu_sim::spec;
use tsp_2opt::gpu::model::{
    model_auto_sweep, model_candidate_resident_sweep, model_candidate_sweep,
    model_device_resident_sweep,
};
use tsp_2opt::{optimize, GpuTwoOpt, SearchOptions, Strategy};
use tsp_construction::multiple_fragment;
use tsp_ils::{iterated_local_search, IlsOptions};
use tsp_telemetry::Journal;
use tsp_trace::json::Json;
use tsp_tsplib::{generate, Style};

/// Neighbours per city in every candidate column.
pub const K: usize = 16;

/// Instance sizes of the modeled-cost panel.
pub const MODELED_NS: &[usize] = &[1_000, 10_000, 100_000];

/// Instance sizes of the functional-quality panel (debug-build
/// affordable: the dense descent is O(n²) per sweep).
pub const QUALITY_NS: &[usize] = &[256, 512];

/// One modeled-cost row: per-sweep seconds at size `n`.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Instance size.
    pub n: usize,
    /// Candidate-list width.
    pub k: usize,
    /// Best dense per-sweep total (auto vs device-resident steady
    /// state), seconds.
    pub dense_seconds: f64,
    /// Cold candidate sweep (all cities active, lists uploaded),
    /// seconds.
    pub candidate_seconds: f64,
    /// List-resident candidate sweep, seconds.
    pub candidate_resident_seconds: f64,
    /// `dense_seconds / candidate_resident_seconds`.
    pub speedup: f64,
}

/// One functional-quality row: full descents from the same MF start.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Instance size.
    pub n: usize,
    /// Spatial structure ("uniform" / "clustered").
    pub style: String,
    /// Dense device-resident final length.
    pub dense_length: i64,
    /// Candidate (k = [`K`]) final length.
    pub candidate_length: i64,
    /// `(candidate - dense) / dense`, percent (can be negative: the
    /// two searches descend different move sequences).
    pub gap_percent: f64,
    /// Pairs the dense descent checked.
    pub dense_pairs: u64,
    /// Pairs the candidate descent checked.
    pub candidate_pairs: u64,
}

/// The modeled-cost panel over [`MODELED_NS`].
pub fn model_rows() -> Vec<ModelRow> {
    let spec = spec::gtx_680_cuda();
    MODELED_NS
        .iter()
        .map(|&n| {
            let auto = model_auto_sweep(&spec, n).total_seconds();
            let resident = model_device_resident_sweep(&spec, n, n / 2).total_seconds();
            let dense = auto.min(resident);
            let cand = model_candidate_sweep(&spec, n, K, n).total_seconds();
            let cand_res = model_candidate_resident_sweep(&spec, n, K, n).total_seconds();
            ModelRow {
                n,
                k: K,
                dense_seconds: dense,
                candidate_seconds: cand,
                candidate_resident_seconds: cand_res,
                speedup: dense / cand_res,
            }
        })
        .collect()
}

/// The functional-quality panel over [`QUALITY_NS`] × both styles.
pub fn quality_rows(seed: u64) -> Vec<QualityRow> {
    let mut rows = Vec::new();
    for &n in QUALITY_NS {
        for (style, inst) in [
            ("uniform", generate("fig-cand", n, Style::Uniform, seed)),
            (
                "clustered",
                generate("fig-cand", n, Style::Clustered { clusters: 5 }, seed),
            ),
        ] {
            let descend = |strategy| {
                let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
                let mut tour = multiple_fragment(&inst);
                let stats = optimize(&mut engine, &inst, &mut tour, SearchOptions::new())
                    .expect("generated instances are coordinate-based");
                (stats.final_length, stats.profile.pairs_checked)
            };
            let (dense_length, dense_pairs) = descend(Strategy::DeviceResident);
            let (candidate_length, candidate_pairs) = descend(Strategy::Candidate { k: K });
            rows.push(QualityRow {
                n,
                style: style.to_string(),
                dense_length,
                candidate_length,
                gap_percent: 100.0 * (candidate_length - dense_length) as f64 / dense_length as f64,
                dense_pairs,
                candidate_pairs,
            });
        }
    }
    rows
}

/// Journaled ILS, dense vs candidate, on one instance — the
/// convergence-artifact CSV (same schema as `convergence.csv`, so the
/// two files plot together).
pub fn convergence_journals(n: usize, iterations: u64, seed: u64) -> Vec<StrategyJournal> {
    let inst = generate(
        "cand-convergence",
        n,
        Style::Clustered { clusters: 8 },
        seed,
    );
    let start = multiple_fragment(&inst);
    [
        ("device_resident".to_string(), Strategy::DeviceResident),
        ("candidate16".to_string(), Strategy::Candidate { k: K }),
        (
            "candidate16_resident".to_string(),
            Strategy::CandidateResident { k: K },
        ),
    ]
    .into_iter()
    .map(|(label, strategy)| {
        let journal = Journal::attached();
        let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
        let out = iterated_local_search(
            &mut engine,
            &inst,
            start.clone(),
            IlsOptions::new()
                .with_max_iterations(iterations)
                .with_seed(seed)
                .with_journal(journal.clone()),
        )
        .expect("generated instances are coordinate-based");
        StrategyJournal {
            strategy: label,
            records: journal.records(),
            best_length: out.best_length,
        }
    })
    .collect()
}

/// Fixed-width text tables, both panels.
pub fn render(models: &[ModelRow], quality: &[QualityRow]) -> String {
    let model_body: Vec<Vec<String>> = models
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.k.to_string(),
                crate::common::fmt_time(r.dense_seconds),
                crate::common::fmt_time(r.candidate_seconds),
                crate::common::fmt_time(r.candidate_resident_seconds),
                format!("{:.1}x", r.speedup),
            ]
        })
        .collect();
    let mut s = String::from("Modeled per-sweep cost, dense vs candidate (k-NN) kernels\n");
    s += &render_table(
        &["n", "k", "dense", "candidate", "cand-resident", "speedup"],
        &model_body,
    );
    let quality_body: Vec<Vec<String>> = quality
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.style.clone(),
                r.dense_length.to_string(),
                r.candidate_length.to_string(),
                format!("{:+.2}%", r.gap_percent),
                r.dense_pairs.to_string(),
                r.candidate_pairs.to_string(),
            ]
        })
        .collect();
    s += "\nFull descents from the same Multiple-Fragment start\n";
    s += &render_table(
        &[
            "n",
            "style",
            "dense len",
            "cand len",
            "gap",
            "dense pairs",
            "cand pairs",
        ],
        &quality_body,
    );
    s
}

/// CSV of both panels (`panel` column disambiguates).
pub fn to_csv(models: &[ModelRow], quality: &[QualityRow]) -> String {
    let mut s = String::from(
        "panel,n,k,style,dense_seconds,candidate_seconds,candidate_resident_seconds,speedup,\
         dense_length,candidate_length,gap_percent,dense_pairs,candidate_pairs\n",
    );
    for r in models {
        s += &format!(
            "model,{},{},,{},{},{},{},,,,,\n",
            r.n, r.k, r.dense_seconds, r.candidate_seconds, r.candidate_resident_seconds, r.speedup
        );
    }
    for r in quality {
        s += &format!(
            "quality,{},{},{},,,,,{},{},{},{},{}\n",
            r.n,
            K,
            r.style,
            r.dense_length,
            r.candidate_length,
            r.gap_percent,
            r.dense_pairs,
            r.candidate_pairs
        );
    }
    s
}

/// The `BENCH_candidate.json` document.
pub fn to_json(models: &[ModelRow], quality: &[QualityRow]) -> String {
    let model_entries: Vec<Json> = models
        .iter()
        .map(|r| {
            let mut o = Json::obj();
            o.set("n", Json::from(r.n as f64))
                .set("k", Json::from(r.k as f64))
                .set("dense_seconds", Json::from(r.dense_seconds))
                .set("candidate_seconds", Json::from(r.candidate_seconds))
                .set(
                    "candidate_resident_seconds",
                    Json::from(r.candidate_resident_seconds),
                )
                .set("speedup", Json::from(r.speedup));
            o
        })
        .collect();
    let quality_entries: Vec<Json> = quality
        .iter()
        .map(|r| {
            let mut o = Json::obj();
            o.set("n", Json::from(r.n as f64))
                .set("style", Json::from(r.style.as_str()))
                .set("dense_length", Json::from(r.dense_length as f64))
                .set("candidate_length", Json::from(r.candidate_length as f64))
                .set("gap_percent", Json::from(r.gap_percent))
                .set("dense_pairs", Json::from(r.dense_pairs as f64))
                .set("candidate_pairs", Json::from(r.candidate_pairs as f64));
            o
        })
        .collect();
    let mut doc = Json::obj();
    doc.set("experiment", Json::from("dense vs candidate-list 2-opt"))
        .set("device", Json::from("GeForce GTX 680 (CUDA)"))
        .set("k", Json::from(K as f64))
        .set("modeled", Json::Arr(model_entries))
        .set("quality", Json::Arr(quality_entries));
    doc.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_trace::json;

    #[test]
    fn the_modeled_speedup_clears_ten_x_at_one_hundred_thousand_cities() {
        let rows = model_rows();
        let top = rows.iter().find(|r| r.n == 100_000).expect("1e5 row");
        assert!(
            top.speedup >= 10.0,
            "candidate speedup {:.1}x below the 10x acceptance bar",
            top.speedup
        );
        // The sweep is monotone: bigger n, bigger win.
        for w in rows.windows(2) {
            assert!(w[1].speedup > w[0].speedup);
        }
    }

    #[test]
    fn quality_rows_stay_within_the_pinned_gap_and_check_fewer_pairs() {
        for r in quality_rows(0x2013) {
            // Uniform fields sit well inside the 2 % contract bound
            // (the hard differential pin lives in
            // tests/candidate_differential.rs); clustered fields pay
            // more at k = 16 — cross-cluster edges fall outside the
            // k-NN horizon — which is exactly what this panel reports.
            let bound = if r.style == "uniform" { 2.0 } else { 3.5 };
            assert!(
                r.gap_percent <= bound,
                "n={} {}: gap {:.2}% exceeds the {bound}% bound",
                r.n,
                r.style,
                r.gap_percent
            );
            assert!(
                r.candidate_pairs < r.dense_pairs,
                "n={} {}: candidate checked {} pairs vs dense {}",
                r.n,
                r.style,
                r.candidate_pairs,
                r.dense_pairs
            );
        }
    }

    #[test]
    fn json_document_parses_and_carries_both_panels() {
        let doc = json::parse(&to_json(&model_rows(), &quality_rows(0x2013))).expect("valid JSON");
        let modeled = doc
            .get("modeled")
            .and_then(Json::as_array)
            .expect("modeled array");
        assert_eq!(modeled.len(), MODELED_NS.len());
        let quality = doc
            .get("quality")
            .and_then(Json::as_array)
            .expect("quality array");
        assert_eq!(quality.len(), QUALITY_NS.len() * 2);
    }

    #[test]
    fn convergence_journals_cover_dense_and_candidate() {
        let journals = convergence_journals(96, 2, 7);
        assert_eq!(journals.len(), 3);
        for j in &journals {
            assert!(!j.records.is_empty(), "{}", j.strategy);
        }
        // Same residency, same search: the two candidate journals agree.
        assert_eq!(journals[1].best_length, journals[2].best_length);
        let csv = crate::convergence::to_csv(&journals);
        assert!(csv.contains("\ncandidate16,"));
        assert!(csv.contains("\ndevice_resident,"));
    }
}
