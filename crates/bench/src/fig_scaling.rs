//! Modeled device/stream scaling of sharded ILS multistart — a
//! follow-on experiment the paper motivates but does not run (§VI
//! discusses multi-GPU division of the pair space; this measures the
//! orthogonal axis: many independent chains sharded over a pool).
//!
//! A fixed batch of ILS chains runs over every pool shape in
//! `devices × streams`. Chains are bit-identical across shapes (same
//! per-chain seeds), so tour quality is constant and only the modeled
//! schedule moves: devices divide the chains, streams overlap one
//! chain's transfers with another's kernels on the same device. The
//! instance is small enough to be transfer-bound on the PCIe link,
//! which is exactly where streams pay off.

use crate::common::render_table;
use gpu_sim::{spec, DevicePool};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tsp_2opt::GpuTwoOpt;
use tsp_core::Tour;
use tsp_ils::{IlsOptions, ShardedMultistart};
use tsp_trace::json::Json;
use tsp_tsplib::{generate, Style};

/// Pool shapes swept: device counts × streams per device.
pub const DEVICES: &[usize] = &[1, 2, 4, 8];
/// Streams per device swept.
pub const STREAMS: &[usize] = &[1, 2, 4];

/// One pool shape's modeled outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Streams per device.
    pub streams: usize,
    /// Independent ILS chains sharded over the pool.
    pub shards: usize,
    /// Modeled makespan of the slowest device, seconds.
    pub wall_seconds: f64,
    /// Total modeled busy time over all engines of all devices.
    pub busy_seconds: f64,
    /// Fraction of busy time hidden by stream/copy-engine overlap.
    pub overlap: f64,
    /// Chains per modeled second of wall time.
    pub throughput: f64,
    /// Wall-time speedup vs the 1 device × 1 stream baseline.
    pub speedup: f64,
}

/// Run `shards` chains (each `iterations` ILS kicks on an `n`-city
/// uniform instance) over every shape in [`DEVICES`] × [`STREAMS`].
pub fn compute(n: usize, shards: usize, iterations: u64, seed: u64) -> Vec<Row> {
    let inst = generate("fig-scaling", n, Style::Uniform, seed);
    let mut rng = SmallRng::seed_from_u64(seed);
    let starts: Vec<Tour> = (0..shards).map(|_| Tour::random(n, &mut rng)).collect();
    let opts = IlsOptions::new()
        .with_max_iterations(iterations)
        .with_seed(seed);

    let mut rows = Vec::new();
    let mut baseline = None;
    for &devices in DEVICES {
        for &streams in STREAMS {
            let pool = DevicePool::homogeneous(spec::gtx_680_cuda(), devices, streams);
            let out = ShardedMultistart::new(pool)
                .run(
                    |device, stream| GpuTwoOpt::on_stream(device.clone(), stream),
                    &inst,
                    starts.clone(),
                    opts.clone(),
                )
                .expect("generated instances are coordinate-based");
            let wall = out.wall_seconds();
            let base = *baseline.get_or_insert(wall);
            rows.push(Row {
                devices,
                streams,
                shards,
                wall_seconds: wall,
                busy_seconds: out.busy_seconds(),
                overlap: out.overlap(),
                throughput: shards as f64 / wall,
                speedup: base / wall,
            });
        }
    }
    rows
}

/// Fixed-width text table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.devices, r.streams),
                crate::common::fmt_time(r.wall_seconds),
                crate::common::fmt_time(r.busy_seconds),
                format!("{:.1}%", r.overlap * 100.0),
                format!("{:.0}", r.throughput),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    render_table(
        &["pool", "wall", "busy", "overlap", "chains/s", "speedup"],
        &body,
    )
}

/// CSV with one row per pool shape.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from("devices,streams,shards,wall_s,busy_s,overlap,throughput,speedup\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.devices,
            r.streams,
            r.shards,
            r.wall_seconds,
            r.busy_seconds,
            r.overlap,
            r.throughput,
            r.speedup
        ));
    }
    out
}

/// The `BENCH_scaling.json` document: experiment header plus one
/// object per pool shape.
pub fn to_json(rows: &[Row]) -> String {
    let entries: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut o = Json::obj();
            o.set("devices", Json::from(r.devices as f64))
                .set("streams", Json::from(r.streams as f64))
                .set("shards", Json::from(r.shards as f64))
                .set("wall_seconds", Json::from(r.wall_seconds))
                .set("busy_seconds", Json::from(r.busy_seconds))
                .set("overlap", Json::from(r.overlap))
                .set("throughput", Json::from(r.throughput))
                .set("speedup", Json::from(r.speedup));
            o
        })
        .collect();
    let mut doc = Json::obj();
    doc.set("experiment", Json::from("sharded multistart scaling"))
        .set("device", Json::from("GeForce GTX 680 (CUDA)"))
        .set("rows", Json::Arr(entries));
    doc.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(rows: &[Row], devices: usize, streams: usize) -> &Row {
        rows.iter()
            .find(|r| r.devices == devices && r.streams == streams)
            .expect("shape present")
    }

    #[test]
    fn two_devices_nearly_double_throughput_and_streams_overlap() {
        let rows = compute(96, 16, 2, 0x2013);
        let serial = row(&rows, 1, 1);
        let dual = row(&rows, 2, 1);
        let streamed = row(&rows, 1, 2);

        // Devices divide the chains: ≥ 1.8x modeled throughput 1 → 2.
        assert!(
            dual.throughput >= 1.8 * serial.throughput,
            "1 -> 2 devices scaled only {:.2}x",
            dual.throughput / serial.throughput
        );
        // Streams overlap transfer with compute on the one device.
        assert!(serial.overlap == 0.0, "serial schedule cannot overlap");
        assert!(streamed.overlap > 0.0, "2 streams must overlap");
        assert!(streamed.wall_seconds < serial.wall_seconds);

        // Chains are bit-identical across shapes, so the submitted work
        // is constant: total busy time must match the baseline.
        for r in &rows {
            assert!(
                (r.busy_seconds - serial.busy_seconds).abs() < 1e-9 * serial.busy_seconds,
                "{}x{} busy {} vs baseline {}",
                r.devices,
                r.streams,
                r.busy_seconds,
                serial.busy_seconds
            );
        }
    }

    #[test]
    fn json_document_parses_and_carries_every_row() {
        let rows = compute(64, 4, 1, 3);
        let doc = tsp_trace::json::parse(&to_json(&rows)).expect("valid JSON");
        let arr = doc
            .get("rows")
            .and_then(tsp_trace::json::Json::as_array)
            .expect("rows array");
        assert_eq!(arr.len(), rows.len());
        assert_eq!(arr.len(), DEVICES.len() * STREAMS.len());
        for e in arr {
            assert!(e.get("wall_seconds").and_then(Json::as_f64).unwrap() > 0.0);
        }
    }
}
