//! # tsp-bench
//!
//! Harnesses that regenerate **every table and figure** of the paper's
//! evaluation, plus the ablation studies of DESIGN.md §5. Each module
//! exposes a `compute()` returning structured rows (so tests can assert
//! the paper's *shape*) and a `render()` producing the printable table;
//! the `src/bin/` binaries are thin wrappers:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table I (memory: LUT vs coords) | [`table1`] | `cargo run -p tsp-bench --bin table1` |
//! | Table II (single-run timings) | [`table2`] | `cargo run -p tsp-bench --bin table2` |
//! | Fig. 9 (GFLOP/s, 8 devices) | [`fig9`] | `cargo run -p tsp-bench --bin fig9` |
//! | Fig. 10 (speedup vs CPU) | [`fig10`] | `cargo run -p tsp-bench --bin fig10` |
//! | Fig. 11 (ILS convergence) | [`fig11`] | `cargo run -p tsp-bench --bin fig11` |
//! | Ablations (DESIGN.md §5) | [`ablation`] | `cargo run -p tsp-bench --bin ablations` |
//! | Pool scaling (DESIGN.md §9, not in the paper) | [`fig_scaling`] | `cargo run -p tsp-bench --bin fig_scaling` |
//! | Convergence journals per strategy (DESIGN.md §10) | [`convergence`] | via `report` (`convergence.csv`) |
//! | Profiler snapshot per strategy (DESIGN.md §13) | [`prof`] | via `report` (`BENCH_prof.json`) |
//! | Bench regression gate (DESIGN.md §10) | [`diff`] | `cargo run -p tsp-bench --bin bench_diff` |
//!
//! Committed baselines of the deterministic snapshots live in
//! `baselines/` and are checked by the `baselines` integration test;
//! regenerate intentionally with
//! `REGEN_BASELINE=1 cargo test -p tsp-bench --test baselines`.
//!
//! Criterion micro-benches (wall-clock, on *this* host) live in
//! `benches/` and run with `cargo bench`.
//!
//! The `table2`, `fig9`, `fig11` and `ablations` binaries additionally
//! understand `--trace-out <path>`: the run executes with a
//! [`tsp_trace::Recorder`] attached and a Chrome-trace JSON (loadable
//! in <https://ui.perfetto.dev>) is written to `<path>`, with metrics
//! and roofline summaries on stderr. See [`trace`].

pub mod ablation;
pub mod common;
pub mod convergence;
pub mod diff;
pub mod fig10;
pub mod fig11;
pub mod fig9;
pub mod fig_candidate;
pub mod fig_scaling;
pub mod prof;
pub mod table1;
pub mod table2;
pub mod trace;
