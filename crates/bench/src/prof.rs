//! Profiler snapshot per kernel strategy: peak device memory, ledger
//! traffic and span counts of one full descent through the facade —
//! the `BENCH_prof.json` regression surface (DESIGN.md §13).
//!
//! Everything in the snapshot is modeled, so it is bit-deterministic:
//! a drift in peak bytes means a buffer was added, resized or
//! relabeled; a drift in span counts means the instrumentation moved.
//! Wall-clock span timings are real time and deliberately excluded.

use crate::common::render_table;
use tsp::prelude::*;
use tsp_trace::json::Json;

/// One strategy's profiler snapshot.
#[derive(Debug, Clone)]
pub struct Row {
    /// `Strategy` debug name (e.g. `Tiled { tile: 32 }`).
    pub strategy: String,
    /// Final tour length of the descent.
    pub final_length: i64,
    /// Device 0 peak live bytes.
    pub peak_bytes: u64,
    /// Device 0 allocation count.
    pub allocs: u64,
    /// Device 0 H2D bytes uploaded.
    pub upload_bytes: u64,
    /// Folded span paths in the profile.
    pub span_paths: usize,
    /// Total closed spans (structural spans + device leaves).
    pub spans: u64,
    /// Closed `kernel:*` leaves.
    pub kernel_spans: u64,
    /// Inclusive modeled seconds of the root `solve` span.
    pub modeled_seconds: f64,
}

/// Profile one plain descent per strategy on an `n`-city uniform
/// instance (identity start, so the workload is a pure function of
/// `n` and `seed`).
pub fn compute(n: usize, seed: u64) -> Vec<Row> {
    let inst = tsp::tsplib::generate("bench-prof", n, tsp::tsplib::Style::Uniform, seed);
    tsp::all_strategies(32, 8)
        .into_iter()
        .map(|strategy| {
            let prof = Profiler::attached();
            let solution = Solver::builder()
                .construction(Construction::Identity)
                .strategy(strategy)
                .profiler(prof.clone())
                .build()
                .run(&inst)
                .expect("generated instances are coordinate-based");
            // The engine (and its device) dropped with `run`, so the
            // ledger must balance here — a leak is a harness bug.
            let report = prof.report();
            assert!(
                report.memory.balanced(),
                "unbalanced ledger for {strategy:?}"
            );
            let dev = report
                .memory
                .devices
                .first()
                .expect("the descent allocates");
            let spans: u64 = report.spans.iter().map(|s| s.count).sum();
            let kernel_spans: u64 = report
                .spans
                .iter()
                .filter(|s| s.path.contains("kernel:"))
                .map(|s| s.count)
                .sum();
            Row {
                strategy: format!("{strategy:?}"),
                final_length: solution.length,
                peak_bytes: dev.peak_bytes,
                allocs: dev.allocs,
                upload_bytes: report
                    .memory
                    .labels
                    .iter()
                    .filter(|l| l.device == dev.device)
                    .map(|l| l.upload_bytes)
                    .sum(),
                span_paths: report.spans.len(),
                spans,
                kernel_spans,
                modeled_seconds: report
                    .spans
                    .iter()
                    .find(|s| s.path == "solve")
                    .map(|s| s.modeled_seconds)
                    .unwrap_or_default(),
            }
        })
        .collect()
}

/// Fixed-width text table.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                r.final_length.to_string(),
                r.peak_bytes.to_string(),
                r.allocs.to_string(),
                r.upload_bytes.to_string(),
                r.spans.to_string(),
                r.kernel_spans.to_string(),
                crate::common::fmt_time(r.modeled_seconds),
            ]
        })
        .collect();
    render_table(
        &[
            "strategy", "length", "peak B", "allocs", "H2D B", "spans", "kernels", "modeled",
        ],
        &body,
    )
}

/// The `BENCH_prof.json` document: experiment header plus one object
/// per strategy.
pub fn to_json(rows: &[Row]) -> String {
    let entries: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut o = Json::obj();
            o.set("strategy", Json::from(r.strategy.as_str()))
                .set("final_length", Json::from(r.final_length as f64))
                .set("peak_bytes", Json::from(r.peak_bytes as f64))
                .set("allocs", Json::from(r.allocs as f64))
                .set("upload_bytes", Json::from(r.upload_bytes as f64))
                .set("span_paths", Json::from(r.span_paths as f64))
                .set("spans", Json::from(r.spans as f64))
                .set("kernel_spans", Json::from(r.kernel_spans as f64))
                .set("modeled_seconds", Json::from(r.modeled_seconds));
            o
        })
        .collect();
    let mut doc = Json::obj();
    doc.set("experiment", Json::from("profiler snapshot per strategy"))
        .set("device", Json::from("GeForce GTX 680 (CUDA)"))
        .set("rows", Json::Arr(entries));
    doc.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_profiles_and_balances() {
        let rows = compute(72, 0x2013);
        assert_eq!(rows.len(), tsp::all_strategies(32, 8).len());
        for r in &rows {
            assert!(r.peak_bytes > 0, "{}: no allocations?", r.strategy);
            assert!(r.spans >= r.kernel_spans);
            assert!(r.kernel_spans > 0, "{}: no kernels?", r.strategy);
            assert!(r.modeled_seconds > 0.0);
        }
        // Resident strategies upload the coordinates once; dense
        // re-upload per sweep, so they move strictly more H2D bytes.
        let by_name = |pat: &str| {
            rows.iter()
                .find(|r| r.strategy.starts_with(pat))
                .unwrap_or_else(|| panic!("no strategy {pat}"))
        };
        assert!(by_name("Shared").upload_bytes > by_name("DeviceResident").upload_bytes);
    }

    #[test]
    fn json_document_parses_and_carries_every_row() {
        let rows = compute(64, 3);
        let doc = tsp_trace::json::parse(&to_json(&rows)).expect("valid JSON");
        let arr = doc
            .get("rows")
            .and_then(Json::as_array)
            .expect("rows array");
        assert_eq!(arr.len(), rows.len());
        for e in arr {
            assert!(e.get("peak_bytes").and_then(Json::as_f64).unwrap() > 0.0);
        }
    }
}
