//! Table I — "2-opt single run: memory needed" (LUT vs. coordinates).

use crate::common::render_table;
use tsp_core::lut::MemoryFootprint;
use tsp_tsplib::catalog::TABLE1_SIZES;

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Row {
    /// Instance name (paper's TSPLIB name).
    pub name: &'static str,
    /// Number of cities.
    pub n: usize,
    /// MB needed for the full distance LUT.
    pub lut_mib: f64,
    /// kB needed for raw coordinates.
    pub coord_kib: f64,
}

/// Compute all 12 rows.
pub fn compute() -> Vec<Row> {
    TABLE1_SIZES
        .iter()
        .map(|&(name, n)| {
            let f = MemoryFootprint::for_size(n);
            Row {
                name,
                n,
                lut_mib: f.lut_mib(),
                coord_kib: f.coord_kib(),
            }
        })
        .collect()
}

/// Render the table in the paper's column layout.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.n.to_string(),
                format!("{:.2}", r.lut_mib),
                format!("{:.2}", r.coord_kib),
            ]
        })
        .collect();
    render_table(&["Problem", "Cities", "LUT (MB)", "Coords (kB)"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_with_expected_extremes() {
        let rows = compute();
        assert_eq!(rows.len(), 12);
        // kroE100: 100^2 * 4 B = 0.04 MB vs 0.78 kB.
        assert!((rows[0].lut_mib - 0.038).abs() < 0.01);
        assert!((rows[0].coord_kib - 0.78).abs() < 0.02);
        // fnl4461: ~75.9 MB vs ~34.9 kB — the paper's blow-up argument.
        let last = rows.last().unwrap();
        assert!((last.lut_mib - 75.9).abs() < 1.0);
        assert!((last.coord_kib - 34.9).abs() < 0.5);
    }

    #[test]
    fn lut_grows_quadratically_coords_linearly() {
        let rows = compute();
        let (a, b) = (&rows[0], &rows[9]); // 100 vs 2392 cities
        let size_ratio = b.n as f64 / a.n as f64;
        assert!((b.lut_mib / a.lut_mib - size_ratio * size_ratio).abs() < 1.0);
        assert!((b.coord_kib / a.coord_kib - size_ratio).abs() < 0.1);
    }

    #[test]
    fn render_contains_all_names() {
        let s = render(&compute());
        for (name, _) in TABLE1_SIZES {
            assert!(s.contains(name), "{name} missing");
        }
    }
}
