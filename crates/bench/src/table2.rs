//! Table II — "2-opt: time needed for a single run" on the GTX 680.
//!
//! Columns: kernel time, host→device copy, device→host copy, total,
//! checks/s, time to first local minimum from a Multiple Fragment start,
//! initial (MF) length, optimized length.
//!
//! Rows up to a configurable size cap are run **functionally** (real
//! kernels on the simulator, real MF construction, real descent to the
//! local minimum). Larger rows — the paper's six-digit instances — are
//! priced through the exact analytic sweep model; their time-to-minimum
//! is an extrapolation (sweeps ≈ the sweeps/n ratio fitted on the
//! functional rows) and is marked `~` in the rendering.

use crate::common::{fmt_time, render_table};
use gpu_sim::spec;
use tsp_2opt::gpu::model::{model_auto_sweep, model_device_resident_sweep};
use tsp_2opt::{optimize_with_recorder, GpuTwoOpt, SearchOptions, TwoOptEngine};
use tsp_construction::multiple_fragment;
use tsp_trace::Recorder;
use tsp_tsplib::catalog::TABLE2_INSTANCES;

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Row {
    /// Paper instance name this stand-in mirrors.
    pub name: String,
    /// Cities.
    pub n: usize,
    /// Modeled kernel time for one sweep, seconds.
    pub kernel_s: f64,
    /// Modeled H2D copy, seconds.
    pub h2d_s: f64,
    /// Modeled D2H copy, seconds.
    pub d2h_s: f64,
    /// Modeled total sweep time, seconds.
    pub total_s: f64,
    /// Modeled steady-state sweep of the device-resident pipeline
    /// (on-device reversal of a worst-case n/2 segment, no H2D), seconds.
    pub resident_total_s: f64,
    /// Candidate checks per second (millions).
    pub mchecks_per_s: f64,
    /// Modeled time from the MF tour to the first 2-opt local minimum.
    pub time_to_min_s: f64,
    /// Sweeps to the local minimum (measured or extrapolated).
    pub sweeps: u64,
    /// MF tour length (functional rows only).
    pub initial_len: Option<i64>,
    /// 2-opt local-minimum length (functional rows only).
    pub final_len: Option<i64>,
    /// `true` when the row was functionally executed.
    pub functional: bool,
}

/// Compute Table II. Rows with `n <= max_functional_n` run functionally;
/// the rest are model-priced.
pub fn compute(max_functional_n: usize) -> Vec<Row> {
    compute_traced(max_functional_n, &Recorder::disabled())
}

/// [`compute`] with a [`Recorder`] attached to every functional row's
/// engine and descent (the `--trace-out` path of the `table2` binary).
pub fn compute_traced(max_functional_n: usize, recorder: &Recorder) -> Vec<Row> {
    let dev_spec = spec::gtx_680_cuda();
    let mut rows = Vec::new();
    // Sweeps-per-city ratio observed on functional rows, used to
    // extrapolate time-to-minimum for model-only rows.
    let mut sweep_ratio: f64 = 0.25;

    for entry in TABLE2_INSTANCES {
        let n = entry.n;
        if n <= max_functional_n {
            let inst = entry.instance();
            let mut tour = multiple_fragment(&inst);
            let initial_len = tour.length(&inst);
            let mut engine = GpuTwoOpt::new(dev_spec.clone()).with_recorder(recorder.clone());
            // One sweep for the single-run columns.
            let (_, sweep) = engine
                .best_move(&inst, &tour)
                .expect("catalog instances are coordinate-based");
            // Full descent for the time-to-minimum columns.
            let stats = optimize_with_recorder(
                &mut engine,
                &inst,
                &mut tour,
                SearchOptions::default(),
                recorder,
            )
            .expect("descent cannot fail on a valid instance");
            sweep_ratio = stats.sweeps as f64 / n as f64;
            rows.push(Row {
                name: entry.name(),
                n,
                kernel_s: sweep.kernel_seconds,
                h2d_s: sweep.h2d_seconds,
                d2h_s: sweep.d2h_seconds,
                total_s: sweep.modeled_seconds(),
                resident_total_s: model_device_resident_sweep(&dev_spec, n, n / 2).total_seconds(),
                mchecks_per_s: sweep.checks_per_second() / 1e6,
                time_to_min_s: stats.modeled_seconds(),
                sweeps: stats.sweeps,
                initial_len: Some(initial_len),
                final_len: Some(stats.final_length),
                functional: true,
            });
        } else {
            let m = model_auto_sweep(&dev_spec, n);
            let sweeps = (sweep_ratio * n as f64).round() as u64;
            rows.push(Row {
                name: entry.name(),
                n,
                kernel_s: m.kernel_seconds,
                h2d_s: m.h2d_seconds,
                d2h_s: m.d2h_seconds,
                total_s: m.total_seconds(),
                resident_total_s: model_device_resident_sweep(&dev_spec, n, n / 2).total_seconds(),
                mchecks_per_s: m.checks_per_second() / 1e6,
                time_to_min_s: sweeps as f64 * m.total_seconds(),
                sweeps,
                initial_len: None,
                final_len: None,
                functional: false,
            });
        }
    }
    rows
}

/// Render as CSV for external processing.
pub fn to_csv(rows: &[Row]) -> String {
    let mut out = String::from(
        "problem,cities,kernel_s,h2d_s,d2h_s,total_s,resident_total_s,mchecks_per_s,time_to_min_s,sweeps,mf_len,twoopt_len,functional\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.9},{:.9},{:.9},{:.9},{:.9},{:.1},{:.6},{},{},{},{}\n",
            r.name,
            r.n,
            r.kernel_s,
            r.h2d_s,
            r.d2h_s,
            r.total_s,
            r.resident_total_s,
            r.mchecks_per_s,
            r.time_to_min_s,
            r.sweeps,
            r.initial_len.map_or(String::from(""), |v| v.to_string()),
            r.final_len.map_or(String::from(""), |v| v.to_string()),
            r.functional,
        ));
    }
    out
}

/// Render in the paper's column layout.
pub fn render(rows: &[Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let tilde = if r.functional { "" } else { "~" };
            vec![
                r.name.clone(),
                r.n.to_string(),
                fmt_time(r.kernel_s),
                fmt_time(r.h2d_s),
                fmt_time(r.d2h_s),
                fmt_time(r.total_s),
                fmt_time(r.resident_total_s),
                format!("{:.0}", r.mchecks_per_s),
                format!("{tilde}{}", fmt_time(r.time_to_min_s)),
                r.initial_len.map_or("-".into(), |v| v.to_string()),
                r.final_len.map_or("-".into(), |v| v.to_string()),
            ]
        })
        .collect();
    render_table(
        &[
            "Problem",
            "Cities",
            "Kernel",
            "H2D",
            "D2H",
            "Total",
            "Resident",
            "Mchecks/s",
            "To 1st min",
            "MF len",
            "2-opt len",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let rows = compute(300); // functional up to kroA200/ts225/pr299
        assert_eq!(rows.len(), 27);

        // Transfer share shrinks as n grows (the paper's §V observation).
        let small = &rows[0]; // berlin52
        let big = rows.last().unwrap(); // lrb744710
        let small_share = (small.h2d_s + small.d2h_s) / small.total_s;
        let big_share = (big.h2d_s + big.d2h_s) / big.total_s;
        assert!(small_share > 0.5, "berlin52 transfer share {small_share}");
        assert!(big_share < 0.01, "lrb744710 transfer share {big_share}");

        // berlin52's total is latency-dominated: order 100 us like the
        // paper's 81 us.
        assert!(
            (40e-6..200e-6).contains(&small.total_s),
            "berlin52 total = {}",
            small.total_s
        );

        // lrb744710 kernel lands near the paper's ~13.4 s row.
        assert!(
            (5.0..30.0).contains(&big.kernel_s),
            "lrb744710 kernel = {}",
            big.kernel_s
        );

        // checks/s grows monotonically-ish and saturates in the tens of
        // thousands of millions (paper: 21,652 Mchecks/s at the top).
        assert!(big.mchecks_per_s > 10_000.0, "{}", big.mchecks_per_s);
        assert!(small.mchecks_per_s < big.mchecks_per_s);
    }

    #[test]
    fn functional_rows_really_descend() {
        let rows = compute(150);
        for r in rows.iter().filter(|r| r.functional) {
            assert!(r.final_len.unwrap() <= r.initial_len.unwrap(), "{}", r.name);
            assert!(r.sweeps > 0);
            assert!(r.time_to_min_s > 0.0);
        }
        // Functional rows: berlin52, kroE100, ch130, ch150.
        assert_eq!(rows.iter().filter(|r| r.functional).count(), 4);
    }

    #[test]
    fn csv_has_27_data_rows() {
        let csv = to_csv(&compute(60));
        assert_eq!(csv.lines().count(), 28);
        assert!(csv.starts_with("problem,cities"));
    }

    #[test]
    fn render_marks_model_rows_with_tilde() {
        let rows = compute(60);
        let s = render(&rows);
        assert!(s.contains("syn-berlin52"));
        assert!(s.contains('~'));
        assert!(s.contains("Mchecks/s"));
        assert!(s.contains("Resident"));
    }

    #[test]
    fn resident_column_beats_serial_for_large_rows() {
        let rows = compute(60);
        for r in &rows {
            assert!(r.resident_total_s > 0.0, "{}", r.name);
            // From ~1000 cities the per-sweep upload exceeds the
            // worst-case on-device reversal.
            if r.n >= 1000 {
                assert!(
                    r.resident_total_s < r.total_s,
                    "{}: resident {} vs serial {}",
                    r.name,
                    r.resident_total_s,
                    r.total_s
                );
            }
        }
    }
}
