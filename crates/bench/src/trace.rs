//! Tracing support for the bench binaries: run an experiment with a
//! [`Recorder`] attached, export the Chrome-trace JSON (loadable in
//! <https://ui.perfetto.dev>), and print the metrics and roofline
//! summaries derived from the same event stream.
//!
//! Binaries accept `--trace-out <path>` (or `--trace-out=<path>`); the
//! one-shot `report` binary writes `ils.trace.json` and
//! `BENCH_trace.json` unconditionally.

use std::fs;

use gpu_sim::spec;
use tsp_2opt::GpuTwoOpt;
use tsp_2opt::TwoOptEngine;
use tsp_core::Tour;
use tsp_ils::{iterated_local_search, IlsOptions, IlsOutcome};
use tsp_trace::{chrome_trace, MetricsSnapshot, Recorder, RooflineReport};
use tsp_tsplib::{generate, Style};

/// Extract `--trace-out <path>` / `--trace-out=<path>` from `args`,
/// returning the path (if any) and the remaining arguments so the
/// binaries' positional parsing never sees the flag.
pub fn split_trace_out(args: &[String]) -> (Option<String>, Vec<String>) {
    let mut path = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace-out" {
            path = it.next().cloned();
        } else if let Some(p) = a.strip_prefix("--trace-out=") {
            path = Some(p.to_string());
        } else {
            rest.push(a.clone());
        }
    }
    (path, rest)
}

/// A recorder that is enabled exactly when a `--trace-out` path was
/// requested (a disabled recorder keeps the run on the zero-cost path).
pub fn recorder_for(trace_out: &Option<String>) -> Recorder {
    if trace_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    }
}

/// Write the recorder's events as Chrome-trace JSON to `path` and print
/// the metrics snapshot plus the roofline report to stderr.
pub fn write_trace(path: &str, recorder: &Recorder) {
    let events = recorder.events();
    fs::write(path, chrome_trace(&events)).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!(
        "wrote {path} ({} events; load in https://ui.perfetto.dev)",
        events.len()
    );
    let snapshot = MetricsSnapshot::from_events(&events);
    eprint!("\n{}", snapshot.to_text());
    if let Some(roofline) = RooflineReport::from_events(&events) {
        eprint!("\n{}", roofline.to_text());
    }
}

/// Run one GPU ILS chain on a clustered instance with the recorder
/// attached to both the engine (kernel/transfer events) and the search
/// loop (sweep/iteration telemetry).
pub fn traced_ils(n: usize, iterations: u64, seed: u64, recorder: &Recorder) -> IlsOutcome {
    let inst = generate("traced-ils", n, Style::Clustered { clusters: 16 }, seed);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    let start = Tour::random(n, &mut rng);
    let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda()).with_recorder(recorder.clone());
    let opts = IlsOptions::new()
        .with_max_iterations(iterations)
        .with_seed(seed)
        .with_recorder(recorder.clone());
    iterated_local_search(&mut engine, &inst, start, opts)
        .expect("generated instances are coordinate-based")
}

/// One real sweep per size on the simulator (the fig9 figure itself is
/// model-priced, so its `--trace-out` path records a functional sample
/// of the kernels the model prices).
pub fn traced_sweep_sample(sizes: &[usize], recorder: &Recorder) {
    for &n in sizes {
        let inst = generate("traced-sweep", n, Style::Uniform, 9);
        let tour = Tour::identity(n);
        let mut engine = GpuTwoOpt::new(spec::gtx_680_cuda()).with_recorder(recorder.clone());
        engine
            .best_move(&inst, &tour)
            .expect("generated instances are coordinate-based");
    }
}

/// Chrome-trace JSON of a small traced ILS run (the `report` binary's
/// `ils.trace.json`).
pub fn ils_trace_json(n: usize, iterations: u64, seed: u64) -> String {
    let recorder = Recorder::enabled();
    traced_ils(n, iterations, seed, &recorder);
    chrome_trace(&recorder.events())
}

/// Chrome-trace JSON of a traced mini-run across the bench suite
/// (functional Table II rows up to `cap`, the kernel memory variants,
/// and a short Fig. 11 convergence run) — the `report` binary's
/// `BENCH_trace.json`.
pub fn bench_trace_json(cap: usize, seed: u64) -> String {
    let recorder = Recorder::enabled();
    crate::table2::compute_traced(cap, &recorder);
    crate::ablation::memory_variants_traced(512, &recorder);
    crate::fig11::compute_traced(200, 5, seed, &recorder);
    chrome_trace(&recorder.events())
}

/// Metrics snapshot of the same mini-run as [`bench_trace_json`], as
/// compact JSON — the `report` binary's `BENCH_metrics.json` and the
/// regression baseline `crates/bench/baselines/BENCH_metrics.json`
/// (aggregates only, so the committed file stays small while still
/// pinning per-kernel seconds, GFLOP/s and transfer volumes).
pub fn bench_metrics_json(cap: usize, seed: u64) -> String {
    let recorder = Recorder::enabled();
    crate::table2::compute_traced(cap, &recorder);
    crate::ablation::memory_variants_traced(512, &recorder);
    crate::fig11::compute_traced(200, 5, seed, &recorder);
    MetricsSnapshot::from_events(&recorder.events())
        .to_json()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_trace::TraceEvent;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn split_trace_out_handles_both_forms_and_preserves_the_rest() {
        let (path, rest) = split_trace_out(&strings(&["300", "--trace-out", "t.json", "--csv"]));
        assert_eq!(path.as_deref(), Some("t.json"));
        assert_eq!(rest, strings(&["300", "--csv"]));

        let (path, rest) = split_trace_out(&strings(&["--trace-out=run.json", "150"]));
        assert_eq!(path.as_deref(), Some("run.json"));
        assert_eq!(rest, strings(&["150"]));

        let (path, rest) = split_trace_out(&strings(&["--csv"]));
        assert_eq!(path, None);
        assert_eq!(rest, strings(&["--csv"]));
        assert!(!recorder_for(&path).is_enabled());
    }

    #[test]
    fn traced_ils_records_kernels_transfers_and_iterations() {
        let recorder = Recorder::enabled();
        let out = traced_ils(64, 2, 7, &recorder);
        assert!(out.best_length > 0);
        let events = recorder.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Device { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Kernel { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::H2d { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::IterationEnd { .. })));
    }

    #[test]
    fn trace_jsons_are_parseable_and_non_empty() {
        let json = ils_trace_json(48, 1, 3);
        let parsed = tsp_trace::json::parse(&json).expect("valid JSON");
        let n_events = parsed
            .get("traceEvents")
            .and_then(tsp_trace::json::Json::as_array)
            .map(<[tsp_trace::json::Json]>::len)
            .unwrap_or(0);
        assert!(n_events > 4, "only {n_events} events");
    }
}
