//! Regression gate: the deterministic bench snapshots must match the
//! committed baselines in `crates/bench/baselines/` bit for bit (zero
//! tolerance — the modeled pipeline has no noise, so any drift is a
//! real change to the workload or the cost model).
//!
//! After an *intentional* change, regenerate with:
//!
//! ```text
//! REGEN_BASELINE=1 cargo test -p tsp-bench --test baselines
//! git diff crates/bench/baselines/   # review the drift, then commit
//! ```
//!
//! CI runs `bench_diff` against the same files (see
//! `.github/workflows/ci.yml`), so the committed baseline is both the
//! test fixture and the CI reference.

use std::fs;
use std::path::PathBuf;

use tsp_bench::diff::{diff, Tolerances};
use tsp_trace::json;

fn baseline_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join(name)
}

fn check(name: &str, current: &str) {
    let path = baseline_path(name);
    if std::env::var("REGEN_BASELINE").is_ok() {
        fs::write(&path, current).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        eprintln!("regenerated {}", path.display());
        return;
    }
    let baseline = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path:?}: {e}\n(regenerate with REGEN_BASELINE=1 \
             cargo test -p tsp-bench --test baselines)"
        )
    });
    // Fast path: the writers are byte-stable, so equality is expected.
    if baseline == current {
        return;
    }
    // Otherwise produce an actionable per-leaf report.
    let base = json::parse(&baseline).expect("baseline is valid JSON");
    let cur = json::parse(current).expect("current snapshot is valid JSON");
    let zero = Tolerances {
        rel: 0.0,
        overrides: Vec::new(),
    };
    let report = diff(&base, &cur, &zero);
    panic!(
        "{name} drifted from the committed baseline:\n{}\
         (intentional? REGEN_BASELINE=1 cargo test -p tsp-bench --test baselines)",
        report.render()
    );
}

#[test]
fn scaling_snapshot_matches_the_committed_baseline() {
    let sc = tsp_bench::fig_scaling::compute(96, 32, 2, 0x2013);
    check("BENCH_scaling.json", &tsp_bench::fig_scaling::to_json(&sc));
}

#[test]
fn candidate_snapshot_matches_the_committed_baseline() {
    let models = tsp_bench::fig_candidate::model_rows();
    let quality = tsp_bench::fig_candidate::quality_rows(0x2013);
    check(
        "BENCH_candidate.json",
        &tsp_bench::fig_candidate::to_json(&models, &quality),
    );
}

#[test]
fn prof_snapshot_matches_the_committed_baseline() {
    let rows = tsp_bench::prof::compute(96, 0x2013);
    check("BENCH_prof.json", &tsp_bench::prof::to_json(&rows));
}

#[test]
fn metrics_snapshot_matches_the_committed_baseline() {
    check(
        "BENCH_metrics.json",
        &tsp_bench::trace::bench_metrics_json(150, 0x2013),
    );
}

#[test]
fn trace_snapshot_matches_the_committed_baseline() {
    check(
        "BENCH_trace.json",
        &tsp_bench::trace::bench_trace_json(150, 0x2013),
    );
}

/// `BENCH_serve.json` is emitted by the `serve_smoke` example, not by
/// this crate, and carries wall-clock statistics under `"wall"` — so
/// byte equality is impossible and CI gates it with a wide `wall`
/// tolerance override instead. This test keeps the committed file
/// parseable and proves that exact override configuration accepts the
/// baseline against itself.
#[test]
fn serve_baseline_parses_and_passes_under_the_wall_override() {
    let text =
        fs::read_to_string(baseline_path("BENCH_serve.json")).expect("committed serve baseline");
    let parsed = json::parse(&text).expect("valid JSON");
    for leaf in [
        "jobs",
        "succeeded",
        "steady_state_allocs",
        "tour_length_sum",
        "wall.p50_ms",
    ] {
        let mut node = &parsed;
        for part in leaf.split('.') {
            node = node.get(part).unwrap_or_else(|| panic!("missing {leaf}"));
        }
    }
    let tol = Tolerances {
        rel: 0.0,
        overrides: vec![("wall".to_string(), 1e12)],
    };
    let report = diff(&parsed, &parsed, &tol);
    assert!(!report.has_regressions());
    assert!(report.compared > 0);
}

#[test]
fn bench_diff_passes_the_committed_baseline_against_itself() {
    let path = baseline_path("BENCH_scaling.json");
    let text = fs::read_to_string(&path).expect("committed baseline present");
    let parsed = json::parse(&text).expect("valid JSON");
    let report = diff(&parsed, &parsed, &Tolerances::default());
    assert!(!report.has_regressions());
    assert!(report.compared > 0);
}
