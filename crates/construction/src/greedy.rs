//! The Multiple Fragment (greedy edge) heuristic — the paper's starting
//! point for Table II: "The last 3 columns show the time needed from an
//! initial solution based on the Multiple Fragment (Greedy) heuristic
//! \[Bentley\] to the local minimum found by the algorithm".
//!
//! Edges are considered in increasing length; an edge is accepted when
//! neither endpoint has degree 2 yet and it would not close a sub-cycle.
//! The accepted edges form fragments that eventually link into one
//! Hamiltonian path, closed into a tour.
//!
//! Two candidate generators are used:
//! * all `n(n-1)/2` edges for small instances (exact Bentley greedy);
//! * k-nearest-neighbour candidate edges from a [`SpatialGrid`] for large
//!   ones (the standard large-instance variant; leftover fragments are
//!   linked by a greedy endpoint matching).

use crate::grid::SpatialGrid;
use crate::union_find::UnionFind;
use tsp_core::{Instance, Tour};

/// Above this size, switch from all-pairs edges to k-NN candidates.
const ALL_PAIRS_LIMIT: usize = 3000;
/// Neighbours per city for the candidate generator.
const KNN: usize = 12;

/// Build a tour with the Multiple Fragment heuristic.
pub fn multiple_fragment(inst: &Instance) -> Tour {
    let n = inst.len();
    if n <= ALL_PAIRS_LIMIT || !inst.is_coordinate_based() {
        multiple_fragment_exact(inst)
    } else {
        multiple_fragment_knn(inst, KNN)
    }
}

/// Exact greedy over all edges (O(n² log n)).
pub fn multiple_fragment_exact(inst: &Instance) -> Tour {
    let n = inst.len();
    let mut edges: Vec<(i32, u32, u32)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((inst.dist(i, j), i as u32, j as u32));
        }
    }
    edges.sort_unstable();
    build_from_edges(inst, n, edges.into_iter())
}

/// Greedy over k-NN candidate edges (O(n·k log(n·k))), fragments linked
/// greedily afterwards.
pub fn multiple_fragment_knn(inst: &Instance, k: usize) -> Tour {
    let n = inst.len();
    let grid = SpatialGrid::build(inst);
    let mut edges: Vec<(i32, u32, u32)> = Vec::with_capacity(n * k);
    for i in 0..n {
        for j in grid.knn(i, k) {
            let (a, b) = if (i as u32) < j {
                (i as u32, j)
            } else {
                (j, i as u32)
            };
            edges.push((inst.dist(a as usize, b as usize), a, b));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    build_from_edges(inst, n, edges.into_iter())
}

/// Core greedy: accept edges into fragments, then close up.
fn build_from_edges(
    inst: &Instance,
    n: usize,
    edges: impl Iterator<Item = (i32, u32, u32)>,
) -> Tour {
    let mut degree = vec![0u8; n];
    let mut adj: Vec<[u32; 2]> = vec![[u32::MAX; 2]; n];
    let mut uf = UnionFind::new(n);
    let mut accepted = 0usize;

    let add = |a: usize,
               b: usize,
               degree: &mut Vec<u8>,
               adj: &mut Vec<[u32; 2]>,
               uf: &mut UnionFind|
     -> bool {
        if degree[a] >= 2 || degree[b] >= 2 || !uf.union(a, b) {
            return false;
        }
        adj[a][degree[a] as usize] = b as u32;
        adj[b][degree[b] as usize] = a as u32;
        degree[a] += 1;
        degree[b] += 1;
        true
    };

    for (_, a, b) in edges {
        if accepted == n - 1 {
            break;
        }
        if add(a as usize, b as usize, &mut degree, &mut adj, &mut uf) {
            accepted += 1;
        }
    }

    // Candidate edges may run dry before the path is complete (k-NN
    // mode): link remaining fragment endpoints greedily by nearest pair.
    while accepted < n - 1 {
        let endpoints: Vec<usize> = (0..n).filter(|&v| degree[v] < 2).collect();
        let mut best: Option<(i32, usize, usize)> = None;
        for (idx, &a) in endpoints.iter().enumerate() {
            for &b in &endpoints[idx + 1..] {
                if uf.connected(a, b) {
                    continue;
                }
                let d = inst.dist(a, b);
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, a, b));
                }
            }
        }
        let (_, a, b) = best.expect("disconnected fragments always leave joinable endpoints");
        let ok = add(a, b, &mut degree, &mut adj, &mut uf);
        debug_assert!(ok);
        accepted += 1;
    }

    // Walk the Hamiltonian path from one of its two endpoints.
    let start = (0..n).find(|&v| degree[v] <= 1).unwrap_or(0);
    let mut order = Vec::with_capacity(n);
    let mut prev = u32::MAX;
    let mut cur = start as u32;
    for _ in 0..n {
        order.push(cur);
        let [x, y] = adj[cur as usize];
        let next = if x != prev && x != u32::MAX { x } else { y };
        prev = cur;
        cur = next;
        if cur == u32::MAX {
            break;
        }
    }
    debug_assert_eq!(order.len(), n);
    Tour::new(order).expect("multiple fragment produces a permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::{Metric, Point};
    use tsp_tsplib::{generate, Style};

    #[test]
    fn square_greedy_is_the_perimeter() {
        let inst = Instance::new(
            "square4",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap();
        let t = multiple_fragment(&inst);
        assert_eq!(t.length(&inst), 40);
    }

    #[test]
    fn greedy_beats_identity_on_random_fields() {
        for seed in 0..3 {
            let inst = generate("mf", 200, Style::Uniform, seed);
            let t = multiple_fragment(&inst);
            t.validate().unwrap();
            assert!(t.length(&inst) < Tour::identity(200).length(&inst) / 2);
        }
    }

    #[test]
    fn knn_variant_close_to_exact() {
        let inst = generate("mfk", 400, Style::Clustered { clusters: 8 }, 3);
        let exact = multiple_fragment_exact(&inst);
        let knn = multiple_fragment_knn(&inst, 10);
        knn.validate().unwrap();
        let gap = (knn.length(&inst) - exact.length(&inst)) as f64 / exact.length(&inst) as f64;
        assert!(gap.abs() < 0.10, "k-NN MF gap vs exact = {gap:.3}");
    }

    #[test]
    fn handles_collinear_points() {
        let pts = (0..20).map(|i| Point::new(i as f32 * 7.0, 0.0)).collect();
        let inst = Instance::new("line", Metric::Euc2d, pts).unwrap();
        let t = multiple_fragment(&inst);
        t.validate().unwrap();
        // Optimal line tour: down and back = 2 * 19 * 7.
        assert_eq!(t.length(&inst), 2 * 19 * 7);
    }

    #[test]
    fn works_on_explicit_matrices() {
        use tsp_core::ExplicitMatrix;
        // A 4-cycle where 0-1,1-2,2-3,3-0 are cheap.
        let m = ExplicitMatrix::from_full(4, vec![0, 1, 9, 1, 1, 0, 1, 9, 9, 1, 0, 1, 1, 9, 1, 0])
            .unwrap();
        let inst = Instance::from_matrix("cyc", m, None).unwrap();
        let t = multiple_fragment(&inst);
        assert_eq!(t.length(&inst), 4);
    }
}
