//! A uniform spatial grid for approximate nearest-neighbour queries —
//! the scaling substrate that lets the construction heuristics handle
//! the paper's six-digit instances (O(n²) all-pairs scans stop being an
//! option around 10⁵ cities).

use tsp_core::{Instance, Point};

/// A bucket grid over the instance's bounding box, sized for ≈1 point
/// per cell.
#[derive(Debug)]
pub struct SpatialGrid<'a> {
    inst: &'a Instance,
    min_x: f32,
    min_y: f32,
    cell: f32,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<u32>>,
}

impl<'a> SpatialGrid<'a> {
    /// Build the grid (O(n)). Requires a coordinate-based instance.
    pub fn build(inst: &'a Instance) -> Self {
        let pts = inst.points();
        assert!(
            !pts.is_empty(),
            "SpatialGrid requires a coordinate-based instance"
        );
        let (mut min_x, mut min_y) = (f32::INFINITY, f32::INFINITY);
        let (mut max_x, mut max_y) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
        for p in pts {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let n = pts.len();
        let side = ((max_x - min_x).max(max_y - min_y)).max(1e-6);
        // ~1 point per cell on average.
        let cells_per_side = (n as f64).sqrt().ceil().max(1.0) as usize;
        let cell = side / cells_per_side as f32;
        let cols = ((max_x - min_x) / cell).floor() as usize + 1;
        let rows = ((max_y - min_y) / cell).floor() as usize + 1;
        let mut buckets = vec![Vec::new(); cols * rows];
        let mut grid = SpatialGrid {
            inst,
            min_x,
            min_y,
            cell,
            cols,
            rows,
            buckets: Vec::new(),
        };
        for (i, p) in pts.iter().enumerate() {
            let (cx, cy) = grid.cell_of(p);
            buckets[cy * cols + cx].push(i as u32);
        }
        grid.buckets = buckets;
        grid
    }

    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let cx = (((p.x - self.min_x) / self.cell) as usize).min(self.cols - 1);
        let cy = (((p.y - self.min_y) / self.cell) as usize).min(self.rows - 1);
        (cx, cy)
    }

    /// The `k` nearest neighbours of city `i` (excluding `i`), sorted by
    /// distance, found by expanding square rings of cells.
    pub fn knn(&self, i: usize, k: usize) -> Vec<u32> {
        let p = self.inst.point(i);
        let (cx, cy) = self.cell_of(&p);
        let mut found: Vec<(i32, u32)> = Vec::with_capacity(4 * k);
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Once we have k candidates, one extra ring guarantees
            // correctness (a point in ring r is at least (r-1)*cell away).
            self.visit_ring(cx, cy, ring, |j| {
                if j as usize != i {
                    found.push((self.inst.dist(i, j as usize), j));
                }
            });
            if found.len() >= k && ring >= 1 {
                let enough = {
                    found.sort_unstable();
                    found.truncate(4 * k.max(1));
                    // k-th distance must be closer than the next ring's
                    // minimum possible distance.
                    let kth = found.get(k - 1).map(|&(d, _)| d).unwrap_or(i32::MAX);
                    let ring_min = (ring as f32) * self.cell;
                    (kth as f32) <= ring_min
                };
                if enough {
                    break;
                }
            }
        }
        found.sort_unstable();
        found.truncate(k);
        found.into_iter().map(|(_, j)| j).collect()
    }

    /// Call `f` for every point in the square ring at Chebyshev distance
    /// `ring` from cell `(cx, cy)`.
    fn visit_ring<F: FnMut(u32)>(&self, cx: usize, cy: usize, ring: usize, mut f: F) {
        let r = ring as isize;
        let (cx, cy) = (cx as isize, cy as isize);
        for dy in -r..=r {
            for dx in -r..=r {
                if dx.abs().max(dy.abs()) != r {
                    continue;
                }
                let (x, y) = (cx + dx, cy + dy);
                if x < 0 || y < 0 || x >= self.cols as isize || y >= self.rows as isize {
                    continue;
                }
                for &j in &self.buckets[y as usize * self.cols + x as usize] {
                    f(j);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::Metric;

    fn line_instance(n: usize) -> Instance {
        let pts = (0..n).map(|i| Point::new(i as f32 * 10.0, 0.0)).collect();
        Instance::new("line", Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn knn_on_a_line_matches_brute_force() {
        let inst = line_instance(50);
        let grid = SpatialGrid::build(&inst);
        for i in [0usize, 7, 25, 49] {
            let got = grid.knn(i, 4);
            // Brute force reference.
            let mut all: Vec<(i32, u32)> = (0..50)
                .filter(|&j| j != i)
                .map(|j| (inst.dist(i, j), j as u32))
                .collect();
            all.sort_unstable();
            let expected: Vec<u32> = all.into_iter().take(4).map(|(_, j)| j).collect();
            assert_eq!(got, expected, "city {i}");
        }
    }

    #[test]
    fn knn_matches_brute_force_on_scattered_points() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(12);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)))
            .collect();
        let inst = Instance::new("scatter", Metric::Euc2d, pts).unwrap();
        let grid = SpatialGrid::build(&inst);
        for i in (0..300).step_by(37) {
            let got = grid.knn(i, 6);
            let mut all: Vec<(i32, u32)> = (0..300)
                .filter(|&j| j != i)
                .map(|j| (inst.dist(i, j), j as u32))
                .collect();
            all.sort_unstable();
            // Compare distances, not identities (equidistant ties may
            // order differently).
            let got_d: Vec<i32> = got.iter().map(|&j| inst.dist(i, j as usize)).collect();
            let exp_d: Vec<i32> = all.iter().take(6).map(|&(d, _)| d).collect();
            assert_eq!(got_d, exp_d, "city {i}");
        }
    }

    #[test]
    fn degenerate_all_same_point() {
        let pts = vec![Point::new(5.0, 5.0); 10];
        let inst = Instance::new("same", Metric::Euc2d, pts).unwrap();
        let grid = SpatialGrid::build(&inst);
        let nb = grid.knn(0, 3);
        assert_eq!(nb.len(), 3);
        assert!(!nb.contains(&0));
    }
}
