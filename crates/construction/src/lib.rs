//! # tsp-construction
//!
//! Initial-tour construction heuristics for the GPU 2-opt reproduction:
//!
//! * [`greedy::multiple_fragment`] — Bentley's Multiple Fragment (greedy
//!   edge) heuristic, the paper's Table II starting solution;
//! * [`nearest_neighbor::nearest_neighbor`] — classic NN;
//! * [`spacefill::space_filling`] — Hilbert-curve ordering, O(n log n);
//! * random tours come from [`tsp_core::Tour::random`] (the paper's ILS
//!   experiment assumes "the initial solution s0 is a random tour").
//!
//! Large instances are served by a [`grid::SpatialGrid`]-backed candidate
//! generator so construction stays near-linear.

pub mod greedy;
pub mod grid;
pub mod nearest_neighbor;
pub mod spacefill;
pub mod union_find;

pub use greedy::{multiple_fragment, multiple_fragment_exact, multiple_fragment_knn};
pub use nearest_neighbor::nearest_neighbor;
pub use spacefill::space_filling;

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_tsplib::{generate, Style};

    #[test]
    fn construction_quality_ordering_holds() {
        // On uniform fields: MF < NN < random; Hilbert < random.
        let inst = generate("order", 400, Style::Uniform, 6);
        let mf = multiple_fragment(&inst).length(&inst);
        let nn = nearest_neighbor(&inst, 0).length(&inst);
        let sf = space_filling(&inst).length(&inst);
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(1);
        let rnd = tsp_core::Tour::random(400, &mut rng).length(&inst);
        assert!(mf < nn, "MF {mf} vs NN {nn}");
        assert!(nn < rnd, "NN {nn} vs random {rnd}");
        assert!(sf < rnd, "Hilbert {sf} vs random {rnd}");
    }
}
