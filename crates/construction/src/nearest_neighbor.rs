//! Nearest-neighbour construction — the simplest reasonable initial tour
//! and a baseline for the construction-quality comparisons.

use crate::grid::SpatialGrid;
use tsp_core::{Instance, Tour};

/// Above this size, use the spatial grid instead of linear scans.
const SCAN_LIMIT: usize = 3000;

/// Build a tour by always visiting the nearest unvisited city, starting
/// from `start`.
pub fn nearest_neighbor(inst: &Instance, start: usize) -> Tour {
    let n = inst.len();
    assert!(start < n, "start city out of range");
    if n <= SCAN_LIMIT || !inst.is_coordinate_based() {
        nearest_neighbor_scan(inst, start)
    } else {
        nearest_neighbor_grid(inst, start)
    }
}

fn nearest_neighbor_scan(inst: &Instance, start: usize) -> Tour {
    let n = inst.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = start;
    visited[cur] = true;
    order.push(cur as u32);
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = i32::MAX;
        for (j, &seen) in visited.iter().enumerate() {
            if !seen {
                let d = inst.dist(cur, j);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
        }
        cur = best;
        visited[cur] = true;
        order.push(cur as u32);
    }
    Tour::new(order).expect("nearest neighbour visits each city once")
}

fn nearest_neighbor_grid(inst: &Instance, start: usize) -> Tour {
    let n = inst.len();
    let grid = SpatialGrid::build(inst);
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = start;
    visited[cur] = true;
    order.push(cur as u32);
    for _ in 1..n {
        // Expand k until an unvisited neighbour appears; fall back to a
        // full scan in the pathological endgame.
        let mut next = None;
        let mut k = 8;
        while k <= 4096 {
            if let Some(&j) = grid.knn(cur, k).iter().find(|&&j| !visited[j as usize]) {
                next = Some(j as usize);
                break;
            }
            k *= 4;
        }
        let next = next.unwrap_or_else(|| {
            (0..n)
                .filter(|&j| !visited[j])
                .min_by_key(|&j| inst.dist(cur, j))
                .expect("an unvisited city remains")
        });
        cur = next;
        visited[cur] = true;
        order.push(cur as u32);
    }
    Tour::new(order).expect("nearest neighbour visits each city once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::{Metric, Point};
    use tsp_tsplib::{generate, Style};

    #[test]
    fn follows_a_line() {
        let pts = (0..10).map(|i| Point::new(i as f32 * 5.0, 0.0)).collect();
        let inst = Instance::new("line", Metric::Euc2d, pts).unwrap();
        let t = nearest_neighbor(&inst, 0);
        assert_eq!(t.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn different_starts_are_valid() {
        let inst = generate("nn", 150, Style::Uniform, 5);
        for start in [0usize, 1, 74, 149] {
            let t = nearest_neighbor(&inst, start);
            t.validate().unwrap();
            assert_eq!(t.city(0), start as u32);
        }
    }

    #[test]
    fn grid_variant_matches_scan_variant_length_roughly() {
        let inst = generate("nng", 500, Style::Uniform, 9);
        let a = nearest_neighbor_scan(&inst, 0);
        let b = nearest_neighbor_grid(&inst, 0);
        b.validate().unwrap();
        // Both are greedy NN; the grid version may differ on distance
        // ties only, so lengths must be very close.
        let gap = (a.length(&inst) - b.length(&inst)).abs() as f64 / a.length(&inst) as f64;
        assert!(gap < 0.02, "gap {gap}");
    }

    #[test]
    #[should_panic(expected = "start city out of range")]
    fn start_out_of_range_panics() {
        let inst = generate("nn", 10, Style::Uniform, 1);
        let _ = nearest_neighbor(&inst, 10);
    }
}
