//! Space-filling-curve construction: order the cities along a Hilbert
//! curve. O(n log n), surprisingly good for its cost, and the natural
//! "instant" initial tour for the six-digit instances where even greedy
//! construction is noticeable.

use tsp_core::{Instance, Tour};

/// Order of the Hilbert curve used (2^16 × 2^16 grid).
const ORDER: u32 = 16;

/// Map (x, y) on the `2^order` grid to its Hilbert-curve index.
/// Classic bit-twiddling transform.
pub fn hilbert_d(order: u32, mut x: u32, mut y: u32) -> u64 {
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s: u32 = 1 << (order - 1);
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (s.wrapping_mul(2).wrapping_sub(1));
                y = s.wrapping_sub(1).wrapping_sub(y) & (s.wrapping_mul(2).wrapping_sub(1));
            }
            core::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Build a tour by sorting the cities along a Hilbert curve over the
/// instance's bounding box.
pub fn space_filling(inst: &Instance) -> Tour {
    let pts = inst.points();
    assert!(
        !pts.is_empty(),
        "space-filling construction requires coordinates"
    );
    let (mut min_x, mut min_y) = (f32::INFINITY, f32::INFINITY);
    let (mut max_x, mut max_y) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
    for p in pts {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let side = (max_x - min_x).max(max_y - min_y).max(1e-6);
    let scale = ((1u32 << ORDER) - 1) as f32 / side;
    let mut keyed: Vec<(u64, u32)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let gx = ((p.x - min_x) * scale) as u32;
            let gy = ((p.y - min_y) * scale) as u32;
            (hilbert_d(ORDER, gx, gy), i as u32)
        })
        .collect();
    keyed.sort_unstable();
    Tour::new(keyed.into_iter().map(|(_, i)| i).collect())
        .expect("sorting city indices is a permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nearest_neighbor::nearest_neighbor;
    use tsp_tsplib::{generate, Style};

    #[test]
    fn hilbert_indices_are_unique_and_adjacent_cells_close() {
        // On a 4x4 grid (order 2), all 16 indices are distinct and form
        // a path where consecutive indices are grid neighbours.
        let mut cells: Vec<(u64, (u32, u32))> = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                cells.push((hilbert_d(2, x, y), (x, y)));
            }
        }
        cells.sort_unstable();
        let ds: Vec<u64> = cells.iter().map(|&(d, _)| d).collect();
        let mut uniq = ds.clone();
        uniq.dedup();
        assert_eq!(uniq.len(), 16);
        for w in cells.windows(2) {
            let (x0, y0) = w[0].1;
            let (x1, y1) = w[1].1;
            let manhattan = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(manhattan, 1, "curve jumps between {:?} {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn space_filling_tours_are_valid_and_decent() {
        let inst = generate("sf", 600, Style::Uniform, 2);
        let t = space_filling(&inst);
        t.validate().unwrap();
        // Hilbert tours are usually within ~40% of nearest-neighbour.
        let nn = nearest_neighbor(&inst, 0);
        let ratio = t.length(&inst) as f64 / nn.length(&inst) as f64;
        assert!(ratio < 1.6, "Hilbert/NN ratio = {ratio:.2}");
    }

    #[test]
    fn clustered_fields_work_too() {
        let inst = generate("sfc", 300, Style::Clustered { clusters: 6 }, 4);
        let t = space_filling(&inst);
        t.validate().unwrap();
    }
}
