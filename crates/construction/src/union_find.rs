//! Union–find (disjoint set union) with path halving and union by size —
//! the fragment bookkeeping of the Multiple Fragment heuristic.

/// A disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`; `false` when already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.sets -= 1;
        true
    }

    /// `true` when `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn sets(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_merge_and_count() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.sets(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.sets(), 2);
    }

    #[test]
    fn find_is_idempotent_after_path_compression() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(i - 1, i);
        }
        let r = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), r);
        }
        assert_eq!(uf.sets(), 1);
    }
}
