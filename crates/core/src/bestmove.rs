//! Best-move representation and the packed atomic-min encoding.
//!
//! The paper's kernel publishes its result with atomic operations:
//! "Using atomic operations the best candidates for swapping are stored
//! in the global memory". To make a *single* `atomicMin` both select the
//! best delta and deterministically break ties, the move is packed into
//! one 64-bit key:
//!
//! ```text
//! bits 63..40 : delta + 2^23   (biased so smaller delta => smaller key)
//! bits 39..20 : i              (tour position, < 2^20)
//! bits 19..0  : j              (tour position, < 2^20)
//! ```
//!
//! `fetch_min` over keys therefore yields the most-improving move, with
//! ties broken toward the lexicographically smallest `(i, j)` — the same
//! move a sequential best-improvement scan (i ascending, then j) finds,
//! which is what makes GPU and CPU engines bit-for-bit comparable.
//!
//! The 24-bit biased delta covers ±8.3 M, far beyond any single-move
//! delta on instances whose coordinates fit the generator's field (and
//! on all TSPLIB instances the paper uses); the packer saturates rather
//! than wraps if ever exceeded. The 20-bit positions cover n ≤ 1 048 575,
//! beyond the largest instance in the paper (lrb744710).

/// A 2-opt move in tour-position space with its length delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BestMove {
    /// Length change (negative = improvement).
    pub delta: i32,
    /// First removed edge is `(i, i+1)`.
    pub i: u32,
    /// Second removed edge is `(j, j+1)`.
    pub j: u32,
}

/// Bias added to deltas before packing (2^23).
const DELTA_BIAS: i64 = 1 << 23;
/// Maximum biased delta (24 bits).
const DELTA_MASK: u64 = (1 << 24) - 1;
/// Position field width.
const POS_BITS: u32 = 20;
/// Maximum encodable tour position.
pub const MAX_POSITION: u32 = (1 << POS_BITS) - 1;

/// Key representing "no move found" — larger than any real packed key
/// with an improving (or even zero) delta.
pub const EMPTY_KEY: u64 = u64::MAX;

/// Pack a move into its atomic-min key.
#[inline(always)]
pub fn pack(delta: i32, i: u32, j: u32) -> u64 {
    debug_assert!(i <= MAX_POSITION && j <= MAX_POSITION);
    let biased = (delta as i64 + DELTA_BIAS).clamp(0, DELTA_MASK as i64) as u64;
    (biased << (2 * POS_BITS)) | ((i as u64) << POS_BITS) | j as u64
}

/// Unpack an atomic-min key; `None` for [`EMPTY_KEY`].
#[inline]
pub fn unpack(key: u64) -> Option<BestMove> {
    if key == EMPTY_KEY {
        return None;
    }
    let j = (key & MAX_POSITION as u64) as u32;
    let i = ((key >> POS_BITS) & MAX_POSITION as u64) as u32;
    let delta = ((key >> (2 * POS_BITS)) & DELTA_MASK) as i64 - DELTA_BIAS;
    Some(BestMove {
        delta: delta as i32,
        i,
        j,
    })
}

impl BestMove {
    /// `true` when applying the move shortens the tour.
    #[inline]
    pub fn improves(&self) -> bool {
        self.delta < 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for &(d, i, j) in &[
            (0i32, 0u32, 1u32),
            (-1, 5, 9),
            (-500_000, 123_456, 654_321),
            (500_000, MAX_POSITION, MAX_POSITION),
            (i32::MIN / 2_000, 0, 2),
        ] {
            let m = unpack(pack(d, i, j)).unwrap();
            assert_eq!(m, BestMove { delta: d, i, j });
        }
    }

    #[test]
    fn ordering_prefers_smaller_delta() {
        assert!(pack(-10, 9, 10) < pack(-9, 0, 1));
        assert!(pack(-1, 0, 1) < pack(0, 0, 1));
    }

    #[test]
    fn ordering_breaks_ties_lexicographically() {
        assert!(pack(-5, 1, 2) < pack(-5, 1, 3));
        assert!(pack(-5, 1, 9) < pack(-5, 2, 3));
    }

    #[test]
    fn empty_key_unpacks_to_none() {
        assert_eq!(unpack(EMPTY_KEY), None);
    }

    #[test]
    fn empty_key_loses_to_any_real_move() {
        assert!(pack(8_000_000 - 1, MAX_POSITION, MAX_POSITION) < EMPTY_KEY);
    }

    #[test]
    fn saturation_instead_of_wrap() {
        // A delta past the 24-bit budget saturates; ordering vs. a sane
        // delta is still correct.
        let huge = pack(i32::MAX, 0, 1);
        let sane = pack(100, 0, 1);
        assert!(sane < huge);
        let tiny = pack(i32::MIN, 0, 1);
        assert!(tiny < sane);
        // Saturated unpack yields the clamp boundary, not garbage.
        assert_eq!(unpack(tiny).unwrap().delta, -(1 << 23));
    }

    #[test]
    fn improves_is_strictly_negative() {
        assert!(BestMove {
            delta: -1,
            i: 0,
            j: 1
        }
        .improves());
        assert!(!BestMove {
            delta: 0,
            i: 0,
            j: 1
        }
        .improves());
    }
}
