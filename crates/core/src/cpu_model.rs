//! Modeled timing for the CPU engines.
//!
//! The CPU baselines *really execute* on the host (so results are exact
//! and wall-clock measurable), but to compare devices on an equal footing
//! the harnesses also need model-consistent times — the paper's own CPU
//! baseline is an OpenCL target measured on specific 2012/2013 hardware,
//! not on whatever machine happens to run this crate. The same roofline
//! model as the GPU path ([`gpu_sim::timing`]) is therefore applied with
//! a CPU [`DeviceSpec`]: per-pair work is 4 distance evaluations
//! (32 FLOPs) against 64 bytes of coordinate traffic served by the
//! cache/DRAM hierarchy, which the paper identifies as the CPU limit.

use crate::delta::{DISTS_PER_CHECK, FLOPS_PER_CHECK};
use gpu_sim::{timing, DeviceSpec, PerfCounters};

/// Bytes of coordinate traffic per candidate-pair check: the four points
/// `i`, `i+1`, `j`, `j+1` are each loaded once (8 bytes of `float2`) and
/// register-reused across the four distance evaluations.
pub const BYTES_PER_CHECK: u64 = 4 * 8;
const _: () = assert!(DISTS_PER_CHECK == 4);

/// Modeled time for one full sweep of `pairs` candidate checks on a CPU
/// described by `spec`, assuming perfect division across its cores.
pub fn model_cpu_sweep_seconds(spec: &DeviceSpec, pairs: u64) -> f64 {
    let cu = spec.compute_units.max(1) as u64;
    let per_core = PerfCounters {
        flops: pairs * FLOPS_PER_CHECK / cu,
        shared_bytes: pairs * BYTES_PER_CHECK / cu,
        ..Default::default()
    };
    let bt = timing::block_time(spec, &per_core, 1);
    timing::kernel_time(spec, &vec![bt; cu as usize])
}

/// FLOPs for `pairs` checks (for profiles).
#[inline]
pub fn flops_for_pairs(pairs: u64) -> u64 {
    pairs * FLOPS_PER_CHECK
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::spec;

    #[test]
    fn parallel_cpu_is_faster_than_sequential_model() {
        let pairs = 10_000_000;
        let seq = model_cpu_sweep_seconds(&spec::sequential_cpu(), pairs);
        let par = model_cpu_sweep_seconds(&spec::core_i7_3960x(), pairs);
        assert!(seq > par * 2.0, "seq {seq}, par {par}");
    }

    #[test]
    fn model_scales_linearly_in_pairs() {
        let s = spec::xeon_e5_2660_x2();
        let t1 = model_cpu_sweep_seconds(&s, 1_000_000);
        let t10 = model_cpu_sweep_seconds(&s, 10_000_000);
        // Within overhead tolerance, 10x pairs ≈ 10x time.
        assert!((t10 / t1 - 10.0).abs() < 1.0, "ratio {}", t10 / t1);
    }

    #[test]
    fn xeon_sweep_rate_is_bandwidth_bound() {
        // 32 B/check at 19 GB/s => ~594 M checks/s for the dual Xeon.
        let s = spec::xeon_e5_2660_x2();
        let pairs = 100_000_000u64;
        let t = model_cpu_sweep_seconds(&s, pairs);
        let rate = pairs as f64 / t;
        assert!(
            (4e8..8e8).contains(&rate),
            "modeled Xeon rate = {rate:.3e} checks/s"
        );
    }
}
