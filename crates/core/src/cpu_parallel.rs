//! The multi-core CPU engine — the stand-in for the paper's parallel
//! OpenCL CPU implementation ("The CPU parallel implementation based on
//! OpenCL", 6–16 cores).
//!
//! The linear pair-index space of the triangular scheme is split into
//! contiguous chunks; each worker walks its chunk *incrementally*
//! (`(i, j) → (i+1, j)` or `(0, j+1)`), keeping a local best, and the
//! chunk results reduce to the global best with the same
//! `(delta, i, j)` lexicographic order the packed-atomic GPU reduction
//! uses — so all engines agree bit-for-bit.

use crate::bestmove::BestMove;
use crate::cpu_model::{flops_for_pairs, model_cpu_sweep_seconds};
use crate::delta::delta_ordered;
use crate::indexing::{index_to_pair, pair_count};
use crate::search::{EngineError, StepProfile, TwoOptEngine};
use gpu_sim::DeviceSpec;
use rayon::prelude::*;
use tsp_core::{Instance, Point, Tour};

/// Multi-threaded exact 2-opt engine (rayon).
pub struct CpuParallelTwoOpt {
    spec: DeviceSpec,
    /// Number of chunks to split the pair space into (default:
    /// 8 × available parallelism, for load balance).
    chunks: usize,
    ordered: Vec<Point>,
}

impl CpuParallelTwoOpt {
    /// Engine modeled as the paper's 6-core host CPU (i7-3960X).
    pub fn new() -> Self {
        Self::with_spec(gpu_sim::spec::core_i7_3960x())
    }

    /// Engine with an explicit CPU spec (e.g. the dual Xeon of Fig. 10).
    pub fn with_spec(spec: DeviceSpec) -> Self {
        let chunks = rayon::current_num_threads().max(1) * 8;
        CpuParallelTwoOpt {
            spec,
            chunks,
            ordered: Vec::new(),
        }
    }

    /// Override the chunk count (ablation / tests).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks.max(1);
        self
    }
}

impl Default for CpuParallelTwoOpt {
    fn default() -> Self {
        Self::new()
    }
}

/// Scan pairs `[start, end)` of the linear index space over ordered
/// coordinates, returning the chunk's best move.
fn scan_chunk(pts: &[Point], start: u64, end: u64) -> Option<BestMove> {
    let (mut i, mut j) = index_to_pair(start);
    let mut best: Option<BestMove> = None;
    for _ in start..end {
        let d = delta_ordered(pts, i as usize, j as usize);
        if d < best.map_or(0, |b| b.delta) {
            best = Some(BestMove {
                delta: d,
                i: i as u32,
                j: j as u32,
            });
        }
        i += 1;
        if i == j {
            i = 0;
            j += 1;
        }
    }
    best
}

/// Lexicographic (delta, i, j) minimum — matches the packed-key order.
fn better(a: Option<BestMove>, b: Option<BestMove>) -> Option<BestMove> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => {
            if (x.delta, x.i, x.j) <= (y.delta, y.i, y.j) {
                Some(x)
            } else {
                Some(y)
            }
        }
    }
}

impl TwoOptEngine for CpuParallelTwoOpt {
    fn name(&self) -> String {
        format!("cpu-parallel[{}]", self.spec.name)
    }

    fn best_move(
        &mut self,
        inst: &Instance,
        tour: &Tour,
    ) -> Result<(Option<BestMove>, StepProfile), EngineError> {
        if !inst.is_coordinate_based() {
            return Err(EngineError::Unsupported(
                "the parallel CPU engine mirrors the coordinate kernels; \
                 explicit-matrix instances are served by SequentialTwoOpt"
                    .into(),
            ));
        }
        let n = tour.len();
        let pairs = pair_count(n);
        if pairs == 0 {
            return Ok((None, StepProfile::default()));
        }

        self.ordered.clear();
        self.ordered
            .extend(tour.as_slice().iter().map(|&c| inst.point(c as usize)));
        let pts = &self.ordered;

        let chunks = (self.chunks as u64).min(pairs);
        let per = pairs.div_ceil(chunks);
        let best = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let start = c * per;
                let end = ((c + 1) * per).min(pairs);
                scan_chunk(pts, start, end)
            })
            .reduce(|| None, better);

        let profile = StepProfile {
            pairs_checked: pairs,
            flops: flops_for_pairs(pairs),
            kernel_seconds: model_cpu_sweep_seconds(&self.spec, pairs),
            reversal_seconds: 0.0,
            h2d_seconds: 0.0,
            d2h_seconds: 0.0,
        };
        Ok((best.filter(|m| m.improves()), profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialTwoOpt;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tsp_core::Metric;

    fn random_instance(n: usize, seed: u64) -> Instance {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn agrees_with_sequential_on_random_instances() {
        for seed in 0..5 {
            let inst = random_instance(60, seed);
            let mut rng = SmallRng::seed_from_u64(seed + 1000);
            let tour = Tour::random(60, &mut rng);
            let mut seq = SequentialTwoOpt::new();
            let mut par = CpuParallelTwoOpt::new().with_chunks(13);
            let (ms, ps) = seq.best_move(&inst, &tour).unwrap();
            let (mp, pp) = par.best_move(&inst, &tour).unwrap();
            assert_eq!(ms, mp, "seed {seed}");
            assert_eq!(ps.pairs_checked, pp.pairs_checked);
        }
    }

    #[test]
    fn chunk_walk_covers_whole_space() {
        // scan_chunk over the full range equals a nested-loop scan.
        let inst = random_instance(30, 9);
        let tour = Tour::identity(30);
        let pts = tour.ordered_points(&inst).unwrap();
        let pairs = pair_count(30);
        let full = scan_chunk(&pts, 0, pairs);
        // Piecewise in 7 chunks reduces to the same move.
        let per = pairs.div_ceil(7);
        let mut acc = None;
        for c in 0..7 {
            let s = c * per;
            let e = ((c + 1) * per).min(pairs);
            acc = better(acc, scan_chunk(&pts, s, e));
        }
        assert_eq!(full, acc);
    }

    #[test]
    fn rejects_explicit_instances() {
        use tsp_core::ExplicitMatrix;
        let m = ExplicitMatrix::from_upper_row(4, &[1, 2, 3, 4, 5, 6]).unwrap();
        let inst = Instance::from_matrix("em", m, None).unwrap();
        let tour = Tour::identity(4);
        let mut par = CpuParallelTwoOpt::new();
        assert!(matches!(
            par.best_move(&inst, &tour),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn modeled_time_positive_and_scales() {
        let inst = random_instance(100, 3);
        let tour = Tour::identity(100);
        let mut par = CpuParallelTwoOpt::new();
        let (_, p100) = par.best_move(&inst, &tour).unwrap();
        let inst2 = random_instance(400, 3);
        let tour2 = Tour::identity(400);
        let (_, p400) = par.best_move(&inst2, &tour2).unwrap();
        assert!(p400.kernel_seconds > p100.kernel_seconds);
        assert!(p100.kernel_seconds > 0.0);
    }
}
