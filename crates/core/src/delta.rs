//! 2-opt move evaluation.
//!
//! A candidate pair of tour positions `(i, j)` (with `i < j <= n - 2`)
//! proposes removing edges `(i, i+1)` and `(j, j+1)` and reconnecting as
//! `(i, j)` and `(i+1, j+1)` — the paper's Fig. 1. The *delta* is the
//! length change; the move improves the tour iff the paper's §I condition
//! holds:
//!
//! ```text
//! d(i, i+1) + d(j, j+1) > d(i, j+1) + d(j, i+1)
//! ```
//!
//! (the paper writes the reconnection as `[i, j+1]` / `[j, i+1]` — with
//! the segment between reversed, this is the same single legal
//! reconnection; in position terms the new edges join `i` with `j` and
//! `i+1` with `j+1`).

use crate::flops::FLOPS_PER_DISTANCE;
use tsp_core::{Instance, Point, Tour};

/// Number of distance evaluations one candidate-pair check performs.
pub const DISTS_PER_CHECK: u64 = 4;

/// FLOPs one candidate-pair check performs (4 distances).
pub const FLOPS_PER_CHECK: u64 = DISTS_PER_CHECK * FLOPS_PER_DISTANCE;

/// Delta of the 2-opt move `(i, j)` in *tour-position* space, evaluated
/// through the instance's metric (works for explicit matrices too).
///
/// Negative means the move shortens the tour.
#[inline]
pub fn delta_positions(inst: &Instance, tour: &Tour, i: usize, j: usize) -> i64 {
    debug_assert!(i < j && j + 1 < tour.len());
    let a = tour.city(i) as usize;
    let b = tour.city(i + 1) as usize;
    let c = tour.city(j) as usize;
    let d = tour.city(j + 1) as usize;
    (inst.dist(a, c) as i64 + inst.dist(b, d) as i64)
        - (inst.dist(a, b) as i64 + inst.dist(c, d) as i64)
}

/// Delta of the 2-opt move `(i, j)` over **route-ordered coordinates**
/// (the paper's Optimization 2 layout): `pts[k]` is the coordinate of the
/// city at tour position `k`. Exactly the arithmetic of the paper's
/// Listing 1, in `f32`.
#[inline(always)]
pub fn delta_ordered(pts: &[Point], i: usize, j: usize) -> i32 {
    debug_assert!(i < j && j + 1 < pts.len());
    let pi = pts[i];
    let pi1 = pts[i + 1];
    let pj = pts[j];
    let pj1 = pts[j + 1];
    (pi.euc_2d(&pj) + pi1.euc_2d(&pj1)) - (pi.euc_2d(&pi1) + pj.euc_2d(&pj1))
}

/// Delta evaluated over two *separate* coordinate ranges — the tiled
/// kernel's form (the paper's Listing 2, `calculateDistance2D_extended`,
/// takes "2 sets of coordinates ... A for point i and B for point j").
///
/// `a` holds positions `[a_start .. a_start + a.len())` of the ordered
/// route, `b` likewise; `i`/`j` are *global* positions. `i+1` must still
/// be inside `a` and `j+1` inside `b` (tiles overlap by one on purpose —
/// see the tiled kernel).
#[inline(always)]
pub fn delta_tiled(
    a: &[Point],
    a_start: usize,
    b: &[Point],
    b_start: usize,
    i: usize,
    j: usize,
) -> i32 {
    let pi = a[i - a_start];
    let pi1 = a[i + 1 - a_start];
    let pj = b[j - b_start];
    let pj1 = b[j + 1 - b_start];
    (pi.euc_2d(&pj) + pi1.euc_2d(&pj1)) - (pi.euc_2d(&pi1) + pj.euc_2d(&pj1))
}

/// Verify a delta the slow way: apply the move to a scratch tour and
/// recompute the full length. Test helper, exact by construction.
pub fn delta_by_recompute(inst: &Instance, tour: &Tour, i: usize, j: usize) -> i64 {
    let before = tour.length(inst);
    let mut t = tour.clone();
    t.apply_two_opt(i, j);
    t.length(inst) - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::Metric;

    fn square() -> Instance {
        Instance::new(
            "square4",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn delta_matches_recompute_on_square() {
        let inst = square();
        let tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        for i in 0..2 {
            for j in (i + 1)..3 {
                assert_eq!(
                    delta_positions(&inst, &tour, i, j),
                    delta_by_recompute(&inst, &tour, i, j),
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn crossing_square_improves_by_eight() {
        let inst = square();
        // 0 -> 2 -> 1 -> 3: length 48; uncrossing saves 8.
        let tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        assert_eq!(delta_positions(&inst, &tour, 0, 2), -8);
    }

    #[test]
    fn ordered_delta_agrees_with_position_delta() {
        let inst = square();
        let tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let pts = tour.ordered_points(&inst).unwrap();
        for i in 0..2 {
            for j in (i + 1)..3 {
                assert_eq!(
                    delta_ordered(&pts, i, j) as i64,
                    delta_positions(&inst, &tour, i, j)
                );
            }
        }
    }

    #[test]
    fn tiled_delta_agrees_with_ordered() {
        let inst = square();
        let tour = Tour::new(vec![3, 1, 0, 2]).unwrap();
        let pts = tour.ordered_points(&inst).unwrap();
        // Split into a = pts[0..3], b = pts[1..4]; check pair (0, 2):
        // i=0, i+1=1 in a (start 0); j=2, j+1=3 in b (start 1).
        let d = delta_tiled(&pts[0..3], 0, &pts[1..4], 1, 0, 2);
        assert_eq!(d, delta_ordered(&pts, 0, 2));
    }

    #[test]
    fn adjacent_pair_has_zero_delta() {
        let inst = square();
        let tour = Tour::identity(4);
        assert_eq!(delta_positions(&inst, &tour, 1, 2), 0);
    }

    #[test]
    fn flop_accounting_constants() {
        assert_eq!(DISTS_PER_CHECK, 4);
        assert_eq!(FLOPS_PER_CHECK, 32);
    }
}
