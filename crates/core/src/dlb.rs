//! Don't-look bits 2-opt — the classic Bentley acceleration for *CPU*
//! local search, included as the strongest sequential baseline the
//! paper's brute-force GPU sweep should be contrasted against
//! (the paper: "The fastest sequential algorithms use complex pruning
//! schemes and specialized data structures which we did not use").
//!
//! Each city carries a "don't look" flag. Only cities whose flag is
//! clear are scanned; a city is scanned against its k-nearest-neighbour
//! candidates in both tour directions, with the standard radius cutoff
//! (`d(a, b) >= d(a, succ(a))` for the forward direction ends the sorted
//! candidate walk). When no improving move touches a city, its flag is
//! set; applying a move clears the flags of its four endpoints. The
//! search ends when every flag is set.

use tsp_core::neighbor::NeighborLists;
use tsp_core::{Instance, Tour};

/// Statistics of a don't-look-bits descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlbStats {
    /// Improving moves applied.
    pub moves: u64,
    /// Candidate evaluations performed.
    pub checks: u64,
}

/// Run 2-opt descent with don't-look bits and k-NN candidate lists.
///
/// With `k >= n - 1` the candidate lists are complete and the result is
/// a true 2-opt local minimum (with respect to the non-wrapping
/// neighbourhood); smaller `k` trades a little quality for near-linear
/// sweeps, exactly like [`crate::pruned`].
pub fn optimize(inst: &Instance, tour: &mut Tour, k: usize) -> DlbStats {
    let n = tour.len();
    let mut stats = DlbStats {
        moves: 0,
        checks: 0,
    };
    if n < 4 {
        return stats;
    }
    let lists = NeighborLists::build(inst, k);

    // position of each city in the tour.
    let mut pos: Vec<u32> = vec![0; n];
    for (p, &c) in tour.as_slice().iter().enumerate() {
        pos[c as usize] = p as u32;
    }
    let mut dont_look = vec![false; n];
    // Queue of cities to (re)examine; bounded by flags.
    let mut queue: Vec<u32> = (0..n as u32).collect();
    let mut in_queue = vec![true; n];
    let mut head = 0usize;

    while head < queue.len() {
        let a = queue[head] as usize;
        head += 1;
        in_queue[a] = false;
        if dont_look[a] {
            continue;
        }
        // Compact the consumed prefix occasionally.
        if head > 4096 {
            queue.drain(..head);
            head = 0;
        }

        let mut improved_any = false;
        // Two directions: remove (a, succ a) or (pred a, a).
        'dirs: for dir in 0..2 {
            let pa = pos[a] as usize;
            // The candidate pair (i, j) removes edges (i, i+1), (j, j+1)
            // with our non-wrapping convention; map city/direction to a
            // first-edge start position.
            let i_of = |p: usize| -> Option<usize> {
                match dir {
                    0 => (p <= n - 2).then_some(p), // edge (a, succ)
                    _ => p.checked_sub(1),          // edge (pred, a)
                }
            };
            let Some(ia) = i_of(pa) else { continue };
            let a_edge_len = {
                let x = tour.city(ia) as usize;
                let y = tour.city(ia + 1) as usize;
                inst.dist(x, y)
            };
            for &b in lists.neighbors(a) {
                stats.checks += 1;
                // Radius cutoff: candidates are sorted, so once the
                // neighbour is farther than the edge we might remove,
                // nothing later can improve through this city/direction.
                if inst.dist(a, b as usize) >= a_edge_len {
                    break;
                }
                let pb = pos[b as usize] as usize;
                let Some(ib) = i_of(pb) else { continue };
                let (lo, hi) = if ia < ib { (ia, ib) } else { (ib, ia) };
                if lo == hi {
                    continue;
                }
                let delta = crate::delta::delta_positions(inst, tour, lo, hi);
                if delta < 0 {
                    // Apply and update the position index of the
                    // reversed segment.
                    tour.apply_two_opt(lo, hi);
                    for p in (lo + 1)..=hi {
                        pos[tour.city(p) as usize] = p as u32;
                    }
                    stats.moves += 1;
                    improved_any = true;
                    // Wake the four endpoints.
                    for p in [lo, lo + 1, hi, (hi + 1).min(n - 1)] {
                        let c = tour.city(p) as usize;
                        dont_look[c] = false;
                        if !in_queue[c] {
                            queue.push(c as u32);
                            in_queue[c] = true;
                        }
                    }
                    break 'dirs;
                }
            }
        }
        if improved_any {
            // Re-examine `a` until it is quiescent.
            if !in_queue[a] {
                queue.push(a as u32);
                in_queue[a] = true;
            }
        } else {
            dont_look[a] = true;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{optimize as sweep_optimize, SearchOptions};
    use crate::sequential::SequentialTwoOpt;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::{Instance, Metric, Point};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn improves_and_stays_valid() {
        let inst = random_instance(200, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut tour = Tour::random(200, &mut rng);
        let before = tour.length(&inst);
        let stats = optimize(&inst, &mut tour, 10);
        assert!(stats.moves > 0);
        assert!(tour.length(&inst) < before);
        tour.validate().unwrap();
    }

    #[test]
    fn with_complete_lists_no_neighbor_limited_move_remains() {
        let inst = random_instance(50, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut tour = Tour::random(50, &mut rng);
        optimize(&inst, &mut tour, 49);
        // DLB's radius cutoff means only radius-admissible moves are
        // guaranteed gone; every remaining improving 2-opt move (if any)
        // must violate both radius conditions. Check that directly.
        let n = 50;
        for i in 0..=(n - 3) {
            for j in (i + 1)..=(n - 2) {
                let delta = crate::delta::delta_positions(&inst, &tour, i, j);
                if delta < 0 {
                    let a = tour.city(i) as usize;
                    let b = tour.city(j) as usize;
                    let ab = inst.dist(a, b);
                    let a_next = inst.dist(a, tour.city(i + 1) as usize);
                    let b_next = inst.dist(b, tour.city(j + 1) as usize);
                    // Improving 2-opt moves always satisfy
                    // d(a,b) < d(a, next a) or d(a,b) < d(b, next b);
                    // with complete lists DLB must therefore have found
                    // them all.
                    assert!(
                        ab >= a_next && ab >= b_next,
                        "DLB missed a radius-admissible move ({i},{j}) delta {delta}"
                    );
                }
            }
        }
    }

    #[test]
    fn dlb_checks_far_fewer_candidates_than_sweeping() {
        let inst = random_instance(300, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let start = Tour::random(300, &mut rng);

        let mut sweep_tour = start.clone();
        let mut seq = SequentialTwoOpt::new();
        let sweep_stats =
            sweep_optimize(&mut seq, &inst, &mut sweep_tour, SearchOptions::default()).unwrap();

        let mut dlb_tour = start;
        let stats = optimize(&inst, &mut dlb_tour, 12);
        assert!(
            stats.checks * 20 < sweep_stats.profile.pairs_checked,
            "DLB {} vs sweep {}",
            stats.checks,
            sweep_stats.profile.pairs_checked
        );
        // And the quality is close (within 10%).
        let gap = (dlb_tour.length(&inst) - sweep_tour.length(&inst)) as f64
            / sweep_tour.length(&inst) as f64;
        assert!(gap < 0.10, "DLB quality gap {gap:.3}");
    }

    #[test]
    fn trivial_inputs() {
        let inst = random_instance(4, 7);
        let mut tour = Tour::identity(4);
        let stats = optimize(&inst, &mut tour, 3);
        tour.validate().unwrap();
        // n=4 may or may not have a move; just ensure termination and
        // sane accounting.
        assert!(stats.checks < 100);
    }
}
