//! FLOP-accounting conventions for the paper's Fig. 9 metric.
//!
//! The paper plots "GFLOP/s (distance calculation) observed during the
//! run". One Euclidean distance (Listing 1) is two subtractions, two
//! multiplications, one addition, one square root, one addition of 0.5
//! and one truncation; counting the root as a single FLOP and ignoring
//! the type conversion gives **8 FLOPs per distance** — the conventional
//! count under which the paper's published 680/830 GFLOP/s figures are
//! consistent with Kepler/GCN sustained throughput on this kernel.

/// FLOPs charged per Euclidean distance evaluation.
pub const FLOPS_PER_DISTANCE: u64 = 8;
