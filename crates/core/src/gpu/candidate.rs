//! Sub-quadratic candidate-list 2-opt sweep (the §VII "neighborhood
//! pruning" future-work item, on the device).
//!
//! Instead of the dense O(n²) pair scan, each *active* city `a` (one
//! whose don't-look bit is clear) evaluates only the moves that remove
//! its tour edge together with the edge of one of its `k` nearest
//! neighbours: `O(active · k)` checks per sweep. The access pattern is
//! gather-heavy — a neighbour id from the candidate list, that city's
//! tour position, then the four route-ordered points — so the modeled
//! per-check traffic is [`CANDIDATE_BYTES_PER_CHECK`], larger per check
//! than the dense kernels' staged loads but vastly fewer checks.
//!
//! Divergence note: skipped pairs (adjacent positions, or `hi` past the
//! last movable edge) are charged like evaluated ones. SIMT lanes run
//! the candidate loop in lockstep, so a skipped lane saves no time; the
//! uniform accounting also keeps the analytic
//! [`crate::gpu::model_candidate_sweep`] bit-exact against this
//! executor from `(n, k, active)` alone.
//!
//! Each active city writes its thread-local best as one packed word to
//! its own output slot — no atomics, no shared memory. The host reduces
//! the `active`-sized result vector (u64 min, identical tie-break to the
//! dense kernels' `fetch_min`) and uses the per-slot words to settle
//! don't-look bits: a city whose slot came back non-improving is put to
//! sleep until an applied move touches one of its tour neighbours.

use crate::bestmove::{pack, EMPTY_KEY};
use crate::cpu_model::BYTES_PER_CHECK;
use crate::delta::FLOPS_PER_CHECK;
use gpu_sim::{AtomicDeviceBuffer, DeviceBuffer, Kernel, ThreadCtx};
use tsp_core::Point;

/// Modeled global-memory bytes gathered per candidate check: the
/// neighbour id (4 B), its position (4 B) and the four route-ordered
/// points (32 B, as in the dense kernels).
pub const CANDIDATE_BYTES_PER_CHECK: u64 = BYTES_PER_CHECK + 8;

/// Modeled global-memory bytes read once per handled active city: its
/// work-list entry (4 B) and its own position (4 B).
pub const CANDIDATE_CITY_READ_BYTES: u64 = 8;

/// Modeled global-memory bytes written once per handled active city:
/// the packed best-move word of its slot.
pub const CANDIDATE_CITY_WRITE_BYTES: u64 = 8;

/// The candidate-list evaluation kernel.
///
/// One output slot per entry of `active`; slot `s` receives the packed
/// best move among the candidate pairs of city `active[s]`, or
/// [`EMPTY_KEY`] when none improves.
pub struct CandidateSweepKernel<'a> {
    /// Route-ordered coordinates (position-indexed, Optimization 2).
    pub coords: &'a DeviceBuffer<Point>,
    /// City → tour position.
    pub pos: &'a DeviceBuffer<u32>,
    /// Flattened `n × k` candidate lists (city ids).
    pub lists: &'a DeviceBuffer<u32>,
    /// Neighbours per city.
    pub k: usize,
    /// Work list: the cities whose don't-look bits are clear.
    pub active: &'a DeviceBuffer<u32>,
    /// Per-active-city packed best-move slots.
    pub out: &'a AtomicDeviceBuffer,
}

impl Kernel for CandidateSweepKernel<'_> {
    type Shared = ();

    fn shared_bytes(&self) -> usize {
        0
    }

    fn make_shared(&self) {}

    fn num_phases(&self) -> usize {
        1
    }

    fn label(&self) -> &str {
        "2opt-eval-candidate"
    }

    fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>, _shared: &mut ()) {
        let n = self.coords.len();
        let pts = self.coords.as_slice();
        let pos = self.pos.as_slice();
        let lists = self.lists.as_slice();
        let active = self.active.as_slice();
        let stride = ctx.total_threads() as usize;
        let mut slot = ctx.global_thread_id() as usize;
        let mut cities = 0u64;
        let mut checks = 0u64;
        while slot < active.len() {
            let a = active[slot] as usize;
            let i = pos[a] as usize;
            let mut best = EMPTY_KEY;
            for &b in &lists[a * self.k..(a + 1) * self.k] {
                let p = pos[b as usize] as usize;
                let (lo, hi) = if i < p { (i, p) } else { (p, i) };
                // Same pair space as the dense sweep: 0 ≤ lo < hi ≤ n-2.
                if lo == hi || hi + 2 > n {
                    continue;
                }
                let (pi, pi1, pj, pj1) = (pts[lo], pts[lo + 1], pts[hi], pts[hi + 1]);
                let d = (pi.euc_2d(&pj) + pi1.euc_2d(&pj1)) - (pi.euc_2d(&pi1) + pj.euc_2d(&pj1));
                let key = pack(d, lo as u32, hi as u32);
                if key < best {
                    best = key;
                }
            }
            // Uniform accounting: all k lanes pay, evaluated or skipped.
            checks += self.k as u64;
            self.out.store(slot, best);
            cities += 1;
            slot += stride;
        }
        ctx.flops(checks * FLOPS_PER_CHECK);
        ctx.global_read(cities * CANDIDATE_CITY_READ_BYTES + checks * CANDIDATE_BYTES_PER_CHECK);
        ctx.global_write(cities * CANDIDATE_CITY_WRITE_BYTES);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bestmove::{unpack, BestMove};
    use crate::gpu::small::{GlobalOnlyKernel, RESULT_SLOT};
    use crate::neighbors::CandidateLists;
    use gpu_sim::{spec, Device, LaunchConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::{Instance, Metric, Tour};

    fn scatter(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        Instance::new("scatter", Metric::Euc2d, pts).unwrap()
    }

    /// Launch the kernel with every city active; return the host-reduced
    /// best key and the per-slot words.
    fn sweep(inst: &Instance, tour: &Tour, k: usize, cfg: LaunchConfig) -> (u64, Vec<u64>) {
        let n = tour.len();
        let dev = Device::new(spec::gtx_680_cuda());
        let cl = CandidateLists::build(inst, k);
        let ordered: Vec<Point> = tour
            .as_slice()
            .iter()
            .map(|&c| inst.point(c as usize))
            .collect();
        let mut pos = vec![0u32; n];
        for (p, &c) in tour.as_slice().iter().enumerate() {
            pos[c as usize] = p as u32;
        }
        let active: Vec<u32> = (0..n as u32).collect();
        let (coords, _) = dev.copy_to_device(&ordered).unwrap();
        let (pos, _) = dev.copy_to_device(&pos).unwrap();
        let (lists, _) = dev.copy_to_device(cl.flat()).unwrap();
        let (active, _) = dev.copy_to_device(&active).unwrap();
        let out = dev.alloc_atomic(n, EMPTY_KEY).unwrap();
        let kernel = CandidateSweepKernel {
            coords: &coords,
            pos: &pos,
            lists: &lists,
            k: cl.k(),
            active: &active,
            out: &out,
        };
        dev.launch(cfg, &kernel).unwrap();
        let words = out.to_vec();
        (words.iter().copied().min().unwrap(), words)
    }

    #[test]
    fn kernel_matches_the_host_mirror() {
        let inst = scatter(120, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        let tour = Tour::random(120, &mut rng);
        let cl = CandidateLists::build(&inst, 6);
        let expected = cl.best_candidate_move(&inst, &tour);
        let (key, words) = sweep(&inst, &tour, 6, LaunchConfig::new(4, 32));
        assert_eq!(unpack(key).filter(BestMove::improves), expected);
        // Slot s belongs to city s here (identity active list): each
        // word must be the city's own best candidate move.
        for (city, &w) in words.iter().enumerate() {
            if let Some(m) = unpack(w) {
                assert!(
                    cl.neighbors(city)
                        .iter()
                        .any(|&b| tour.city(m.i as usize) == b
                            || tour.city(m.j as usize) == b
                            || tour.city(m.i as usize) == city as u32
                            || tour.city(m.j as usize) == city as u32),
                    "city {city} produced a move not touching its list"
                );
            }
        }
    }

    #[test]
    fn complete_lists_reproduce_the_dense_best_move() {
        let n = 64;
        let inst = scatter(n, 5);
        let mut rng = SmallRng::seed_from_u64(11);
        let tour = Tour::random(n, &mut rng);
        let (key, _) = sweep(&inst, &tour, n - 1, LaunchConfig::new(4, 64));

        let dev = Device::new(spec::gtx_680_cuda());
        let ordered: Vec<Point> = tour
            .as_slice()
            .iter()
            .map(|&c| inst.point(c as usize))
            .collect();
        let (coords, _) = dev.copy_to_device(&ordered).unwrap();
        let out = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        dev.launch(
            LaunchConfig::new(4, 64),
            &GlobalOnlyKernel {
                coords: &coords,
                out: &out,
            },
        )
        .unwrap();
        assert_eq!(key, out.load(RESULT_SLOT));
    }

    #[test]
    fn counters_are_a_function_of_active_and_k_alone() {
        // Same n/k/active sizes, different geometry: the per-launch
        // totals must agree (this is what lets the analytic model pin
        // them without running the kernel).
        let inst = scatter(90, 2);
        let tour = Tour::identity(90);
        let dev = Device::new(spec::gtx_680_cuda());
        let cl = CandidateLists::build(&inst, 5);
        let ordered: Vec<Point> = tour
            .as_slice()
            .iter()
            .map(|&c| inst.point(c as usize))
            .collect();
        let pos: Vec<u32> = (0..90u32).collect();
        let active: Vec<u32> = (0..90u32).collect();
        let (coords, _) = dev.copy_to_device(&ordered).unwrap();
        let (pos, _) = dev.copy_to_device(&pos).unwrap();
        let (lists, _) = dev.copy_to_device(cl.flat()).unwrap();
        let (active, _) = dev.copy_to_device(&active).unwrap();
        let mut totals = Vec::new();
        for cfg in [LaunchConfig::new(2, 32), LaunchConfig::new(7, 19)] {
            let out = dev.alloc_atomic(90, EMPTY_KEY).unwrap();
            let k = CandidateSweepKernel {
                coords: &coords,
                pos: &pos,
                lists: &lists,
                k: cl.k(),
                active: &active,
                out: &out,
            };
            let p = dev.launch(cfg, &k).unwrap();
            totals.push((
                p.counters.flops,
                p.counters.global_read_bytes,
                p.counters.global_write_bytes,
                p.counters.atomic_ops,
            ));
        }
        assert_eq!(totals[0], totals[1]);
        let checks = 90 * 5u64;
        assert_eq!(totals[0].0, checks * FLOPS_PER_CHECK);
        assert_eq!(
            totals[0].1,
            90 * CANDIDATE_CITY_READ_BYTES + checks * CANDIDATE_BYTES_PER_CHECK
        );
        assert_eq!(totals[0].2, 90 * CANDIDATE_CITY_WRITE_BYTES);
        assert_eq!(totals[0].3, 0);
    }
}
