//! Where a kernel's route-ordered coordinates live in global memory.
//!
//! The serial Algorithm-2 engine re-uploads the host-ordered coordinates
//! every sweep into an immutable [`DeviceBuffer`]. The device-resident
//! pipeline instead keeps them in an [`AtomicDeviceBuffer`] of packed
//! 64-bit words (the simulator's only kernel-writable memory), so the
//! segment-reversal kernel can apply the previous sweep's move in place.
//! The evaluation kernels are generic over [`CoordSource`], which keeps
//! the two paths running *identical* staging and evaluation code — and
//! therefore identical work counters, so the serial path's modeled times
//! are untouched by the resident machinery.

use gpu_sim::{AtomicDeviceBuffer, DeviceBuffer};
use tsp_core::Point;

/// A global-memory array of route-ordered coordinates, readable one
/// point (8 bytes) at a time. Implementors only provide the access;
/// kernels account the traffic themselves.
pub trait CoordSource: Sync {
    /// Number of points.
    fn len(&self) -> usize;

    /// `true` when the source holds no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The point at route position `k` — one 8-byte global read.
    fn get(&self, k: usize) -> Point;
}

impl CoordSource for &DeviceBuffer<Point> {
    #[inline]
    fn len(&self) -> usize {
        DeviceBuffer::len(self)
    }

    #[inline]
    fn get(&self, k: usize) -> Point {
        self.as_slice()[k]
    }
}

/// Route-ordered coordinates resident in an atomic word buffer, one
/// [`Point::to_device_word`]-packed point per 64-bit word.
pub struct ResidentCoords<'a>(pub &'a AtomicDeviceBuffer);

impl CoordSource for ResidentCoords<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline]
    fn get(&self, k: usize) -> Point {
        Point::from_device_word(self.0.load(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{spec, Device};

    #[test]
    fn both_sources_serve_the_same_points() {
        let dev = Device::new(spec::gtx_680_cuda());
        let pts = vec![
            Point::new(1.0, 2.0),
            Point::new(-3.5, 4.25),
            Point::new(0.0, -0.0),
        ];
        let (plain, _) = dev.copy_to_device(&pts).unwrap();
        let words: Vec<u64> = pts.iter().map(|p| p.to_device_word()).collect();
        let resident = dev.alloc_atomic(words.len(), 0).unwrap();
        dev.upload_atomic(&resident, &words).unwrap();

        let a = &plain;
        let b = ResidentCoords(&resident);
        assert_eq!(CoordSource::len(&a), b.len());
        for k in 0..pts.len() {
            let (pa, pb) = (a.get(k), b.get(k));
            assert_eq!(pa.x.to_bits(), pb.x.to_bits());
            assert_eq!(pa.y.to_bits(), pb.y.to_bits());
        }
    }
}
