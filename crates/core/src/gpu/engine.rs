//! The GPU engine: Algorithm 2 end-to-end on the simulated device.
//!
//! Per sweep (the paper's Algorithm 2):
//!
//! 1. order the coordinates on the host (Optimization 2, O(n) — "it
//!    brings some performance degradation caused by the additional time
//!    spent on host, however saves much more time by avoiding scattered
//!    read on GPU");
//! 2. copy them to device global memory (modeled H2D);
//! 3. launch the kernel (staged shared memory, strided evaluation,
//!    packed atomic-min reduction);
//! 4. read the one-word result back (modeled D2H);
//! 5. the caller applies the move on the host and repeats.
//!
//! The [`Strategy::DeviceResident`] variant breaks with step 1/2: the
//! coordinates are uploaded **once**, a [`SegmentReversalKernel`] applies
//! the previous sweep's move in place between evaluations, and the packed
//! best-move word is the only steady-state PCIe traffic. The serial path
//! above stays untouched as the faithful Algorithm-2 baseline.

use crate::bestmove::{unpack, BestMove, EMPTY_KEY, MAX_POSITION};
use crate::gpu::candidate::CandidateSweepKernel;
use crate::gpu::coords::ResidentCoords;
use crate::gpu::reverse::SegmentReversalKernel;
use crate::gpu::small::{GlobalOnlyKernel, OrderedSharedKernel, UnorderedSharedKernel};
use crate::gpu::tiled::{auto_tile, TiledKernel};
use crate::indexing::{pair_count, tile_pair_count};
use crate::neighbors::CandidateLists;
use crate::search::{EngineError, StepProfile, TwoOptEngine};
use gpu_sim::{
    AtomicDeviceBuffer, Device, DeviceBuffer, DeviceSpec, Kernel, KernelProfile, LaunchConfig,
    SimError, StreamId, TransferProfile,
};
use std::sync::Arc;
use tsp_core::{Instance, Point, Tour};

/// Route a launch to the engine's stream when it has one, to the serial
/// device path otherwise. Free functions (not methods) so call sites can
/// hold disjoint borrows of the engine's other fields.
fn dev_launch<K: Kernel>(
    device: &Device,
    stream: Option<StreamId>,
    cfg: LaunchConfig,
    kernel: &K,
) -> Result<KernelProfile, SimError> {
    match stream {
        Some(s) => device.launch_on(s, cfg, kernel),
        None => device.launch(cfg, kernel),
    }
}

fn dev_copy_to_device<T: Copy>(
    device: &Device,
    stream: Option<StreamId>,
    data: &[T],
    label: &'static str,
) -> Result<(DeviceBuffer<T>, TransferProfile), SimError> {
    match stream {
        Some(s) => device.copy_to_device_on_labeled(s, data, label),
        None => device.copy_to_device_labeled(data, label),
    }
}

fn dev_upload_atomic(
    device: &Device,
    stream: Option<StreamId>,
    buf: &AtomicDeviceBuffer,
    words: &[u64],
) -> Result<TransferProfile, SimError> {
    match stream {
        Some(s) => device.upload_atomic_on(s, buf, words),
        None => device.upload_atomic(buf, words),
    }
}

fn dev_copy_from_device(
    device: &Device,
    stream: Option<StreamId>,
    buf: &AtomicDeviceBuffer,
) -> Result<(Vec<u64>, TransferProfile), SimError> {
    match stream {
        Some(s) => device.copy_from_device_on(s, buf),
        None => Ok(device.copy_from_device(buf)),
    }
}

/// Kernel selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Pick automatically: the shared-memory kernel when the instance
    /// fits on chip, the tiled division scheme otherwise (the paper's
    /// "solving any instance" mode).
    Auto,
    /// Force the §IV.A shared-memory kernel (errors when too large).
    Shared,
    /// Force the §IV.B tiled kernel with the given tile size.
    Tiled {
        /// Tile size in tour positions.
        tile: usize,
    },
    /// Ablation: no shared-memory staging (Optimization 1 off).
    GlobalOnly,
    /// Ablation: route-indirected coordinates (Optimization 2 off).
    Unordered,
    /// Device-resident descent: coordinates uploaded once, the previous
    /// sweep's move applied on device by the segment-reversal kernel;
    /// the evaluation kernel (shared or tiled, same thresholds as
    /// [`Strategy::Auto`]) reads the resident array. The steady-state
    /// sweep cost is `reversal + kernel + d2h` — no per-sweep upload.
    DeviceResident,
    /// Sub-quadratic candidate-list sweep (the §VII "neighborhood
    /// pruning" future work): k-nearest-neighbour lists restrict the
    /// move search to `O(active · k)` checks and don't-look bits shrink
    /// the active set as cities settle. **Inexact** with respect to the
    /// dense best move — every applied move still improves, but descent
    /// terminates at a 2-opt local minimum *within the candidate
    /// neighbourhood* (certified by a final all-awake sweep). This
    /// serial variant re-uploads the lists every sweep.
    Candidate {
        /// Neighbours per city (clamped to `n - 1`).
        k: usize,
    },
    /// [`Strategy::Candidate`] with the candidate lists uploaded once
    /// and kept on device: the steady-state upload is coordinates,
    /// positions and the active-city work list only.
    CandidateResident {
        /// Neighbours per city (clamped to `n - 1`).
        k: usize,
    },
}

/// Which evaluation kernel the resident pipeline runs — resolved once
/// per instance size with the same thresholds as [`Strategy::Auto`].
#[derive(Debug, Clone, Copy)]
enum ResidentEval {
    Shared,
    Tiled { tile: usize },
}

/// Per-instance state of the device-resident pipeline: the resident
/// coordinate words, a host mirror of the route they encode (to detect
/// external tour edits, e.g. an ILS perturbation), the move announced
/// last sweep but not yet applied on device, and the cached launch
/// plans — geometry is recomputed only when the instance size changes.
struct ResidentState {
    coords: AtomicDeviceBuffer,
    mirror: Vec<u32>,
    pending: Option<BestMove>,
    eval: ResidentEval,
    eval_cfg: LaunchConfig,
    reverse_cfg: LaunchConfig,
}

/// Per-instance state of the candidate pipeline: the host-built k-NN
/// lists (plus, for [`Strategy::CandidateResident`], their one-time
/// device upload), the don't-look bits, a host mirror of the route the
/// bits were settled against, the move announced last sweep, and the
/// cached launch geometry. Rebuilt only when the instance or `k`
/// changes.
struct CandidateState {
    /// Requested (pre-clamp) `k` — part of the cache key.
    requested_k: usize,
    /// Cheap instance identity so a swapped instance of the same size
    /// can't reuse stale lists.
    fingerprint: (usize, u64, u64),
    lists: crate::neighbors::CandidateLists,
    /// Resident variant: the flattened lists, uploaded once.
    lists_dev: Option<DeviceBuffer<u32>>,
    dont_look: Vec<bool>,
    mirror: Vec<u32>,
    pending: Option<BestMove>,
    eval_cfg: LaunchConfig,
}

/// How to bring the resident coordinates in sync with the caller's tour
/// before evaluating a sweep.
enum SyncAction {
    /// Already in sync (repeated query without an applied move).
    InSync,
    /// The pending move explains the tour exactly: reverse on device.
    Reverse { from: usize, len: usize },
    /// Anything else (first sweep, size change, external edit): re-upload.
    Refresh,
}

/// GPU 2-opt engine over a simulated device.
pub struct GpuTwoOpt {
    // Declared (and therefore dropped) before `device`: the resident
    // buffers must release back into the pool before the device runs
    // its drop-time leak check.
    resident: Option<ResidentState>,
    candidate: Option<CandidateState>,
    device: Arc<Device>,
    stream: Option<StreamId>,
    strategy: Strategy,
    block_dim: u32,
    grid_dim: u32,
    overlap_transfers: bool,
    ordered: Vec<Point>,
    /// Raw packed word read back by the last sweep (flight recording).
    last_key: Option<u64>,
}

impl GpuTwoOpt {
    /// Engine on the given device spec with automatic kernel selection
    /// and the default launch geometry (4 blocks per compute unit, the
    /// device's maximum block size).
    pub fn new(spec: DeviceSpec) -> Self {
        Self::from_device(Arc::new(Device::new(spec)))
    }

    /// Engine over an existing (possibly shared) device, submitting on
    /// the device's implicit serial path. Use [`GpuTwoOpt::on_stream`] to
    /// share the device across concurrent engines.
    pub fn from_device(device: Arc<Device>) -> Self {
        let spec = device.spec();
        let block_dim = spec.max_threads_per_block.min(1024);
        let grid_dim = spec.compute_units * 4;
        GpuTwoOpt {
            resident: None,
            candidate: None,
            device,
            stream: None,
            strategy: Strategy::Auto,
            block_dim,
            grid_dim,
            overlap_transfers: false,
            ordered: Vec::new(),
            last_key: None,
        }
    }

    /// Engine over a shared device, submitting every transfer and launch
    /// on `stream`. Results are bit-identical to the serial path; modeled
    /// time is resolved by `Device::synchronize`, which lays the queued
    /// ops of all streams onto the device's engines with overlap.
    pub fn on_stream(device: Arc<Device>, stream: StreamId) -> Self {
        let mut engine = Self::from_device(device);
        engine.stream = Some(stream);
        engine
    }

    /// Model double-buffered streams: inside the descent loop the next
    /// sweep's H2D copy overlaps the current kernel, so a sweep costs
    /// `max(kernel, h2d) + d2h` instead of their sum. (The paper's
    /// Algorithm 2 is fully serial; this is the standard follow-up
    /// optimization, quantified by the `ablation_overlap` study.)
    pub fn with_overlapped_transfers(mut self) -> Self {
        self.overlap_transfers = true;
        self
    }

    /// Select a kernel strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the launch geometry (e.g. the paper's 28 × 1024).
    pub fn with_launch(mut self, grid_dim: u32, block_dim: u32) -> Self {
        self.grid_dim = grid_dim;
        self.block_dim = block_dim;
        self
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Attach a profiler timeline to the underlying device; every sweep's
    /// H2D copy, kernel launch and D2H readback is recorded on it.
    ///
    /// # Panics
    /// When the device is already shared (another engine holds it):
    /// attach sinks before handing the device out, or attach them through
    /// `DevicePool::attach_recorder` for pooled devices.
    pub fn with_timeline(mut self, timeline: gpu_sim::Timeline) -> Self {
        Arc::get_mut(&mut self.device)
            .expect("attach the timeline before the device is shared")
            .attach_timeline(timeline);
        self
    }

    /// Attach a structured-event recorder to the underlying device;
    /// every sweep's transfers and kernel launches are recorded, and a
    /// `TraceEvent::Device` describing the device is emitted immediately.
    /// Pair with `optimize_with_recorder` (same recorder) for
    /// sweep-level context around the device events.
    ///
    /// # Panics
    /// When the device is already shared — see [`GpuTwoOpt::with_timeline`].
    pub fn with_recorder(mut self, recorder: gpu_sim::Recorder) -> Self {
        Arc::get_mut(&mut self.device)
            .expect("attach the recorder before the device is shared")
            .attach_recorder(recorder);
        self
    }

    /// Attach a live-metrics telemetry handle to the underlying device;
    /// every launch and transfer updates counters/histograms on its
    /// registry. Pair with `optimize_observed` (same handle) for
    /// sweep-level metrics around the device ones.
    ///
    /// # Panics
    /// When the device is already shared — see [`GpuTwoOpt::with_timeline`];
    /// use `DevicePool::attach_telemetry` for pooled devices.
    pub fn with_telemetry(mut self, telemetry: &gpu_sim::Telemetry) -> Self {
        Arc::get_mut(&mut self.device)
            .expect("attach telemetry before the device is shared")
            .attach_telemetry(telemetry);
        self
    }

    /// Attach a span/memory profiler to the underlying device: every
    /// transfer and launch records a leaf span on the profiler's modeled
    /// clock, and every buffer alloc/free/upload is journaled in its
    /// memory ledger under this engine's buffer labels (`"coords"`,
    /// `"positions"`, `"candidate_lists"`, `"active_set"`, `"best_out"`,
    /// `"resident_coords"`). Pair with
    /// [`crate::search::optimize_profiled`] (same handle) for the
    /// structural spans around the device leaves.
    ///
    /// # Panics
    /// When the device is already shared — see [`GpuTwoOpt::with_timeline`];
    /// use `DevicePool::attach_profiler` for pooled devices.
    pub fn with_profiler(mut self, prof: &tsp_prof::Profiler) -> Self {
        Arc::get_mut(&mut self.device)
            .expect("attach the profiler before the device is shared")
            .attach_profiler(prof);
        self
    }

    /// Resolve `Auto` for an instance of `n` cities.
    fn resolve(&self, n: usize) -> Strategy {
        match self.strategy {
            Strategy::Auto => {
                let shared = self.device.spec().shared_mem_per_block;
                if n * Point::DEVICE_BYTES <= shared {
                    Strategy::Shared
                } else {
                    Strategy::Tiled {
                        tile: auto_tile(n, shared, self.grid_dim),
                    }
                }
            }
            s => s,
        }
    }

    /// (Re)build the resident pipeline state for an instance of `n`
    /// cities, caching the evaluation plan and launch geometries. A
    /// fresh state starts with an empty mirror, which forces the first
    /// sweep down the [`SyncAction::Refresh`] (upload) path.
    fn ensure_resident_state(&mut self, n: usize) -> Result<(), EngineError> {
        if self
            .resident
            .as_ref()
            .is_some_and(|st| st.coords.len() == n)
        {
            return Ok(());
        }
        let spec = self.device.spec();
        let shared = spec.shared_mem_per_block;
        let (eval, eval_cfg) = if n * Point::DEVICE_BYTES <= shared {
            (
                ResidentEval::Shared,
                LaunchConfig::new(self.grid_dim, self.block_dim),
            )
        } else {
            let tile = auto_tile(n, shared, self.grid_dim);
            let tiles = ((n - 1) as u64).div_ceil(tile as u64);
            let grid = tile_pair_count(tiles) as u32;
            (
                ResidentEval::Tiled { tile },
                LaunchConfig::new(grid, self.block_dim),
            )
        };
        // The reversal moves at most n/2 words; one block per compute
        // unit saturates the modeled global pipe without wave overhead.
        let reverse_cfg = LaunchConfig::new(spec.compute_units, self.block_dim);
        self.resident = Some(ResidentState {
            coords: self.device.alloc_atomic_labeled(n, 0, "resident_coords")?,
            mirror: Vec::new(),
            pending: None,
            eval,
            eval_cfg,
            reverse_cfg,
        });
        Ok(())
    }

    /// Decide how to sync the resident coordinates with `tour`. When the
    /// move announced last sweep explains the tour exactly, the mirror is
    /// updated in place and the device gets a reversal; any divergence
    /// (first sweep, external tour edit) falls back to a full upload.
    fn resident_sync_action(&mut self, tour: &Tour) -> SyncAction {
        let st = self.resident.as_mut().expect("state built by caller");
        match st.pending.take() {
            Some(m) => {
                let from = m.i as usize + 1;
                let len = (m.j - m.i) as usize;
                st.mirror[from..from + len].reverse();
                if st.mirror == tour.as_slice() {
                    SyncAction::Reverse { from, len }
                } else {
                    SyncAction::Refresh
                }
            }
            None if st.mirror == tour.as_slice() => SyncAction::InSync,
            None => SyncAction::Refresh,
        }
    }

    /// The candidate pipeline's don't-look bits, `None` until a
    /// candidate sweep has run — exposed so the differential suites can
    /// pin don't-look-bit state across runs and replays.
    pub fn candidate_dont_look(&self) -> Option<&[bool]> {
        self.candidate.as_ref().map(|st| st.dont_look.as_slice())
    }

    /// (Re)build the candidate pipeline state — k-NN lists, don't-look
    /// bits, cached launch geometry — when the instance or the requested
    /// `k` changes. A fresh state starts with an empty mirror, which
    /// wakes every city for the first sweep.
    fn ensure_candidate_state(&mut self, inst: &Instance, n: usize, k: usize) {
        // Cheap identity: size plus first/last coordinate words. Enough
        // to catch an instance swap without hashing every point.
        let fingerprint = (
            n,
            inst.point(0).to_device_word(),
            inst.point(n - 1).to_device_word(),
        );
        if self.candidate.as_ref().is_some_and(|st| {
            st.requested_k == k && st.fingerprint == fingerprint && st.dont_look.len() == n
        }) {
            return;
        }
        self.candidate = Some(CandidateState {
            requested_k: k,
            fingerprint,
            lists: CandidateLists::build(inst, k),
            lists_dev: None,
            dont_look: vec![false; n],
            mirror: Vec::new(),
            pending: None,
            eval_cfg: LaunchConfig::new(self.grid_dim, self.block_dim),
        });
    }

    /// One `best_move` query of the candidate pipeline.
    ///
    /// Settles the don't-look bits against what happened since the last
    /// sweep (our own applied move wakes its four endpoint cities; any
    /// external edit wakes everyone), evaluates the active set, and —
    /// when the active sweep finds nothing while some cities are asleep
    /// — wakes everyone and runs one certifying sweep, so a `None`
    /// answer always means a candidate-neighbourhood local minimum.
    fn candidate_best_move(
        &mut self,
        tour: &Tour,
        resident_lists: bool,
    ) -> Result<(Option<BestMove>, StepProfile), EngineError> {
        let n = tour.len();
        let mut st = self.candidate.take().expect("state built by caller");
        let k = st.lists.k();
        if k == 0 {
            self.candidate = Some(st);
            return Err(EngineError::Unsupported(
                "candidate strategies need k >= 1 neighbours per city".into(),
            ));
        }

        // --- settle don't-look bits against the caller's tour --------
        match st.pending.take() {
            Some(m) => {
                let from = m.i as usize + 1;
                let len = (m.j - m.i) as usize;
                st.mirror[from..from + len].reverse();
                if st.mirror == tour.as_slice() {
                    // Our announced move was applied verbatim: only its
                    // four endpoint cities gained or lost an edge.
                    for p in [m.i, m.i + 1, m.j, m.j + 1] {
                        st.dont_look[st.mirror[p as usize] as usize] = false;
                    }
                } else {
                    st.mirror.clear();
                    st.mirror.extend_from_slice(tour.as_slice());
                    st.dont_look.fill(false);
                }
            }
            None if st.mirror == tour.as_slice() => {}
            None => {
                st.mirror.clear();
                st.mirror.extend_from_slice(tour.as_slice());
                st.dont_look.fill(false);
            }
        }

        // City → position, shared by every sweep of this query.
        let mut pos_host = vec![0u32; n];
        for (p, &c) in tour.as_slice().iter().enumerate() {
            pos_host[c as usize] = p as u32;
        }

        let mut profile = StepProfile::default();
        let mut key = EMPTY_KEY;
        let mut all_awake = st.dont_look.iter().all(|b| !b);
        let result = loop {
            if !all_awake && st.dont_look.iter().all(|b| *b) {
                // Everyone settled since the last query: go straight to
                // the certifying all-awake sweep.
                st.dont_look.fill(false);
                all_awake = true;
            }
            let sweep = self.candidate_sweep(&mut st, resident_lists, &pos_host);
            let (sweep_key, sweep_profile) = match sweep {
                Ok(r) => r,
                Err(e) => break Err(e),
            };
            profile.accumulate(&sweep_profile);
            key = sweep_key;
            if unpack(key).filter(BestMove::improves).is_some() || all_awake {
                break Ok(());
            }
            // Active-set local minimum with cities asleep: certify it
            // against the full candidate neighbourhood.
            st.dont_look.fill(false);
            all_awake = true;
        };
        result?;

        self.last_key = Some(key);
        let best = unpack(key).filter(BestMove::improves);
        st.pending = best;
        self.candidate = Some(st);
        Ok((best, profile))
    }

    /// Evaluate one candidate sweep over the currently active cities and
    /// settle their don't-look bits from the per-slot results. Returns
    /// the host-reduced packed best key (same u64-min tie-break as the
    /// dense kernels' `fetch_min`) and the sweep's profile.
    fn candidate_sweep(
        &self,
        st: &mut CandidateState,
        resident_lists: bool,
        pos_host: &[u32],
    ) -> Result<(u64, StepProfile), EngineError> {
        let active_cities: Vec<u32> = (0..pos_host.len() as u32)
            .filter(|&c| !st.dont_look[c as usize])
            .collect();
        let m = active_cities.len();
        let k = st.lists.k();

        let (coords, h2d_a) =
            dev_copy_to_device(&self.device, self.stream, &self.ordered, "coords")?;
        let (pos, h2d_b) = dev_copy_to_device(&self.device, self.stream, pos_host, "positions")?;
        let mut h2d_seconds = h2d_a.seconds + h2d_b.seconds;
        // The serial variant re-uploads the lists every sweep; the
        // resident variant pays that upload exactly once.
        let serial_lists;
        let lists = if resident_lists {
            if st.lists_dev.is_none() {
                let (buf, t) = dev_copy_to_device(
                    &self.device,
                    self.stream,
                    st.lists.flat(),
                    "candidate_lists",
                )?;
                h2d_seconds += t.seconds;
                st.lists_dev = Some(buf);
            }
            st.lists_dev.as_ref().expect("uploaded above")
        } else {
            let (buf, t) = dev_copy_to_device(
                &self.device,
                self.stream,
                st.lists.flat(),
                "candidate_lists",
            )?;
            h2d_seconds += t.seconds;
            serial_lists = buf;
            &serial_lists
        };
        let (active, h2d_d) =
            dev_copy_to_device(&self.device, self.stream, &active_cities, "active_set")?;
        h2d_seconds += h2d_d.seconds;

        let out = self.device.alloc_atomic_labeled(m, EMPTY_KEY, "best_out")?;
        let kernel = CandidateSweepKernel {
            coords: &coords,
            pos: &pos,
            lists,
            k,
            active: &active,
            out: &out,
        };
        let kernel_profile = dev_launch(&self.device, self.stream, st.eval_cfg, &kernel)?;
        let (words, d2h) = dev_copy_from_device(&self.device, self.stream, &out)?;

        let mut key = EMPTY_KEY;
        for (slot, &word) in words.iter().enumerate() {
            if unpack(word).filter(BestMove::improves).is_none() {
                st.dont_look[active_cities[slot] as usize] = true;
            }
            key = key.min(word);
        }

        let (kernel_seconds, h2d_seconds) = if self.overlap_transfers {
            (kernel_profile.seconds.max(h2d_seconds), 0.0)
        } else {
            (kernel_profile.seconds, h2d_seconds)
        };
        Ok((
            key,
            StepProfile {
                pairs_checked: (m * k) as u64,
                flops: kernel_profile.counters.flops,
                kernel_seconds,
                reversal_seconds: 0.0,
                h2d_seconds,
                d2h_seconds: d2h.seconds,
            },
        ))
    }
}

impl TwoOptEngine for GpuTwoOpt {
    fn name(&self) -> String {
        format!("gpu[{}, {:?}]", self.device.spec().name, self.strategy)
    }

    fn last_best_key(&self) -> Option<u64> {
        self.last_key
    }

    fn best_move(
        &mut self,
        inst: &Instance,
        tour: &Tour,
    ) -> Result<(Option<BestMove>, StepProfile), EngineError> {
        if !inst.is_coordinate_based() {
            return Err(EngineError::Unsupported(
                "the GPU kernels compute distances from coordinates; \
                 explicit-matrix instances would need the O(n^2) LUT the \
                 paper's approach exists to avoid"
                    .into(),
            ));
        }
        let n = tour.len();
        if n < 4 {
            return Ok((None, StepProfile::default()));
        }
        if n - 1 > MAX_POSITION as usize {
            return Err(EngineError::Unsupported(format!(
                "instance of {n} cities exceeds the packed-key position \
                 budget ({MAX_POSITION} positions)"
            )));
        }

        let resolved = self.resolve(n);

        // Host-side ordering (Optimization 2) — skipped by the resident
        // pipeline, which keeps the ordered array on the device.
        if !matches!(resolved, Strategy::DeviceResident) {
            self.ordered.clear();
            self.ordered
                .extend(tour.as_slice().iter().map(|&c| inst.point(c as usize)));
        }

        // The candidate pipeline has its own work-list/don't-look flow
        // (possibly two launches per query) — branch off before the
        // single-slot dense result buffer is allocated.
        if let Strategy::Candidate { k } | Strategy::CandidateResident { k } = resolved {
            self.ensure_candidate_state(inst, n, k);
            return self
                .candidate_best_move(tour, matches!(resolved, Strategy::CandidateResident { .. }));
        }

        let out = self.device.alloc_atomic_labeled(1, EMPTY_KEY, "best_out")?;
        let (kernel_profile, h2d_seconds, reversal_seconds) = match resolved {
            Strategy::Shared => {
                let (coords, h2d) =
                    dev_copy_to_device(&self.device, self.stream, &self.ordered, "coords")?;
                let k = OrderedSharedKernel {
                    coords: &coords,
                    out: &out,
                };
                let p = dev_launch(
                    &self.device,
                    self.stream,
                    LaunchConfig::new(self.grid_dim, self.block_dim),
                    &k,
                )?;
                (p, h2d.seconds, 0.0)
            }
            Strategy::GlobalOnly => {
                let (coords, h2d) =
                    dev_copy_to_device(&self.device, self.stream, &self.ordered, "coords")?;
                let k = GlobalOnlyKernel {
                    coords: &coords,
                    out: &out,
                };
                let p = dev_launch(
                    &self.device,
                    self.stream,
                    LaunchConfig::new(self.grid_dim, self.block_dim),
                    &k,
                )?;
                (p, h2d.seconds, 0.0)
            }
            Strategy::Unordered => {
                // Fig. 5 layout: city-indexed coordinates + the route.
                let (coords, h2d_a) =
                    dev_copy_to_device(&self.device, self.stream, inst.points(), "coords")?;
                let (route, h2d_b) =
                    dev_copy_to_device(&self.device, self.stream, tour.as_slice(), "positions")?;
                let k = UnorderedSharedKernel {
                    coords: &coords,
                    route: &route,
                    out: &out,
                };
                let p = dev_launch(
                    &self.device,
                    self.stream,
                    LaunchConfig::new(self.grid_dim, self.block_dim),
                    &k,
                )?;
                (p, h2d_a.seconds + h2d_b.seconds, 0.0)
            }
            Strategy::Tiled { tile } => {
                if tile == 0 {
                    return Err(EngineError::Unsupported("tile size must be nonzero".into()));
                }
                let (coords, h2d) =
                    dev_copy_to_device(&self.device, self.stream, &self.ordered, "coords")?;
                let k = TiledKernel {
                    coords: &coords,
                    out: &out,
                    tile,
                };
                let grid = k.grid_dim();
                let p = dev_launch(
                    &self.device,
                    self.stream,
                    LaunchConfig::new(grid, self.block_dim),
                    &k,
                )?;
                (p, h2d.seconds, 0.0)
            }
            Strategy::DeviceResident => {
                self.ensure_resident_state(n)?;
                let (h2d, reversal) = match self.resident_sync_action(tour) {
                    SyncAction::InSync => (0.0, 0.0),
                    SyncAction::Reverse { from, len } => {
                        let st = self.resident.as_ref().expect("state built above");
                        let k = SegmentReversalKernel {
                            coords: &st.coords,
                            from,
                            len,
                        };
                        let p = dev_launch(&self.device, self.stream, st.reverse_cfg, &k)?;
                        (0.0, p.seconds)
                    }
                    SyncAction::Refresh => {
                        let words: Vec<u64> = tour
                            .as_slice()
                            .iter()
                            .map(|&c| inst.point(c as usize).to_device_word())
                            .collect();
                        let st = self.resident.as_mut().expect("state built above");
                        st.mirror.clear();
                        st.mirror.extend_from_slice(tour.as_slice());
                        let t = dev_upload_atomic(&self.device, self.stream, &st.coords, &words)?;
                        (t.seconds, 0.0)
                    }
                };
                let st = self.resident.as_ref().expect("state built above");
                let p = match st.eval {
                    ResidentEval::Shared => dev_launch(
                        &self.device,
                        self.stream,
                        st.eval_cfg,
                        &OrderedSharedKernel {
                            coords: ResidentCoords(&st.coords),
                            out: &out,
                        },
                    )?,
                    ResidentEval::Tiled { tile } => dev_launch(
                        &self.device,
                        self.stream,
                        st.eval_cfg,
                        &TiledKernel {
                            coords: ResidentCoords(&st.coords),
                            out: &out,
                            tile,
                        },
                    )?,
                };
                (p, h2d, reversal)
            }
            Strategy::Auto => unreachable!("resolved above"),
            Strategy::Candidate { .. } | Strategy::CandidateResident { .. } => {
                unreachable!("candidate strategies branch off above")
            }
        };

        let (words, d2h) = dev_copy_from_device(&self.device, self.stream, &out)?;
        self.last_key = Some(words[0]);
        let best = unpack(words[0]).filter(BestMove::improves);

        // Remember the move we just announced so the next sweep can apply
        // it on device instead of re-uploading.
        if matches!(resolved, Strategy::DeviceResident) {
            if let Some(st) = self.resident.as_mut() {
                st.pending = best;
            }
        }

        // Under overlapped streams the H2D copy hides behind the kernel;
        // report the hidden portion as zero so modeled_seconds() reflects
        // the pipelined cost.
        let (kernel_seconds, h2d_seconds) = if self.overlap_transfers {
            (kernel_profile.seconds.max(h2d_seconds), 0.0)
        } else {
            (kernel_profile.seconds, h2d_seconds)
        };
        let profile = StepProfile {
            pairs_checked: pair_count(n),
            flops: kernel_profile.counters.flops,
            kernel_seconds,
            reversal_seconds,
            h2d_seconds,
            d2h_seconds: d2h.seconds,
        };
        Ok((best, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu_parallel::CpuParallelTwoOpt;
    use crate::search::{optimize, SearchOptions};
    use crate::sequential::SequentialTwoOpt;
    use gpu_sim::spec;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::Metric;

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn gpu_agrees_with_sequential_every_strategy() {
        let inst = random_instance(80, 5);
        let mut rng = SmallRng::seed_from_u64(99);
        let tour = Tour::random(80, &mut rng);
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        for strategy in [
            Strategy::Auto,
            Strategy::Shared,
            Strategy::Tiled { tile: 17 },
            Strategy::GlobalOnly,
            Strategy::Unordered,
            Strategy::DeviceResident,
        ] {
            let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
            let (got, prof) = gpu.best_move(&inst, &tour).unwrap();
            assert_eq!(got, expected, "{strategy:?}");
            assert_eq!(prof.pairs_checked, pair_count(80));
            assert!(prof.kernel_seconds > 0.0);
            // Every pipeline pays an upload on its first sweep — the
            // resident one included.
            assert!(prof.h2d_seconds > 0.0);
            assert!(prof.d2h_seconds > 0.0);
        }
    }

    #[test]
    fn device_resident_descent_matches_serial_pipeline() {
        let inst = random_instance(60, 21);
        let mut rng = SmallRng::seed_from_u64(7);
        let start = Tour::random(60, &mut rng);

        let mut t_serial = start.clone();
        let mut t_resident = start.clone();
        let mut serial = GpuTwoOpt::new(spec::gtx_680_cuda());
        let mut resident =
            GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(Strategy::DeviceResident);
        let a = optimize(&mut serial, &inst, &mut t_serial, SearchOptions::default()).unwrap();
        let b = optimize(
            &mut resident,
            &inst,
            &mut t_resident,
            SearchOptions::default(),
        )
        .unwrap();

        assert_eq!(t_serial.as_slice(), t_resident.as_slice());
        assert_eq!(a.final_length, b.final_length);
        assert_eq!(a.sweeps, b.sweeps);
        assert!(b.reached_local_minimum);
        // Only the first sweep uploads: the accumulated H2D equals one
        // refresh, and the on-device reversals carry the rest.
        assert!(b.profile.h2d_seconds < a.profile.h2d_seconds);
        assert!(b.profile.reversal_seconds > 0.0);
        assert_eq!(a.profile.reversal_seconds, 0.0);
    }

    #[test]
    fn device_resident_steady_state_has_no_upload() {
        let inst = random_instance(120, 3);
        let mut rng = SmallRng::seed_from_u64(15);
        let mut tour = Tour::random(120, &mut rng);
        let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(Strategy::DeviceResident);

        // Sweep 1: cold start — the refresh upload is paid here.
        let (mv, p1) = gpu.best_move(&inst, &tour).unwrap();
        assert!(p1.h2d_seconds > 0.0);
        assert_eq!(p1.reversal_seconds, 0.0);
        let m = mv.expect("a random 120-city tour has an improving move");
        tour.apply_two_opt(m.i as usize, m.j as usize);

        // Sweep 2: steady state — reversal replaces the upload, and the
        // move still matches the serial reference.
        let (mv2, p2) = gpu.best_move(&inst, &tour).unwrap();
        assert_eq!(p2.h2d_seconds, 0.0);
        assert!(p2.reversal_seconds > 0.0);
        assert!(
            (p2.modeled_seconds() - (p2.kernel_seconds + p2.reversal_seconds + p2.d2h_seconds))
                .abs()
                < 1e-18
        );
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        assert_eq!(mv2, expected);
    }

    #[test]
    fn device_resident_recovers_from_external_tour_edits() {
        // An ILS-style perturbation between sweeps invalidates the
        // resident coordinates; the engine must fall back to a refresh
        // and still answer correctly.
        let inst = random_instance(90, 33);
        let mut tour = Tour::identity(90);
        let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(Strategy::DeviceResident);
        let (mv, _) = gpu.best_move(&inst, &tour).unwrap();
        let m = mv.expect("identity tour of a random instance improves");
        tour.apply_two_opt(m.i as usize, m.j as usize);
        // External edit the engine was never told about.
        tour.apply_two_opt(10, 60);

        let (got, p) = gpu.best_move(&inst, &tour).unwrap();
        assert!(p.h2d_seconds > 0.0, "divergence must force a re-upload");
        assert_eq!(p.reversal_seconds, 0.0);
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn device_resident_uses_tiled_eval_past_shared_capacity() {
        let mut s = spec::gtx_680_cuda();
        s.shared_mem_per_block = 512; // 64 points max -> 65 needs tiles
        let inst = random_instance(65, 44);
        let mut tour = Tour::identity(65);
        let mut gpu = GpuTwoOpt::new(s).with_strategy(Strategy::DeviceResident);
        let (mv, _) = gpu.best_move(&inst, &tour).unwrap();
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        assert_eq!(mv, expected);
        // And the reversal path works on the tiled eval too.
        let m = mv.unwrap();
        tour.apply_two_opt(m.i as usize, m.j as usize);
        let (mv2, p2) = gpu.best_move(&inst, &tour).unwrap();
        let (expected2, _) = seq.best_move(&inst, &tour).unwrap();
        assert_eq!(mv2, expected2);
        assert_eq!(p2.h2d_seconds, 0.0);
        assert!(p2.reversal_seconds > 0.0);
    }

    #[test]
    fn descent_to_local_minimum_matches_cpu_engines() {
        let inst = random_instance(50, 11);
        let mut rng = SmallRng::seed_from_u64(4);
        let start = Tour::random(50, &mut rng);

        let mut t_seq = start.clone();
        let mut t_par = start.clone();
        let mut t_gpu = start.clone();
        let mut seq = SequentialTwoOpt::new();
        let mut par = CpuParallelTwoOpt::new();
        let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda());
        let s1 = optimize(&mut seq, &inst, &mut t_seq, SearchOptions::default()).unwrap();
        let s2 = optimize(&mut par, &inst, &mut t_par, SearchOptions::default()).unwrap();
        let s3 = optimize(&mut gpu, &inst, &mut t_gpu, SearchOptions::default()).unwrap();

        // Identical move sequences -> identical tours and stats.
        assert_eq!(t_seq.as_slice(), t_par.as_slice());
        assert_eq!(t_seq.as_slice(), t_gpu.as_slice());
        assert_eq!(s1.final_length, s3.final_length);
        assert_eq!(s1.sweeps, s3.sweeps);
        assert_eq!(s2.improving_moves, s3.improving_moves);
        assert!(s3.reached_local_minimum);
        // 2-opt must actually improve a random tour of 50 cities.
        assert!(s3.final_length < s3.initial_length);
    }

    #[test]
    fn auto_switches_to_tiled_when_too_big_for_shared() {
        let mut s = spec::gtx_680_cuda();
        s.shared_mem_per_block = 512; // 64 points max, tile = 31
        let gpu = GpuTwoOpt::new(s);
        assert_eq!(gpu.resolve(60), Strategy::Shared);
        // auto_tile shrinks below the 31-position capacity so the grid
        // (default 4 blocks/CU = 32) stays occupied: 64 positions over
        // >= 8 tiles -> tile 8.
        assert_eq!(gpu.resolve(65), Strategy::Tiled { tile: 8 });
        // And the tiled path really runs + agrees.
        let inst = random_instance(65, 2);
        let tour = Tour::identity(65);
        let mut gpu = gpu;
        let (got, _) = gpu.best_move(&inst, &tour).unwrap();
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn rejects_explicit_instances() {
        use tsp_core::ExplicitMatrix;
        let m = ExplicitMatrix::from_upper_row(4, &[1, 2, 3, 4, 5, 6]).unwrap();
        let inst = Instance::from_matrix("em", m, None).unwrap();
        let tour = Tour::identity(4);
        let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda());
        assert!(matches!(
            gpu.best_move(&inst, &tour),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn forced_shared_strategy_errors_past_capacity() {
        let mut s = spec::gtx_680_cuda();
        s.shared_mem_per_block = 256; // 32 points
        let mut gpu = GpuTwoOpt::new(s).with_strategy(Strategy::Shared);
        let inst = random_instance(100, 1);
        let tour = Tour::identity(100);
        assert!(matches!(
            gpu.best_move(&inst, &tour),
            Err(EngineError::Sim(
                gpu_sim::SimError::SharedMemExceeded { .. }
            ))
        ));
    }

    #[test]
    fn overlapped_transfers_hide_the_h2d_copy() {
        let inst = random_instance(600, 12);
        let tour = Tour::identity(600);
        let mut plain = GpuTwoOpt::new(spec::gtx_680_cuda());
        let (mv_a, pa) = plain.best_move(&inst, &tour).unwrap();
        let mut piped = GpuTwoOpt::new(spec::gtx_680_cuda()).with_overlapped_transfers();
        let (mv_b, pb) = piped.best_move(&inst, &tour).unwrap();
        assert_eq!(mv_a, mv_b);
        assert!(pb.modeled_seconds() < pa.modeled_seconds());
        assert_eq!(pb.h2d_seconds, 0.0);
        // Never better than the ideal max(kernel, h2d) + d2h bound.
        let ideal = pa.kernel_seconds.max(pa.h2d_seconds) + pa.d2h_seconds;
        assert!((pb.modeled_seconds() - ideal).abs() < 1e-12);
    }

    #[test]
    fn streamed_engines_share_a_device_and_match_serial_bit_for_bit() {
        let inst = random_instance(70, 9);
        let mut rng = SmallRng::seed_from_u64(41);
        let start_a = Tour::random(70, &mut rng);
        let start_b = Tour::random(70, &mut rng);

        // Serial reference descents, one private device each.
        let run_serial = |start: &Tour| {
            let mut t = start.clone();
            let mut e = GpuTwoOpt::new(spec::gtx_680_cuda());
            let s = optimize(&mut e, &inst, &mut t, SearchOptions::default()).unwrap();
            (t, s)
        };
        let (ta, sa) = run_serial(&start_a);
        let (tb, sb) = run_serial(&start_b);

        // Two streamed engines sharing one device.
        let device = Arc::new(Device::new(spec::gtx_680_cuda()));
        let s0 = device.create_stream();
        let s1 = device.create_stream();
        let mut ea = GpuTwoOpt::on_stream(device.clone(), s0);
        let mut eb = GpuTwoOpt::on_stream(device.clone(), s1);
        let mut ta2 = start_a.clone();
        let mut tb2 = start_b.clone();
        let sa2 = optimize(&mut ea, &inst, &mut ta2, SearchOptions::default()).unwrap();
        let sb2 = optimize(&mut eb, &inst, &mut tb2, SearchOptions::default()).unwrap();

        // Identical tours and identical per-sweep modeled durations.
        assert_eq!(ta.as_slice(), ta2.as_slice());
        assert_eq!(tb.as_slice(), tb2.as_slice());
        assert_eq!(sa.final_length, sa2.final_length);
        assert_eq!(sb.final_length, sb2.final_length);
        assert_eq!(sa.profile, sa2.profile);
        assert_eq!(sb.profile, sb2.profile);

        // The shared device's schedule overlaps the two descents.
        let report = device.synchronize();
        assert_eq!(report.streams, 2);
        assert!(report.overlap() > 0.0);
        assert!(report.wall_seconds < report.busy_seconds);
    }

    #[test]
    fn candidate_with_complete_lists_matches_the_dense_best_move() {
        // With k >= n-1 the candidate neighbourhood is the full pair
        // space, so the inexact strategy becomes exact: the host-reduced
        // slot minimum must equal the dense kernels' fetch_min word.
        let inst = random_instance(80, 5);
        let mut rng = SmallRng::seed_from_u64(99);
        let tour = Tour::random(80, &mut rng);
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        for strategy in [
            Strategy::Candidate { k: 79 },
            Strategy::CandidateResident { k: 500 }, // clamped to 79
        ] {
            let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
            let (got, prof) = gpu.best_move(&inst, &tour).unwrap();
            assert_eq!(got, expected, "{strategy:?}");
            assert_eq!(prof.pairs_checked, 80 * 79, "{strategy:?}");
            assert!(prof.h2d_seconds > 0.0 && prof.d2h_seconds > 0.0);
            assert_eq!(prof.reversal_seconds, 0.0);
        }
    }

    #[test]
    fn candidate_descent_reaches_a_candidate_local_minimum() {
        use crate::neighbors::CandidateLists;
        let inst = random_instance(120, 3);
        let mut rng = SmallRng::seed_from_u64(17);
        let mut tour = Tour::random(120, &mut rng);
        let mut gpu =
            GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(Strategy::Candidate { k: 8 });
        let stats = optimize(&mut gpu, &inst, &mut tour, SearchOptions::default()).unwrap();
        assert!(stats.reached_local_minimum);
        assert!(stats.final_length < stats.initial_length);
        tour.validate().unwrap();
        // The termination contract: no improving move is left anywhere
        // in the candidate neighbourhood (host-mirror certification).
        let cl = CandidateLists::build(&inst, 8);
        assert!(cl.best_candidate_move(&inst, &tour).is_none());
    }

    #[test]
    fn dont_look_bits_shrink_the_active_set() {
        let n = 150;
        let inst = random_instance(n, 23);
        let mut rng = SmallRng::seed_from_u64(31);
        let mut tour = Tour::random(n, &mut rng);
        let mut gpu =
            GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(Strategy::Candidate { k: 10 });

        // Sweep 1: every city awake.
        let (mv, p1) = gpu.best_move(&inst, &tour).unwrap();
        assert_eq!(p1.pairs_checked, (n * 10) as u64);
        let m = mv.expect("a random tour has improving candidate moves");
        tour.apply_two_opt(m.i as usize, m.j as usize);

        // Sweep 2: most cities settled; only the woken endpoints and the
        // cities that still had improving slots stay on the work list.
        let (_, p2) = gpu.best_move(&inst, &tour).unwrap();
        assert!(
            p2.pairs_checked < p1.pairs_checked,
            "sweep 2 checked {} pairs, sweep 1 {}",
            p2.pairs_checked,
            p1.pairs_checked
        );
        let asleep = gpu
            .candidate_dont_look()
            .unwrap()
            .iter()
            .filter(|&&b| b)
            .count();
        assert!(asleep > 0, "some cities must have settled");
    }

    #[test]
    fn candidate_resident_uploads_lists_once() {
        let n = 200;
        let inst = random_instance(n, 41);
        let mut rng = SmallRng::seed_from_u64(8);
        let start = Tour::random(n, &mut rng);

        let run = |strategy: Strategy| {
            let mut tour = start.clone();
            let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(strategy);
            let (mv, p1) = gpu.best_move(&inst, &tour).unwrap();
            let m = mv.expect("improving move");
            tour.apply_two_opt(m.i as usize, m.j as usize);
            let (_, p2) = gpu.best_move(&inst, &tour).unwrap();
            (p1, p2)
        };
        let (s1, s2) = run(Strategy::Candidate { k: 12 });
        let (r1, r2) = run(Strategy::CandidateResident { k: 12 });
        // Identical first-sweep uploads (the resident variant pays the
        // list upload on its cold sweep too)...
        assert!((s1.h2d_seconds - r1.h2d_seconds).abs() < 1e-15);
        // ...but the steady state drops the n·k list transfer.
        assert!(
            r2.h2d_seconds < s2.h2d_seconds,
            "resident steady-state h2d {} vs serial {}",
            r2.h2d_seconds,
            s2.h2d_seconds
        );
        // Same moves either way: the lists' home doesn't change results.
        assert_eq!(s2.pairs_checked, r2.pairs_checked);
    }

    #[test]
    fn candidate_recovers_from_external_tour_edits() {
        use crate::neighbors::CandidateLists;
        let n = 90;
        let inst = random_instance(n, 33);
        let mut tour = Tour::identity(n);
        let mut gpu =
            GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(Strategy::Candidate { k: 6 });
        let (mv, _) = gpu.best_move(&inst, &tour).unwrap();
        let m = mv.expect("identity tour of a random instance improves");
        tour.apply_two_opt(m.i as usize, m.j as usize);
        // External edit the engine was never told about: every
        // don't-look bit must be discarded, so the answer equals the
        // all-awake host mirror.
        tour.apply_two_opt(10, 60);
        let (got, p) = gpu.best_move(&inst, &tour).unwrap();
        assert_eq!(
            p.pairs_checked,
            (n * 6) as u64,
            "external edit must wake every city"
        );
        let cl = CandidateLists::build(&inst, 6);
        assert_eq!(got, cl.best_candidate_move(&inst, &tour));
    }

    #[test]
    fn candidate_with_zero_k_is_rejected() {
        let inst = random_instance(30, 2);
        let tour = Tour::identity(30);
        let mut gpu =
            GpuTwoOpt::new(spec::gtx_680_cuda()).with_strategy(Strategy::Candidate { k: 0 });
        assert!(matches!(
            gpu.best_move(&inst, &tour),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn paper_launch_geometry_works() {
        // The paper's 28 blocks x 1024 threads on a mid-size instance.
        let inst = random_instance(300, 8);
        let tour = Tour::identity(300);
        let mut gpu = GpuTwoOpt::new(spec::gtx_680_cuda()).with_launch(28, 1024);
        let (mv, prof) = gpu.best_move(&inst, &tour).unwrap();
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        assert_eq!(mv, expected);
        assert!(prof.flops > 0);
    }
}
