//! The GPU engines — the paper's contribution, on the simulated device.
//!
//! * [`small`] — the §IV.A kernel for instances whose ordered coordinates
//!   fit in shared memory (≤ 6144 cities at 48 kB): cooperative staging
//!   (Optimization 1), route-ordered coordinates (Optimization 2), thread
//!   striding over the triangular pair space, packed atomic-min
//!   reduction. Also hosts the two ablation kernels: `GlobalOnly`
//!   (no staging) and `Unordered` (route-indirected access, Fig. 5).
//! * [`tiled`] — the §IV.B division scheme for arbitrary instance sizes:
//!   each block stages **two** coordinate sub-ranges (≤ 3072 cities per
//!   range at 48 kB) and evaluates all pairs crossing them.
//! * [`engine`] — the [`GpuTwoOpt`] engine that drives
//!   Algorithm 2 end-to-end (copy → kernel → read result) and picks the
//!   right kernel for the instance size.
//! * [`candidate`] — the §VII "neighborhood pruning" follow-on: the
//!   sub-quadratic candidate-list kernel evaluating only k-nearest-
//!   neighbour pairs for the cities whose don't-look bits are clear
//!   (`O(active · k)` checks, one packed output slot per active city,
//!   no atomics), fed by [`crate::neighbors::CandidateLists`].
//! * [`coords`] / [`reverse`] — the device-resident pipeline: the
//!   evaluation kernels read coordinates through a [`CoordSource`]
//!   (either the per-sweep upload buffer or a resident atomic array),
//!   and [`SegmentReversalKernel`] applies the previous sweep's move in
//!   place so the steady state never re-uploads.
//!
//! [`CoordSource`]: coords::CoordSource
//! [`SegmentReversalKernel`]: reverse::SegmentReversalKernel

pub mod candidate;
pub mod coords;
pub mod engine;
pub mod model;
pub mod multi;
pub mod oropt_kernel;
pub mod reverse;
pub mod small;
pub mod tiled;

pub use candidate::CandidateSweepKernel;
pub use coords::{CoordSource, ResidentCoords};
pub use engine::{GpuTwoOpt, Strategy};
pub use model::{
    model_auto_sweep, model_candidate_resident_sweep, model_candidate_sweep,
    model_device_resident_sweep, model_reversal, ModeledSweep,
};
pub use multi::MultiGpuTwoOpt;
pub use oropt_kernel::GpuOrOpt;
pub use reverse::SegmentReversalKernel;
