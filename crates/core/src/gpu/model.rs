//! Analytic sweep model: the modeled cost of one 2-opt sweep *without*
//! functionally executing it.
//!
//! The simulator's timing is a pure function of per-block work counters,
//! and for these kernels the counters are themselves a closed-form
//! function of `(n, launch geometry, strategy)`. This module computes
//! them directly, which lets the Table II harness price the paper's
//! six-digit instances (up to lrb744710, 2.8·10¹¹ pair checks per sweep)
//! in microseconds of host time. The model is **exact**: a unit test
//! asserts bit-equal profiles against the functional executor.

use crate::cpu_model::BYTES_PER_CHECK;
use crate::delta::FLOPS_PER_CHECK;
use crate::gpu::tiled::auto_tile;
use crate::indexing::{index_to_tile_pair, pair_count, tile_pair_count};
use gpu_sim::{timing, DeviceSpec, LaunchConfig, PerfCounters};
use tsp_core::Point;

/// Modeled cost of one full sweep (kernel + transfers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeledSweep {
    /// Candidate pairs the sweep checks.
    pub pairs: u64,
    /// FLOPs performed.
    pub flops: u64,
    /// Modeled kernel time, seconds.
    pub kernel_seconds: f64,
    /// Modeled on-device segment reversal applying the previous sweep's
    /// move (device-resident pipeline; zero for the re-upload pipelines).
    pub reversal_seconds: f64,
    /// Modeled host→device copy (ordered coordinates), seconds.
    pub h2d_seconds: f64,
    /// Modeled device→host copy (one result word), seconds.
    pub d2h_seconds: f64,
}

impl ModeledSweep {
    /// Kernel + reversal + transfer time — the "GPU total time" column.
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.reversal_seconds + self.h2d_seconds + self.d2h_seconds
    }

    /// Achieved GFLOP/s over the kernel time (Fig. 9's metric).
    pub fn gflops(&self) -> f64 {
        if self.kernel_seconds <= 0.0 {
            return 0.0;
        }
        self.flops as f64 / self.kernel_seconds / 1e9
    }

    /// Candidate checks per second over the total time (Table II).
    pub fn checks_per_second(&self) -> f64 {
        let t = self.total_seconds();
        if t <= 0.0 {
            return 0.0;
        }
        self.pairs as f64 / t
    }
}

/// Sum of `ceil((work - t) / stride)` over `t` in `[t0, t1)` — the number
/// of strided-loop iterations executed by threads `t0..t1`.
fn strided_iterations(work: u64, stride: u64, t0: u64, t1: u64) -> u64 {
    let mut total = 0;
    for t in t0..t1.min(work.max(t0)) {
        if t < work {
            total += (work - t).div_ceil(stride);
        }
    }
    total
}

/// Model the §IV.A shared-memory kernel (auto-selected when the ordered
/// coordinates fit on chip).
pub fn model_small_sweep(spec: &DeviceSpec, n: usize, cfg: LaunchConfig) -> ModeledSweep {
    let pairs = pair_count(n);
    let total_threads = cfg.total_threads();
    let mut block_times = Vec::with_capacity(cfg.grid_dim as usize);
    let mut flops = 0u64;
    for b in 0..cfg.grid_dim as u64 {
        let t0 = b * cfg.block_dim as u64;
        let t1 = t0 + cfg.block_dim as u64;
        let evals = strided_iterations(pairs, total_threads, t0, t1);
        // Threads in this block with at least one pair to evaluate.
        let active = t1.min(pairs).saturating_sub(t0).min(cfg.block_dim as u64);
        let c = PerfCounters {
            flops: evals * FLOPS_PER_CHECK,
            // staging + evaluation loads + scratch writes + the thread-0
            // reduction scan over the whole scratch.
            shared_bytes: n as u64 * Point::DEVICE_BYTES as u64
                + evals * BYTES_PER_CHECK
                + active * 8
                + 8 * cfg.block_dim as u64,
            global_read_bytes: n as u64 * Point::DEVICE_BYTES as u64,
            global_write_bytes: 0,
            atomic_ops: u64::from(active > 0),
        };
        flops += c.flops;
        block_times.push(timing::block_time(spec, &c, 3));
    }
    finish(spec, n, pairs, flops, &block_times)
}

/// Model the §IV.B tiled kernel (one block per tile pair).
pub fn model_tiled_sweep(spec: &DeviceSpec, n: usize, block_dim: u32, tile: usize) -> ModeledSweep {
    let positions = (n - 1) as u64;
    let tiles = positions.div_ceil(tile as u64);
    let grid = tile_pair_count(tiles);
    let pairs = pair_count(n);
    let mut block_times = Vec::with_capacity(grid as usize);
    let mut flops = 0u64;
    for k in 0..grid {
        let (a, b) = index_to_tile_pair(k);
        let a_len = ((a + 1) * tile as u64).min(positions) - a * tile as u64;
        let b_len = ((b + 1) * tile as u64).min(positions) - b * tile as u64;
        let local_pairs = if a == b {
            a_len * (a_len - 1) / 2
        } else {
            a_len * b_len
        };
        let evals = strided_iterations(local_pairs, block_dim as u64, 0, block_dim as u64);
        let staged = (a_len + 1) + (b_len + 1);
        let active = local_pairs.min(block_dim as u64);
        let c = PerfCounters {
            flops: evals * FLOPS_PER_CHECK,
            shared_bytes: staged * Point::DEVICE_BYTES as u64
                + evals * BYTES_PER_CHECK
                + active * 8
                + 8 * block_dim as u64,
            global_read_bytes: staged * Point::DEVICE_BYTES as u64,
            global_write_bytes: 0,
            atomic_ops: u64::from(active > 0),
        };
        flops += c.flops;
        block_times.push(timing::block_time(spec, &c, 3));
    }
    finish(spec, n, pairs, flops, &block_times)
}

/// Model a sweep with the engine's automatic strategy selection and
/// default launch geometry — the harness entry point.
pub fn model_auto_sweep(spec: &DeviceSpec, n: usize) -> ModeledSweep {
    let block_dim = spec.max_threads_per_block.min(1024);
    let grid_dim = spec.compute_units * 4;
    if n * Point::DEVICE_BYTES <= spec.shared_mem_per_block {
        model_small_sweep(spec, n, LaunchConfig::new(grid_dim, block_dim))
    } else {
        model_tiled_sweep(
            spec,
            n,
            block_dim,
            auto_tile(n, spec.shared_mem_per_block, grid_dim),
        )
    }
}

/// Model the segment-reversal kernel applying a 2-opt move that reverses
/// `seg_len` positions, with the engine's reversal launch (one block per
/// compute unit, maximum block size). Returns the kernel time in seconds.
pub fn model_reversal(spec: &DeviceSpec, seg_len: usize) -> f64 {
    let cfg = LaunchConfig::new(spec.compute_units, spec.max_threads_per_block.min(1024));
    let swaps = (seg_len / 2) as u64;
    let total_threads = cfg.total_threads();
    let mut block_times = Vec::with_capacity(cfg.grid_dim as usize);
    for b in 0..cfg.grid_dim as u64 {
        let t0 = b * cfg.block_dim as u64;
        let t1 = t0 + cfg.block_dim as u64;
        let done = strided_iterations(swaps, total_threads, t0, t1);
        let c = PerfCounters {
            global_read_bytes: done * 16,
            global_write_bytes: done * 16,
            ..Default::default()
        };
        block_times.push(timing::block_time(spec, &c, 1));
    }
    timing::kernel_time(spec, &block_times)
}

/// Model one steady-state sweep of the device-resident pipeline: the
/// auto-selected evaluation kernel reading the resident array, preceded
/// by an on-device reversal of `seg_len` positions, with **no** H2D
/// upload — only the one-word result readback crosses PCIe.
pub fn model_device_resident_sweep(spec: &DeviceSpec, n: usize, seg_len: usize) -> ModeledSweep {
    let mut m = model_auto_sweep(spec, n);
    m.h2d_seconds = 0.0;
    m.reversal_seconds = model_reversal(spec, seg_len);
    m
}

/// Model one sweep of the candidate-list kernel with `active` cities
/// still awake (don't-look bits clear) and `k` neighbours per city, at
/// the engine's default launch geometry.
///
/// The serial candidate pipeline re-uploads everything each sweep: the
/// ordered coordinates, the position array, the flattened `n × k`
/// candidate lists and the `active`-city work list — four transfers,
/// each paying the PCIe latency. The readback is one packed word per
/// active city (the host settles don't-look bits from the slots).
pub fn model_candidate_sweep(spec: &DeviceSpec, n: usize, k: usize, active: usize) -> ModeledSweep {
    let mut m = candidate_kernel_model(spec, k, active);
    m.h2d_seconds = timing::h2d_time(spec, (n * Point::DEVICE_BYTES) as u64)
        + timing::h2d_time(spec, 4 * n as u64)
        + timing::h2d_time(spec, 4 * (n * k) as u64)
        + timing::h2d_time(spec, 4 * active as u64);
    m
}

/// Model one sweep of the candidate pipeline with the lists resident on
/// device: the `n × k` upload drops out, everything else is as
/// [`model_candidate_sweep`].
pub fn model_candidate_resident_sweep(
    spec: &DeviceSpec,
    n: usize,
    k: usize,
    active: usize,
) -> ModeledSweep {
    let mut m = candidate_kernel_model(spec, k, active);
    m.h2d_seconds = timing::h2d_time(spec, (n * Point::DEVICE_BYTES) as u64)
        + timing::h2d_time(spec, 4 * n as u64)
        + timing::h2d_time(spec, 4 * active as u64);
    m
}

/// Kernel + D2H cost shared by the two candidate variants. The counters
/// mirror `CandidateSweepKernel` exactly: per handled city one work-list
/// gather and one slot write, per check the gather-loads of
/// [`crate::gpu::candidate::CANDIDATE_BYTES_PER_CHECK`] — skipped pairs
/// charged like evaluated ones (SIMT lockstep).
fn candidate_kernel_model(spec: &DeviceSpec, k: usize, active: usize) -> ModeledSweep {
    use crate::gpu::candidate::{
        CANDIDATE_BYTES_PER_CHECK, CANDIDATE_CITY_READ_BYTES, CANDIDATE_CITY_WRITE_BYTES,
    };
    let cfg = LaunchConfig::new(spec.compute_units * 4, spec.max_threads_per_block.min(1024));
    let total_threads = cfg.total_threads();
    let mut block_times = Vec::with_capacity(cfg.grid_dim as usize);
    let mut flops = 0u64;
    for b in 0..cfg.grid_dim as u64 {
        let t0 = b * cfg.block_dim as u64;
        let t1 = t0 + cfg.block_dim as u64;
        let cities = strided_iterations(active as u64, total_threads, t0, t1);
        let checks = cities * k as u64;
        let c = PerfCounters {
            flops: checks * FLOPS_PER_CHECK,
            shared_bytes: 0,
            global_read_bytes: cities * CANDIDATE_CITY_READ_BYTES
                + checks * CANDIDATE_BYTES_PER_CHECK,
            global_write_bytes: cities * CANDIDATE_CITY_WRITE_BYTES,
            atomic_ops: 0,
        };
        flops += c.flops;
        block_times.push(timing::block_time(spec, &c, 1));
    }
    ModeledSweep {
        pairs: active as u64 * k as u64,
        flops,
        kernel_seconds: timing::kernel_time(spec, &block_times),
        reversal_seconds: 0.0,
        h2d_seconds: 0.0,
        d2h_seconds: timing::d2h_time(spec, 8 * active as u64),
    }
}

fn finish(
    spec: &DeviceSpec,
    n: usize,
    pairs: u64,
    flops: u64,
    block_times: &[f64],
) -> ModeledSweep {
    ModeledSweep {
        pairs,
        flops,
        kernel_seconds: timing::kernel_time(spec, block_times),
        reversal_seconds: 0.0,
        h2d_seconds: timing::h2d_time(spec, (n * Point::DEVICE_BYTES) as u64),
        d2h_seconds: timing::d2h_time(spec, 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{GpuTwoOpt, Strategy};
    use crate::search::TwoOptEngine;
    use gpu_sim::spec;
    use tsp_core::{Instance, Metric, Tour};

    fn instance(n: usize) -> Instance {
        let pts = (0..n)
            .map(|i| {
                let a = i as f32 * 2.399963;
                Point::new(500.0 + 400.0 * a.cos(), 500.0 + 400.0 * a.sin())
            })
            .collect();
        Instance::new(format!("model{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn small_model_matches_functional_executor_exactly() {
        for n in [10usize, 100, 700] {
            let inst = instance(n);
            let tour = Tour::identity(n);
            let mut eng = GpuTwoOpt::new(spec::gtx_680_cuda());
            let (_, prof) = eng.best_move(&inst, &tour).unwrap();
            let m = model_small_sweep(&spec::gtx_680_cuda(), n, LaunchConfig::new(8 * 4, 1024));
            assert_eq!(m.flops, prof.flops, "n={n}");
            assert!(
                (m.kernel_seconds - prof.kernel_seconds).abs() < 1e-12,
                "n={n}: model {} vs functional {}",
                m.kernel_seconds,
                prof.kernel_seconds
            );
            assert!((m.h2d_seconds - prof.h2d_seconds).abs() < 1e-15);
            assert!((m.d2h_seconds - prof.d2h_seconds).abs() < 1e-15);
        }
    }

    #[test]
    fn tiled_model_matches_functional_executor_exactly() {
        let n = 400;
        let tile = 57;
        let inst = instance(n);
        let tour = Tour::identity(n);
        let mut eng = GpuTwoOpt::new(spec::gtx_680_cuda())
            .with_strategy(Strategy::Tiled { tile })
            .with_launch(1, 256); // grid is overridden by the tiled kernel
        let (_, prof) = eng.best_move(&inst, &tour).unwrap();
        let m = model_tiled_sweep(&spec::gtx_680_cuda(), n, 256, tile);
        assert_eq!(m.flops, prof.flops);
        assert!(
            (m.kernel_seconds - prof.kernel_seconds).abs() < 1e-12,
            "model {} vs functional {}",
            m.kernel_seconds,
            prof.kernel_seconds
        );
    }

    #[test]
    fn model_prices_the_largest_paper_instance_instantly() {
        // lrb744710: 2.77e11 checks per sweep — modeled, not executed.
        let start = std::time::Instant::now();
        let m = model_auto_sweep(&spec::gtx_680_cuda(), 744_710);
        assert!(start.elapsed().as_secs_f64() < 5.0);
        assert_eq!(m.pairs, pair_count(744_710));
        // The paper's Table II reports ~13 s kernel time for this row.
        assert!(
            (1.0..60.0).contains(&m.kernel_seconds),
            "lrb744710 kernel = {} s",
            m.kernel_seconds
        );
        // GFLOP/s saturates near the calibrated 680.
        assert!(
            (500.0..760.0).contains(&m.gflops()),
            "gflops = {}",
            m.gflops()
        );
    }

    #[test]
    fn resident_model_matches_functional_steady_state_exactly() {
        use crate::search::{optimize, SearchOptions};
        let n = 300;
        let inst = instance(n);
        let mut tour = Tour::identity(n);
        let dev_spec = spec::gtx_680_cuda();
        let mut eng = GpuTwoOpt::new(dev_spec.clone()).with_strategy(Strategy::DeviceResident);

        // Sweep 1 (cold): pays the upload and announces a move.
        let (mv, _) = eng.best_move(&inst, &tour).unwrap();
        let m1 = mv.expect("identity tour improves");
        tour.apply_two_opt(m1.i as usize, m1.j as usize);
        // Sweep 2 (steady state): reversal + eval + d2h only.
        let (_, prof) = eng.best_move(&inst, &tour).unwrap();

        let seg_len = (m1.j - m1.i) as usize;
        let m = model_device_resident_sweep(&dev_spec, n, seg_len);
        assert_eq!(m.flops, prof.flops);
        assert_eq!(prof.h2d_seconds, 0.0);
        assert_eq!(m.h2d_seconds, 0.0);
        assert!((m.kernel_seconds - prof.kernel_seconds).abs() < 1e-12);
        assert!((m.reversal_seconds - prof.reversal_seconds).abs() < 1e-12);
        assert!((m.d2h_seconds - prof.d2h_seconds).abs() < 1e-15);

        // And the full descent's accumulated profile stays consistent:
        // reversal time only ever comes from the resident pipeline.
        let stats = optimize(&mut eng, &inst, &mut tour, SearchOptions::default()).unwrap();
        assert!(stats.profile.reversal_seconds >= 0.0);
    }

    #[test]
    fn resident_sweep_beats_serial_sweep_from_a_thousand_cities() {
        // The economics the pipeline exists for: the per-sweep H2D upload
        // (latency + n·8 bytes over PCIe) costs more than an on-device
        // reversal of even the worst-case n/2 segment once n >= 1000.
        let dev_spec = spec::gtx_680_cuda();
        for n in [1000usize, 2000, 6144, 10_000, 100_000] {
            let serial = model_auto_sweep(&dev_spec, n);
            let resident = model_device_resident_sweep(&dev_spec, n, n / 2);
            assert!(
                resident.total_seconds() < serial.total_seconds(),
                "n={n}: resident {} vs serial {}",
                resident.total_seconds(),
                serial.total_seconds()
            );
        }
    }

    #[test]
    fn reversal_scales_with_segment_length_but_stays_cheap() {
        let dev_spec = spec::gtx_680_cuda();
        let short = model_reversal(&dev_spec, 10);
        let long = model_reversal(&dev_spec, 100_000);
        assert!(short <= long);
        // Even a 100k-position reversal (800 kB of traffic on a 192 GB/s
        // pipe) stays well under the 46 us upload latency it replaces.
        assert!(long < 46e-6, "reversal of 100k positions = {long} s");
    }

    #[test]
    fn serial_model_golden_values_are_unchanged() {
        // Regression pin: the device-resident machinery must not perturb
        // the serial Algorithm-2 model by a single bit. These literals
        // were captured from `model_auto_sweep` before the resident
        // pipeline landed; a drift here means the eval kernels' counter
        // accounting changed.
        let dev_spec = spec::gtx_680_cuda();
        let golden: [(usize, f64, f64, f64, u64); 5] = [
            (
                52,
                1.896_318_501_407_977_2e-5,
                4.616_64e-5,
                1.050_32e-5,
                40_800,
            ),
            (
                512,
                2.468_990_879_670_491e-5,
                4.763_84e-5,
                1.050_32e-5,
                4_169_760,
            ),
            (
                1000,
                4.204_277_728_743_747e-5,
                4.92e-5,
                1.050_32e-5,
                15_952_032,
            ),
            (
                6144,
                9.066_012_474_257_135e-4,
                6.566_08e-5,
                1.050_32e-5,
                603_684_896,
            ),
            (
                33_810,
                2.844_794_654_015_886_7e-2,
                1.541_92e-4,
                1.050_32e-5,
                18_288_234_752,
            ),
        ];
        for (n, kernel, h2d, d2h, flops) in golden {
            let m = model_auto_sweep(&dev_spec, n);
            assert_eq!(m.flops, flops, "n={n}");
            assert!(
                (m.kernel_seconds - kernel).abs() <= kernel * 1e-12,
                "n={n}: kernel {} vs golden {kernel}",
                m.kernel_seconds
            );
            assert!((m.h2d_seconds - h2d).abs() <= h2d * 1e-12, "n={n}");
            assert!((m.d2h_seconds - d2h).abs() <= d2h * 1e-12, "n={n}");
            assert_eq!(m.reversal_seconds, 0.0, "serial sweeps never reverse");
        }
    }

    #[test]
    fn candidate_model_matches_functional_executor_exactly() {
        use crate::search::StepProfile;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let dev_spec = spec::gtx_680_cuda();
        let (n, k) = (300usize, 9usize);
        let mut rng = SmallRng::seed_from_u64(77);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let inst = Instance::new("cand-model", Metric::Euc2d, pts).unwrap();
        let mut tour = Tour::random(n, &mut rng);
        let mut eng =
            GpuTwoOpt::new(dev_spec.clone()).with_strategy(Strategy::CandidateResident { k });

        let close = |m: &ModeledSweep, p: &StepProfile, label: &str| {
            assert_eq!(m.pairs, p.pairs_checked, "{label}");
            assert_eq!(m.flops, p.flops, "{label}");
            assert!(
                (m.kernel_seconds - p.kernel_seconds).abs() < 1e-12,
                "{label}: kernel {} vs functional {}",
                m.kernel_seconds,
                p.kernel_seconds
            );
            assert!((m.h2d_seconds - p.h2d_seconds).abs() < 1e-15, "{label}");
            assert!((m.d2h_seconds - p.d2h_seconds).abs() < 1e-15, "{label}");
        };

        // Cold sweep: every city awake, lists uploaded — exactly the
        // serial candidate model at active = n.
        let (mv, p1) = eng.best_move(&inst, &tour).unwrap();
        close(
            &model_candidate_sweep(&dev_spec, n, k, n),
            &p1,
            "cold sweep",
        );

        // Steady state: predict the next work list on the host (cities
        // that kept an improving slot stay awake, the applied move wakes
        // its four endpoints), then check the resident model at that
        // active count — the n·k list upload must have dropped out.
        let m1 = mv.expect("random tour improves");
        let mut awake: Vec<bool> = eng
            .candidate_dont_look()
            .unwrap()
            .iter()
            .map(|&b| !b)
            .collect();
        tour.apply_two_opt(m1.i as usize, m1.j as usize);
        for p in [m1.i, m1.i + 1, m1.j, m1.j + 1] {
            awake[tour.city(p as usize) as usize] = true;
        }
        let active = awake.iter().filter(|&&a| a).count();
        let (_, p2) = eng.best_move(&inst, &tour).unwrap();
        assert_eq!(
            p2.pairs_checked,
            (active * k) as u64,
            "sweep 2 must be a single launch over the predicted work list"
        );
        close(
            &model_candidate_resident_sweep(&dev_spec, n, k, active),
            &p2,
            "steady state",
        );
    }

    #[test]
    fn candidate_model_golden_values_are_unchanged() {
        // Regression pin for the sparse-sweep cost model: FLOP counts
        // are closed-form (active·k·32), and the seconds encode the
        // gather-load byte accounting (40 B per check, 8 B per city in
        // and out) plus the four-transfer upload. Captured at the
        // engine's default gtx_680 geometry; a drift means the candidate
        // kernel's counter accounting changed.
        let dev_spec = spec::gtx_680_cuda();
        // (n, k, active, flops, kernel_s, h2d_s, d2h_s, resident_h2d_s)
        type Golden = (usize, usize, usize, u64, f64, f64, f64, f64);
        let golden: [Golden; 3] = [
            (
                512,
                16,
                512,
                262_144,
                1.919_466_666_666_666_8e-5,
                2.003_84e-4,
                1.213_84e-5,
                1.412_768_000_000_000_2e-4,
            ),
            (
                512,
                16,
                37,
                18_944,
                9.811_333_333_333_332e-6,
                1.996_240_000_000_000_3e-4,
                1.061_84e-5,
                1.405_168e-4,
            ),
            (
                10_000,
                16,
                10_000,
                5_120_000,
                6.237_866_666_666_666e-5,
                5.04e-4,
                4.249_999_999_999_999_6e-5,
                2.019_999_999_999_999_8e-4,
            ),
        ];
        for (n, k, active, flops, kernel, h2d, d2h, resident_h2d) in golden {
            let m = model_candidate_sweep(&dev_spec, n, k, active);
            assert_eq!(m.pairs, (active * k) as u64, "n={n} active={active}");
            assert_eq!(m.flops, flops, "n={n} active={active}");
            assert!(
                (m.kernel_seconds - kernel).abs() <= kernel * 1e-12,
                "n={n} active={active}: kernel {} vs golden {kernel}",
                m.kernel_seconds
            );
            assert!((m.h2d_seconds - h2d).abs() <= h2d * 1e-12, "n={n}");
            assert!((m.d2h_seconds - d2h).abs() <= d2h * 1e-12, "n={n}");
            assert_eq!(m.reversal_seconds, 0.0);
            let r = model_candidate_resident_sweep(&dev_spec, n, k, active);
            assert!(
                (r.h2d_seconds - resident_h2d).abs() <= resident_h2d * 1e-12,
                "n={n} resident h2d {} vs golden {resident_h2d}",
                r.h2d_seconds
            );
            // The two variants differ in upload cost only.
            assert_eq!(r.flops, m.flops);
            assert_eq!(r.kernel_seconds, m.kernel_seconds);
            assert_eq!(r.d2h_seconds, m.d2h_seconds);
        }
    }

    #[test]
    fn candidate_sweep_beats_dense_from_ten_thousand_cities() {
        // The economics the candidate family exists for, pinned at the
        // worst case for the sparse path (every city awake): cheaper
        // than the dense sweep from n = 10⁴ at k = 16, and ≥ 10× faster
        // than the best dense strategy at the paper-scale n = 10⁵.
        let dev_spec = spec::gtx_680_cuda();
        for n in [10_000usize, 31_623, 100_000] {
            let cand = model_candidate_sweep(&dev_spec, n, 16, n).total_seconds();
            let dense = model_auto_sweep(&dev_spec, n).total_seconds();
            let resident = model_device_resident_sweep(&dev_spec, n, n / 2).total_seconds();
            assert!(cand < dense, "n={n}: candidate {cand} vs dense {dense}");
            assert!(
                cand < resident,
                "n={n}: candidate {cand} vs resident {resident}"
            );
        }
        let cand = model_candidate_sweep(&dev_spec, 100_000, 16, 100_000).total_seconds();
        let best_dense = model_device_resident_sweep(&dev_spec, 100_000, 50_000)
            .total_seconds()
            .min(model_auto_sweep(&dev_spec, 100_000).total_seconds());
        assert!(
            cand * 10.0 < best_dense,
            "n=1e5 candidate sweep {cand} not 10x faster than best dense {best_dense}"
        );
    }

    #[test]
    fn gflops_rise_with_problem_size_then_plateau() {
        let spec = spec::gtx_680_cuda();
        let g100 = model_auto_sweep(&spec, 100).gflops();
        let g1000 = model_auto_sweep(&spec, 1000).gflops();
        let g10000 = model_auto_sweep(&spec, 10_000).gflops();
        let g50k = model_auto_sweep(&spec, 50_000).gflops();
        let g100k = model_auto_sweep(&spec, 100_000).gflops();
        assert!(g100 < g1000 && g1000 < g10000, "{g100} {g1000} {g10000}");
        let plateau = (g100k - g50k).abs() / g50k;
        assert!(plateau < 0.05, "plateau drift {plateau}");
    }
}
