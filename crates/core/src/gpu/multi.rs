//! Multi-device 2-opt — the paper's §VI outlook implemented: "we will
//! try to parallelize it even further by using more CPUs and GPUs and
//! possibly dividing the 2-opt task between multiple devices in order to
//! effectively solve larger instances".
//!
//! The triangular pair space is already linear (Fig. 3), so device-level
//! decomposition is a one-liner on top of the striding scheme: device
//! `d` of `D` sweeps the contiguous index range
//! `[d·P/D, (d+1)·P/D)`. Each device stages the same ordered coordinate
//! array (or its tile ranges) and publishes its range's best move; the
//! host reduces the `D` packed keys. Devices are independent, so the
//! modeled end-to-end time is the **maximum** over the devices'
//! (H2D + kernel + D2H) — the same independence argument the paper makes
//! for its tiled kernel launches.

use crate::bestmove::{unpack, BestMove, EMPTY_KEY, MAX_POSITION};
use crate::cpu_model::BYTES_PER_CHECK;
use crate::delta::{delta_ordered, FLOPS_PER_CHECK};
use crate::gpu::small::{block_reduce, RESULT_SLOT};
use crate::gpu::tiled::auto_tile;
use crate::indexing::{index_to_pair, index_to_tile_pair, pair_count, tile_pair_count};
use crate::search::{EngineError, StepProfile, TwoOptEngine};
use gpu_sim::{
    AtomicDeviceBuffer, Device, DeviceBuffer, DeviceSpec, Kernel, LaunchConfig, ThreadCtx,
};
use tsp_core::{Instance, Point, Tour};

/// The shared-memory kernel restricted to a contiguous pair-index range.
struct RangeKernel<'a> {
    coords: &'a DeviceBuffer<Point>,
    out: &'a AtomicDeviceBuffer,
    /// First pair index this device owns.
    start: u64,
    /// One past the last pair index this device owns.
    end: u64,
}

/// Shared state: staged coordinates + reduction scratch.
struct RangeShared {
    coords: Vec<Point>,
    scratch: Vec<u64>,
}

impl Kernel for RangeKernel<'_> {
    type Shared = RangeShared;

    fn shared_bytes(&self) -> usize {
        self.coords.len() * Point::DEVICE_BYTES
    }

    fn make_shared(&self) -> RangeShared {
        RangeShared {
            coords: vec![Point::default(); self.coords.len()],
            scratch: Vec::new(),
        }
    }

    fn num_phases(&self) -> usize {
        3
    }

    fn label(&self) -> &str {
        "2opt-eval-range"
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, shared: &mut RangeShared) {
        let n = self.coords.len();
        match phase {
            0 => {
                if shared.scratch.is_empty() {
                    shared.scratch = vec![EMPTY_KEY; ctx.block_dim as usize];
                }
                let src = self.coords.as_slice();
                let mut k = ctx.thread_idx as usize;
                let mut loads = 0u64;
                while k < n {
                    shared.coords[k] = src[k];
                    loads += 1;
                    k += ctx.block_dim as usize;
                }
                ctx.global_read(loads * Point::DEVICE_BYTES as u64);
                ctx.shared_bytes(loads * Point::DEVICE_BYTES as u64);
            }
            1 => {
                let stride = ctx.total_threads();
                let mut k = self.start + ctx.global_thread_id();
                let mut best = EMPTY_KEY;
                let mut evals = 0u64;
                while k < self.end {
                    let (i, j) = index_to_pair(k);
                    let d = delta_ordered(&shared.coords, i as usize, j as usize);
                    let key = crate::bestmove::pack(d, i as u32, j as u32);
                    if key < best {
                        best = key;
                    }
                    evals += 1;
                    k += stride;
                }
                ctx.flops(evals * FLOPS_PER_CHECK);
                ctx.shared_bytes(evals * BYTES_PER_CHECK);
                shared.scratch[ctx.thread_idx as usize] = best;
                if evals > 0 {
                    ctx.shared_bytes(8);
                }
            }
            2 => block_reduce(ctx, &shared.scratch, self.out),
            _ => unreachable!("RangeKernel has 3 phases"),
        }
    }
}

/// The tiled kernel restricted to a contiguous range of tile pairs.
struct TiledRangeKernel<'a> {
    coords: &'a DeviceBuffer<Point>,
    out: &'a AtomicDeviceBuffer,
    tile: usize,
    /// First tile-pair index this device owns (block 0 maps here).
    first_tile_pair: u64,
}

/// Two staged ranges + reduction scratch.
struct TiledRangeShared {
    a: Vec<Point>,
    b: Vec<Point>,
    scratch: Vec<u64>,
}

impl TiledRangeKernel<'_> {
    fn positions(&self) -> usize {
        self.coords.len() - 1
    }

    fn tile_range(&self, t: u64) -> (usize, usize) {
        let start = t as usize * self.tile;
        let end = (start + self.tile).min(self.positions());
        (start, end)
    }
}

impl Kernel for TiledRangeKernel<'_> {
    type Shared = TiledRangeShared;

    fn shared_bytes(&self) -> usize {
        2 * (self.tile + 1) * Point::DEVICE_BYTES
    }

    fn make_shared(&self) -> TiledRangeShared {
        TiledRangeShared {
            a: vec![Point::default(); self.tile + 1],
            b: vec![Point::default(); self.tile + 1],
            scratch: Vec::new(),
        }
    }

    fn num_phases(&self) -> usize {
        3
    }

    fn label(&self) -> &str {
        "2opt-eval-tiled-range"
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, shared: &mut TiledRangeShared) {
        let (ta, tb) = index_to_tile_pair(self.first_tile_pair + ctx.block_idx as u64);
        let (a_start, a_end) = self.tile_range(ta);
        let (b_start, b_end) = self.tile_range(tb);
        let a_len = a_end - a_start + 1;
        let b_len = b_end - b_start + 1;
        match phase {
            0 => {
                if shared.scratch.is_empty() {
                    shared.scratch = vec![EMPTY_KEY; ctx.block_dim as usize];
                }
                let src = self.coords.as_slice();
                let mut loads = 0u64;
                let mut k = ctx.thread_idx as usize;
                while k < a_len {
                    shared.a[k] = src[a_start + k];
                    loads += 1;
                    k += ctx.block_dim as usize;
                }
                let mut k = ctx.thread_idx as usize;
                while k < b_len {
                    shared.b[k] = src[b_start + k];
                    loads += 1;
                    k += ctx.block_dim as usize;
                }
                ctx.global_read(loads * Point::DEVICE_BYTES as u64);
                ctx.shared_bytes(loads * Point::DEVICE_BYTES as u64);
            }
            1 => {
                let na = a_end - a_start;
                let nb = b_end - b_start;
                let local_pairs = if ta == tb {
                    (na as u64) * (na as u64 - 1) / 2
                } else {
                    na as u64 * nb as u64
                };
                let stride = ctx.block_dim as u64;
                let mut k = ctx.thread_idx as u64;
                let mut best = EMPTY_KEY;
                let mut evals = 0u64;
                while k < local_pairs {
                    let (i, j) = if ta == tb {
                        let (li, lj) = index_to_pair(k);
                        (a_start + li as usize, a_start + lj as usize)
                    } else {
                        (
                            (k % na as u64) as usize + a_start,
                            (k / na as u64) as usize + b_start,
                        )
                    };
                    let pi = shared.a[i - a_start];
                    let pi1 = shared.a[i + 1 - a_start];
                    let pj = shared.b[j - b_start];
                    let pj1 = shared.b[j + 1 - b_start];
                    let d =
                        (pi.euc_2d(&pj) + pi1.euc_2d(&pj1)) - (pi.euc_2d(&pi1) + pj.euc_2d(&pj1));
                    let key = crate::bestmove::pack(d, i as u32, j as u32);
                    if key < best {
                        best = key;
                    }
                    evals += 1;
                    k += stride;
                }
                ctx.flops(evals * FLOPS_PER_CHECK);
                ctx.shared_bytes(evals * BYTES_PER_CHECK);
                shared.scratch[ctx.thread_idx as usize] = best;
                if evals > 0 {
                    ctx.shared_bytes(8);
                }
            }
            2 => block_reduce(ctx, &shared.scratch, self.out),
            _ => unreachable!("TiledRangeKernel has 3 phases"),
        }
    }
}

/// 2-opt engine across a fleet of (simulated) devices.
///
/// Every device holds the full ordered coordinate array; the candidate
/// space is split evenly by pair count (small kernel) or by tile pairs
/// (tiled kernel). Modeled time assumes the devices run concurrently on
/// independent PCIe links: `max_d (h2d_d + kernel_d + d2h_d)`.
pub struct MultiGpuTwoOpt {
    devices: Vec<Device>,
    block_dim: u32,
    grid_dim: u32,
    ordered: Vec<Point>,
}

impl MultiGpuTwoOpt {
    /// Engine over the given device specs (identical or heterogeneous).
    ///
    /// # Panics
    /// Panics when `specs` is empty.
    pub fn new(specs: Vec<DeviceSpec>) -> Self {
        assert!(!specs.is_empty(), "at least one device is required");
        let block_dim = specs
            .iter()
            .map(|s| s.max_threads_per_block)
            .min()
            .expect("nonempty")
            .min(1024);
        let grid_dim = specs
            .iter()
            .map(|s| s.compute_units)
            .min()
            .expect("nonempty")
            * 4;
        MultiGpuTwoOpt {
            devices: specs.into_iter().map(Device::new).collect(),
            block_dim,
            grid_dim,
            ordered: Vec::new(),
        }
    }

    /// `count` identical devices of one spec.
    pub fn homogeneous(spec: DeviceSpec, count: usize) -> Self {
        Self::new(vec![spec; count.max(1)])
    }

    /// Number of devices in the fleet.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }
}

impl TwoOptEngine for MultiGpuTwoOpt {
    fn name(&self) -> String {
        format!(
            "multi-gpu[{}x {}]",
            self.devices.len(),
            self.devices[0].spec().name
        )
    }

    fn best_move(
        &mut self,
        inst: &Instance,
        tour: &Tour,
    ) -> Result<(Option<BestMove>, StepProfile), EngineError> {
        if !inst.is_coordinate_based() {
            return Err(EngineError::Unsupported(
                "multi-GPU kernels require coordinates".into(),
            ));
        }
        let n = tour.len();
        if n < 4 {
            return Ok((None, StepProfile::default()));
        }
        if n - 1 > MAX_POSITION as usize {
            return Err(EngineError::Unsupported(format!(
                "instance of {n} cities exceeds the packed-key position budget"
            )));
        }
        self.ordered.clear();
        self.ordered
            .extend(tour.as_slice().iter().map(|&c| inst.point(c as usize)));

        let d = self.devices.len() as u64;
        let fits_shared = self
            .devices
            .iter()
            .all(|dev| n * Point::DEVICE_BYTES <= dev.spec().shared_mem_per_block);

        let mut best_key = EMPTY_KEY;
        let mut per_device_seconds: f64 = 0.0;
        let mut profile = StepProfile {
            pairs_checked: pair_count(n),
            ..Default::default()
        };

        if fits_shared {
            let pairs = pair_count(n);
            for (idx, dev) in self.devices.iter().enumerate() {
                let start = pairs * idx as u64 / d;
                let end = pairs * (idx as u64 + 1) / d;
                let (coords, h2d) = dev.copy_to_device(&self.ordered)?;
                let out = dev.alloc_atomic(1, EMPTY_KEY)?;
                let kernel = RangeKernel {
                    coords: &coords,
                    out: &out,
                    start,
                    end,
                };
                let p = dev.launch(LaunchConfig::new(self.grid_dim, self.block_dim), &kernel)?;
                let (words, d2h) = dev.copy_from_device(&out);
                best_key = best_key.min(words[RESULT_SLOT]);
                profile.flops += p.counters.flops;
                per_device_seconds = per_device_seconds.max(h2d.seconds + p.seconds + d2h.seconds);
                // Attribute the device's own split for reporting.
                profile.kernel_seconds = profile.kernel_seconds.max(p.seconds);
                profile.h2d_seconds = profile.h2d_seconds.max(h2d.seconds);
                profile.d2h_seconds = profile.d2h_seconds.max(d2h.seconds);
            }
        } else {
            // Tiled decomposition: split tile pairs contiguously.
            let shared = self
                .devices
                .iter()
                .map(|dev| dev.spec().shared_mem_per_block)
                .min()
                .expect("nonempty");
            let tile = auto_tile(n, shared, self.grid_dim * self.devices.len() as u32);
            let tiles = ((n - 1) as u64).div_ceil(tile as u64);
            let total_tp = tile_pair_count(tiles);
            for (idx, dev) in self.devices.iter().enumerate() {
                let first = total_tp * idx as u64 / d;
                let last = total_tp * (idx as u64 + 1) / d;
                if first == last {
                    continue;
                }
                let (coords, h2d) = dev.copy_to_device(&self.ordered)?;
                let out = dev.alloc_atomic(1, EMPTY_KEY)?;
                let kernel = TiledRangeKernel {
                    coords: &coords,
                    out: &out,
                    tile,
                    first_tile_pair: first,
                };
                let p = dev.launch(
                    LaunchConfig::new((last - first) as u32, self.block_dim),
                    &kernel,
                )?;
                let (words, d2h) = dev.copy_from_device(&out);
                best_key = best_key.min(words[RESULT_SLOT]);
                profile.flops += p.counters.flops;
                per_device_seconds = per_device_seconds.max(h2d.seconds + p.seconds + d2h.seconds);
                profile.kernel_seconds = profile.kernel_seconds.max(p.seconds);
                profile.h2d_seconds = profile.h2d_seconds.max(h2d.seconds);
                profile.d2h_seconds = profile.d2h_seconds.max(d2h.seconds);
            }
        }

        // Report the concurrent makespan as the kernel time so that
        // modeled_seconds() == max over devices (transfers are already
        // folded into the per-device maxima above; avoid double count).
        profile.kernel_seconds = per_device_seconds - profile.h2d_seconds - profile.d2h_seconds;
        Ok((unpack(best_key).filter(BestMove::improves), profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuTwoOpt;
    use crate::sequential::SequentialTwoOpt;
    use gpu_sim::spec;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::Metric;

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn multi_device_agrees_with_single_small_kernel() {
        let inst = random_instance(120, 3);
        let mut rng = SmallRng::seed_from_u64(9);
        let tour = Tour::random(120, &mut rng);
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        for count in [1usize, 2, 3, 4] {
            let mut multi = MultiGpuTwoOpt::homogeneous(spec::gtx_680_cuda(), count);
            let (got, prof) = multi.best_move(&inst, &tour).unwrap();
            assert_eq!(got, expected, "{count} devices");
            assert_eq!(prof.pairs_checked, pair_count(120));
        }
    }

    #[test]
    fn multi_device_agrees_with_single_tiled_kernel() {
        // Shrink shared memory so the tiled path is exercised at n=200.
        let mut s = spec::gtx_680_cuda();
        s.shared_mem_per_block = 1024;
        let inst = random_instance(200, 5);
        let tour = Tour::identity(200);
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        for count in [2usize, 3] {
            let mut multi = MultiGpuTwoOpt::homogeneous(s.clone(), count);
            let (got, _) = multi.best_move(&inst, &tour).unwrap();
            assert_eq!(got, expected, "{count} devices, tiled");
        }
    }

    #[test]
    fn two_devices_roughly_halve_the_kernel_time_at_scale() {
        let inst = random_instance(4000, 7);
        let tour = Tour::identity(4000);
        let mut single = GpuTwoOpt::new(spec::gtx_680_cuda());
        let (_, p1) = single.best_move(&inst, &tour).unwrap();
        let mut dual = MultiGpuTwoOpt::homogeneous(spec::gtx_680_cuda(), 2);
        let (_, p2) = dual.best_move(&inst, &tour).unwrap();
        let ratio = p1.kernel_seconds / p2.kernel_seconds;
        assert!(
            (1.6..2.4).contains(&ratio),
            "dual-device kernel speedup = {ratio:.2}"
        );
    }

    #[test]
    fn heterogeneous_fleet_works() {
        let inst = random_instance(90, 2);
        let tour = Tour::identity(90);
        let mut seq = SequentialTwoOpt::new();
        let (expected, _) = seq.best_move(&inst, &tour).unwrap();
        let mut fleet = MultiGpuTwoOpt::new(vec![
            spec::gtx_680_cuda(),
            spec::radeon_7970(),
            spec::radeon_6990_single(),
        ]);
        assert_eq!(fleet.device_count(), 3);
        let (got, _) = fleet.best_move(&inst, &tour).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_panics() {
        let _ = MultiGpuTwoOpt::new(Vec::new());
    }
}
