//! GPU Or-opt: the paper's §VII outlook ("more complex local search
//! algorithms such as 2.5-opt") implemented with the *same* machinery as
//! the 2-opt kernel — route-ordered coordinates staged in shared memory,
//! a flattened candidate space swept by strided threads, and a packed
//! atomic-min reduction.
//!
//! The candidate space is `(combo, s, j)` where `combo` encodes the
//! segment length `L ∈ {1, 2, 3}` and the orientation (forward /
//! reversed), `s` the segment start position and `j` the insertion edge
//! `(j, j+1)`. Flattened size is `6 · n · n`, decoded per index with
//! invalid cells (segment out of bounds, insertion touching the segment)
//! skipped at zero FLOP cost — the same "skip unnecessary computation
//! inside a kernel" shape as the paper's Fig. 8.
//!
//! ## Key packing
//!
//! ```text
//! bits 63..43 : delta + 2^20   (21 bits, saturating)
//! bits 42..23 : s              (20 bits)
//! bits 22..20 : combo          ((L-1)*2 + reversed)
//! bits 19..0  : j              (20 bits)
//! ```
//!
//! `fetch_min` therefore selects the most-improving move with ties
//! broken by `(s, L, reversed, j)` — exactly the CPU
//! [`crate::oropt::best_move`] tie-break, so both agree bit-for-bit.

use crate::bestmove::EMPTY_KEY;
use crate::cpu_model::BYTES_PER_CHECK;
use crate::delta::FLOPS_PER_CHECK;
use crate::gpu::small::{block_reduce, RESULT_SLOT};
use crate::oropt::OrOptMove;
use crate::search::{EngineError, StepProfile};
use gpu_sim::{
    AtomicDeviceBuffer, Device, DeviceBuffer, DeviceSpec, Kernel, LaunchConfig, ThreadCtx,
};
use tsp_core::{Instance, Point, Tour};

/// Maximum relocated-segment length (the classic Or-opt choice).
pub const MAX_SEG_LEN: usize = 3;
/// Number of (length, orientation) combos.
pub const COMBOS: u64 = (MAX_SEG_LEN as u64) * 2;

const DELTA_BITS: u32 = 21;
const DELTA_BIAS: i64 = 1 << (DELTA_BITS - 1);
const DELTA_MASK: u64 = (1 << DELTA_BITS) - 1;
const POS_BITS: u32 = 20;
const POS_MASK: u64 = (1 << POS_BITS) - 1;

/// Pack an Or-opt move into its atomic-min key.
#[inline(always)]
pub fn pack_oropt(delta: i32, s: u32, combo: u32, j: u32) -> u64 {
    debug_assert!(combo < COMBOS as u32);
    let biased = (delta as i64 + DELTA_BIAS).clamp(0, DELTA_MASK as i64) as u64;
    (biased << (2 * POS_BITS + 3))
        | ((s as u64) << (POS_BITS + 3))
        | ((combo as u64) << POS_BITS)
        | j as u64
}

/// Unpack an Or-opt key; `None` for [`EMPTY_KEY`].
pub fn unpack_oropt(key: u64) -> Option<OrOptMove> {
    if key == EMPTY_KEY {
        return None;
    }
    let j = (key & POS_MASK) as usize;
    let combo = ((key >> POS_BITS) & 0b111) as usize;
    let s = ((key >> (POS_BITS + 3)) & POS_MASK) as usize;
    let delta = ((key >> (2 * POS_BITS + 3)) & DELTA_MASK) as i64 - DELTA_BIAS;
    let len = combo / 2 + 1;
    Some(OrOptMove {
        s,
        e: s + len - 1,
        j,
        reversed: combo % 2 == 1,
        delta,
    })
}

/// Decode a flattened candidate index into `(combo, s, j)`.
#[inline(always)]
fn decode(k: u64, n: u64) -> (u64, u64, u64) {
    let combo = k / (n * n);
    let rem = k % (n * n);
    (combo, rem / n, rem % n)
}

/// Evaluate the relocation delta over route-ordered coordinates.
#[inline(always)]
fn oropt_delta_ordered(pts: &[Point], s: usize, e: usize, j: usize, reversed: bool) -> i32 {
    let prev = pts[s - 1];
    let next = pts[e + 1];
    let seg_s = pts[s];
    let seg_e = pts[e];
    let ja = pts[j];
    let jb = pts[j + 1];
    let (head, tail) = if reversed {
        (seg_e, seg_s)
    } else {
        (seg_s, seg_e)
    };
    (prev.euc_2d(&next) + ja.euc_2d(&head) + tail.euc_2d(&jb))
        - (prev.euc_2d(&seg_s) + seg_e.euc_2d(&next) + ja.euc_2d(&jb))
}

/// The Or-opt kernel (shared-memory staged, strided, block-reduced).
pub struct OrOptKernel<'a> {
    /// Route-ordered coordinates.
    pub coords: &'a DeviceBuffer<Point>,
    /// One-word output: packed best Or-opt move.
    pub out: &'a AtomicDeviceBuffer,
}

/// Shared state: staged coordinates + reduction scratch.
pub struct OrOptShared {
    coords: Vec<Point>,
    scratch: Vec<u64>,
}

impl Kernel for OrOptKernel<'_> {
    type Shared = OrOptShared;

    fn shared_bytes(&self) -> usize {
        self.coords.len() * Point::DEVICE_BYTES
    }

    fn make_shared(&self) -> OrOptShared {
        OrOptShared {
            coords: vec![Point::default(); self.coords.len()],
            scratch: Vec::new(),
        }
    }

    fn num_phases(&self) -> usize {
        3
    }

    fn label(&self) -> &str {
        "oropt-eval"
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, shared: &mut OrOptShared) {
        let n = self.coords.len();
        match phase {
            0 => {
                if shared.scratch.is_empty() {
                    shared.scratch = vec![EMPTY_KEY; ctx.block_dim as usize];
                }
                let src = self.coords.as_slice();
                let mut k = ctx.thread_idx as usize;
                let mut loads = 0u64;
                while k < n {
                    shared.coords[k] = src[k];
                    loads += 1;
                    k += ctx.block_dim as usize;
                }
                ctx.global_read(loads * Point::DEVICE_BYTES as u64);
                ctx.shared_bytes(loads * Point::DEVICE_BYTES as u64);
            }
            1 => {
                let n64 = n as u64;
                let space = COMBOS * n64 * n64;
                let stride = ctx.total_threads();
                let mut k = ctx.global_thread_id();
                let mut best = EMPTY_KEY;
                let mut evals = 0u64;
                while k < space {
                    let (combo, s, j) = decode(k, n64);
                    k += stride;
                    let len = (combo / 2 + 1) as usize;
                    let s = s as usize;
                    let j = j as usize;
                    let e = s + len - 1;
                    // Validity: interior segment, interior insertion edge
                    // not touching the segment or its stubs.
                    if s < 1 || e > n - 2 || j > n - 2 || (j + 1 >= s && j <= e) {
                        continue;
                    }
                    let reversed = combo % 2 == 1;
                    let d = oropt_delta_ordered(&shared.coords, s, e, j, reversed);
                    let key = pack_oropt(d, s as u32, combo as u32, j as u32);
                    if key < best {
                        best = key;
                    }
                    evals += 1;
                }
                // 6 distance evaluations per candidate; count at the
                // 2-opt granularity (4 per check) times 1.5.
                ctx.flops(evals * FLOPS_PER_CHECK * 3 / 2);
                ctx.shared_bytes(evals * BYTES_PER_CHECK * 3 / 2);
                shared.scratch[ctx.thread_idx as usize] = best;
                if evals > 0 {
                    ctx.shared_bytes(8);
                }
            }
            2 => block_reduce(ctx, &shared.scratch, self.out),
            _ => unreachable!("OrOptKernel has 3 phases"),
        }
    }
}

/// GPU Or-opt engine: evaluates the full Or-opt neighbourhood on the
/// device and returns the best improving relocation.
pub struct GpuOrOpt {
    device: Device,
    block_dim: u32,
    grid_dim: u32,
    ordered: Vec<Point>,
}

impl GpuOrOpt {
    /// Engine on the given device spec.
    pub fn new(spec: DeviceSpec) -> Self {
        let block_dim = spec.max_threads_per_block.min(1024);
        let grid_dim = spec.compute_units * 4;
        GpuOrOpt {
            device: Device::new(spec),
            block_dim,
            grid_dim,
            ordered: Vec::new(),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Find the best Or-opt move (segment length ≤ 3, both orientations)
    /// or `None` at an Or-opt local minimum.
    pub fn best_move(
        &mut self,
        inst: &Instance,
        tour: &Tour,
    ) -> Result<(Option<OrOptMove>, StepProfile), EngineError> {
        if !inst.is_coordinate_based() {
            return Err(EngineError::Unsupported(
                "the Or-opt kernel requires coordinates".into(),
            ));
        }
        let n = tour.len();
        if n < 5 {
            return Ok((None, StepProfile::default()));
        }
        if n * Point::DEVICE_BYTES > self.device.spec().shared_mem_per_block {
            return Err(EngineError::Unsupported(format!(
                "GpuOrOpt currently implements the shared-memory kernel only \
                 (n = {n} exceeds on-chip capacity; tile it like the 2-opt \
                 kernel to lift this)"
            )));
        }
        self.ordered.clear();
        self.ordered
            .extend(tour.as_slice().iter().map(|&c| inst.point(c as usize)));
        let (coords, h2d) = self.device.copy_to_device(&self.ordered)?;
        let out = self.device.alloc_atomic(1, EMPTY_KEY)?;
        let kernel = OrOptKernel {
            coords: &coords,
            out: &out,
        };
        let p = self
            .device
            .launch(LaunchConfig::new(self.grid_dim, self.block_dim), &kernel)?;
        let (words, d2h) = self.device.copy_from_device(&out);
        let best = unpack_oropt(words[RESULT_SLOT]).filter(|m| m.delta < 0);
        let profile = StepProfile {
            pairs_checked: COMBOS * (n as u64) * (n as u64),
            flops: p.counters.flops,
            kernel_seconds: p.seconds,
            reversal_seconds: 0.0,
            h2d_seconds: h2d.seconds,
            d2h_seconds: d2h.seconds,
        };
        Ok((best, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oropt;
    use gpu_sim::spec;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::Metric;

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn pack_unpack_round_trip() {
        for &(d, s, combo, j) in &[
            (0i32, 1u32, 0u32, 5u32),
            (-500_000, 100, 5, 99),
            (400_000, 1_000_000 - 1, 3, 7),
        ] {
            let m = unpack_oropt(pack_oropt(d, s, combo, j)).unwrap();
            assert_eq!(m.delta, d as i64);
            assert_eq!(m.s, s as usize);
            assert_eq!(m.j, j as usize);
            assert_eq!(m.e, s as usize + combo as usize / 2);
            assert_eq!(m.reversed, combo % 2 == 1);
        }
        assert_eq!(unpack_oropt(EMPTY_KEY), None);
    }

    #[test]
    fn key_order_matches_cpu_tie_break() {
        // (delta, s, len, reversed, j) lexicographic.
        assert!(pack_oropt(-5, 1, 0, 9) < pack_oropt(-4, 1, 0, 0));
        assert!(pack_oropt(-5, 1, 0, 9) < pack_oropt(-5, 2, 0, 0));
        assert!(pack_oropt(-5, 1, 0, 9) < pack_oropt(-5, 1, 1, 0));
        assert!(pack_oropt(-5, 1, 2, 9) < pack_oropt(-5, 1, 3, 0));
        assert!(pack_oropt(-5, 1, 0, 3) < pack_oropt(-5, 1, 0, 4));
    }

    #[test]
    fn gpu_oropt_agrees_with_cpu_oropt() {
        for seed in 0..4 {
            let inst = random_instance(60, seed);
            let mut rng = SmallRng::seed_from_u64(seed + 30);
            let tour = Tour::random(60, &mut rng);
            let (expected, _) = oropt::best_move(&inst, &tour, MAX_SEG_LEN);
            let mut gpu = GpuOrOpt::new(spec::gtx_680_cuda());
            let (got, prof) = gpu.best_move(&inst, &tour).unwrap();
            match (expected, got) {
                (Some(e), Some(g)) => {
                    assert_eq!(
                        (g.delta, g.s, g.e, g.reversed, g.j),
                        (e.delta, e.s, e.e, e.reversed, e.j),
                        "seed {seed}"
                    );
                }
                (None, None) => {}
                other => panic!("seed {seed}: mismatch {other:?}"),
            }
            assert!(prof.kernel_seconds > 0.0);
        }
    }

    #[test]
    fn gpu_oropt_descent_reaches_cpu_oropt_minimum() {
        let inst = random_instance(40, 9);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut tour = Tour::random(40, &mut rng);
        let mut gpu = GpuOrOpt::new(spec::gtx_680_cuda());
        let mut applied = 0;
        while let (Some(m), _) = gpu.best_move(&inst, &tour).unwrap() {
            let before = tour.length(&inst);
            oropt::apply(&mut tour, &m);
            assert_eq!(tour.length(&inst) - before, m.delta);
            applied += 1;
            assert!(applied < 10_000, "descent must terminate");
        }
        // At the GPU's local minimum, the CPU sweep finds nothing either.
        let (mv, _) = oropt::best_move(&inst, &tour, MAX_SEG_LEN);
        assert!(mv.is_none());
        tour.validate().unwrap();
    }

    #[test]
    fn rejects_oversized_instances_for_now() {
        let inst = random_instance(7000, 1);
        let tour = Tour::identity(7000);
        let mut gpu = GpuOrOpt::new(spec::gtx_680_cuda());
        assert!(matches!(
            gpu.best_move(&inst, &tour),
            Err(EngineError::Unsupported(_))
        ));
    }
}
