//! On-device segment reversal for the device-resident pipeline.
//!
//! The paper's Algorithm 2 applies the chosen 2-opt move on the *host*
//! and re-uploads the whole ordered coordinate array every sweep. With
//! the coordinates resident on the device, the move `(i, j)` can instead
//! be applied in place by reversing the position range `[i+1, j]` —
//! `len/2` independent word swaps, striped across the grid. The swaps
//! touch `2 · len` words of global traffic (each word is read once and
//! written once) and need no shared memory and no atomics; with the
//! roofline model this prices at roughly `launch overhead + one global
//! latency + traffic/bandwidth`, far below the per-sweep PCIe upload it
//! replaces once `n` is in the thousands.
//!
//! Wrap-around segments (`from + len > n`) are supported so the kernel
//! is a complete mirror of [`Tour::reverse_segment_wrapping`]; the 2-opt
//! engine only ever issues in-bounds segments.
//!
//! [`Tour::reverse_segment_wrapping`]: tsp_core::Tour::reverse_segment_wrapping

use gpu_sim::{AtomicDeviceBuffer, Kernel, ThreadCtx};

/// Reverses `len` consecutive positions starting at `from` (mod the
/// buffer length) of a resident coordinate array of packed
/// [`Point::to_device_word`] words.
///
/// [`Point::to_device_word`]: tsp_core::Point::to_device_word
pub struct SegmentReversalKernel<'a> {
    /// Resident route-ordered coordinates, one packed point per word.
    pub coords: &'a AtomicDeviceBuffer,
    /// First position of the segment.
    pub from: usize,
    /// Segment length in positions (may wrap past the end).
    pub len: usize,
}

impl SegmentReversalKernel<'_> {
    /// Number of element swaps the reversal performs.
    #[inline]
    pub fn swaps(&self) -> usize {
        self.len / 2
    }
}

impl Kernel for SegmentReversalKernel<'_> {
    type Shared = ();

    fn shared_bytes(&self) -> usize {
        0
    }

    fn make_shared(&self) {}

    fn num_phases(&self) -> usize {
        1
    }

    fn label(&self) -> &str {
        "2opt-reverse"
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, _shared: &mut ()) {
        debug_assert_eq!(phase, 0, "SegmentReversalKernel has 1 phase");
        let n = self.coords.len();
        if n == 0 || self.len <= 1 {
            return;
        }
        debug_assert!(self.from < n, "segment start out of range");
        debug_assert!(self.len <= n, "segment longer than the tour");
        let swaps = self.swaps() as u64;
        let stride = ctx.total_threads();
        let mut k = ctx.global_thread_id();
        let mut done = 0u64;
        while k < swaps {
            let a = (self.from + k as usize) % n;
            let b = (self.from + self.len - 1 - k as usize) % n;
            let wa = self.coords.load(a);
            let wb = self.coords.load(b);
            self.coords.store(a, wb);
            self.coords.store(b, wa);
            done += 1;
            k += stride;
        }
        // Each swap reads two 8-byte words and writes two back.
        ctx.global_read(done * 16);
        ctx.global_write(done * 16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{spec, Device, LaunchConfig};
    use tsp_core::{Point, Tour};

    fn points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f32 * 3.0 + 0.5, (n - i) as f32 * 7.0))
            .collect()
    }

    /// Run the kernel and return the resident points, alongside the
    /// host-side reference reversal applied to the same data.
    fn reverse_on_device(
        n: usize,
        from: usize,
        len: usize,
        cfg: LaunchConfig,
    ) -> (Vec<Point>, Vec<Point>) {
        let dev = Device::new(spec::gtx_680_cuda());
        let pts = points(n);
        let words: Vec<u64> = pts.iter().map(|p| p.to_device_word()).collect();
        let buf = dev.alloc_atomic(n, 0).unwrap();
        dev.upload_atomic(&buf, &words).unwrap();
        let k = SegmentReversalKernel {
            coords: &buf,
            from,
            len,
        };
        dev.launch(cfg, &k).unwrap();
        let got: Vec<Point> = buf
            .to_vec()
            .into_iter()
            .map(Point::from_device_word)
            .collect();

        // Reference: permute position indices with the Tour primitive,
        // then gather.
        let mut order = Tour::identity(n);
        order.reverse_segment_wrapping(from, len);
        let want: Vec<Point> = order.as_slice().iter().map(|&c| pts[c as usize]).collect();
        (got, want)
    }

    fn assert_points_bit_equal(got: &[Point], want: &[Point], ctxt: &str) {
        assert_eq!(got.len(), want.len(), "{ctxt}");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.x.to_bits(), w.x.to_bits(), "{ctxt}");
            assert_eq!(g.y.to_bits(), w.y.to_bits(), "{ctxt}");
        }
    }

    #[test]
    fn matches_host_reversal_in_bounds() {
        for (n, from, len) in [(10, 2, 5), (10, 0, 10), (7, 3, 4), (100, 17, 60)] {
            let (got, want) = reverse_on_device(n, from, len, LaunchConfig::new(4, 32));
            assert_points_bit_equal(&got, &want, &format!("n={n} from={from} len={len}"));
        }
    }

    #[test]
    fn matches_host_reversal_with_wraparound() {
        for (n, from, len) in [(10, 8, 5), (6, 4, 4), (9, 5, 9)] {
            let (got, want) = reverse_on_device(n, from, len, LaunchConfig::new(4, 32));
            assert_points_bit_equal(&got, &want, &format!("n={n} from={from} len={len}"));
        }
    }

    #[test]
    fn degenerate_segments_are_noops() {
        for len in [0, 1] {
            let (got, want) = reverse_on_device(12, 5, len, LaunchConfig::new(2, 8));
            assert_points_bit_equal(&got, &want, &format!("len={len}"));
        }
    }

    #[test]
    fn result_is_independent_of_launch_geometry() {
        let (reference, _) = reverse_on_device(64, 10, 40, LaunchConfig::new(1, 1));
        for cfg in [
            LaunchConfig::new(1, 64),
            LaunchConfig::new(8, 32),
            LaunchConfig::new(32, 1024),
        ] {
            let (got, _) = reverse_on_device(64, 10, 40, cfg);
            assert_points_bit_equal(&got, &reference, &format!("{cfg:?}"));
        }
    }

    #[test]
    fn traffic_counts_two_words_per_swap_each_way() {
        let dev = Device::new(spec::gtx_680_cuda());
        let n = 1000;
        let words: Vec<u64> = points(n).iter().map(|p| p.to_device_word()).collect();
        let buf = dev.alloc_atomic(n, 0).unwrap();
        dev.upload_atomic(&buf, &words).unwrap();
        let k = SegmentReversalKernel {
            coords: &buf,
            from: 1,
            len: n - 1,
        };
        let profile = dev.launch(LaunchConfig::new(8, 256), &k).unwrap();
        let c = profile.counters;
        let swaps = ((n - 1) / 2) as u64;
        assert_eq!(c.global_read_bytes, swaps * 16);
        assert_eq!(c.global_write_bytes, swaps * 16);
        assert_eq!(c.atomic_ops, 0);
        assert_eq!(c.shared_bytes, 0);
        assert!(profile.seconds > 0.0);
    }
}
