//! Shared-memory 2-opt kernels for instances that fit on chip (§IV.A).
//!
//! Three variants share the evaluation loop but differ in where the
//! coordinates live — exactly the paper's optimization narrative:
//!
//! * [`OrderedSharedKernel`] — Optimizations 1 **and** 2: route-ordered
//!   coordinates staged once into shared memory, then re-used across all
//!   striding iterations ("each thread will reuse previously stored data
//!   in the shared memory 99 times without having to access the slow
//!   global memory").
//! * [`UnorderedSharedKernel`] — Optimization 1 only (the Fig. 5
//!   baseline): city-indexed coordinates *and* the route array staged in
//!   shared memory; every point access pays the route indirection and the
//!   extra footprint limits capacity.
//! * [`GlobalOnlyKernel`] — neither optimization: ordered coordinates
//!   read from global memory on every access; the modeled time shows why
//!   the paper calls this "not a good idea".

use crate::bestmove::{pack, EMPTY_KEY};
use crate::cpu_model::BYTES_PER_CHECK;
use crate::delta::{delta_ordered, FLOPS_PER_CHECK};
use crate::gpu::coords::CoordSource;
use crate::indexing::{index_to_pair, pair_count};
use gpu_sim::{AtomicDeviceBuffer, DeviceBuffer, Kernel, ThreadCtx};
use tsp_core::Point;

/// Slot in the result buffer that receives the packed best move.
pub const RESULT_SLOT: usize = 0;

/// The paper's main kernel: staged, route-ordered coordinates.
///
/// Generic over where the ordered coordinates live ([`CoordSource`]):
/// a plain [`DeviceBuffer`] for the serial re-upload pipeline, or the
/// resident atomic buffer for the device-resident one. Both run the
/// same staging/evaluation loops and account identical work.
pub struct OrderedSharedKernel<'a, C: CoordSource> {
    /// Route-ordered coordinates (`ordered_coordinates` of Fig. 6).
    pub coords: C,
    /// One-word output: packed best move.
    pub out: &'a AtomicDeviceBuffer,
}

/// Shared state of the staged kernels: the coordinate store plus the
/// per-thread reduction scratch ("Get best local pair" of Fig. 4).
pub struct StagedShared {
    coords: Vec<Point>,
    scratch: Vec<u64>,
}

impl<C: CoordSource> Kernel for OrderedSharedKernel<'_, C> {
    type Shared = StagedShared;

    fn shared_bytes(&self) -> usize {
        self.coords.len() * Point::DEVICE_BYTES
    }

    fn make_shared(&self) -> StagedShared {
        StagedShared {
            coords: vec![Point::default(); self.coords.len()],
            scratch: Vec::new(),
        }
    }

    fn num_phases(&self) -> usize {
        3
    }

    fn label(&self) -> &str {
        "2opt-eval-shared"
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, shared: &mut StagedShared) {
        let n = self.coords.len();
        match phase {
            // Cooperative strided load: global -> shared, once per block.
            0 => {
                if shared.scratch.is_empty() {
                    shared.scratch = vec![EMPTY_KEY; ctx.block_dim as usize];
                }
                let mut k = ctx.thread_idx as usize;
                let mut loads = 0u64;
                while k < n {
                    shared.coords[k] = self.coords.get(k);
                    loads += 1;
                    k += ctx.block_dim as usize;
                }
                ctx.global_read(loads * Point::DEVICE_BYTES as u64);
                ctx.shared_bytes(loads * Point::DEVICE_BYTES as u64);
            }
            // Strided evaluation with a thread-local best, written to the
            // block's reduction scratch.
            1 => {
                let pairs = pair_count(n);
                let stride = ctx.total_threads();
                let mut k = ctx.global_thread_id();
                let mut best = EMPTY_KEY;
                let mut evals = 0u64;
                while k < pairs {
                    let (i, j) = index_to_pair(k);
                    let d = delta_ordered(&shared.coords, i as usize, j as usize);
                    let key = pack(d, i as u32, j as u32);
                    if key < best {
                        best = key;
                    }
                    evals += 1;
                    k += stride;
                }
                ctx.flops(evals * FLOPS_PER_CHECK);
                ctx.shared_bytes(evals * BYTES_PER_CHECK);
                shared.scratch[ctx.thread_idx as usize] = best;
                if evals > 0 {
                    ctx.shared_bytes(8);
                }
            }
            // Block reduction + a single global atomic per block.
            2 => block_reduce(ctx, &shared.scratch, self.out),
            _ => unreachable!("OrderedSharedKernel has 3 phases"),
        }
    }
}

/// Thread 0 reduces the block's per-thread bests and publishes one
/// atomic-min — the "Get best global pair" step of Fig. 4. (A real
/// kernel uses a log2(block) tree; the traffic and the single atomic are
/// what the cost model sees either way.)
pub(crate) fn block_reduce(ctx: &mut ThreadCtx<'_>, scratch: &[u64], out: &AtomicDeviceBuffer) {
    if ctx.thread_idx != 0 {
        return;
    }
    let mut best = EMPTY_KEY;
    for &k in scratch {
        if k < best {
            best = k;
        }
    }
    ctx.shared_bytes(8 * scratch.len() as u64);
    if best != EMPTY_KEY {
        out.fetch_min(RESULT_SLOT, best);
        ctx.atomics(1);
    }
}

/// Ablation: Optimization 1 without Optimization 2 (Fig. 5 layout).
///
/// Shared memory holds the *city-indexed* coordinates plus the route
/// array; every point access goes through `coords[route[pos]]`.
pub struct UnorderedSharedKernel<'a> {
    /// City-indexed coordinates.
    pub coords: &'a DeviceBuffer<Point>,
    /// The route (tour order).
    pub route: &'a DeviceBuffer<u32>,
    /// One-word output: packed best move.
    pub out: &'a AtomicDeviceBuffer,
}

/// Shared state of [`UnorderedSharedKernel`]: staged coordinates, staged
/// route and the reduction scratch.
pub struct UnorderedShared {
    coords: Vec<Point>,
    route: Vec<u32>,
    scratch: Vec<u64>,
}

impl Kernel for UnorderedSharedKernel<'_> {
    type Shared = UnorderedShared;

    fn shared_bytes(&self) -> usize {
        // Fig. 5: n * sizeof(route entry) + n * sizeof(float2).
        self.coords.len() * (Point::DEVICE_BYTES + core::mem::size_of::<u32>())
    }

    fn make_shared(&self) -> UnorderedShared {
        UnorderedShared {
            coords: vec![Point::default(); self.coords.len()],
            route: vec![0; self.route.len()],
            scratch: Vec::new(),
        }
    }

    fn num_phases(&self) -> usize {
        3
    }

    fn label(&self) -> &str {
        "2opt-eval-unordered"
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, shared: &mut UnorderedShared) {
        let n = self.coords.len();
        match phase {
            0 => {
                if shared.scratch.is_empty() {
                    shared.scratch = vec![EMPTY_KEY; ctx.block_dim as usize];
                }
                let src_c = self.coords.as_slice();
                let src_r = self.route.as_slice();
                let mut k = ctx.thread_idx as usize;
                let mut loads = 0u64;
                while k < n {
                    shared.coords[k] = src_c[k];
                    shared.route[k] = src_r[k];
                    loads += 1;
                    k += ctx.block_dim as usize;
                }
                ctx.global_read(loads * (Point::DEVICE_BYTES as u64 + 4));
                ctx.shared_bytes(loads * (Point::DEVICE_BYTES as u64 + 4));
            }
            1 => {
                let pairs = pair_count(n);
                let stride = ctx.total_threads();
                let mut k = ctx.global_thread_id();
                let mut best = EMPTY_KEY;
                let mut evals = 0u64;
                // Point accessor with the route indirection of Fig. 5.
                let at = |pos: usize| shared.coords[shared.route[pos] as usize];
                while k < pairs {
                    let (iu, ju) = index_to_pair(k);
                    let (i, j) = (iu as usize, ju as usize);
                    let (pi, pi1, pj, pj1) = (at(i), at(i + 1), at(j), at(j + 1));
                    let d =
                        (pi.euc_2d(&pj) + pi1.euc_2d(&pj1)) - (pi.euc_2d(&pi1) + pj.euc_2d(&pj1));
                    let key = pack(d, iu as u32, ju as u32);
                    if key < best {
                        best = key;
                    }
                    evals += 1;
                    k += stride;
                }
                ctx.flops(evals * FLOPS_PER_CHECK);
                // 4 route reads (4 B) + 4 point reads (8 B) per check:
                // the extra traffic and address arithmetic Optimization 2
                // removes.
                ctx.shared_bytes(evals * (BYTES_PER_CHECK + 4 * 4));
                shared.scratch[ctx.thread_idx as usize] = best;
                if evals > 0 {
                    ctx.shared_bytes(8);
                }
            }
            2 => block_reduce(ctx, &shared.scratch, self.out),
            _ => unreachable!("UnorderedSharedKernel has 3 phases"),
        }
    }
}

/// Ablation: no staging at all — every access hits global memory.
pub struct GlobalOnlyKernel<'a> {
    /// Route-ordered coordinates in global memory.
    pub coords: &'a DeviceBuffer<Point>,
    /// One-word output: packed best move.
    pub out: &'a AtomicDeviceBuffer,
}

impl Kernel for GlobalOnlyKernel<'_> {
    type Shared = Vec<u64>;

    fn shared_bytes(&self) -> usize {
        0
    }

    fn make_shared(&self) -> Vec<u64> {
        Vec::new()
    }

    fn num_phases(&self) -> usize {
        2
    }

    fn label(&self) -> &str {
        "2opt-eval-global"
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, scratch: &mut Vec<u64>) {
        match phase {
            0 => {
                if scratch.is_empty() {
                    scratch.resize(ctx.block_dim as usize, EMPTY_KEY);
                }
                let pts = self.coords.as_slice();
                let pairs = pair_count(pts.len());
                let stride = ctx.total_threads();
                let mut k = ctx.global_thread_id();
                let mut best = EMPTY_KEY;
                let mut evals = 0u64;
                while k < pairs {
                    let (i, j) = index_to_pair(k);
                    let d = delta_ordered(pts, i as usize, j as usize);
                    let key = pack(d, i as u32, j as u32);
                    if key < best {
                        best = key;
                    }
                    evals += 1;
                    k += stride;
                }
                ctx.flops(evals * FLOPS_PER_CHECK);
                // All four point loads per check travel on the
                // global-memory pipe.
                ctx.global_read(evals * BYTES_PER_CHECK);
                scratch[ctx.thread_idx as usize] = best;
                if evals > 0 {
                    ctx.shared_bytes(8);
                }
            }
            1 => block_reduce(ctx, scratch, self.out),
            _ => unreachable!("GlobalOnlyKernel has 2 phases"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bestmove::unpack;
    use gpu_sim::{spec, Device, LaunchConfig};

    fn ordered_square_bad() -> Vec<Point> {
        // Tour 0 -> 2 -> 1 -> 3 over the unit-10 square: crossing.
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 0.0),
        ]
    }

    #[test]
    fn ordered_kernel_finds_uncross_move() {
        let dev = Device::new(spec::gtx_680_cuda());
        let (coords, _) = dev.copy_to_device(&ordered_square_bad()).unwrap();
        let out = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        let k = OrderedSharedKernel {
            coords: &coords,
            out: &out,
        };
        dev.launch(LaunchConfig::new(2, 32), &k).unwrap();
        let m = unpack(out.load(RESULT_SLOT)).unwrap();
        assert_eq!((m.delta, m.i, m.j), (-8, 0, 2));
    }

    #[test]
    fn all_variants_agree() {
        let dev = Device::new(spec::gtx_680_cuda());
        let pts = ordered_square_bad();
        // Ordered layout for ordered/global kernels.
        let (ordered, _) = dev.copy_to_device(&pts).unwrap();
        // City layout + route for the unordered kernel: choose city ids
        // equal to position ids of a different permutation to make the
        // indirection non-trivial.
        let city_coords = vec![pts[2], pts[0], pts[1], pts[3]];
        let route = vec![1u32, 2, 0, 3]; // city_coords[route[k]] == pts[k]
        let (cbuf, _) = dev.copy_to_device(&city_coords).unwrap();
        let (rbuf, _) = dev.copy_to_device(&route).unwrap();

        let o1 = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        let o2 = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        let o3 = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        dev.launch(
            LaunchConfig::new(2, 16),
            &OrderedSharedKernel {
                coords: &ordered,
                out: &o1,
            },
        )
        .unwrap();
        dev.launch(
            LaunchConfig::new(2, 16),
            &UnorderedSharedKernel {
                coords: &cbuf,
                route: &rbuf,
                out: &o2,
            },
        )
        .unwrap();
        dev.launch(
            LaunchConfig::new(2, 16),
            &GlobalOnlyKernel {
                coords: &ordered,
                out: &o3,
            },
        )
        .unwrap();
        assert_eq!(o1.load(0), o2.load(0));
        assert_eq!(o1.load(0), o3.load(0));
    }

    #[test]
    fn modeled_cost_ordering_matches_paper_narrative() {
        // global-only slower than unordered-shared slower than ordered.
        let dev = Device::new(spec::gtx_680_cuda());
        let n = 512;
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 23) as f32 * 17.0, (i % 41) as f32 * 13.0))
            .collect();
        let route: Vec<u32> = (0..n as u32).collect();
        let (ordered, _) = dev.copy_to_device(&pts).unwrap();
        let (rbuf, _) = dev.copy_to_device(&route).unwrap();
        let cfg = LaunchConfig::new(8, 128);

        let out = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        let t_ordered = dev
            .launch(
                cfg,
                &OrderedSharedKernel {
                    coords: &ordered,
                    out: &out,
                },
            )
            .unwrap()
            .seconds;
        out.fill(EMPTY_KEY);
        let t_unordered = dev
            .launch(
                cfg,
                &UnorderedSharedKernel {
                    coords: &ordered,
                    route: &rbuf,
                    out: &out,
                },
            )
            .unwrap()
            .seconds;
        out.fill(EMPTY_KEY);
        let t_global = dev
            .launch(
                cfg,
                &GlobalOnlyKernel {
                    coords: &ordered,
                    out: &out,
                },
            )
            .unwrap()
            .seconds;
        assert!(
            t_ordered <= t_unordered,
            "ordered {t_ordered} vs unordered {t_unordered}"
        );
        assert!(
            t_unordered < t_global,
            "unordered {t_unordered} vs global {t_global}"
        );
    }

    #[test]
    fn unordered_kernel_needs_more_shared_memory() {
        let dev = Device::new(spec::gtx_680_cuda());
        // 6144 points fit the ordered kernel exactly (48 kB), but the
        // unordered kernel's route array pushes it over the limit.
        let n = 6144;
        let pts = vec![Point::default(); n];
        let route: Vec<u32> = (0..n as u32).collect();
        let (cbuf, _) = dev.copy_to_device(&pts).unwrap();
        let (rbuf, _) = dev.copy_to_device(&route).unwrap();
        let out = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        let ok = OrderedSharedKernel {
            coords: &cbuf,
            out: &out,
        };
        assert_eq!(ok.shared_bytes(), 48 * 1024);
        let uk = UnorderedSharedKernel {
            coords: &cbuf,
            route: &rbuf,
            out: &out,
        };
        assert!(uk.shared_bytes() > 48 * 1024);
        assert!(dev.launch(LaunchConfig::new(1, 32), &uk).is_err());
    }
}
