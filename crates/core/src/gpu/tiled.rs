//! The §IV.B division scheme: 2-opt for instances of **any** size.
//!
//! With `n` beyond shared-memory capacity the ordered coordinate array is
//! cut into tiles of `m` positions. Any candidate pair `(i, j)` falls in
//! exactly one *tile pair* `(a, b) = (i / m, j / m)` with `a <= b`, so a
//! grid with one (or more) block(s) per tile pair covers the whole
//! triangular space. Each block stages **two coordinate sub-ranges** into
//! shared memory — the paper's Fig. 7: "a kernel reads coordinates of the
//! cities from tour ranges [am, (a+1)m] and [bm, (b+1)m] at one time.
//! Therefore 2 coordinates ranges are needed, which implies that the
//! maximum subproblem size cannot be larger than 3072"
//! (for 48 kB: `48·1024 / (2 · 2 · sizeof(float))`, minus the one-point
//! overlap each range carries so that `i+1`/`j+1` stay on-chip).
//!
//! Diagonal blocks (`a == b`) sweep the triangle of their tile; off-
//! diagonal blocks sweep the full `|A| × |B|` rectangle. Blocks are
//! independent — the paper's observation that the sub-problems "can be
//! executed independently in a parallel manner" — and the wave scheduler
//! of the simulator naturally overlaps the small diagonal blocks with the
//! big rectangular ones.

use crate::bestmove::{pack, EMPTY_KEY};
use crate::cpu_model::BYTES_PER_CHECK;
use crate::delta::FLOPS_PER_CHECK;
use crate::gpu::coords::CoordSource;
use crate::gpu::small::block_reduce;
use crate::indexing::{index_to_pair, index_to_tile_pair, tile_pair_count};
use gpu_sim::{AtomicDeviceBuffer, Kernel, ThreadCtx};
use tsp_core::Point;

/// Largest tile (in positions) usable with `shared_bytes` of on-chip
/// memory: two ranges of `m + 1` points each must fit.
pub fn max_tile_for_shared(shared_bytes: usize) -> usize {
    (shared_bytes / (2 * Point::DEVICE_BYTES)).saturating_sub(1)
}

/// Pick a tile size for an instance of `n` cities: as large as shared
/// memory allows, but small enough that the grid of tile pairs keeps
/// every compute unit busy (`tile_pair_count(tiles) >= min_grid`).
/// Without this, instances just past the shared-memory capacity run a
/// handful of blocks and the device sits mostly idle — the utilization
/// dip the ablation bench `ablation_tile_size` quantifies.
pub fn auto_tile(n: usize, shared_bytes: usize, min_grid: u32) -> usize {
    let cap = max_tile_for_shared(shared_bytes).max(1);
    let positions = (n.saturating_sub(1)).max(1) as u64;
    // Smallest tile count t with t(t+1)/2 >= min_grid.
    let g = min_grid.max(1) as f64;
    let t_needed = (((8.0 * g + 1.0).sqrt() - 1.0) / 2.0).ceil() as u64;
    let tile_for_occupancy = positions.div_ceil(t_needed.max(1)) as usize;
    tile_for_occupancy.clamp(1, cap)
}

/// The tiled kernel. One block per tile pair. Generic over where the
/// ordered coordinates live ([`CoordSource`]), like the shared kernel.
pub struct TiledKernel<'a, C: CoordSource> {
    /// Route-ordered coordinates (full array, global memory).
    pub coords: C,
    /// One-word output: packed best move.
    pub out: &'a AtomicDeviceBuffer,
    /// Tile size in positions.
    pub tile: usize,
}

impl<C: CoordSource> TiledKernel<'_, C> {
    /// Number of *positions* in the pair space (`i, j ∈ [0, n-1)`).
    #[inline]
    fn positions(&self) -> usize {
        self.coords.len() - 1
    }

    /// Number of tiles.
    pub fn tiles(&self) -> u64 {
        (self.positions() as u64).div_ceil(self.tile as u64)
    }

    /// Required grid size: one block per tile pair.
    pub fn grid_dim(&self) -> u32 {
        tile_pair_count(self.tiles()) as u32
    }

    /// Position range covered by tile `t`: `[start, end)`.
    fn tile_range(&self, t: u64) -> (usize, usize) {
        let start = t as usize * self.tile;
        let end = (start + self.tile).min(self.positions());
        (start, end)
    }
}

/// Per-block staging area: the two coordinate sub-ranges plus the
/// block-reduction scratch.
pub struct TiledShared {
    a: Vec<Point>,
    b: Vec<Point>,
    scratch: Vec<u64>,
}

impl<C: CoordSource> Kernel for TiledKernel<'_, C> {
    type Shared = TiledShared;

    fn shared_bytes(&self) -> usize {
        2 * (self.tile + 1) * Point::DEVICE_BYTES
    }

    fn make_shared(&self) -> TiledShared {
        TiledShared {
            a: vec![Point::default(); self.tile + 1],
            b: vec![Point::default(); self.tile + 1],
            scratch: Vec::new(),
        }
    }

    fn num_phases(&self) -> usize {
        3
    }

    fn label(&self) -> &str {
        "2opt-eval-tiled"
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, shared: &mut TiledShared) {
        let (ta, tb) = index_to_tile_pair(ctx.block_idx as u64);
        let (a_start, a_end) = self.tile_range(ta);
        let (b_start, b_end) = self.tile_range(tb);
        // Each range carries one extra point so i+1 / j+1 stay on-chip
        // (pair positions go up to n-2; position + 1 <= n - 1 < n).
        let a_len = a_end - a_start + 1;
        let b_len = b_end - b_start + 1;

        match phase {
            0 => {
                if shared.scratch.is_empty() {
                    shared.scratch = vec![EMPTY_KEY; ctx.block_dim as usize];
                }
                // Cooperative strided load of both ranges.
                let mut loads = 0u64;
                let mut k = ctx.thread_idx as usize;
                while k < a_len {
                    shared.a[k] = self.coords.get(a_start + k);
                    loads += 1;
                    k += ctx.block_dim as usize;
                }
                let mut k = ctx.thread_idx as usize;
                while k < b_len {
                    shared.b[k] = self.coords.get(b_start + k);
                    loads += 1;
                    k += ctx.block_dim as usize;
                }
                ctx.global_read(loads * Point::DEVICE_BYTES as u64);
                ctx.shared_bytes(loads * Point::DEVICE_BYTES as u64);
            }
            1 => {
                // This block's local pair space.
                let na = a_end - a_start;
                let nb = b_end - b_start;
                let local_pairs = if ta == tb {
                    (na as u64) * (na as u64 - 1) / 2
                } else {
                    na as u64 * nb as u64
                };
                let stride = ctx.block_dim as u64;
                let mut k = ctx.thread_idx as u64;
                let mut best = EMPTY_KEY;
                let mut evals = 0u64;
                while k < local_pairs {
                    let (i, j) = if ta == tb {
                        // Triangular local enumeration (li < lj).
                        let (li, lj) = index_to_pair(k);
                        (a_start + li as usize, a_start + lj as usize)
                    } else {
                        let li = (k % na as u64) as usize;
                        let lj = (k / na as u64) as usize;
                        (a_start + li, b_start + lj)
                    };
                    // Listing 2: two coordinate sets, A for i and B for j.
                    let pi = shared.a[i - a_start];
                    let pi1 = shared.a[i + 1 - a_start];
                    let pj = shared.b[j - b_start];
                    let pj1 = shared.b[j + 1 - b_start];
                    let d =
                        (pi.euc_2d(&pj) + pi1.euc_2d(&pj1)) - (pi.euc_2d(&pi1) + pj.euc_2d(&pj1));
                    let key = pack(d, i as u32, j as u32);
                    if key < best {
                        best = key;
                    }
                    evals += 1;
                    k += stride;
                }
                ctx.flops(evals * FLOPS_PER_CHECK);
                ctx.shared_bytes(evals * BYTES_PER_CHECK);
                shared.scratch[ctx.thread_idx as usize] = best;
                if evals > 0 {
                    ctx.shared_bytes(8);
                }
            }
            2 => block_reduce(ctx, &shared.scratch, self.out),
            _ => unreachable!("TiledKernel has 3 phases"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bestmove::unpack;
    use crate::gpu::small::OrderedSharedKernel;
    use gpu_sim::{spec, Device, LaunchConfig};

    fn wavy_points(n: usize) -> Vec<Point> {
        // A deterministic, decidedly non-optimal ordered tour.
        (0..n)
            .map(|i| {
                let a = i as f32 * 2.399963; // golden-angle scatter
                Point::new(
                    500.0 + 400.0 * a.cos(),
                    500.0 + 400.0 * a.sin() * (i % 7) as f32 / 7.0,
                )
            })
            .collect()
    }

    #[test]
    fn tile_capacity_matches_paper_bound() {
        // 48 kB / (2 ranges x 8 B) = 3072; one-point overlap -> 3071.
        assert_eq!(max_tile_for_shared(48 * 1024), 3071);
        assert_eq!(max_tile_for_shared(32 * 1024), 2047);
    }

    #[test]
    fn tiled_equals_untiled_small() {
        let dev = Device::new(spec::gtx_680_cuda());
        for n in [8usize, 33, 100, 257] {
            let pts = wavy_points(n);
            let (coords, _) = dev.copy_to_device(&pts).unwrap();
            let o_ref = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
            dev.launch(
                LaunchConfig::new(4, 64),
                &OrderedSharedKernel {
                    coords: &coords,
                    out: &o_ref,
                },
            )
            .unwrap();
            for tile in [3usize, 7, 50, 64] {
                let o_tiled = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
                let k = TiledKernel {
                    coords: &coords,
                    out: &o_tiled,
                    tile,
                };
                dev.launch(LaunchConfig::new(k.grid_dim(), 32), &k).unwrap();
                assert_eq!(
                    unpack(o_tiled.load(0)),
                    unpack(o_ref.load(0)),
                    "n={n} tile={tile}"
                );
            }
        }
    }

    #[test]
    fn grid_covers_all_tile_pairs() {
        let dev = Device::new(spec::gtx_680_cuda());
        let pts = wavy_points(100);
        let (coords, _) = dev.copy_to_device(&pts).unwrap();
        let out = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        let k = TiledKernel {
            coords: &coords,
            out: &out,
            tile: 30,
        };
        // positions = 99 -> ceil(99/30) = 4 tiles -> 10 tile pairs.
        assert_eq!(k.tiles(), 4);
        assert_eq!(k.grid_dim(), 10);
    }

    #[test]
    fn handles_instance_larger_than_shared_capacity() {
        // A device with a tiny 1 kB shared memory: capacity 64 points for
        // the ordered kernel, tile = 1024/16 - 1 = 63.
        let mut s = spec::gtx_680_cuda();
        s.shared_mem_per_block = 1024;
        let dev = Device::new(s);
        let n = 500; // ordered kernel would need 4000 B
        let pts = wavy_points(n);
        let (coords, _) = dev.copy_to_device(&pts).unwrap();
        let out = dev.alloc_atomic(1, EMPTY_KEY).unwrap();
        // The untiled kernel must refuse...
        let err = dev.launch(
            LaunchConfig::new(1, 32),
            &OrderedSharedKernel {
                coords: &coords,
                out: &out,
            },
        );
        assert!(err.is_err());
        // ...while the tiled kernel fits and agrees with a big-shared
        // reference device.
        let tile = max_tile_for_shared(1024);
        let k = TiledKernel {
            coords: &coords,
            out: &out,
            tile,
        };
        dev.launch(LaunchConfig::new(k.grid_dim(), 64), &k).unwrap();
        let big = Device::new(spec::gtx_680_cuda());
        let (coords2, _) = big.copy_to_device(&pts).unwrap();
        let o2 = big.alloc_atomic(1, EMPTY_KEY).unwrap();
        big.launch(
            LaunchConfig::new(8, 128),
            &OrderedSharedKernel {
                coords: &coords2,
                out: &o2,
            },
        )
        .unwrap();
        assert_eq!(unpack(out.load(0)), unpack(o2.load(0)));
    }
}
