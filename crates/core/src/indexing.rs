//! The paper's triangular parallelization scheme (Fig. 3).
//!
//! Every candidate pair of tour positions `(i, j)` with
//! `0 <= i < j <= n - 2` is mapped to one cell of a triangular matrix and
//! flattened to a linear index, so that "each pair corresponds to one GPU
//! job". A thread with global id `t` in a launch of `T` total threads
//! evaluates cells `t, t + T, t + 2T, …` — the §IV.A striding scheme that
//! lets a fixed-size launch cover any number of pairs while re-using the
//! coordinates staged in shared memory
//! (`iter = ceil(pairs / (blocks × threads))`).
//!
//! The enumeration is row-major by `j`: row `j` (starting at `j = 1`)
//! holds the `j` cells `(0, j) … (j-1, j)`, so
//! `index(i, j) = j(j-1)/2 + i` — exactly the numbering drawn in the
//! paper's Fig. 3 (`0,1 → 0; 0,2 → 1; 1,2 → 2; 0,3 → 3; …`).

/// Total number of cells for an instance of `n` cities:
/// pairs `(i, j)`, `0 <= i < j <= n - 2`.
#[inline]
pub fn pair_count(n: usize) -> u64 {
    if n < 3 {
        return 0;
    }
    let m = (n - 1) as u64;
    m * (m - 1) / 2
}

/// Linear cell index of pair `(i, j)` (requires `i < j`).
#[inline]
pub fn pair_to_index(i: u64, j: u64) -> u64 {
    debug_assert!(i < j);
    j * (j - 1) / 2 + i
}

/// Inverse of [`pair_to_index`]: recover `(i, j)` from a cell index.
///
/// Uses the integer-corrected triangular root, so it is exact for every
/// index representable in a `u64`'s safe f64 range and beyond (the float
/// estimate is corrected by ±1 steps).
#[inline]
pub fn index_to_pair(k: u64) -> (u64, u64) {
    // Solve j(j-1)/2 <= k  <  j(j+1)/2 for j >= 1.
    // Float estimate of the triangular root, then exact correction.
    let mut j = ((1.0 + (1.0 + 8.0 * k as f64).sqrt()) / 2.0) as u64;
    // Correct downward while the row start exceeds k.
    while j > 1 && j * (j - 1) / 2 > k {
        j -= 1;
    }
    // Correct upward while k falls past this row.
    while j * (j + 1) / 2 <= k {
        j += 1;
    }
    let i = k - j * (j - 1) / 2;
    (i, j)
}

/// Number of tile pairs `(a, b)` with `0 <= a <= b < t` — the diagonal-
/// inclusive triangular count used by the §IV.B division scheme (every
/// tile pairs with itself and with every later tile).
#[inline]
pub fn tile_pair_count(tiles: u64) -> u64 {
    tiles * (tiles + 1) / 2
}

/// Map a linear tile-pair index to `(a, b)` with `a <= b`
/// (enumeration `k = b(b+1)/2 + a`).
#[inline]
pub fn index_to_tile_pair(k: u64) -> (u64, u64) {
    // Solve b(b+1)/2 <= k < (b+1)(b+2)/2.
    let mut b = ((-1.0 + (1.0 + 8.0 * k as f64).sqrt()) / 2.0) as u64;
    while b * (b + 1) / 2 > k {
        b -= 1;
    }
    while (b + 1) * (b + 2) / 2 <= k {
        b += 1;
    }
    (k - b * (b + 1) / 2, b)
}

/// Number of striding iterations each thread performs —
/// `ceil(pairs / total_threads)`, the quantity the paper works out as 100
/// for pr2392 under a 28 × 1024 launch.
#[inline]
pub fn iterations_per_thread(pairs: u64, total_threads: u64) -> u64 {
    if total_threads == 0 {
        return 0;
    }
    pairs.div_ceil(total_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fig3_enumeration() {
        // Fig. 3 numbers the cells 0,1->0; 0,2->1; 1,2->2; 0,3->3;
        // 1,3->4; 2,3->5; 0,4->6 ...
        assert_eq!(pair_to_index(0, 1), 0);
        assert_eq!(pair_to_index(0, 2), 1);
        assert_eq!(pair_to_index(1, 2), 2);
        assert_eq!(pair_to_index(0, 3), 3);
        assert_eq!(pair_to_index(1, 3), 4);
        assert_eq!(pair_to_index(2, 3), 5);
        assert_eq!(pair_to_index(0, 4), 6);
    }

    #[test]
    fn bijection_small_exhaustive() {
        for n in 3usize..40 {
            let total = pair_count(n);
            let mut k_expected = 0u64;
            for j in 1..=(n as u64 - 2) {
                for i in 0..j {
                    let k = pair_to_index(i, j);
                    assert_eq!(k, k_expected);
                    assert_eq!(index_to_pair(k), (i, j));
                    k_expected += 1;
                }
            }
            assert_eq!(k_expected, total);
        }
    }

    #[test]
    fn bijection_large_spot_checks() {
        for &k in &[
            0u64,
            1,
            1_000_000,
            4_294_967_295,
            1_000_000_000_000,
            u64::from(u32::MAX) * 1000,
        ] {
            let (i, j) = index_to_pair(k);
            assert!(i < j);
            assert_eq!(pair_to_index(i, j), k);
        }
    }

    #[test]
    fn pair_count_examples() {
        assert_eq!(pair_count(100), 4851);
        assert_eq!(pair_count(4), 3);
        assert_eq!(pair_count(2), 0);
    }

    #[test]
    fn paper_iteration_example_pr2392() {
        // §IV.A: 28 blocks x 1024 threads on pr2392 -> 100 iterations.
        let iters = iterations_per_thread(pair_count(2392), 28 * 1024);
        assert_eq!(iters, 100);
    }

    #[test]
    fn tile_pair_bijection() {
        for t in 1u64..30 {
            let mut k = 0;
            for b in 0..t {
                for a in 0..=b {
                    assert_eq!(index_to_tile_pair(k), (a, b));
                    k += 1;
                }
            }
            assert_eq!(k, tile_pair_count(t));
        }
    }

    #[test]
    fn iterations_edge_cases() {
        assert_eq!(iterations_per_thread(0, 128), 0);
        assert_eq!(iterations_per_thread(1, 128), 1);
        assert_eq!(iterations_per_thread(128, 128), 1);
        assert_eq!(iterations_per_thread(129, 128), 2);
        assert_eq!(iterations_per_thread(10, 0), 0);
    }
}
