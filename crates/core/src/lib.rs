//! # tsp-2opt
//!
//! The primary contribution of Rocki & Suda, *High Performance GPU
//! Accelerated Local Optimization in TSP* (IPDPSW 2013), reproduced as a
//! Rust library: massively parallel **2-opt best-improvement local
//! search** with the paper's data-locality optimizations and its
//! problem-division scheme for arbitrarily large instances.
//!
//! ## Engines
//!
//! All engines implement [`search::TwoOptEngine`] and return bit-for-bit
//! identical best moves (verified against each other in the test suite):
//!
//! * [`sequential::SequentialTwoOpt`] — the single-core reference loop;
//! * [`cpu_parallel::CpuParallelTwoOpt`] — the multi-core baseline
//!   (the paper's parallel OpenCL CPU implementation);
//! * [`gpu::GpuTwoOpt`] — the paper's kernels on the simulated device
//!   (`gpu-sim`): shared-memory staging (Optimization 1), route-ordered
//!   coordinates (Optimization 2), thread striding over the triangular
//!   pair space (Fig. 3/4), and the §IV.B two-range tiling scheme that
//!   removes the shared-memory size limit.
//!
//! ## Extensions (the paper's §VII future work)
//!
//! * [`pruned::PrunedTwoOpt`] — neighbourhood pruning via k-nearest-
//!   neighbour candidate lists;
//! * [`dlb`] — don't-look-bits 2-opt, the classic fast CPU descent;
//! * [`twohopt`] — 2.5-opt (2-opt + node insertion);
//! * [`oropt`] — Or-opt segment-relocation moves;
//! * [`threeopt`] — a sequential 3-opt for quality comparisons;
//! * [`gpu::MultiGpuTwoOpt`] — the §VI multi-device decomposition.
//!
//! ## Quick start
//!
//! ```
//! use tsp_2opt::prelude::*;
//! use tsp_core::{Instance, Metric, Point, Tour};
//!
//! let inst = Instance::new(
//!     "square",
//!     Metric::Euc2d,
//!     vec![
//!         Point::new(0.0, 0.0),
//!         Point::new(0.0, 10.0),
//!         Point::new(10.0, 10.0),
//!         Point::new(10.0, 0.0),
//!     ],
//! )
//! .unwrap();
//! let mut tour = Tour::new(vec![0, 2, 1, 3]).unwrap(); // crossing
//! let mut engine = GpuTwoOpt::new(gpu_sim::spec::gtx_680_cuda());
//! let stats = optimize(&mut engine, &inst, &mut tour, SearchOptions::default()).unwrap();
//! assert_eq!(stats.final_length, 40); // the square's perimeter
//! assert!(stats.reached_local_minimum);
//! ```

pub mod bestmove;
pub mod cpu_model;
pub mod cpu_parallel;
pub mod delta;
pub mod dlb;
pub mod flops;
pub mod gpu;
pub mod indexing;
pub mod neighbors;
pub mod oropt;
pub mod pruned;
pub mod search;
pub mod sequential;
pub mod threeopt;
pub mod twohopt;
pub mod verify;
pub mod vnd;

pub use bestmove::BestMove;
pub use cpu_parallel::CpuParallelTwoOpt;
pub use gpu::{GpuOrOpt, GpuTwoOpt, MultiGpuTwoOpt, Strategy};
pub use neighbors::CandidateLists;
pub use search::{
    optimize, optimize_flight, optimize_observed, optimize_profiled, optimize_with_recorder,
    EngineError, SearchOptions, SearchStats, StepProfile, TwoOptEngine,
};
pub use sequential::{PivotRule, SequentialTwoOpt};

/// Convenient glob imports for applications.
pub mod prelude {
    pub use crate::cpu_parallel::CpuParallelTwoOpt;
    pub use crate::gpu::{GpuTwoOpt, Strategy};
    pub use crate::neighbors::CandidateLists;
    pub use crate::search::{
        optimize, optimize_flight, optimize_observed, optimize_profiled, optimize_with_recorder,
        EngineError, SearchOptions, SearchStats, StepProfile, TwoOptEngine,
    };
    pub use crate::sequential::{PivotRule, SequentialTwoOpt};
}
