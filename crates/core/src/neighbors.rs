//! k-nearest-neighbour candidate lists for the sub-quadratic 2-opt sweep.
//!
//! The paper's §VII names neighbourhood pruning as the main raw-speed
//! lever left once the dense O(n²) sweep is saturated: restrict the
//! move search to pairs whose removed-edge endpoints are geometrically
//! close, dropping a sweep to O(n·k). This module builds the per-city
//! lists the [`crate::gpu`] candidate kernels consume:
//!
//! * [`CandidateLists::build`] — exact k-nearest-neighbour lists, found
//!   by an expanding-ring scan over a ~1-point-per-cell bucket grid
//!   (sub-quadratic on uniform-ish fields) with an O(n²) selection
//!   fallback for matrix instances and for k close to n. Both paths
//!   produce bit-identical lists: ties break by city index, and the
//!   grid's ring-termination bound carries a +1 margin so the rounded
//!   i32 distances can't cut the search short.
//! * [`CandidateLists::closure`] — the symmetric closure `a ∈ cl(b) ⇔
//!   b ∈ cl(a)`, as CSR. The *pair* neighbourhood the sweep explores is
//!   exactly the closure: pair {a, b} is evaluated when either endpoint
//!   lists the other, because the sweep scans every city's own list.
//! * [`CandidateLists::best_candidate_move`] — the host mirror of the
//!   candidate kernel's move search (same f32 delta arithmetic, same
//!   packed-key minimum). `None` means the tour is a 2-opt local
//!   minimum *within the candidate neighbourhood* — the termination
//!   contract the differential tests pin.

use tsp_core::{Instance, Point, Tour};

use crate::bestmove::{pack, unpack, BestMove, EMPTY_KEY};
use crate::delta::delta_ordered;

/// Per-city lists of the `k` nearest other cities plus their symmetric
/// closure, in the flattened layouts the device kernels gather from.
#[derive(Debug, Clone)]
pub struct CandidateLists {
    k: usize,
    /// Flattened `n × k` city indices, each row sorted by
    /// `(distance, index)`.
    lists: Vec<u32>,
    /// CSR offsets (`n + 1` entries) into `closure`.
    closure_offsets: Vec<u32>,
    /// Symmetric-closure adjacency, each row sorted by city index.
    closure: Vec<u32>,
}

impl CandidateLists {
    /// Build lists of the `k` nearest neighbours for every city.
    ///
    /// `k` is clamped to `n - 1`. Uses the spatial grid when the
    /// instance has coordinates and `k` is small relative to `n`,
    /// otherwise the dense selection scan; the two agree bit-for-bit.
    pub fn build(inst: &Instance, k: usize) -> Self {
        let n = inst.len();
        let k = k.min(n.saturating_sub(1));
        let lists = if k == 0 {
            Vec::new()
        } else if inst.is_coordinate_based() && 8 * k < n {
            grid_knn(inst, k)
        } else {
            brute_knn(inst, k)
        };
        let (closure_offsets, closure) = symmetric_closure(n, k, &lists);
        CandidateLists {
            k,
            lists,
            closure_offsets,
            closure,
        }
    }

    /// Neighbours per city.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of cities the lists were built over.
    #[inline]
    pub fn len(&self) -> usize {
        self.closure_offsets.len().saturating_sub(1)
    }

    /// `true` when no lists were built.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` nearest neighbours of city `c`, nearest first.
    #[inline]
    pub fn neighbors(&self, c: usize) -> &[u32] {
        &self.lists[c * self.k..(c + 1) * self.k]
    }

    /// The flattened `n × k` lists, the layout uploaded to the device.
    #[inline]
    pub fn flat(&self) -> &[u32] {
        &self.lists
    }

    /// The symmetric closure of city `c`: every `b` with `b ∈ knn(c)` or
    /// `c ∈ knn(b)`, sorted by index.
    #[inline]
    pub fn closure(&self, c: usize) -> &[u32] {
        let lo = self.closure_offsets[c] as usize;
        let hi = self.closure_offsets[c + 1] as usize;
        &self.closure[lo..hi]
    }

    /// Bytes held by the lists and closure (memory-budget reporting).
    pub fn bytes(&self) -> usize {
        core::mem::size_of_val(&self.lists[..])
            + core::mem::size_of_val(&self.closure_offsets[..])
            + core::mem::size_of_val(&self.closure[..])
    }

    /// The best improving candidate move on `tour`, as the packed-key
    /// minimum over every (city, listed neighbour) pair — the exact
    /// host mirror of the candidate sweep kernel with all don't-look
    /// bits clear. `None` certifies a candidate-local minimum.
    pub fn best_candidate_move(&self, inst: &Instance, tour: &Tour) -> Option<BestMove> {
        let n = tour.len();
        let ordered: Vec<Point> = (0..n).map(|p| inst.point(tour.city(p) as usize)).collect();
        let mut pos = vec![0u32; n];
        for p in 0..n {
            pos[tour.city(p) as usize] = p as u32;
        }
        let mut best = EMPTY_KEY;
        for a in 0..n {
            let i = pos[a] as usize;
            for &b in self.neighbors(a) {
                let p = pos[b as usize] as usize;
                let (lo, hi) = if i < p { (i, p) } else { (p, i) };
                if lo == hi || hi > n - 2 {
                    continue;
                }
                let delta = delta_ordered(&ordered, lo, hi);
                best = best.min(pack(delta, lo as u32, hi as u32));
            }
        }
        unpack(best).filter(BestMove::improves)
    }
}

/// Dense O(n²) reference path: per-city selection of the k smallest
/// `(distance, index)` pairs, then a full sort of those.
fn brute_knn(inst: &Instance, k: usize) -> Vec<u32> {
    let n = inst.len();
    let mut lists = Vec::with_capacity(n * k);
    let mut scratch: Vec<(i32, u32)> = Vec::with_capacity(n - 1);
    for i in 0..n {
        scratch.clear();
        for j in 0..n {
            if i != j {
                scratch.push((inst.dist(i, j), j as u32));
            }
        }
        if k < scratch.len() {
            scratch.select_nth_unstable(k - 1);
            scratch.truncate(k);
        }
        scratch.sort_unstable();
        lists.extend(scratch.iter().map(|&(_, j)| j));
    }
    lists
}

/// Sub-quadratic path: a ~1-point-per-cell bucket grid queried with
/// expanding square rings. Distances still come from `inst.dist`, so
/// ties and rounding match `brute_knn` exactly.
fn grid_knn(inst: &Instance, k: usize) -> Vec<u32> {
    let pts = inst.points();
    let n = pts.len();
    let (mut min_x, mut min_y) = (f32::INFINITY, f32::INFINITY);
    let (mut max_x, mut max_y) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
    for p in pts {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let side = ((max_x - min_x).max(max_y - min_y)).max(1e-6);
    let cells_per_side = (n as f64).sqrt().ceil().max(1.0) as usize;
    let cell = side / cells_per_side as f32;
    let cols = ((max_x - min_x) / cell).floor() as usize + 1;
    let rows = ((max_y - min_y) / cell).floor() as usize + 1;
    let cell_of = |p: &Point| -> (usize, usize) {
        let cx = (((p.x - min_x) / cell) as usize).min(cols - 1);
        let cy = (((p.y - min_y) / cell) as usize).min(rows - 1);
        (cx, cy)
    };
    let mut buckets = vec![Vec::new(); cols * rows];
    for (i, p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cols + cx].push(i as u32);
    }

    let mut lists = Vec::with_capacity(n * k);
    let mut found: Vec<(i32, u32)> = Vec::new();
    let max_ring = cols.max(rows);
    for (i, p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        found.clear();
        for ring in 0..=max_ring {
            let r = ring as isize;
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx.abs().max(dy.abs()) != r {
                        continue;
                    }
                    let (x, y) = (cx as isize + dx, cy as isize + dy);
                    if x < 0 || y < 0 || x >= cols as isize || y >= rows as isize {
                        continue;
                    }
                    for &j in &buckets[y as usize * cols + x as usize] {
                        if j as usize != i {
                            found.push((inst.dist(i, j as usize), j));
                        }
                    }
                }
            }
            // Any point outside the visited rings lies at Euclidean
            // distance ≥ ring·cell, hence at rounded distance
            // ≥ ring·cell − ½. Requiring kth + 1 < ring·cell therefore
            // guarantees every unvisited point sorts strictly after the
            // kth candidate, even with i32 rounding — the exactness the
            // grid-vs-brute cross-check relies on.
            if ring >= 1 && found.len() >= k {
                found.sort_unstable();
                found.truncate(4 * k);
                let kth = found[k - 1].0;
                if (kth as f32) + 1.0 < (ring as f32) * cell {
                    break;
                }
            }
        }
        found.sort_unstable();
        found.truncate(k);
        lists.extend(found.iter().map(|&(_, j)| j));
    }
    lists
}

/// Union the directed k-NN lists into the symmetric closure, as CSR
/// with each row sorted and deduplicated.
fn symmetric_closure(n: usize, k: usize, lists: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut adj: Vec<Vec<u32>> = vec![Vec::with_capacity(k); n];
    for a in 0..n {
        for &b in &lists[a * k..(a + 1) * k] {
            adj[a].push(b);
            adj[b as usize].push(a as u32);
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut closure = Vec::with_capacity(2 * n * k);
    offsets.push(0u32);
    for row in &mut adj {
        row.sort_unstable();
        row.dedup();
        closure.extend_from_slice(row);
        offsets.push(closure.len() as u32);
    }
    (offsets, closure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::Metric;

    fn scatter(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        Instance::new("scatter", Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn grid_and_brute_paths_agree_bit_for_bit() {
        // n and k chosen so `build` takes the grid path; compare against
        // the dense reference directly.
        let inst = scatter(400, 3);
        let built = CandidateLists::build(&inst, 8);
        assert_eq!(built.flat(), &brute_knn(&inst, 8)[..]);
    }

    #[test]
    fn rows_are_the_true_k_nearest_sorted() {
        let inst = scatter(120, 9);
        let cl = CandidateLists::build(&inst, 6);
        for c in 0..inst.len() {
            let mut all: Vec<(i32, u32)> = (0..inst.len())
                .filter(|&j| j != c)
                .map(|j| (inst.dist(c, j), j as u32))
                .collect();
            all.sort_unstable();
            let expected: Vec<u32> = all.into_iter().take(6).map(|(_, j)| j).collect();
            assert_eq!(cl.neighbors(c), &expected[..], "city {c}");
        }
    }

    #[test]
    fn closure_is_symmetric_and_covers_the_lists() {
        let inst = scatter(200, 5);
        let cl = CandidateLists::build(&inst, 5);
        for a in 0..inst.len() {
            for &b in cl.neighbors(a) {
                assert!(cl.closure(a).contains(&b));
                assert!(cl.closure(b as usize).contains(&(a as u32)));
            }
            for &b in cl.closure(a) {
                assert!(
                    cl.neighbors(a).contains(&b) || cl.neighbors(b as usize).contains(&(a as u32))
                );
            }
            assert!(cl.closure(a).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn k_clamps_to_n_minus_1_and_degenerate_inputs_build() {
        // n ≤ k.
        let small = scatter(4, 1);
        let cl = CandidateLists::build(&small, 100);
        assert_eq!(cl.k(), 3);
        assert_eq!(cl.neighbors(0).len(), 3);
        // All points coincident.
        let dup = Instance::new("dup", Metric::Euc2d, vec![Point::new(7.0, 7.0); 12]).unwrap();
        let cl = CandidateLists::build(&dup, 4);
        for c in 0..12 {
            assert_eq!(cl.neighbors(c).len(), 4);
            assert!(!cl.neighbors(c).contains(&(c as u32)));
        }
        // Collinear points.
        let line = Instance::new(
            "line",
            Metric::Euc2d,
            (0..30).map(|i| Point::new(i as f32, 0.0)).collect(),
        )
        .unwrap();
        let cl = CandidateLists::build(&line, 3);
        assert_eq!(cl.neighbors(0), &[1, 2, 3]);
        // k = 0 is an empty but well-formed structure.
        let cl = CandidateLists::build(&line, 0);
        assert_eq!(cl.k(), 0);
        assert_eq!(cl.len(), 30);
        assert!(cl.closure(7).is_empty());
    }

    #[test]
    fn best_candidate_move_finds_a_crossing_and_certifies_the_optimum() {
        let inst = Instance::new(
            "square",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap();
        let cl = CandidateLists::build(&inst, 2);
        let crossing = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let mv = cl.best_candidate_move(&inst, &crossing).unwrap();
        assert!(mv.improves());
        let mut fixed = crossing.clone();
        fixed.apply_two_opt(mv.i as usize, mv.j as usize);
        assert!(cl.best_candidate_move(&inst, &fixed).is_none());
    }

    #[test]
    fn matrix_instances_take_the_dense_path() {
        // No coordinates: `build` must still work via `inst.dist`.
        let m = tsp_core::ExplicitMatrix::from_full(
            4,
            vec![0, 2, 9, 4, 2, 0, 3, 8, 9, 3, 0, 1, 4, 8, 1, 0],
        )
        .unwrap();
        let inst = Instance::from_matrix("m", m, None).unwrap();
        let cl = CandidateLists::build(&inst, 2);
        assert_eq!(cl.neighbors(0), &[1, 3]);
        assert_eq!(cl.neighbors(2), &[3, 1]);
    }
}
