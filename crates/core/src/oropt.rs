//! Or-opt segment relocation — part of the "more complex local search
//! algorithms such as 2.5-opt" the paper's §VII names as future work
//! (Or-opt over segments of length 1 is exactly the node-insertion half
//! of 2.5-opt).
//!
//! An Or-opt move removes a short segment (1–3 consecutive cities) and
//! reinserts it between another pair of adjacent cities, optionally
//! reversed. It repairs a class of defects 2-opt cannot: 2-opt only
//! reverses, it never *transports*.

use tsp_core::{Instance, Tour};

/// One Or-opt move: relocate `tour[s..=e]` to sit after position `j`
/// (`j` outside the segment), optionally reversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrOptMove {
    /// Segment start position.
    pub s: usize,
    /// Segment end position (inclusive); `e - s + 1 <= max_len`.
    pub e: usize,
    /// Insert the segment after this position (position in the *current*
    /// tour, outside `[s-1, e+1]`).
    pub j: usize,
    /// Insert the segment reversed.
    pub reversed: bool,
    /// Length change.
    pub delta: i64,
}

/// Delta of relocating `tour[s..=e]` after position `j` (non-wrapping
/// positions: `1 <= s <= e <= n-2`, `j != s-1`, `j` outside `[s-1, e]`).
fn relocation_delta(
    inst: &Instance,
    tour: &Tour,
    s: usize,
    e: usize,
    j: usize,
    reversed: bool,
) -> i64 {
    let n = tour.len();
    let city = |p: usize| tour.city(p % n) as usize;
    let prev = city(s - 1);
    let next = city(e + 1);
    let seg_s = city(s);
    let seg_e = city(e);
    let ja = city(j);
    let jb = city(j + 1);
    let removed =
        inst.dist(prev, seg_s) as i64 + inst.dist(seg_e, next) as i64 + inst.dist(ja, jb) as i64;
    let (head, tail) = if reversed {
        (seg_e, seg_s)
    } else {
        (seg_s, seg_e)
    };
    let added =
        inst.dist(prev, next) as i64 + inst.dist(ja, head) as i64 + inst.dist(tail, jb) as i64;
    added - removed
}

/// Apply an Or-opt move (splice the segment out and back in).
pub fn apply(tour: &mut Tour, mv: &OrOptMove) {
    let order = tour.as_slice().to_vec();
    let mut seg: Vec<u32> = order[mv.s..=mv.e].to_vec();
    if mv.reversed {
        seg.reverse();
    }
    let mut rest: Vec<u32> = Vec::with_capacity(order.len() - seg.len());
    rest.extend_from_slice(&order[..mv.s]);
    rest.extend_from_slice(&order[mv.e + 1..]);
    // Position j in the *original* tour maps into `rest`:
    // positions < s are unchanged; positions > e shift left by seg len.
    let jr = if mv.j < mv.s {
        mv.j
    } else {
        mv.j - (mv.e - mv.s + 1)
    };
    let mut next: Vec<u32> = Vec::with_capacity(order.len());
    next.extend_from_slice(&rest[..=jr]);
    next.extend_from_slice(&seg);
    next.extend_from_slice(&rest[jr + 1..]);
    *tour = Tour::new(next).expect("or-opt splice preserves the permutation");
}

/// Find the best Or-opt move with segment length `<= max_len`
/// (best-improvement; `None` at a local minimum). Returns the number of
/// candidate relocations examined alongside.
pub fn best_move(inst: &Instance, tour: &Tour, max_len: usize) -> (Option<OrOptMove>, u64) {
    let n = tour.len();
    let mut best: Option<OrOptMove> = None;
    let mut checked = 0u64;
    if n < 5 {
        return (None, 0);
    }
    for s in 1..n - 1 {
        for len in 1..=max_len {
            let e = s + len - 1;
            if e > n - 2 {
                break;
            }
            // Insertion point j: an edge (j, j+1) with both endpoints
            // outside [s-1, e+1); j ranges over 0..n-1 excluding
            // [s-1, e] (j+1 must also avoid the removed span).
            for j in 0..n - 1 {
                if j + 1 >= s && j <= e {
                    continue; // edge touches the segment or its stubs
                }
                for reversed in [false, true] {
                    checked += 1;
                    let delta = relocation_delta(inst, tour, s, e, j, reversed);
                    // Canonical tie-break (delta, s, e, reversed, j):
                    // matches the GPU kernel's packed-key ordering so the
                    // engines agree bit-for-bit.
                    if delta < 0
                        && best.is_none_or(|b| {
                            (delta, s, e, u8::from(reversed), j)
                                < (b.delta, b.s, b.e, u8::from(b.reversed), b.j)
                        })
                    {
                        best = Some(OrOptMove {
                            s,
                            e,
                            j,
                            reversed,
                            delta,
                        });
                    }
                }
            }
        }
    }
    (best, checked)
}

/// Run Or-opt descent to its local minimum; returns moves applied.
pub fn optimize(inst: &Instance, tour: &mut Tour, max_len: usize) -> u64 {
    let mut applied = 0;
    while let (Some(mv), _) = best_move(inst, tour, max_len) {
        let before = tour.length(inst);
        apply(tour, &mv);
        debug_assert_eq!(tour.length(inst) - before, mv.delta);
        applied += 1;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::{Metric, Point};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn delta_matches_recompute_exhaustively() {
        let inst = random_instance(12, 3);
        let mut rng = SmallRng::seed_from_u64(5);
        let tour = Tour::random(12, &mut rng);
        let n = 12;
        for s in 1..n - 1 {
            for len in 1..=3usize {
                let e = s + len - 1;
                if e > n - 2 {
                    break;
                }
                for j in 0..n - 1 {
                    if j + 1 >= s && j <= e {
                        continue;
                    }
                    for reversed in [false, true] {
                        let delta = relocation_delta(&inst, &tour, s, e, j, reversed);
                        let mut t = tour.clone();
                        apply(
                            &mut t,
                            &OrOptMove {
                                s,
                                e,
                                j,
                                reversed,
                                delta,
                            },
                        );
                        t.validate().unwrap();
                        assert_eq!(
                            t.length(&inst) - tour.length(&inst),
                            delta,
                            "s={s} e={e} j={j} rev={reversed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn or_opt_relocates_a_misplaced_city() {
        // Cities on a line with city 5 sitting between cities 1 and 2
        // spatially, but visited right after 0: relocating the singleton
        // segment [5] between 1 and 2 is one Or-opt move.
        let inst = Instance::new(
            "misplaced",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(200.0, 0.0),
                Point::new(300.0, 0.0),
                Point::new(400.0, 0.0),
                Point::new(150.0, 10.0),
            ],
        )
        .unwrap();
        let mut tour = Tour::new(vec![0, 5, 1, 2, 3, 4]).unwrap();
        let before = tour.length(&inst);
        let moves = optimize(&inst, &mut tour, 3);
        assert!(moves >= 1);
        assert!(tour.length(&inst) < before);
        tour.validate().unwrap();
    }

    #[test]
    fn descent_terminates_and_improves_random_tours() {
        let inst = random_instance(40, 9);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut tour = Tour::random(40, &mut rng);
        let before = tour.length(&inst);
        let moves = optimize(&inst, &mut tour, 3);
        assert!(moves > 0);
        assert!(tour.length(&inst) < before);
        tour.validate().unwrap();
        // At the local minimum, no further move exists.
        let (mv, _) = best_move(&inst, &tour, 3);
        assert!(mv.is_none());
    }

    #[test]
    fn tiny_instances_have_no_moves() {
        let inst = random_instance(4, 1);
        let tour = Tour::identity(4);
        let (mv, checked) = best_move(&inst, &tour, 3);
        assert!(mv.is_none());
        assert_eq!(checked, 0);
    }
}
