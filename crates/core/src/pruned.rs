//! Neighbourhood-pruned 2-opt — the paper's §VII suggestion: "simple
//! ideas such as neighborhood pruning can be applied at the cost of the
//! quality of the solution".
//!
//! Instead of the dense O(n²) triangular sweep, only pairs whose first
//! city is geometrically close to the second are examined, using
//! k-nearest-neighbour candidate lists ([`tsp_core::neighbor`]). The
//! sweep drops to O(n·k); the found move may be weaker than the global
//! best (the ablation bench quantifies the trade-off).

use crate::bestmove::BestMove;
use crate::cpu_model::{flops_for_pairs, model_cpu_sweep_seconds};
use crate::delta::delta_positions;
use crate::search::{EngineError, StepProfile, TwoOptEngine};
use gpu_sim::DeviceSpec;
use tsp_core::neighbor::NeighborLists;
use tsp_core::{Instance, Tour};

/// 2-opt engine restricted to k-nearest-neighbour candidate pairs.
pub struct PrunedTwoOpt {
    lists: NeighborLists,
    spec: DeviceSpec,
    /// Scratch: city -> tour position.
    positions: Vec<u32>,
}

impl PrunedTwoOpt {
    /// Build the engine (and its candidate lists) for an instance.
    pub fn new(inst: &Instance, k: usize) -> Self {
        PrunedTwoOpt {
            lists: NeighborLists::build(inst, k),
            spec: gpu_sim::spec::core_i7_3960x(),
            positions: Vec::new(),
        }
    }

    /// Number of neighbours per city in force.
    pub fn k(&self) -> usize {
        self.lists.k()
    }
}

impl TwoOptEngine for PrunedTwoOpt {
    fn name(&self) -> String {
        format!("pruned-2opt[k={}]", self.lists.k())
    }

    fn best_move(
        &mut self,
        inst: &Instance,
        tour: &Tour,
    ) -> Result<(Option<BestMove>, StepProfile), EngineError> {
        let n = tour.len();
        if n < 4 {
            return Ok((None, StepProfile::default()));
        }
        // Invert the tour to find each neighbour's position.
        self.positions.resize(n, 0);
        for (pos, &city) in tour.as_slice().iter().enumerate() {
            self.positions[city as usize] = pos as u32;
        }

        let mut best: Option<BestMove> = None;
        let mut checked = 0u64;
        for i in 0..=(n - 3) {
            let a = tour.city(i) as usize;
            // Candidate second edges: those whose start city is one of
            // a's nearest neighbours.
            for &c in self.lists.neighbors(a) {
                let p = self.positions[c as usize] as usize;
                // Normalise to lo < hi <= n - 2; skip degenerate pairs.
                let (lo, hi) = if i < p { (i, p) } else { (p, i) };
                checked += 1;
                if lo == hi || hi > n - 2 {
                    continue;
                }
                let d = delta_positions(inst, tour, lo, hi);
                if d >= 0 {
                    continue;
                }
                let cand = BestMove {
                    delta: d as i32,
                    i: lo as u32,
                    j: hi as u32,
                };
                let better = match best {
                    None => true,
                    Some(b) => (cand.delta, cand.i, cand.j) < (b.delta, b.i, b.j),
                };
                if better {
                    best = Some(cand);
                }
            }
        }

        let profile = StepProfile {
            pairs_checked: checked,
            flops: flops_for_pairs(checked),
            kernel_seconds: model_cpu_sweep_seconds(&self.spec, checked),
            reversal_seconds: 0.0,
            h2d_seconds: 0.0,
            d2h_seconds: 0.0,
        };
        Ok((best, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexing::pair_count;
    use crate::search::{optimize, SearchOptions};
    use crate::sequential::SequentialTwoOpt;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::{Metric, Point};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn pruned_checks_far_fewer_pairs() {
        let inst = random_instance(200, 1);
        let tour = Tour::identity(200);
        let mut eng = PrunedTwoOpt::new(&inst, 8);
        let (_, prof) = eng.best_move(&inst, &tour).unwrap();
        assert!(prof.pairs_checked < pair_count(200) / 5);
        assert!(prof.pairs_checked > 0);
    }

    #[test]
    fn pruned_moves_are_real_improvements() {
        let inst = random_instance(120, 2);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut tour = Tour::random(120, &mut rng);
        let before = tour.length(&inst);
        let mut eng = PrunedTwoOpt::new(&inst, 10);
        let stats = optimize(&mut eng, &inst, &mut tour, SearchOptions::default()).unwrap();
        assert!(stats.reached_local_minimum);
        assert!(tour.length(&inst) < before);
        tour.validate().unwrap();
    }

    #[test]
    fn pruned_quality_close_to_full_but_cheaper() {
        let inst = random_instance(150, 7);
        let mut rng = SmallRng::seed_from_u64(8);
        let start = Tour::random(150, &mut rng);

        let mut t_full = start.clone();
        let mut full = SequentialTwoOpt::new();
        let s_full = optimize(&mut full, &inst, &mut t_full, SearchOptions::default()).unwrap();

        let mut t_pruned = start.clone();
        let mut pruned = PrunedTwoOpt::new(&inst, 12);
        let s_pruned =
            optimize(&mut pruned, &inst, &mut t_pruned, SearchOptions::default()).unwrap();

        // Pruned does less work...
        assert!(s_pruned.profile.pairs_checked < s_full.profile.pairs_checked);
        // ...and lands within 15% of the full 2-opt local minimum.
        let gap = (s_pruned.final_length - s_full.final_length) as f64 / s_full.final_length as f64;
        assert!(gap < 0.15, "pruned gap = {gap:.3}");
    }

    #[test]
    fn k_is_exposed() {
        let inst = random_instance(30, 4);
        let eng = PrunedTwoOpt::new(&inst, 5);
        assert_eq!(eng.k(), 5);
    }
}
