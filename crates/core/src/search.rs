//! The engine abstraction and the run-to-local-minimum driver.
//!
//! A [`TwoOptEngine`] answers one question — *what is the best 2-opt move
//! for this tour?* — and reports how much (modeled and counted) work the
//! answer cost. The [`optimize`] driver then implements the classic
//! best-improvement descent: apply the best move, ask again, stop at a
//! local minimum ("The procedure is repeated until no further improvement
//! can be done", §I.B). This is the `2optLocalSearch` step of the paper's
//! Algorithm 1; ILS (crate `tsp-ils`) wraps it with perturbation.

use crate::bestmove::{pack, BestMove};
use std::time::Instant;
use tsp_core::{CoreError, Instance, Tour};
use tsp_prof::Profiler;
use tsp_replay::{FlightRecorder, ReplayEvent};
use tsp_telemetry::{Counter, Histogram, Registry, Telemetry, DELTA_BUCKETS};
use tsp_trace::{Recorder, SweepCost, TraceEvent};

/// Cost of one `best_move` evaluation (one full sweep of the candidate
/// pairs).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct StepProfile {
    /// Candidate pairs evaluated.
    pub pairs_checked: u64,
    /// FLOPs performed (distance arithmetic).
    pub flops: u64,
    /// Modeled kernel execution time, seconds.
    pub kernel_seconds: f64,
    /// Modeled time of the on-device segment reversal that applied the
    /// previous sweep's move (device-resident pipeline only; zero for
    /// engines that re-upload the coordinates each sweep).
    pub reversal_seconds: f64,
    /// Modeled host→device transfer time, seconds.
    pub h2d_seconds: f64,
    /// Modeled device→host transfer time, seconds.
    pub d2h_seconds: f64,
}

impl StepProfile {
    /// Modeled end-to-end time of the step (kernel + reversal + both
    /// transfers) — the paper's "GPU total time" column.
    #[inline]
    pub fn modeled_seconds(&self) -> f64 {
        self.kernel_seconds + self.reversal_seconds + self.h2d_seconds + self.d2h_seconds
    }

    /// Accumulate another step into this one.
    pub fn accumulate(&mut self, other: &StepProfile) {
        self.pairs_checked += other.pairs_checked;
        self.flops += other.flops;
        self.kernel_seconds += other.kernel_seconds;
        self.reversal_seconds += other.reversal_seconds;
        self.h2d_seconds += other.h2d_seconds;
        self.d2h_seconds += other.d2h_seconds;
    }

    /// Achieved checks/second (the paper's "2-opt checks/s" column),
    /// against modeled time.
    pub fn checks_per_second(&self) -> f64 {
        let t = self.modeled_seconds();
        if t <= 0.0 {
            return 0.0;
        }
        self.pairs_checked as f64 / t
    }
}

impl From<StepProfile> for SweepCost {
    fn from(p: StepProfile) -> Self {
        SweepCost {
            pairs_checked: p.pairs_checked,
            flops: p.flops,
            kernel_seconds: p.kernel_seconds,
            reversal_seconds: p.reversal_seconds,
            h2d_seconds: p.h2d_seconds,
            d2h_seconds: p.d2h_seconds,
        }
    }
}

/// Errors an engine can raise.
#[derive(Debug)]
pub enum EngineError {
    /// Simulator-level failure (launch config, memory, …).
    Sim(gpu_sim::SimError),
    /// Core data-structure failure.
    Core(CoreError),
    /// The engine cannot run this instance (e.g. a GPU engine on an
    /// explicit-matrix instance: the paper's kernels require coordinates).
    Unsupported(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Sim(e) => write!(f, "simulator error: {e}"),
            EngineError::Core(e) => write!(f, "core error: {e}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported instance: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<gpu_sim::SimError> for EngineError {
    fn from(e: gpu_sim::SimError) -> Self {
        EngineError::Sim(e)
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

/// Something that can find the best 2-opt move for a tour.
pub trait TwoOptEngine {
    /// Human-readable engine name (device + strategy).
    fn name(&self) -> String;

    /// Evaluate the full candidate neighbourhood of `tour` and return the
    /// best move (most negative delta, ties toward smallest `(i, j)`), or
    /// `None` when no strictly improving move exists, together with the
    /// step's cost profile.
    fn best_move(
        &mut self,
        inst: &Instance,
        tour: &Tour,
    ) -> Result<(Option<BestMove>, StepProfile), EngineError>;

    /// The raw packed best-move word produced by the most recent
    /// [`TwoOptEngine::best_move`] call, for flight recording. Engines
    /// without a packed reduction return `None`; the recorder then
    /// re-packs the word from the decoded move, which is bit-identical
    /// for every in-range move ([`crate::bestmove::pack`] round-trips
    /// through [`crate::bestmove::unpack`]).
    fn last_best_key(&self) -> Option<u64> {
        None
    }
}

/// Options for [`optimize`].
///
/// Non-exhaustive: construct with [`SearchOptions::new`] (or `default()`)
/// and customize through the setters, so future fields are not semver
/// breaks.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct SearchOptions {
    /// Stop after this many sweeps even if not at a local minimum
    /// (`None` = run to the local minimum).
    pub max_sweeps: Option<u64>,
}

impl SearchOptions {
    /// Defaults: run to the local minimum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stop after `max` sweeps even if not at a local minimum. Pass
    /// `None` to run to the local minimum (the default).
    pub fn with_max_sweeps(mut self, max: impl Into<Option<u64>>) -> Self {
        self.max_sweeps = max.into();
        self
    }
}

/// Statistics of one local-search descent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchStats {
    /// Tour length before the descent.
    pub initial_length: i64,
    /// Tour length at the end.
    pub final_length: i64,
    /// Number of neighbourhood sweeps performed (including the final,
    /// unsuccessful one).
    pub sweeps: u64,
    /// Number of improving moves applied (= sweeps - 1 at a local
    /// minimum).
    pub improving_moves: u64,
    /// Accumulated step profile over all sweeps.
    pub profile: StepProfile,
    /// Real wall-clock time spent on the host (simulation included),
    /// seconds.
    pub host_seconds: f64,
    /// `true` when the descent stopped because no improving move exists.
    pub reached_local_minimum: bool,
}

impl SearchStats {
    /// Modeled time to the local minimum — the paper's "Time to first
    /// minimum" column (Table II).
    pub fn modeled_seconds(&self) -> f64 {
        self.profile.modeled_seconds()
    }

    /// Relative improvement achieved, in percent.
    pub fn improvement_percent(&self) -> f64 {
        if self.initial_length == 0 {
            return 0.0;
        }
        100.0 * (self.initial_length - self.final_length) as f64 / self.initial_length as f64
    }
}

/// Live-metric instruments of the descent driver, resolved against the
/// shared registry once per [`optimize_observed`] call (the sweep loop
/// itself never touches the registry lock).
struct SearchMetrics {
    sweeps: Counter,
    moves_found: Counter,
    moves_applied: Counter,
    descents: Counter,
    move_delta: Histogram,
}

impl SearchMetrics {
    fn register(registry: &Registry) -> Self {
        SearchMetrics {
            sweeps: registry.counter("tsp_search_sweeps_total", "Neighbourhood sweeps performed"),
            moves_found: registry.counter(
                "tsp_search_improving_found_total",
                "Sweeps whose best move was strictly improving",
            ),
            moves_applied: registry.counter(
                "tsp_search_moves_applied_total",
                "Improving 2-opt moves applied to a tour",
            ),
            descents: registry.counter(
                "tsp_search_descents_total",
                "Local-search descents completed",
            ),
            move_delta: registry.histogram(
                "tsp_search_move_delta",
                "Magnitude of applied best-move improvements (tour length units)",
                DELTA_BUCKETS,
            ),
        }
    }
}

/// Run best-improvement 2-opt descent on `tour` until a local minimum
/// (or `opts.max_sweeps`), applying moves on the host exactly as the
/// paper does (the kernel finds the move; the CPU reverses the segment
/// and re-orders the coordinates).
pub fn optimize<E: TwoOptEngine + ?Sized>(
    engine: &mut E,
    inst: &Instance,
    tour: &mut Tour,
    opts: SearchOptions,
) -> Result<SearchStats, EngineError> {
    optimize_with_recorder(engine, inst, tour, opts, &Recorder::disabled())
}

/// [`optimize`], additionally emitting descent/sweep events on
/// `recorder`. With a disabled recorder this is exactly [`optimize`] —
/// the instrumentation is a handful of skipped branches, so modeled
/// times and chosen moves are identical either way.
pub fn optimize_with_recorder<E: TwoOptEngine + ?Sized>(
    engine: &mut E,
    inst: &Instance,
    tour: &mut Tour,
    opts: SearchOptions,
    recorder: &Recorder,
) -> Result<SearchStats, EngineError> {
    optimize_observed(engine, inst, tour, opts, recorder, &Telemetry::detached())
}

/// [`optimize_with_recorder`], additionally updating sweep/move
/// counters and the best-move delta histogram on `telemetry`'s
/// registry. Like the recorder, a detached handle reduces every added
/// instruction to a skipped `Option` branch — the move sequence and
/// modeled times are bit-identical with telemetry on or off (pinned by
/// `tests/telemetry_differential.rs`).
pub fn optimize_observed<E: TwoOptEngine + ?Sized>(
    engine: &mut E,
    inst: &Instance,
    tour: &mut Tour,
    opts: SearchOptions,
    recorder: &Recorder,
    telemetry: &Telemetry,
) -> Result<SearchStats, EngineError> {
    optimize_flight(
        engine,
        inst,
        tour,
        opts,
        recorder,
        telemetry,
        &FlightRecorder::detached(),
    )
}

/// [`optimize_observed`], additionally appending one
/// [`ReplayEvent::Sweep`] per *applied* move to `flight` — the packed
/// best-move word, the decoded `(i, j, delta)`, in application order.
/// The sweep stream plus the start tour is enough to reconstruct every
/// intermediate tour of the descent without re-running it. A detached
/// flight recorder reduces to [`optimize_observed`] exactly.
#[allow(clippy::too_many_arguments)]
pub fn optimize_flight<E: TwoOptEngine + ?Sized>(
    engine: &mut E,
    inst: &Instance,
    tour: &mut Tour,
    opts: SearchOptions,
    recorder: &Recorder,
    telemetry: &Telemetry,
    flight: &FlightRecorder,
) -> Result<SearchStats, EngineError> {
    optimize_profiled(
        engine,
        inst,
        tour,
        opts,
        recorder,
        telemetry,
        flight,
        &Profiler::detached(),
    )
}

/// [`optimize_flight`], additionally recording structural spans on
/// `prof`: one `"descent"` span around the whole run, a `"sweep"` span
/// per `best_move` query (the engine's device leaves — `h2d`,
/// `kernel:*`, `d2h` — nest inside it when the same profiler is
/// attached to the device), and an `"apply_move"` span around each
/// host-side segment reversal. A detached profiler reduces to
/// [`optimize_flight`] exactly — one skipped branch per span, pinned by
/// `tests/prof_differential.rs`.
#[allow(clippy::too_many_arguments)]
pub fn optimize_profiled<E: TwoOptEngine + ?Sized>(
    engine: &mut E,
    inst: &Instance,
    tour: &mut Tour,
    opts: SearchOptions,
    recorder: &Recorder,
    telemetry: &Telemetry,
    flight: &FlightRecorder,
    prof: &Profiler,
) -> Result<SearchStats, EngineError> {
    let _descent = prof.span("descent");
    let start = Instant::now();
    let metrics = telemetry.registry().map(|r| SearchMetrics::register(r));
    let initial_length = tour.length(inst);
    recorder.record_with(|| TraceEvent::DescentBegin {
        engine: engine.name(),
        n: inst.len(),
        initial_length,
    });
    let mut profile = StepProfile::default();
    let mut sweeps = 0u64;
    let mut improving_moves = 0u64;
    let mut reached_local_minimum = false;

    loop {
        if let Some(max) = opts.max_sweeps {
            if sweeps >= max {
                break;
            }
        }
        recorder.record(TraceEvent::SweepBegin { sweep: sweeps });
        let (mv, step) = {
            let _sweep = prof.span("sweep");
            engine.best_move(inst, tour)?
        };
        let improving = matches!(&mv, Some(m) if m.improves());
        recorder.record_with(|| TraceEvent::SweepEnd {
            sweep: sweeps,
            cost: step.into(),
            improving,
            delta: match &mv {
                Some(m) if m.improves() => m.delta.into(),
                _ => 0,
            },
        });
        sweeps += 1;
        profile.accumulate(&step);
        if let Some(m) = &metrics {
            m.sweeps.inc();
            if improving {
                m.moves_found.inc();
            }
        }
        match mv {
            Some(m) if m.improves() => {
                flight.record_with(|| ReplayEvent::Sweep {
                    i: m.i,
                    j: m.j,
                    delta: m.delta,
                    key: engine
                        .last_best_key()
                        .unwrap_or_else(|| pack(m.delta, m.i, m.j)),
                });
                {
                    let _apply = prof.span("apply_move");
                    tour.apply_two_opt(m.i as usize, m.j as usize);
                }
                improving_moves += 1;
                if let Some(metrics) = &metrics {
                    metrics.moves_applied.inc();
                    metrics.move_delta.observe(-f64::from(m.delta));
                }
            }
            _ => {
                reached_local_minimum = true;
                break;
            }
        }
    }

    let final_length = tour.length(inst);
    recorder.record(TraceEvent::DescentEnd {
        sweeps,
        final_length,
    });
    if let Some(m) = &metrics {
        m.descents.inc();
    }
    Ok(SearchStats {
        initial_length,
        final_length,
        sweeps,
        improving_moves,
        profile,
        host_seconds: start.elapsed().as_secs_f64(),
        reached_local_minimum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake engine that replays a scripted sequence of moves.
    struct Scripted {
        moves: Vec<Option<BestMove>>,
        cursor: usize,
    }

    impl TwoOptEngine for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }

        fn best_move(
            &mut self,
            _inst: &Instance,
            _tour: &Tour,
        ) -> Result<(Option<BestMove>, StepProfile), EngineError> {
            let mv = self.moves.get(self.cursor).cloned().flatten();
            self.cursor += 1;
            Ok((
                mv,
                StepProfile {
                    pairs_checked: 10,
                    flops: 320,
                    kernel_seconds: 1e-6,
                    reversal_seconds: 0.0,
                    h2d_seconds: 5e-7,
                    d2h_seconds: 5e-7,
                },
            ))
        }
    }

    fn square() -> Instance {
        use tsp_core::{Metric, Point};
        Instance::new(
            "square4",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn driver_applies_until_none() {
        let inst = square();
        let mut tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let mut engine = Scripted {
            moves: vec![
                Some(BestMove {
                    delta: -8,
                    i: 0,
                    j: 2,
                }),
                None,
            ],
            cursor: 0,
        };
        let stats = optimize(&mut engine, &inst, &mut tour, SearchOptions::default()).unwrap();
        assert_eq!(tour.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(stats.sweeps, 2);
        assert_eq!(stats.improving_moves, 1);
        assert!(stats.reached_local_minimum);
        assert_eq!(stats.initial_length, 48);
        assert_eq!(stats.final_length, 40);
        assert_eq!(stats.profile.pairs_checked, 20);
        assert!((stats.modeled_seconds() - 4e-6).abs() < 1e-12);
    }

    #[test]
    fn driver_respects_sweep_cap() {
        let inst = square();
        let mut tour = Tour::identity(4);
        // An engine that would loop forever on zero-delta "improvements"
        // is guarded by the strict improves() check; here we cap sweeps.
        let mut engine = Scripted {
            moves: vec![
                Some(BestMove {
                    delta: -1,
                    i: 1,
                    j: 2
                });
                100
            ],
            cursor: 0,
        };
        let stats = optimize(
            &mut engine,
            &inst,
            &mut tour,
            SearchOptions {
                max_sweeps: Some(3),
            },
        )
        .unwrap();
        assert_eq!(stats.sweeps, 3);
        assert!(!stats.reached_local_minimum);
    }

    #[test]
    fn non_improving_move_stops_descent() {
        let inst = square();
        let mut tour = Tour::identity(4);
        let mut engine = Scripted {
            moves: vec![Some(BestMove {
                delta: 0,
                i: 0,
                j: 2,
            })],
            cursor: 0,
        };
        let stats = optimize(&mut engine, &inst, &mut tour, SearchOptions::default()).unwrap();
        assert_eq!(stats.improving_moves, 0);
        assert!(stats.reached_local_minimum);
        // The zero-delta move must NOT have been applied.
        assert_eq!(tour.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn recorder_sees_descent_and_sweep_events() {
        let inst = square();
        let mut tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let mut engine = Scripted {
            moves: vec![
                Some(BestMove {
                    delta: -8,
                    i: 0,
                    j: 2,
                }),
                None,
            ],
            cursor: 0,
        };
        let rec = Recorder::enabled();
        let stats = optimize_with_recorder(
            &mut engine,
            &inst,
            &mut tour,
            SearchOptions::default(),
            &rec,
        )
        .unwrap();
        let events = rec.events();
        assert!(matches!(
            &events[0],
            TraceEvent::DescentBegin { engine, n, initial_length }
                if engine == "scripted" && *n == 4 && *initial_length == 48
        ));
        assert!(matches!(events[1], TraceEvent::SweepBegin { sweep: 0 }));
        match &events[2] {
            TraceEvent::SweepEnd {
                sweep,
                cost,
                improving,
                delta,
            } => {
                assert_eq!(*sweep, 0);
                assert!(*improving);
                assert_eq!(*delta, -8);
                assert_eq!(cost.pairs_checked, 10);
                assert!((cost.modeled_seconds() - 2e-6).abs() < 1e-15);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(events[3], TraceEvent::SweepBegin { sweep: 1 }));
        assert!(matches!(
            &events[4],
            TraceEvent::SweepEnd {
                sweep: 1,
                improving: false,
                delta: 0,
                ..
            }
        ));
        assert!(matches!(
            &events[5],
            TraceEvent::DescentEnd {
                sweeps: 2,
                final_length: 40
            }
        ));
        assert_eq!(events.len(), 6);
        assert_eq!(stats.sweeps, 2);
    }

    #[test]
    fn telemetry_counts_sweeps_moves_and_deltas() {
        let inst = square();
        let mut tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let mut engine = Scripted {
            moves: vec![
                Some(BestMove {
                    delta: -8,
                    i: 0,
                    j: 2,
                }),
                None,
            ],
            cursor: 0,
        };
        let telemetry = Telemetry::attached();
        optimize_observed(
            &mut engine,
            &inst,
            &mut tour,
            SearchOptions::default(),
            &Recorder::disabled(),
            &telemetry,
        )
        .unwrap();
        let reg = telemetry.registry().unwrap();
        assert_eq!(reg.counter_value("tsp_search_sweeps_total"), Some(2.0));
        assert_eq!(
            reg.counter_value("tsp_search_improving_found_total"),
            Some(1.0)
        );
        assert_eq!(
            reg.counter_value("tsp_search_moves_applied_total"),
            Some(1.0)
        );
        assert_eq!(reg.counter_value("tsp_search_descents_total"), Some(1.0));
        // The applied move's magnitude lands in the delta histogram.
        assert_eq!(
            reg.histogram_totals("tsp_search_move_delta"),
            Some((8.0, 1))
        );
    }

    #[test]
    fn improvement_percent() {
        let stats = SearchStats {
            initial_length: 200,
            final_length: 150,
            sweeps: 1,
            improving_moves: 0,
            profile: StepProfile::default(),
            host_seconds: 0.0,
            reached_local_minimum: true,
        };
        assert!((stats.improvement_percent() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn checks_per_second_guards_zero_time() {
        let p = StepProfile::default();
        assert_eq!(p.checks_per_second(), 0.0);
    }

    #[test]
    fn reversal_time_counts_toward_modeled_seconds() {
        let mut total = StepProfile::default();
        let step = StepProfile {
            pairs_checked: 1,
            flops: 4,
            kernel_seconds: 2e-6,
            reversal_seconds: 3e-7,
            h2d_seconds: 0.0,
            d2h_seconds: 1e-7,
        };
        assert!((step.modeled_seconds() - 2.4e-6).abs() < 1e-18);
        total.accumulate(&step);
        total.accumulate(&step);
        assert!((total.reversal_seconds - 6e-7).abs() < 1e-18);
        assert!((total.modeled_seconds() - 4.8e-6).abs() < 1e-18);
    }
}
