//! The sequential CPU baseline — the paper's §IV reference loop:
//!
//! ```text
//! for (int i = 1; i < n - 2; i++)
//!     for (int j = i + 1; j < n - 1; j++)
//!         ...check pair...
//! ```
//!
//! (our position convention shifts the same enumeration to
//! `0 <= i < j <= n - 2`; the candidate set is identical). This engine is
//! the ground truth every parallel engine is verified against, and the
//! baseline of the paper's "up to 300 times faster" convergence claim.

use crate::bestmove::BestMove;
use crate::cpu_model::{flops_for_pairs, model_cpu_sweep_seconds};
use crate::delta::{delta_ordered, delta_positions};
use crate::search::{EngineError, StepProfile, TwoOptEngine};
use gpu_sim::DeviceSpec;
use tsp_core::{Instance, Point, Tour};

/// Pivoting rule for the sweep — the paper uses best-improvement
/// (the GPU reduction *is* a best-improvement selection); the
/// first-improvement variant is provided for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PivotRule {
    /// Scan everything, apply the most-improving move.
    #[default]
    BestImprovement,
    /// Stop the sweep at the first improving move.
    FirstImprovement,
}

/// Single-threaded exact 2-opt engine.
pub struct SequentialTwoOpt {
    spec: DeviceSpec,
    pivot: PivotRule,
    ordered: Vec<Point>,
}

impl SequentialTwoOpt {
    /// Engine with the paper's sequential-CPU model spec.
    pub fn new() -> Self {
        Self::with_spec(gpu_sim::spec::sequential_cpu())
    }

    /// Engine with an explicit device spec for modeled timing.
    pub fn with_spec(spec: DeviceSpec) -> Self {
        SequentialTwoOpt {
            spec,
            pivot: PivotRule::BestImprovement,
            ordered: Vec::new(),
        }
    }

    /// Select the pivoting rule.
    pub fn with_pivot(mut self, pivot: PivotRule) -> Self {
        self.pivot = pivot;
        self
    }
}

impl Default for SequentialTwoOpt {
    fn default() -> Self {
        Self::new()
    }
}

impl TwoOptEngine for SequentialTwoOpt {
    fn name(&self) -> String {
        format!("sequential[{}]", self.spec.name)
    }

    fn best_move(
        &mut self,
        inst: &Instance,
        tour: &Tour,
    ) -> Result<(Option<BestMove>, StepProfile), EngineError> {
        let n = tour.len();
        if n < 4 {
            return Ok((None, StepProfile::default()));
        }
        let mut best: Option<BestMove> = None;
        let mut checked = 0u64;

        if inst.is_coordinate_based() {
            // Fast path: the paper's layout — coordinates in tour order.
            self.ordered.clear();
            self.ordered
                .extend(tour.as_slice().iter().map(|&c| inst.point(c as usize)));
            'outer_c: for i in 0..=(n - 3) {
                for j in (i + 1)..=(n - 2) {
                    let d = delta_ordered(&self.ordered, i, j);
                    checked += 1;
                    if d < best.map_or(0, |b| b.delta) {
                        best = Some(BestMove {
                            delta: d,
                            i: i as u32,
                            j: j as u32,
                        });
                        if self.pivot == PivotRule::FirstImprovement {
                            break 'outer_c;
                        }
                    }
                }
            }
        } else {
            'outer_m: for i in 0..=(n - 3) {
                for j in (i + 1)..=(n - 2) {
                    let d = delta_positions(inst, tour, i, j);
                    checked += 1;
                    if d < best.map_or(0, |b| b.delta as i64) {
                        best = Some(BestMove {
                            delta: d as i32,
                            i: i as u32,
                            j: j as u32,
                        });
                        if self.pivot == PivotRule::FirstImprovement {
                            break 'outer_m;
                        }
                    }
                }
            }
        }

        let profile = StepProfile {
            pairs_checked: checked,
            flops: flops_for_pairs(checked),
            kernel_seconds: model_cpu_sweep_seconds(&self.spec, checked),
            reversal_seconds: 0.0,
            h2d_seconds: 0.0,
            d2h_seconds: 0.0,
        };
        Ok((best, profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{optimize, SearchOptions};
    use tsp_core::{ExplicitMatrix, Metric};

    fn square() -> Instance {
        Instance::new(
            "square4",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn finds_the_uncrossing_move() {
        let inst = square();
        let tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let mut eng = SequentialTwoOpt::new();
        let (mv, prof) = eng.best_move(&inst, &tour).unwrap();
        let mv = mv.unwrap();
        assert_eq!((mv.delta, mv.i, mv.j), (-8, 0, 2));
        assert_eq!(prof.pairs_checked, 3); // (0,1) (0,2) (1,2)
        assert!(prof.kernel_seconds > 0.0);
    }

    #[test]
    fn local_minimum_on_square_is_the_perimeter() {
        let inst = square();
        let mut tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let mut eng = SequentialTwoOpt::new();
        let stats = optimize(&mut eng, &inst, &mut tour, SearchOptions::default()).unwrap();
        assert_eq!(stats.final_length, 40);
        assert!(stats.reached_local_minimum);
    }

    #[test]
    fn explicit_matrix_path_agrees() {
        // Same square as an explicit matrix.
        let coords = square();
        let n = 4;
        let mut w = vec![0i32; n * n];
        for i in 0..n {
            for j in 0..n {
                w[i * n + j] = coords.dist(i, j);
            }
        }
        let inst =
            Instance::from_matrix("m", ExplicitMatrix::from_full(n, w).unwrap(), None).unwrap();
        let tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let mut eng = SequentialTwoOpt::new();
        let (mv, _) = eng.best_move(&inst, &tour).unwrap();
        assert_eq!(mv.unwrap().delta, -8);
    }

    #[test]
    fn first_improvement_stops_early() {
        let inst = square();
        let tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let mut eng = SequentialTwoOpt::new().with_pivot(PivotRule::FirstImprovement);
        let (mv, prof) = eng.best_move(&inst, &tour).unwrap();
        assert!(mv.unwrap().improves());
        assert!(prof.pairs_checked <= 3);
    }

    #[test]
    fn tiny_tours_have_no_moves() {
        let inst = square();
        let tour = Tour::identity(3);
        // A 3-city sub-tour view is impossible with this instance, so use
        // n = 4 tour but ask directly with n < 4 via a 3-city instance.
        let inst3 = Instance::new(
            "tri",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0),
            ],
        )
        .unwrap();
        let mut eng = SequentialTwoOpt::new();
        let (mv, prof) = eng.best_move(&inst3, &tour).unwrap();
        assert!(mv.is_none());
        assert_eq!(prof.pairs_checked, 0);
        let _ = inst;
    }

    #[test]
    fn identity_square_is_already_optimal() {
        let inst = square();
        let tour = Tour::identity(4);
        let mut eng = SequentialTwoOpt::new();
        let (mv, _) = eng.best_move(&inst, &tour).unwrap();
        assert!(mv.is_none());
    }
}
