//! Sequential 3-opt — the paper's §VI/§VII outlook: "The solutions to
//! this problem are more sophisticated algorithms such as 3-opt, k-opt or
//! LK" / "Our future work is to efficiently implement more complex local
//! search algorithms such as 2.5-opt, 3-opt and Lin-Kernighan".
//!
//! This module provides a correct (not throughput-oriented) 3-opt for
//! quality comparisons: given three removed edges `(i,i+1)`, `(j,j+1)`,
//! `(k,k+1)` with `i < j < k <= n-2`, all seven non-identity
//! reconnections are evaluated by delta and the chosen one applied by
//! segment surgery. Complexity is O(n³) per sweep — usable on the small
//! and mid instances where tour quality, not speed, is the question.

use tsp_core::{Instance, Tour};

/// The seven non-identity reconnections of three removed edges.
///
/// With segments `A = ..i`, `B = i+1..j`, `C = j+1..k`, `D = k+1..`,
/// the variants are named by what happens to `B` and `C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reconnection {
    /// Reverse `B` (pure 2-opt on `(i, j)`).
    RevB,
    /// Reverse `C` (pure 2-opt on `(j, k)`).
    RevC,
    /// Reverse `B` and `C` in place.
    RevBRevC,
    /// Reverse the whole span `B+C` (pure 2-opt on `(i, k)`).
    RevBC,
    /// Swap: `A C B D` (pure 3-opt, no reversal).
    Swap,
    /// Swap with `C` reversed: `A C' B D`.
    SwapRevC,
    /// Swap with `B` reversed: `A C B' D`.
    SwapRevB,
}

/// All seven variants, in evaluation order.
pub const RECONNECTIONS: [Reconnection; 7] = [
    Reconnection::RevB,
    Reconnection::RevC,
    Reconnection::RevBRevC,
    Reconnection::RevBC,
    Reconnection::Swap,
    Reconnection::SwapRevC,
    Reconnection::SwapRevB,
];

/// A 3-opt move: cut positions and the chosen reconnection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeOptMove {
    /// First cut: removes edge `(i, i+1)`.
    pub i: usize,
    /// Second cut: removes edge `(j, j+1)`.
    pub j: usize,
    /// Third cut: removes edge `(k, k+1)`.
    pub k: usize,
    /// Which reconnection to apply.
    pub reconnection: Reconnection,
    /// Length change.
    pub delta: i64,
}

/// Delta of a reconnection, from the six boundary cities.
fn reconnection_delta(
    inst: &Instance,
    tour: &Tour,
    i: usize,
    j: usize,
    k: usize,
    r: Reconnection,
) -> i64 {
    let a = tour.city(i) as usize; // end of A
    let b = tour.city(i + 1) as usize; // start of B
    let c = tour.city(j) as usize; // end of B
    let d = tour.city(j + 1) as usize; // start of C
    let e = tour.city(k) as usize; // end of C
    let f = tour.city(k + 1) as usize; // start of D
    let w = |x: usize, y: usize| inst.dist(x, y) as i64;
    let removed = w(a, b) + w(c, d) + w(e, f);
    let added = match r {
        Reconnection::RevB => w(a, c) + w(b, d) + w(e, f),
        Reconnection::RevC => w(a, b) + w(c, e) + w(d, f),
        Reconnection::RevBRevC => w(a, c) + w(b, e) + w(d, f),
        Reconnection::RevBC => w(a, e) + w(d, c) + w(b, f),
        Reconnection::Swap => w(a, d) + w(e, b) + w(c, f),
        Reconnection::SwapRevC => w(a, e) + w(d, b) + w(c, f),
        Reconnection::SwapRevB => w(a, d) + w(e, c) + w(b, f),
    };
    added - removed
}

/// Apply a 3-opt move by rebuilding the order from its four segments.
pub fn apply(tour: &mut Tour, mv: &ThreeOptMove) {
    let order = tour.as_slice();
    let seg_a = &order[..=mv.i];
    let mut seg_b: Vec<u32> = order[mv.i + 1..=mv.j].to_vec();
    let mut seg_c: Vec<u32> = order[mv.j + 1..=mv.k].to_vec();
    let seg_d = &order[mv.k + 1..];
    let mut next: Vec<u32> = Vec::with_capacity(order.len());
    next.extend_from_slice(seg_a);
    match mv.reconnection {
        Reconnection::RevB => {
            seg_b.reverse();
            next.extend_from_slice(&seg_b);
            next.extend_from_slice(&seg_c);
        }
        Reconnection::RevC => {
            seg_c.reverse();
            next.extend_from_slice(&seg_b);
            next.extend_from_slice(&seg_c);
        }
        Reconnection::RevBRevC => {
            seg_b.reverse();
            seg_c.reverse();
            next.extend_from_slice(&seg_b);
            next.extend_from_slice(&seg_c);
        }
        Reconnection::RevBC => {
            seg_c.reverse();
            next.extend_from_slice(&seg_c);
            seg_b.reverse();
            next.extend_from_slice(&seg_b);
        }
        Reconnection::Swap => {
            next.extend_from_slice(&seg_c);
            next.extend_from_slice(&seg_b);
        }
        Reconnection::SwapRevC => {
            seg_c.reverse();
            next.extend_from_slice(&seg_c);
            next.extend_from_slice(&seg_b);
        }
        Reconnection::SwapRevB => {
            next.extend_from_slice(&seg_c);
            seg_b.reverse();
            next.extend_from_slice(&seg_b);
        }
    }
    next.extend_from_slice(seg_d);
    *tour = Tour::new(next).expect("3-opt surgery preserves the permutation");
}

/// First-improvement 3-opt sweep; `None` at a 3-opt local minimum
/// (within the non-wrapping cut enumeration). Returns the number of
/// reconnections evaluated alongside.
pub fn first_improvement(inst: &Instance, tour: &Tour) -> (Option<ThreeOptMove>, u64) {
    let n = tour.len();
    let mut checked = 0u64;
    if n < 6 {
        return (None, 0);
    }
    for i in 0..n - 4 {
        for j in (i + 1)..n - 3 {
            for k in (j + 1)..n - 2 {
                for r in RECONNECTIONS {
                    checked += 1;
                    let delta = reconnection_delta(inst, tour, i, j, k, r);
                    if delta < 0 {
                        return (
                            Some(ThreeOptMove {
                                i,
                                j,
                                k,
                                reconnection: r,
                                delta,
                            }),
                            checked,
                        );
                    }
                }
            }
        }
    }
    (None, checked)
}

/// Run 3-opt descent to its local minimum; returns moves applied.
pub fn optimize(inst: &Instance, tour: &mut Tour) -> u64 {
    let mut applied = 0;
    while let (Some(mv), _) = first_improvement(inst, tour) {
        let before = tour.length(inst);
        apply(tour, &mv);
        debug_assert_eq!(tour.length(inst) - before, mv.delta);
        applied += 1;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{optimize as opt2, SearchOptions};
    use crate::sequential::SequentialTwoOpt;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::{Metric, Point};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn every_reconnection_delta_matches_recompute() {
        let inst = random_instance(14, 2);
        let mut rng = SmallRng::seed_from_u64(6);
        let tour = Tour::random(14, &mut rng);
        let n = 14;
        for i in 0..n - 4 {
            for j in (i + 1)..n - 3 {
                for k in (j + 1)..n - 2 {
                    for r in RECONNECTIONS {
                        let delta = reconnection_delta(&inst, &tour, i, j, k, r);
                        let mut t = tour.clone();
                        apply(
                            &mut t,
                            &ThreeOptMove {
                                i,
                                j,
                                k,
                                reconnection: r,
                                delta,
                            },
                        );
                        t.validate().unwrap();
                        assert_eq!(
                            t.length(&inst) - tour.length(&inst),
                            delta,
                            "i={i} j={j} k={k} {r:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn three_opt_after_two_opt_never_worsens() {
        let inst = random_instance(60, 4);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut tour = Tour::random(60, &mut rng);

        let mut seq = SequentialTwoOpt::new();
        opt2(&mut seq, &inst, &mut tour, SearchOptions::default()).unwrap();
        let after_2opt = tour.length(&inst);

        optimize(&inst, &mut tour);
        assert!(
            tour.length(&inst) <= after_2opt,
            "3-opt {} vs 2-opt {}",
            tour.length(&inst),
            after_2opt
        );
        tour.validate().unwrap();
    }

    #[test]
    fn three_opt_improves_past_a_two_opt_minimum() {
        // Take a 2-opt local minimum and confirm 3-opt still finds moves
        // on at least some seeds (the Swap variants are unreachable by
        // 2-opt).
        let mut improved_any = false;
        for seed in 0..6 {
            let inst = random_instance(40, seed);
            let mut rng = SmallRng::seed_from_u64(seed + 100);
            let mut tour = Tour::random(40, &mut rng);
            let mut seq = SequentialTwoOpt::new();
            opt2(&mut seq, &inst, &mut tour, SearchOptions::default()).unwrap();
            let at_min = tour.length(&inst);
            if optimize(&inst, &mut tour) > 0 {
                assert!(tour.length(&inst) < at_min);
                improved_any = true;
            }
        }
        assert!(improved_any, "3-opt never improved a 2-opt minimum");
    }

    #[test]
    fn tiny_instances_have_no_moves() {
        let inst = random_instance(5, 1);
        let tour = Tour::identity(5);
        let (mv, checked) = first_improvement(&inst, &tour);
        assert!(mv.is_none());
        assert_eq!(checked, 0);
    }
}
