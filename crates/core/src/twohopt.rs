//! 2.5-opt (also written 2h-opt) — named directly in the paper's §VII:
//! "Our future work is to efficiently implement more complex local
//! search algorithms such as **2.5-opt**, 3-opt and Lin-Kernighan".
//!
//! Following Bentley's definition, a 2.5-opt step examines, for each
//! candidate pair `(i, j)`, both
//!
//! * the plain **2-opt** reconnection (reverse the middle segment), and
//! * the **node insertion** of the city after `i` between `j` and `j+1`
//!   (a length-1 Or-opt move) — in both directions.
//!
//! Its neighbourhood strictly contains 2-opt's, so a 2.5-opt local
//! minimum is also a 2-opt local minimum, usually a shorter one.

use tsp_core::{Instance, Tour};

/// A 2.5-opt move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// The classic 2-opt segment reversal on `(i, j)`.
    TwoOpt {
        /// First removed edge `(i, i+1)`.
        i: usize,
        /// Second removed edge `(j, j+1)`.
        j: usize,
    },
    /// Move the city at position `from` to sit between positions `j`
    /// and `j+1`.
    Insertion {
        /// Position of the relocated city.
        from: usize,
        /// Insert after this position (in the *current* tour).
        after: usize,
    },
}

/// A scored move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoredMove {
    /// The move.
    pub mv: Move,
    /// Length change (negative improves).
    pub delta: i64,
}

/// Delta of inserting the city at `from` after position `after`
/// (`after != from`, `after != from - 1`; non-wrapping interior moves:
/// `1 <= from <= n-2`, `0 <= after <= n-2`).
fn insertion_delta(inst: &Instance, tour: &Tour, from: usize, after: usize) -> i64 {
    let c = |p: usize| tour.city(p) as usize;
    let a = c(from - 1);
    let b = c(from);
    let d = c(from + 1);
    let e = c(after);
    let f = c(after + 1);
    debug_assert!(e != b && f != b);
    (inst.dist(a, d) as i64 + inst.dist(e, b) as i64 + inst.dist(b, f) as i64)
        - (inst.dist(a, b) as i64 + inst.dist(b, d) as i64 + inst.dist(e, f) as i64)
}

/// Apply a 2.5-opt move.
pub fn apply(tour: &mut Tour, mv: &Move) {
    match *mv {
        Move::TwoOpt { i, j } => tour.apply_two_opt(i, j),
        Move::Insertion { from, after } => {
            let mut order = tour.as_slice().to_vec();
            let city = order.remove(from);
            // `after` indexes the original tour; removal shifts later
            // positions left by one.
            let at = if after < from { after + 1 } else { after };
            order.insert(at, city);
            *tour = Tour::new(order).expect("insertion preserves the permutation");
        }
    }
}

/// Best 2.5-opt move (best-improvement over both move kinds), plus the
/// number of candidates examined.
pub fn best_move(inst: &Instance, tour: &Tour) -> (Option<ScoredMove>, u64) {
    let n = tour.len();
    let mut checked = 0u64;
    if n < 5 {
        return (None, 0);
    }
    let mut best: Option<ScoredMove> = None;
    let consider = |mv: Move, delta: i64, best: &mut Option<ScoredMove>| {
        if delta < 0 && best.is_none_or(|b| delta < b.delta) {
            *best = Some(ScoredMove { mv, delta });
        }
    };

    // 2-opt part: the usual triangular sweep.
    for i in 0..=(n - 3) {
        for j in (i + 1)..=(n - 2) {
            checked += 1;
            let d = crate::delta::delta_positions(inst, tour, i, j);
            consider(Move::TwoOpt { i, j }, d, &mut best);
        }
    }
    // Insertion part: every interior city to every non-adjacent edge.
    for from in 1..=(n - 2) {
        for after in 0..=(n - 2) {
            if after + 1 >= from && after <= from {
                continue; // adjacent or identity placements
            }
            checked += 1;
            let d = insertion_delta(inst, tour, from, after);
            consider(Move::Insertion { from, after }, d, &mut best);
        }
    }
    (best, checked)
}

/// Run 2.5-opt descent to the local minimum; returns moves applied and
/// total candidates checked.
pub fn optimize(inst: &Instance, tour: &mut Tour) -> (u64, u64) {
    let mut applied = 0;
    let mut checked = 0;
    loop {
        let (mv, c) = best_move(inst, tour);
        checked += c;
        match mv {
            Some(m) => {
                let before = tour.length(inst);
                apply(tour, &m.mv);
                debug_assert_eq!(tour.length(inst) - before, m.delta);
                applied += 1;
            }
            None => return (applied, checked),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{optimize as opt2, SearchOptions};
    use crate::sequential::SequentialTwoOpt;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::{Metric, Point};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn insertion_delta_matches_recompute_exhaustively() {
        let inst = random_instance(12, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let tour = Tour::random(12, &mut rng);
        for from in 1..=10usize {
            for after in 0..=10usize {
                if after + 1 >= from && after <= from {
                    continue;
                }
                let delta = insertion_delta(&inst, &tour, from, after);
                let mut t = tour.clone();
                apply(&mut t, &Move::Insertion { from, after });
                t.validate().unwrap();
                assert_eq!(
                    t.length(&inst) - tour.length(&inst),
                    delta,
                    "from={from} after={after}"
                );
            }
        }
    }

    #[test]
    fn local_minimum_is_also_a_two_opt_local_minimum() {
        let inst = random_instance(70, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut tour = Tour::random(70, &mut rng);
        let (applied, _) = optimize(&inst, &mut tour);
        assert!(applied > 0);
        tour.validate().unwrap();
        // No 2-opt move can remain (2-opt ⊂ 2.5-opt neighbourhood).
        let mut seq = SequentialTwoOpt::new();
        let (mv, _) = crate::search::TwoOptEngine::best_move(&mut seq, &inst, &tour).unwrap();
        assert!(mv.is_none(), "2.5-opt minimum still had 2-opt move {mv:?}");
    }

    #[test]
    fn quality_beats_two_opt_on_average() {
        // Per-seed outcomes are noisy (different descent paths), but the
        // richer neighbourhood must win in aggregate. Sixteen seeds keep
        // the aggregate robust to the PRNG stream in use.
        let (mut sum2, mut sum25) = (0i64, 0i64);
        for seed in 0..16 {
            let inst = random_instance(60, seed);
            let mut rng = SmallRng::seed_from_u64(seed + 50);
            let start = Tour::random(60, &mut rng);
            let mut t2 = start.clone();
            let mut seq = SequentialTwoOpt::new();
            opt2(&mut seq, &inst, &mut t2, SearchOptions::default()).unwrap();
            let mut t25 = start;
            optimize(&inst, &mut t25);
            sum2 += t2.length(&inst);
            sum25 += t25.length(&inst);
        }
        assert!(sum25 <= sum2, "2.5-opt total {sum25} vs 2-opt total {sum2}");
    }

    #[test]
    fn improves_past_a_two_opt_minimum_on_some_seeds() {
        let mut improved_any = false;
        for seed in 10..16 {
            let inst = random_instance(50, seed);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut tour = Tour::random(50, &mut rng);
            let mut seq = SequentialTwoOpt::new();
            opt2(&mut seq, &inst, &mut tour, SearchOptions::default()).unwrap();
            let at_min = tour.length(&inst);
            let (applied, _) = optimize(&inst, &mut tour);
            if applied > 0 {
                assert!(tour.length(&inst) < at_min);
                improved_any = true;
            }
        }
        assert!(improved_any, "2.5-opt never improved a 2-opt minimum");
    }

    #[test]
    fn tiny_instances_are_safe() {
        let inst = random_instance(4, 9);
        let mut tour = Tour::identity(4);
        let (applied, checked) = optimize(&inst, &mut tour);
        assert_eq!(applied, 0);
        assert_eq!(checked, 0);
    }
}
