//! Verification utilities: independent checks that a tour really is what
//! an engine claims it is. Used by the test suites and available to
//! downstream users who want belt-and-braces validation of results.

use crate::delta::delta_positions;
use tsp_core::{Instance, Tour};

/// Exhaustively verify that `tour` is a 2-opt local minimum under the
/// non-wrapping candidate convention (`0 <= i < j <= n-2`). Returns the
/// first improving pair found, or `None` when the tour is locally
/// optimal. O(n²).
pub fn find_improving_pair(inst: &Instance, tour: &Tour) -> Option<(usize, usize, i64)> {
    let n = tour.len();
    if n < 4 {
        return None;
    }
    for i in 0..=(n - 3) {
        for j in (i + 1)..=(n - 2) {
            let d = delta_positions(inst, tour, i, j);
            if d < 0 {
                return Some((i, j, d));
            }
        }
    }
    None
}

/// `true` when `tour` is a 2-opt local minimum.
pub fn is_two_opt_minimum(inst: &Instance, tour: &Tour) -> bool {
    find_improving_pair(inst, tour).is_none()
}

/// Recompute a tour length edge-by-edge and compare against `claimed`;
/// returns the recomputed value on mismatch.
pub fn check_length(inst: &Instance, tour: &Tour, claimed: i64) -> Result<(), i64> {
    let actual = tour.length(inst);
    if actual == claimed {
        Ok(())
    } else {
        Err(actual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{optimize, SearchOptions};
    use crate::sequential::SequentialTwoOpt;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::{Metric, Point};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn descent_output_passes_verification() {
        let inst = random_instance(80, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut tour = Tour::random(80, &mut rng);
        assert!(!is_two_opt_minimum(&inst, &tour));
        let mut eng = SequentialTwoOpt::new();
        let stats = optimize(&mut eng, &inst, &mut tour, SearchOptions::default()).unwrap();
        assert!(is_two_opt_minimum(&inst, &tour));
        assert!(check_length(&inst, &tour, stats.final_length).is_ok());
    }

    #[test]
    fn improving_pair_is_reported_with_its_delta() {
        let inst = Instance::new(
            "square4",
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap();
        let tour = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let (i, j, d) = find_improving_pair(&inst, &tour).unwrap();
        assert_eq!((i, j, d), (0, 2, -8));
    }

    #[test]
    fn check_length_reports_the_truth() {
        let inst = random_instance(20, 3);
        let tour = Tour::identity(20);
        let real = tour.length(&inst);
        assert!(check_length(&inst, &tour, real).is_ok());
        assert_eq!(check_length(&inst, &tour, real + 1), Err(real));
    }

    #[test]
    fn tiny_tours_are_trivially_minimal() {
        let inst = random_instance(3, 4);
        let tour = Tour::identity(3);
        assert!(is_two_opt_minimum(&inst, &tour));
    }
}
