//! Variable Neighbourhood Descent: 2-opt and Or-opt combined — the
//! natural packaging of the paper's §VII agenda ("more complex local
//! search algorithms"). Descend with 2-opt to its local minimum, try one
//! Or-opt relocation; if it improves, apply it and go back to 2-opt.
//! The result is a local minimum of **both** neighbourhoods.

use crate::gpu::oropt_kernel::GpuOrOpt;
use crate::oropt;
use crate::search::{optimize, EngineError, SearchOptions, StepProfile, TwoOptEngine};
use tsp_core::{Instance, Tour};

/// Statistics of a VND run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VndStats {
    /// Initial tour length.
    pub initial_length: i64,
    /// Final tour length.
    pub final_length: i64,
    /// 2-opt moves applied (across all descents).
    pub two_opt_moves: u64,
    /// Or-opt relocations applied.
    pub or_opt_moves: u64,
    /// Accumulated modeled cost (both neighbourhoods).
    pub profile: StepProfile,
}

/// Run VND with a 2-opt engine and the GPU Or-opt kernel.
pub fn optimize_vnd<E: TwoOptEngine + ?Sized>(
    two_opt: &mut E,
    or_opt: &mut GpuOrOpt,
    inst: &Instance,
    tour: &mut Tour,
) -> Result<VndStats, EngineError> {
    let initial_length = tour.length(inst);
    let mut profile = StepProfile::default();
    let mut two_opt_moves = 0;
    let mut or_opt_moves = 0;
    loop {
        let stats = optimize(two_opt, inst, tour, SearchOptions::default())?;
        profile.accumulate(&stats.profile);
        two_opt_moves += stats.improving_moves;
        let (mv, step) = or_opt.best_move(inst, tour)?;
        profile.accumulate(&step);
        match mv {
            Some(m) => {
                oropt::apply(tour, &m);
                or_opt_moves += 1;
            }
            None => break,
        }
    }
    Ok(VndStats {
        initial_length,
        final_length: tour.length(inst),
        two_opt_moves,
        or_opt_moves,
        profile,
    })
}

/// CPU-only VND (sequential 2-opt + CPU Or-opt sweep) for environments
/// where the caller wants no simulator involvement.
pub fn optimize_vnd_cpu(inst: &Instance, tour: &mut Tour) -> VndStats {
    let initial_length = tour.length(inst);
    let mut seq = crate::sequential::SequentialTwoOpt::new();
    let mut profile = StepProfile::default();
    let mut two_opt_moves = 0;
    let mut or_opt_moves = 0;
    loop {
        let stats = optimize(&mut seq, inst, tour, SearchOptions::default())
            .expect("sequential engine cannot fail");
        profile.accumulate(&stats.profile);
        two_opt_moves += stats.improving_moves;
        let (mv, _) = oropt::best_move(inst, tour, 3);
        match mv {
            Some(m) => {
                oropt::apply(tour, &m);
                or_opt_moves += 1;
            }
            None => break,
        }
    }
    VndStats {
        initial_length,
        final_length: tour.length(inst),
        two_opt_moves,
        or_opt_moves,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuTwoOpt;
    use crate::verify::is_two_opt_minimum;
    use gpu_sim::spec;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tsp_core::{Metric, Point};

    fn random_instance(n: usize, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0f32), rng.gen_range(0.0..1000.0f32)))
            .collect();
        Instance::new(format!("rand{n}"), Metric::Euc2d, pts).unwrap()
    }

    #[test]
    fn vnd_minimum_is_minimal_in_both_neighbourhoods() {
        let inst = random_instance(70, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut tour = Tour::random(70, &mut rng);
        let mut two = GpuTwoOpt::new(spec::gtx_680_cuda());
        let mut or = GpuOrOpt::new(spec::gtx_680_cuda());
        let stats = optimize_vnd(&mut two, &mut or, &inst, &mut tour).unwrap();
        assert!(stats.final_length < stats.initial_length);
        assert!(is_two_opt_minimum(&inst, &tour));
        let (mv, _) = oropt::best_move(&inst, &tour, 3);
        assert!(mv.is_none(), "Or-opt move left: {mv:?}");
        tour.validate().unwrap();
        assert!(stats.two_opt_moves > 0);
    }

    #[test]
    fn vnd_beats_or_ties_plain_two_opt() {
        let (mut sum2, mut sumv) = (0i64, 0i64);
        for seed in 0..4 {
            let inst = random_instance(60, seed);
            let mut rng = SmallRng::seed_from_u64(seed + 70);
            let start = Tour::random(60, &mut rng);

            let mut plain = start.clone();
            let mut eng = crate::sequential::SequentialTwoOpt::new();
            let s = optimize(&mut eng, &inst, &mut plain, SearchOptions::default()).unwrap();
            sum2 += s.final_length;

            let mut vnd_tour = start;
            let v = optimize_vnd_cpu(&inst, &mut vnd_tour);
            sumv += v.final_length;
        }
        assert!(sumv <= sum2, "VND total {sumv} vs 2-opt total {sum2}");
    }

    #[test]
    fn cpu_and_gpu_vnd_agree() {
        let inst = random_instance(50, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let start = Tour::random(50, &mut rng);

        let mut cpu_tour = start.clone();
        let c = optimize_vnd_cpu(&inst, &mut cpu_tour);

        let mut gpu_tour = start;
        let mut two = GpuTwoOpt::new(spec::gtx_680_cuda());
        let mut or = GpuOrOpt::new(spec::gtx_680_cuda());
        let g = optimize_vnd(&mut two, &mut or, &inst, &mut gpu_tour).unwrap();

        // Same move sequences (engines agree bit-for-bit) -> same tours.
        assert_eq!(cpu_tour.as_slice(), gpu_tour.as_slice());
        assert_eq!(c.final_length, g.final_length);
        assert_eq!(c.two_opt_moves, g.two_opt_moves);
        assert_eq!(c.or_opt_moves, g.or_opt_moves);
    }
}
