//! Property tests for the kernel building blocks of tsp-2opt.

use gpu_sim::{spec, Device, LaunchConfig};
use proptest::prelude::*;
use tsp_2opt::bestmove::{pack, unpack, BestMove, EMPTY_KEY, MAX_POSITION};
use tsp_2opt::gpu::model::{model_small_sweep, model_tiled_sweep};
use tsp_2opt::gpu::oropt_kernel::{pack_oropt, unpack_oropt};
use tsp_2opt::gpu::reverse::SegmentReversalKernel;
use tsp_2opt::indexing::{
    index_to_pair, index_to_tile_pair, iterations_per_thread, pair_count, pair_to_index,
    tile_pair_count,
};
use tsp_core::{Point, Tour};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pair_index_bijection_everywhere(k in 0u64..1_000_000_000_000) {
        let (i, j) = index_to_pair(k);
        prop_assert!(i < j);
        prop_assert_eq!(pair_to_index(i, j), k);
    }

    #[test]
    fn tile_pair_bijection_everywhere(k in 0u64..1_000_000_000) {
        let (a, b) = index_to_tile_pair(k);
        prop_assert!(a <= b);
        prop_assert_eq!(b * (b + 1) / 2 + a, k);
    }

    #[test]
    fn pack_orders_by_delta_then_position(
        d1 in -8_000_000i32..8_000_000,
        d2 in -8_000_000i32..8_000_000,
        i1 in 0u32..1_000_000,
        j1 in 0u32..1_000_000,
        i2 in 0u32..1_000_000,
        j2 in 0u32..1_000_000,
    ) {
        let k1 = pack(d1, i1, j1);
        let k2 = pack(d2, i2, j2);
        // Key order equals tuple order.
        prop_assert_eq!(k1 < k2, (d1, i1, j1) < (d2, i2, j2));
        // Round trips.
        prop_assert_eq!(unpack(k1), Some(BestMove { delta: d1, i: i1, j: j1 }));
        prop_assert!(k1 < EMPTY_KEY);
        prop_assert!(i1 <= MAX_POSITION && j1 <= MAX_POSITION);
    }

    #[test]
    fn oropt_pack_orders_by_tuple(
        d1 in -1_000_000i32..1_000_000,
        d2 in -1_000_000i32..1_000_000,
        s1 in 0u32..1_000_000,
        s2 in 0u32..1_000_000,
        c1 in 0u32..6,
        c2 in 0u32..6,
        j1 in 0u32..1_000_000,
        j2 in 0u32..1_000_000,
    ) {
        // Stay inside the 20-bit saturation-free delta band.
        prop_assume!(d1.abs() < (1 << 20) - 1 && d2.abs() < (1 << 20) - 1);
        let k1 = pack_oropt(d1, s1, c1, j1);
        let k2 = pack_oropt(d2, s2, c2, j2);
        prop_assert_eq!(k1 < k2, (d1, s1, c1, j1) < (d2, s2, c2, j2));
        let m = unpack_oropt(k1).unwrap();
        prop_assert_eq!(m.delta, d1 as i64);
        prop_assert_eq!(m.s as u32, s1);
        prop_assert_eq!(m.j as u32, j1);
    }

    #[test]
    fn striding_covers_everything_exactly_once(
        pairs in 0u64..50_000,
        threads in 1u64..4096,
    ) {
        // Sum over threads of per-thread iteration counts equals pairs.
        let mut total = 0u64;
        for t in 0..threads.min(pairs.max(1)) {
            if t < pairs {
                total += (pairs - t).div_ceil(threads);
            }
        }
        prop_assert_eq!(total, pairs);
        // And it equals iterations_per_thread * threads only in the
        // perfectly divisible case; always >= ceil bound coverage:
        prop_assert!(iterations_per_thread(pairs, threads) * threads >= pairs);
    }

    #[test]
    fn models_are_monotone_in_problem_size(n1 in 8usize..3000, grow in 2usize..4) {
        let n2 = n1 * grow;
        let s = spec::gtx_680_cuda();
        let cfg = LaunchConfig::new(32, 256);
        let m1 = model_small_sweep(&s, n1, cfg);
        let m2 = model_small_sweep(&s, n2.min(6144), cfg);
        prop_assert!(m2.kernel_seconds >= m1.kernel_seconds);
        prop_assert!(m2.flops >= m1.flops);
        prop_assert_eq!(m1.pairs, pair_count(n1));
    }

    #[test]
    fn tiled_model_covers_all_pairs(n in 10usize..2000, tile in 3usize..500) {
        let s = spec::gtx_680_cuda();
        let m = model_tiled_sweep(&s, n, 64, tile);
        // FLOPs accounted = pairs * 32, i.e. no pair dropped or doubled.
        prop_assert_eq!(m.flops, pair_count(n) * 32);
        let tiles = ((n - 1) as u64).div_ceil(tile as u64);
        prop_assert!(tile_pair_count(tiles) >= 1);
    }
}

/// Deterministic but irregular coordinates for the reversal tests; the
/// values only need to be distinguishable bit patterns.
fn scatter_points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let a = i as f32 * 2.399963;
            Point::new(
                1000.0 * a.sin() + i as f32,
                1000.0 * a.cos() - i as f32 * 0.5,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The on-device segment reversal is bit-equal to the host-side
    /// [`Tour::reverse_segment_wrapping`] for arbitrary `(from, len)`,
    /// including wrap-around and degenerate (0/1-length) segments, under
    /// arbitrary launch geometry — and the result stays a permutation of
    /// the input points.
    #[test]
    fn device_reversal_matches_host_for_any_segment(
        n in 4usize..200,
        from_seed in 0usize..1_000_000,
        len_seed in 0usize..1_000_000,
        grid in 1u32..12,
        block in 1u32..129,
    ) {
        let from = from_seed % n;
        let len = len_seed % (n + 1);
        let pts = scatter_points(n);

        let dev = Device::new(spec::gtx_680_cuda());
        let words: Vec<u64> = pts.iter().map(|p| p.to_device_word()).collect();
        let buf = dev.alloc_atomic(n, 0).unwrap();
        dev.upload_atomic(&buf, &words).unwrap();
        dev.launch(
            LaunchConfig::new(grid, block),
            &SegmentReversalKernel { coords: &buf, from, len },
        )
        .unwrap();
        let got = buf.to_vec();

        // Host reference: permute the positions, then gather.
        let mut order = Tour::identity(n);
        order.reverse_segment_wrapping(from, len);
        let want: Vec<u64> = order
            .as_slice()
            .iter()
            .map(|&c| words[c as usize])
            .collect();
        prop_assert_eq!(&got, &want, "n={} from={} len={}", n, from, len);

        // Permutation invariant: same multiset of packed points.
        let mut a = got;
        let mut b = words;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// In-bounds segments: the wrapping host primitive agrees with the
    /// plain slice reversal that `Tour::apply_two_opt` performs, so the
    /// resident pipeline and the serial driver apply identical moves.
    #[test]
    fn wrapping_reversal_equals_two_opt_application(
        n in 4usize..300,
        i_seed in 0usize..1_000_000,
        j_seed in 0usize..1_000_000,
    ) {
        let i = i_seed % (n - 2);
        let j = i + 1 + j_seed % (n - 2 - i);
        let mut via_move = Tour::identity(n);
        via_move.apply_two_opt(i, j);
        let mut via_wrap = Tour::identity(n);
        via_wrap.reverse_segment_wrapping(i + 1, j - i);
        prop_assert_eq!(via_move.as_slice(), via_wrap.as_slice(), "i={} j={}", i, j);
    }
}
