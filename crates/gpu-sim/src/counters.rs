//! Performance counters accumulated by simulated kernels.
//!
//! Kernels account their own work through [`crate::kernel::ThreadCtx`];
//! the executor aggregates per-block counters and feeds them to the
//! timing model. Counting is explicit (a kernel that forgets to call
//! `ctx.flops(..)` gets a too-optimistic time) — exactly like annotating
//! a real kernel for a roofline analysis.

use std::ops::AddAssign;

/// Work performed by a kernel (or one block of it).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PerfCounters {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes moved through on-chip shared memory (reads + writes).
    pub shared_bytes: u64,
    /// Bytes read from global device memory.
    pub global_read_bytes: u64,
    /// Bytes written to global device memory.
    pub global_write_bytes: u64,
    /// Global atomic operations.
    pub atomic_ops: u64,
}

impl PerfCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total global memory traffic in bytes.
    #[inline]
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Arithmetic intensity: FLOPs per byte of global traffic, the
    /// x-axis of a roofline plot. Returns 0 when the kernel touched no
    /// global memory (all traffic stayed on-chip).
    #[inline]
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.global_bytes();
        if bytes == 0 {
            return 0.0;
        }
        self.flops as f64 / bytes as f64
    }

    /// `true` when nothing was counted (e.g. an empty launch).
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

impl From<PerfCounters> for tsp_trace::KernelCounters {
    fn from(c: PerfCounters) -> Self {
        tsp_trace::KernelCounters {
            flops: c.flops,
            shared_bytes: c.shared_bytes,
            global_read_bytes: c.global_read_bytes,
            global_write_bytes: c.global_write_bytes,
            atomic_ops: c.atomic_ops,
        }
    }
}

impl AddAssign for PerfCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.flops += rhs.flops;
        self.shared_bytes += rhs.shared_bytes;
        self.global_read_bytes += rhs.global_read_bytes;
        self.global_write_bytes += rhs.global_write_bytes;
        self.atomic_ops += rhs.atomic_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = PerfCounters {
            flops: 1,
            shared_bytes: 2,
            global_read_bytes: 3,
            global_write_bytes: 4,
            atomic_ops: 5,
        };
        a += a;
        assert_eq!(
            a,
            PerfCounters {
                flops: 2,
                shared_bytes: 4,
                global_read_bytes: 6,
                global_write_bytes: 8,
                atomic_ops: 10,
            }
        );
        assert_eq!(a.global_bytes(), 14);
    }

    #[test]
    fn arithmetic_intensity_is_flops_per_global_byte() {
        let c = PerfCounters {
            flops: 320,
            shared_bytes: 999,
            global_read_bytes: 24,
            global_write_bytes: 8,
            atomic_ops: 1,
        };
        assert!((c.arithmetic_intensity() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_intensity_is_zero_safe() {
        // No global traffic at all: defined as 0, not a division by zero.
        let c = PerfCounters {
            flops: 1_000_000,
            shared_bytes: 4096,
            ..Default::default()
        };
        assert_eq!(c.arithmetic_intensity(), 0.0);
        assert_eq!(PerfCounters::default().arithmetic_intensity(), 0.0);
    }

    #[test]
    fn converts_to_trace_counters_field_for_field() {
        let c = PerfCounters {
            flops: 1,
            shared_bytes: 2,
            global_read_bytes: 3,
            global_write_bytes: 4,
            atomic_ops: 5,
        };
        let t: tsp_trace::KernelCounters = c.into();
        assert_eq!(
            (
                t.flops,
                t.shared_bytes,
                t.global_read_bytes,
                t.global_write_bytes,
                t.atomic_ops
            ),
            (1, 2, 3, 4, 5)
        );
        assert_eq!(t.arithmetic_intensity(), c.arithmetic_intensity());
    }

    #[test]
    fn zero_detection() {
        assert!(PerfCounters::new().is_zero());
        let c = PerfCounters {
            flops: 1,
            ..Default::default()
        };
        assert!(!c.is_zero());
    }
}
