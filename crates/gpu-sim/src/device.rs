//! The device façade: allocation, transfers and kernel launches.

use crate::counters::PerfCounters;
use crate::error::SimError;
use crate::kernel::{Kernel, LaunchConfig, ThreadCtx};
use crate::memory::{AtomicDeviceBuffer, DeviceBuffer, MemoryPool, DEFAULT_BUFFER_LABEL};
use crate::metrics::DeviceTelemetry;
use crate::profile::{KernelProfile, TransferProfile};
use crate::spec::DeviceSpec;
use crate::stream::EngineClass;
use crate::stream::{self, EventId, QueuedOp, StreamId, StreamReport, StreamTable};
use crate::timeline::Timeline;
use crate::timing;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::Arc;
use tsp_prof::Profiler;
use tsp_telemetry::Telemetry;
use tsp_trace::{Recorder, TraceEvent};

/// A simulated compute device.
///
/// Kernels execute *functionally* (real results, bit-exact and
/// deterministic) while time is *modeled* from the work counters — see
/// [`crate::timing`]. Blocks run in parallel on the host's cores, so the
/// simulator is itself a reasonable parallel program; threads within a
/// block are serialized per phase, which makes phase boundaries behave
/// exactly like `__syncthreads()`.
pub struct Device {
    spec: DeviceSpec,
    index: u32,
    pool: Arc<MemoryPool>,
    timeline: Option<Timeline>,
    recorder: Recorder,
    telemetry: Option<DeviceTelemetry>,
    prof: Profiler,
    streams: Mutex<StreamTable>,
}

impl Device {
    /// Bring up a device with the given spec.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_index(spec, 0)
    }

    /// Bring up a device carrying a pool index, used to label its stream
    /// trace tracks (`DevicePool` numbers its devices this way).
    pub fn with_index(spec: DeviceSpec, index: u32) -> Self {
        let pool = MemoryPool::new(spec.global_mem_bytes);
        Device {
            spec,
            index,
            pool,
            timeline: None,
            recorder: Recorder::disabled(),
            telemetry: None,
            prof: Profiler::detached(),
            streams: Mutex::new(StreamTable::default()),
        }
    }

    /// This device's index within its pool (0 for standalone devices).
    #[inline]
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Attach a profiler [`Timeline`]; subsequent launches and transfers
    /// are recorded on it.
    pub fn attach_timeline(&mut self, timeline: Timeline) {
        self.timeline = Some(timeline);
    }

    /// The attached timeline, if any.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Attach a structured-event [`Recorder`]; subsequent launches and
    /// transfers are recorded on it. Emits one
    /// [`TraceEvent::Device`] describing this device so downstream
    /// consumers (roofline reports, trace viewers) know the roofs.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        recorder.record_with(|| TraceEvent::Device(self.spec.trace_info()));
        self.recorder = recorder;
    }

    /// The attached recorder (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Attach a live-metrics [`Telemetry`] handle; subsequent launches,
    /// transfers and synchronizations update counters/histograms on its
    /// registry (labeled with this device's pool index), and the memory
    /// pool mirrors its live/peak bytes into `tsp_device_mem_*` gauges.
    /// A detached handle detaches the launch instruments: the hot paths
    /// go back to a single `Option` branch.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.registry().map(|r| {
            let t = DeviceTelemetry::register(r, self.index);
            let (live, peak) = t.mem_gauges();
            self.pool.attach_mem_gauges(live, peak);
            t
        });
    }

    /// Attach a span/memory [`Profiler`]; subsequent launches and
    /// transfers record leaf spans on its modeled clock, and every
    /// allocation, release and upload in this device's global-memory
    /// pool is journaled into its memory ledger (keyed by this device's
    /// pool index). A detached handle keeps the hot paths at a single
    /// branch.
    pub fn attach_profiler(&mut self, prof: &Profiler) {
        self.pool.attach_ledger(prof, self.index);
        self.prof = prof.clone();
    }

    /// The attached profiler (detached by default).
    pub fn profiler(&self) -> &Profiler {
        &self.prof
    }

    /// `true` when a telemetry registry is attached.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// The device's specification.
    #[inline]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Bytes currently allocated on the device.
    pub fn allocated_bytes(&self) -> u64 {
        self.pool.allocated()
    }

    /// High-water mark of bytes allocated on the device, tracked
    /// unconditionally over its lifetime.
    pub fn peak_allocated_bytes(&self) -> u64 {
        self.pool.peak_bytes()
    }

    /// Pre-reserve `bytes` as a serving arena on this device. While
    /// installed, every buffer allocation is satisfied inside the arena
    /// with no per-buffer ledger traffic — the seam the slot-pooled
    /// serving layer uses to reach zero steady-state device
    /// allocations. See [`MemoryPool::install_arena`].
    ///
    /// [`MemoryPool::install_arena`]: crate::memory::MemoryPool::install_arena
    pub fn install_arena(&self, bytes: u64) -> Result<(), SimError> {
        self.pool.install_arena(bytes)
    }

    /// Tear the serving arena down (journals the matching free). Call
    /// after every arena buffer has been dropped.
    pub fn uninstall_arena(&self) {
        self.pool.uninstall_arena()
    }

    /// Installed arena bytes (0 when no arena is installed).
    pub fn arena_capacity(&self) -> u64 {
        self.pool.arena_capacity()
    }

    /// Arena bytes currently handed out to live buffers.
    pub fn arena_live(&self) -> u64 {
        self.pool.arena_live()
    }

    /// High-water mark of arena bytes handed out.
    pub fn arena_peak_bytes(&self) -> u64 {
        self.pool.arena_peak_bytes()
    }

    /// Allocate a device buffer holding `data` (no transfer modeled; use
    /// [`Device::copy_to_device`] when the H2D cost matters).
    pub fn alloc<T: Copy>(&self, data: Vec<T>) -> Result<DeviceBuffer<T>, SimError> {
        self.alloc_labeled(data, DEFAULT_BUFFER_LABEL)
    }

    /// [`Device::alloc`] journaled in the memory ledger under `label`.
    pub fn alloc_labeled<T: Copy>(
        &self,
        data: Vec<T>,
        label: &'static str,
    ) -> Result<DeviceBuffer<T>, SimError> {
        DeviceBuffer::new_labeled(data, self.pool.clone(), label)
    }

    /// Allocate an atomic buffer of `len` 64-bit words, each initialised
    /// to `init`.
    pub fn alloc_atomic(&self, len: usize, init: u64) -> Result<AtomicDeviceBuffer, SimError> {
        self.alloc_atomic_labeled(len, init, DEFAULT_BUFFER_LABEL)
    }

    /// [`Device::alloc_atomic`] journaled in the memory ledger under
    /// `label`.
    pub fn alloc_atomic_labeled(
        &self,
        len: usize,
        init: u64,
        label: &'static str,
    ) -> Result<AtomicDeviceBuffer, SimError> {
        AtomicDeviceBuffer::new(len, init, self.pool.clone(), label)
    }

    /// Copy host data to a fresh device buffer, modeling the PCIe cost —
    /// step 1 of the paper's Algorithm 2 ("Copy the tour and the
    /// coordinates to the GPU global memory").
    pub fn copy_to_device<T: Copy>(
        &self,
        data: &[T],
    ) -> Result<(DeviceBuffer<T>, TransferProfile), SimError> {
        self.copy_to_device_labeled(data, DEFAULT_BUFFER_LABEL)
    }

    /// [`Device::copy_to_device`] journaled in the memory ledger under
    /// `label`.
    pub fn copy_to_device_labeled<T: Copy>(
        &self,
        data: &[T],
        label: &'static str,
    ) -> Result<(DeviceBuffer<T>, TransferProfile), SimError> {
        let buf = self.alloc_labeled(data.to_vec(), label)?;
        let bytes = buf.bytes();
        let seconds = timing::h2d_time(&self.spec, bytes);
        if let Some(t) = &self.timeline {
            t.record_h2d(bytes, seconds);
        }
        self.recorder.record(TraceEvent::H2d { bytes, seconds });
        if let Some(t) = &self.telemetry {
            t.h2d(bytes, seconds);
        }
        self.pool.note_upload(bytes, label);
        self.prof.leaf("h2d", seconds);
        Ok((buf, TransferProfile { seconds, bytes }))
    }

    /// Model a host→device copy of an existing allocation's refresh.
    pub fn h2d_profile(&self, bytes: u64) -> TransferProfile {
        TransferProfile {
            seconds: timing::h2d_time(&self.spec, bytes),
            bytes,
        }
    }

    /// Refresh an existing atomic allocation from the host, modeling the
    /// PCIe cost — the upload path of a device-resident pipeline, where
    /// the coordinate buffer is allocated once and only *re-filled* when
    /// the host's copy of the data diverges from the device's.
    pub fn upload_atomic(
        &self,
        buf: &AtomicDeviceBuffer,
        words: &[u64],
    ) -> Result<TransferProfile, SimError> {
        buf.overwrite(words)?;
        let bytes = buf.bytes();
        let seconds = timing::h2d_time(&self.spec, bytes);
        if let Some(t) = &self.timeline {
            t.record_h2d(bytes, seconds);
        }
        self.recorder.record(TraceEvent::H2d { bytes, seconds });
        if let Some(t) = &self.telemetry {
            t.h2d(bytes, seconds);
        }
        self.pool.note_upload(bytes, buf.label());
        self.prof.leaf("h2d", seconds);
        Ok(TransferProfile { seconds, bytes })
    }

    /// Read an atomic buffer back to the host, modeling the D2H cost —
    /// step 6 of the paper's Algorithm 2 ("Read the result").
    pub fn copy_from_device(&self, buf: &AtomicDeviceBuffer) -> (Vec<u64>, TransferProfile) {
        let words = buf.to_vec();
        let bytes = buf.bytes();
        let seconds = timing::d2h_time(&self.spec, bytes);
        if let Some(t) = &self.timeline {
            t.record_d2h(bytes, seconds);
        }
        self.recorder.record(TraceEvent::D2h { bytes, seconds });
        if let Some(t) = &self.telemetry {
            t.d2h(bytes, seconds);
        }
        self.prof.leaf("d2h", seconds);
        (words, TransferProfile { seconds, bytes })
    }

    /// Model a device→host copy of `bytes`.
    pub fn d2h_profile(&self, bytes: u64) -> TransferProfile {
        TransferProfile {
            seconds: timing::d2h_time(&self.spec, bytes),
            bytes,
        }
    }

    /// Launch a kernel, executing every block functionally and returning
    /// the modeled profile.
    ///
    /// # Errors
    /// * [`SimError::SharedMemExceeded`] — the kernel's declared shared
    ///   footprint exceeds the per-block limit (this is the error that
    ///   forces the §IV.B division scheme for big instances);
    /// * [`SimError::InvalidLaunch`] — zero-sized grid/block or a block
    ///   larger than the hardware limit.
    pub fn launch<K: Kernel>(
        &self,
        cfg: LaunchConfig,
        kernel: &K,
    ) -> Result<KernelProfile, SimError> {
        self.launch_inner(cfg, kernel, None, None)
    }

    /// [`Device::launch`] with a per-launch profiler label, overriding
    /// [`Kernel::label`] for this launch only — the replacement for the
    /// deprecated sticky `Timeline::set_label`.
    pub fn launch_labeled<K: Kernel>(
        &self,
        cfg: LaunchConfig,
        kernel: &K,
        label: &str,
    ) -> Result<KernelProfile, SimError> {
        self.launch_inner(cfg, kernel, Some(label), None)
    }

    // ---- Streams -------------------------------------------------------

    /// Create a new stream on this device. Streams live for the device's
    /// lifetime; ops submitted with the `_on` methods queue on them and
    /// are laid onto the device's engines by [`Device::synchronize`].
    pub fn create_stream(&self) -> StreamId {
        let mut table = self.streams.lock();
        table.queues.push(Vec::new());
        StreamId(table.queues.len() - 1)
    }

    /// Streams created on this device so far.
    pub fn stream_count(&self) -> usize {
        self.streams.lock().queues.len()
    }

    fn check_stream(table: &StreamTable, stream: StreamId) -> Result<(), SimError> {
        if stream.0 >= table.queues.len() {
            return Err(SimError::InvalidStream {
                index: stream.0,
                count: table.queues.len(),
            });
        }
        Ok(())
    }

    fn enqueue(&self, stream: StreamId, op: QueuedOp) -> Result<(), SimError> {
        let mut table = self.streams.lock();
        Self::check_stream(&table, stream)?;
        table.queues[stream.0].push(op);
        Ok(())
    }

    /// [`Device::launch`] on a stream: the kernel executes functionally
    /// right now (results are schedule-independent), but its modeled time
    /// queues on `stream` and is only placed on the device timeline by
    /// [`Device::synchronize`]. The returned profile carries the op's
    /// *duration*; its position in time is the scheduler's business.
    pub fn launch_on<K: Kernel>(
        &self,
        stream: StreamId,
        cfg: LaunchConfig,
        kernel: &K,
    ) -> Result<KernelProfile, SimError> {
        self.launch_inner(cfg, kernel, None, Some(stream))
    }

    /// [`Device::launch_on`] with a per-launch label.
    pub fn launch_labeled_on<K: Kernel>(
        &self,
        stream: StreamId,
        cfg: LaunchConfig,
        kernel: &K,
        label: &str,
    ) -> Result<KernelProfile, SimError> {
        self.launch_inner(cfg, kernel, Some(label), Some(stream))
    }

    /// [`Device::copy_to_device`] on a stream.
    pub fn copy_to_device_on<T: Copy>(
        &self,
        stream: StreamId,
        data: &[T],
    ) -> Result<(DeviceBuffer<T>, TransferProfile), SimError> {
        self.copy_to_device_on_labeled(stream, data, DEFAULT_BUFFER_LABEL)
    }

    /// [`Device::copy_to_device_on`] journaled in the memory ledger
    /// under `label`.
    pub fn copy_to_device_on_labeled<T: Copy>(
        &self,
        stream: StreamId,
        data: &[T],
        label: &'static str,
    ) -> Result<(DeviceBuffer<T>, TransferProfile), SimError> {
        let buf = self.alloc_labeled(data.to_vec(), label)?;
        let bytes = buf.bytes();
        let seconds = timing::h2d_time(&self.spec, bytes);
        self.enqueue(
            stream,
            QueuedOp::Exec {
                engine: EngineClass::CopyH2d,
                label: "H2D".into(),
                seconds,
                bytes,
            },
        )?;
        if let Some(t) = &self.telemetry {
            t.h2d(bytes, seconds);
        }
        self.pool.note_upload(bytes, label);
        self.prof.leaf("h2d", seconds);
        Ok((buf, TransferProfile { seconds, bytes }))
    }

    /// [`Device::upload_atomic`] on a stream.
    pub fn upload_atomic_on(
        &self,
        stream: StreamId,
        buf: &AtomicDeviceBuffer,
        words: &[u64],
    ) -> Result<TransferProfile, SimError> {
        buf.overwrite(words)?;
        let bytes = buf.bytes();
        let seconds = timing::h2d_time(&self.spec, bytes);
        self.enqueue(
            stream,
            QueuedOp::Exec {
                engine: EngineClass::CopyH2d,
                label: "H2D".into(),
                seconds,
                bytes,
            },
        )?;
        if let Some(t) = &self.telemetry {
            t.h2d(bytes, seconds);
        }
        self.pool.note_upload(bytes, buf.label());
        self.prof.leaf("h2d", seconds);
        Ok(TransferProfile { seconds, bytes })
    }

    /// [`Device::copy_from_device`] on a stream. Unlike the serial
    /// variant this is fallible: the stream handle is validated.
    pub fn copy_from_device_on(
        &self,
        stream: StreamId,
        buf: &AtomicDeviceBuffer,
    ) -> Result<(Vec<u64>, TransferProfile), SimError> {
        let words = buf.to_vec();
        let bytes = buf.bytes();
        let seconds = timing::d2h_time(&self.spec, bytes);
        self.enqueue(
            stream,
            QueuedOp::Exec {
                engine: EngineClass::CopyD2h,
                label: "D2H".into(),
                seconds,
                bytes,
            },
        )?;
        if let Some(t) = &self.telemetry {
            t.d2h(bytes, seconds);
        }
        self.prof.leaf("d2h", seconds);
        Ok((words, TransferProfile { seconds, bytes }))
    }

    /// Record an event at the current tail of `stream`. The event fires
    /// (for [`Device::wait_event`] purposes) when all work submitted to
    /// the stream before this call has finished.
    pub fn record_event(&self, stream: StreamId) -> Result<EventId, SimError> {
        let mut table = self.streams.lock();
        Self::check_stream(&table, stream)?;
        let id = table.n_events;
        table.n_events += 1;
        table.queues[stream.0].push(QueuedOp::Record(id));
        Ok(EventId(id))
    }

    /// Make `stream` wait for `event` before running anything submitted
    /// after this call. Events are scoped to one `synchronize` epoch: a
    /// handle from before the last synchronize is rejected.
    pub fn wait_event(&self, stream: StreamId, event: EventId) -> Result<(), SimError> {
        let mut table = self.streams.lock();
        Self::check_stream(&table, stream)?;
        if event.0 >= table.n_events {
            return Err(SimError::InvalidStream {
                index: event.0,
                count: table.n_events,
            });
        }
        table.queues[stream.0].push(QueuedOp::Wait(event.0));
        Ok(())
    }

    /// Drain every stream: run the deterministic overlap scheduler over
    /// all queued ops, emit [`TraceEvent::StreamOp`]/
    /// [`TraceEvent::StreamSync`] on the attached recorder, and return
    /// the resolved schedule. Streams survive (and keep their ids);
    /// queued ops and events are consumed.
    pub fn synchronize(&self) -> StreamReport {
        let taken = {
            let mut table = self.streams.lock();
            let n = table.queues.len();
            let taken = std::mem::take(&mut *table);
            table.queues = vec![Vec::new(); n];
            taken
        };
        let report = stream::schedule(self.index, &self.spec, taken);
        if self.recorder.is_enabled() && !report.ops.is_empty() {
            for e in report.trace_events() {
                self.recorder.record(e);
            }
        }
        if let Some(t) = &self.telemetry {
            if !report.ops.is_empty() {
                t.sync(&report);
            }
        }
        report
    }

    fn launch_inner<K: Kernel>(
        &self,
        cfg: LaunchConfig,
        kernel: &K,
        label: Option<&str>,
        stream: Option<StreamId>,
    ) -> Result<KernelProfile, SimError> {
        if let Some(s) = stream {
            Self::check_stream(&self.streams.lock(), s)?;
        }
        if cfg.grid_dim == 0 || cfg.block_dim == 0 {
            return Err(SimError::InvalidLaunch(format!(
                "grid {} x block {} must both be nonzero",
                cfg.grid_dim, cfg.block_dim
            )));
        }
        if cfg.block_dim > self.spec.max_threads_per_block {
            return Err(SimError::InvalidLaunch(format!(
                "block dim {} exceeds device limit {}",
                cfg.block_dim, self.spec.max_threads_per_block
            )));
        }
        let requested = kernel.shared_bytes();
        if requested > self.spec.shared_mem_per_block {
            return Err(SimError::SharedMemExceeded {
                requested,
                limit: self.spec.shared_mem_per_block,
            });
        }

        let phases = kernel.num_phases();
        let per_block: Vec<PerfCounters> = (0..cfg.grid_dim)
            .into_par_iter()
            .map(|block_idx| {
                let mut shared = kernel.make_shared();
                let mut counters = PerfCounters::new();
                for phase in 0..phases {
                    for thread_idx in 0..cfg.block_dim {
                        let mut ctx = ThreadCtx {
                            thread_idx,
                            block_idx,
                            block_dim: cfg.block_dim,
                            grid_dim: cfg.grid_dim,
                            counters: &mut counters,
                        };
                        kernel.run(phase, &mut ctx, &mut shared);
                    }
                }
                counters
            })
            .collect();

        let block_times: Vec<f64> = per_block
            .iter()
            .map(|c| timing::block_time(&self.spec, c, phases as u32))
            .collect();
        let mut total = PerfCounters::new();
        for c in &per_block {
            total += *c;
        }
        let seconds = timing::kernel_time(&self.spec, &block_times);
        if let Some(t) = &self.telemetry {
            t.kernel(seconds);
        }
        if self.prof.is_enabled() {
            let resolved = label.unwrap_or_else(|| kernel.label());
            self.prof.leaf(&format!("kernel:{resolved}"), seconds);
        }
        if let Some(s) = stream {
            // Streamed launches defer their timing to the scheduler; the
            // legacy serialized timeline/recorder records don't apply.
            let resolved = label.unwrap_or_else(|| kernel.label()).to_string();
            self.enqueue(
                s,
                QueuedOp::Exec {
                    engine: EngineClass::Compute,
                    label: resolved,
                    seconds,
                    bytes: 0,
                },
            )?;
        } else if self.timeline.is_some() || self.recorder.is_enabled() {
            let resolved = label.unwrap_or_else(|| kernel.label()).to_string();
            if let Some(t) = &self.timeline {
                t.record_kernel(seconds, total, &resolved);
            }
            self.recorder.record_with(|| TraceEvent::Kernel {
                label: resolved.clone(),
                seconds,
                grid_dim: cfg.grid_dim,
                block_dim: cfg.block_dim,
                counters: total.into(),
            });
        }
        Ok(KernelProfile {
            seconds,
            counters: total,
            config: cfg,
        })
    }
}

impl Drop for Device {
    /// A device dropped while buffers are still live is a leak: those
    /// buffers hold their own `Arc<MemoryPool>` so the accounting stays
    /// sound, but nothing can ever free the device's view of that
    /// memory. Journal it so `tsp-inspect mem` can flag it.
    fn drop(&mut self) {
        let live = self.pool.allocated();
        if live > 0 {
            self.pool.note_leak(live);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::gtx_680_cuda;

    /// A toy kernel: phase 0 stages `data` into shared memory
    /// cooperatively; phase 1 sums squares of the staged values into a
    /// global atomic (one add per thread-strided element).
    struct SumSquares<'a> {
        data: &'a DeviceBuffer<u32>,
        out: &'a AtomicDeviceBuffer,
    }

    impl Kernel for SumSquares<'_> {
        type Shared = Vec<u32>;

        fn shared_bytes(&self) -> usize {
            self.data.len() * 4
        }

        fn make_shared(&self) -> Vec<u32> {
            vec![0; self.data.len()]
        }

        fn num_phases(&self) -> usize {
            2
        }

        fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, shared: &mut Vec<u32>) {
            let n = self.data.len() as u64;
            let stride = ctx.total_threads();
            match phase {
                0 => {
                    let mut k = ctx.global_thread_id();
                    while k < n {
                        shared[k as usize] = self.data.as_slice()[k as usize];
                        ctx.global_read(4);
                        ctx.shared_bytes(4);
                        k += stride;
                    }
                }
                1 => {
                    let mut local = 0u64;
                    let mut k = ctx.global_thread_id();
                    let mut evals = 0u64;
                    while k < n {
                        let v = shared[k as usize] as u64;
                        local += v * v;
                        evals += 1;
                        k += stride;
                    }
                    ctx.shared_bytes(evals * 4);
                    ctx.flops(evals * 2);
                    if local > 0 {
                        self.out.fetch_add(0, local);
                        ctx.atomics(1);
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn functional_result_is_exact() {
        let dev = Device::new(gtx_680_cuda());
        let data: Vec<u32> = (1..=100).collect();
        let (buf, _) = dev.copy_to_device(&data).unwrap();
        let out = dev.alloc_atomic(1, 0).unwrap();
        let kernel = SumSquares {
            data: &buf,
            out: &out,
        };
        let profile = dev.launch(LaunchConfig::new(4, 32), &kernel).unwrap();
        let expected: u64 = (1..=100u64).map(|v| v * v).sum();
        assert_eq!(out.load(0), expected);
        assert!(profile.seconds > 0.0);
        assert_eq!(profile.counters.flops, 200);
        assert_eq!(profile.counters.global_read_bytes, 400);
    }

    #[test]
    fn result_is_independent_of_launch_geometry() {
        let dev = Device::new(gtx_680_cuda());
        let data: Vec<u32> = (1..=1000).collect();
        let (buf, _) = dev.copy_to_device(&data).unwrap();
        let expected: u64 = (1..=1000u64).map(|v| v * v).sum();
        for (g, b) in [(1, 1), (1, 128), (7, 33), (16, 1024)] {
            let out = dev.alloc_atomic(1, 0).unwrap();
            let kernel = SumSquares {
                data: &buf,
                out: &out,
            };
            dev.launch(LaunchConfig::new(g, b), &kernel).unwrap();
            assert_eq!(out.load(0), expected, "geometry {g}x{b}");
        }
    }

    #[test]
    fn shared_mem_limit_is_enforced() {
        let dev = Device::new(gtx_680_cuda());
        let data = vec![0u32; 20_000]; // 80 kB > 48 kB shared
        let (buf, _) = dev.copy_to_device(&data).unwrap();
        let out = dev.alloc_atomic(1, 0).unwrap();
        let kernel = SumSquares {
            data: &buf,
            out: &out,
        };
        let err = dev.launch(LaunchConfig::new(1, 32), &kernel).unwrap_err();
        assert!(matches!(err, SimError::SharedMemExceeded { .. }));
    }

    #[test]
    fn invalid_launches_are_rejected() {
        let dev = Device::new(gtx_680_cuda());
        let data = vec![1u32; 8];
        let (buf, _) = dev.copy_to_device(&data).unwrap();
        let out = dev.alloc_atomic(1, 0).unwrap();
        let kernel = SumSquares {
            data: &buf,
            out: &out,
        };
        assert!(dev.launch(LaunchConfig::new(0, 32), &kernel).is_err());
        assert!(dev.launch(LaunchConfig::new(1, 0), &kernel).is_err());
        assert!(dev.launch(LaunchConfig::new(1, 4096), &kernel).is_err());
    }

    #[test]
    fn upload_atomic_refreshes_in_place_and_prices_the_copy() {
        let dev = Device::new(gtx_680_cuda());
        let buf = dev.alloc_atomic(4, 0).unwrap();
        let before = dev.allocated_bytes();
        let prof = dev.upload_atomic(&buf, &[1, 2, 3, 4]).unwrap();
        assert_eq!(buf.to_vec(), vec![1, 2, 3, 4]);
        // No new allocation: the refresh reuses the resident buffer.
        assert_eq!(dev.allocated_bytes(), before);
        assert_eq!(prof.bytes, 32);
        // Costs exactly what a fresh H2D copy of the same bytes costs.
        assert_eq!(prof.seconds, dev.h2d_profile(32).seconds);
        // Length mismatches are rejected without touching the buffer.
        assert!(dev.upload_atomic(&buf, &[9]).is_err());
        assert_eq!(buf.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn recorder_captures_device_transfers_and_kernels() {
        let mut dev = Device::new(gtx_680_cuda());
        let rec = Recorder::enabled();
        dev.attach_recorder(rec.clone());
        let data: Vec<u32> = (1..=64).collect();
        let (buf, h2d) = dev.copy_to_device(&data).unwrap();
        let out = dev.alloc_atomic(1, 0).unwrap();
        let kernel = SumSquares {
            data: &buf,
            out: &out,
        };
        let profile = dev.launch(LaunchConfig::new(2, 32), &kernel).unwrap();
        let (_, d2h) = dev.copy_from_device(&out);

        let events = rec.events();
        assert!(matches!(events[0], TraceEvent::Device(_)));
        assert!(matches!(events[1], TraceEvent::H2d { bytes, seconds }
                if bytes == 256 && seconds == h2d.seconds));
        match &events[2] {
            TraceEvent::Kernel {
                label,
                seconds,
                grid_dim,
                block_dim,
                counters,
            } => {
                assert_eq!(label, "kernel"); // SumSquares keeps the default
                assert_eq!(*seconds, profile.seconds);
                assert_eq!((*grid_dim, *block_dim), (2, 32));
                assert_eq!(counters.flops, profile.counters.flops);
                assert_eq!(
                    counters.global_read_bytes,
                    profile.counters.global_read_bytes
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(events[3], TraceEvent::D2h { bytes, seconds }
                if bytes == 8 && seconds == d2h.seconds));
    }

    #[test]
    fn launch_labeled_overrides_kernel_label() {
        let mut dev = Device::new(gtx_680_cuda());
        let rec = Recorder::enabled();
        dev.attach_recorder(rec.clone());
        let timeline = Timeline::new();
        dev.attach_timeline(timeline.clone());
        let data = vec![1u32; 8];
        let (buf, _) = dev.copy_to_device(&data).unwrap();
        let out = dev.alloc_atomic(1, 0).unwrap();
        let kernel = SumSquares {
            data: &buf,
            out: &out,
        };
        dev.launch_labeled(LaunchConfig::new(1, 8), &kernel, "custom-pass")
            .unwrap();
        // Both sinks see the same resolved label.
        assert!(rec.events().iter().any(|e| matches!(
            e,
            TraceEvent::Kernel { label, .. } if label == "custom-pass"
        )));
        assert!(timeline.events().iter().any(|e| matches!(
            e,
            crate::timeline::Event::Kernel { label, .. } if label == "custom-pass"
        )));
    }

    #[test]
    fn streamed_ops_defer_timing_to_synchronize() {
        let mut dev = Device::new(gtx_680_cuda());
        let rec = Recorder::enabled();
        dev.attach_recorder(rec.clone());
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        assert_eq!((s0.index(), s1.index()), (0, 1));

        let data: Vec<u32> = (1..=64).collect();
        let (b0, h2d) = dev.copy_to_device_on(s0, &data).unwrap();
        let (b1, _) = dev.copy_to_device_on(s1, &data).unwrap();
        let o0 = dev.alloc_atomic(1, 0).unwrap();
        let o1 = dev.alloc_atomic(1, 0).unwrap();
        let k0 = SumSquares {
            data: &b0,
            out: &o0,
        };
        let k1 = SumSquares {
            data: &b1,
            out: &o1,
        };
        let p0 = dev.launch_on(s0, LaunchConfig::new(2, 32), &k0).unwrap();
        dev.launch_labeled_on(s1, LaunchConfig::new(2, 32), &k1, "shard-1")
            .unwrap();

        // Functional results are available immediately, before sync.
        let expected: u64 = (1..=64u64).map(|v| v * v).sum();
        assert_eq!(o0.load(0), expected);
        assert_eq!(o1.load(0), expected);
        // No legacy Kernel/H2d events were recorded for streamed ops.
        assert!(!rec
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Kernel { .. } | TraceEvent::H2d { .. })));

        let report = dev.synchronize();
        assert_eq!(report.streams, 2);
        assert_eq!(report.ops.len(), 4);
        let expected_busy = 2.0 * h2d.seconds + 2.0 * p0.seconds;
        assert!((report.busy_seconds - expected_busy).abs() < 1e-15);
        // The two streams overlap: copies serialize on the H2D engine but
        // hide behind the other stream's compute.
        assert!(report.wall_seconds < report.busy_seconds);
        assert!(report.overlap() > 0.0);
        // The per-launch label survives into the schedule.
        assert!(report.ops.iter().any(|o| o.label == "shard-1"));
        // Synchronize emitted the stream events on the recorder.
        let events = rec.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, TraceEvent::StreamOp { .. }))
                .count(),
            4
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::StreamSync { streams: 2, .. })));
        // Queues drained; a second sync is a no-op.
        let empty = dev.synchronize();
        assert_eq!(empty.ops.len(), 0);
    }

    #[test]
    fn stream_schedule_matches_events_and_rejects_foreign_handles() {
        let dev = Device::new(gtx_680_cuda());
        let s0 = dev.create_stream();
        let s1 = dev.create_stream();
        let data = vec![1u32; 8];
        let (buf, _) = dev.copy_to_device_on(s0, &data).unwrap();
        let out = dev.alloc_atomic(1, 0).unwrap();
        let kernel = SumSquares {
            data: &buf,
            out: &out,
        };
        let ev = dev.record_event(s0).unwrap();
        dev.wait_event(s1, ev).unwrap();
        dev.launch_on(s1, LaunchConfig::new(1, 8), &kernel).unwrap();
        let report = dev.synchronize();
        // s1's kernel cannot start before s0's copy (the event) finishes.
        let copy_end = report.ops[0].start_seconds + report.ops[0].seconds;
        let kernel_op = report
            .ops
            .iter()
            .find(|o| o.label == "kernel")
            .expect("kernel scheduled");
        assert!(kernel_op.start_seconds >= copy_end);

        // Foreign/invalid handles are rejected, not silently accepted.
        let bogus = StreamId(7);
        assert!(matches!(
            dev.launch_on(bogus, LaunchConfig::new(1, 8), &kernel),
            Err(SimError::InvalidStream { index: 7, count: 2 })
        ));
        assert!(dev.copy_to_device_on(bogus, &data).is_err());
        assert!(dev.record_event(bogus).is_err());
        // Events are scoped to a synchronize epoch.
        assert!(dev.wait_event(s1, ev).is_err());
    }

    #[test]
    fn telemetry_counts_launches_and_transfers_exactly() {
        let mut dev = Device::new(gtx_680_cuda());
        let telemetry = Telemetry::attached();
        dev.attach_telemetry(&telemetry);
        assert!(dev.telemetry_enabled());
        let data: Vec<u32> = (1..=64).collect();
        let (buf, h2d) = dev.copy_to_device(&data).unwrap();
        let out = dev.alloc_atomic(1, 0).unwrap();
        let kernel = SumSquares {
            data: &buf,
            out: &out,
        };
        let profile = dev.launch(LaunchConfig::new(2, 32), &kernel).unwrap();
        let (_, d2h) = dev.copy_from_device(&out);

        let reg = telemetry.registry().unwrap();
        let dev0: [(&str, &str); 1] = [("device", "0")];
        assert_eq!(
            reg.counter_value_with("tsp_gpu_kernel_launches_total", &dev0),
            Some(1.0)
        );
        // Histogram sum carries the exact modeled seconds.
        assert_eq!(
            reg.histogram_totals_with("tsp_gpu_kernel_seconds", &dev0),
            Some((profile.seconds, 1))
        );
        assert_eq!(
            reg.counter_value_with("tsp_gpu_h2d_bytes_total", &dev0),
            Some(256.0)
        );
        assert_eq!(
            reg.histogram_totals_with("tsp_gpu_h2d_seconds", &dev0),
            Some((h2d.seconds, 1))
        );
        assert_eq!(
            reg.histogram_totals_with("tsp_gpu_d2h_seconds", &dev0),
            Some((d2h.seconds, 1))
        );
    }

    #[test]
    fn telemetry_counts_streamed_work_and_sync_occupancy() {
        let mut dev = Device::new(gtx_680_cuda());
        let telemetry = Telemetry::attached();
        dev.attach_telemetry(&telemetry);
        let s0 = dev.create_stream();
        let data: Vec<u32> = (1..=64).collect();
        let (buf, _) = dev.copy_to_device_on(s0, &data).unwrap();
        let out = dev.alloc_atomic(1, 0).unwrap();
        let kernel = SumSquares {
            data: &buf,
            out: &out,
        };
        dev.launch_on(s0, LaunchConfig::new(2, 32), &kernel)
            .unwrap();
        let report = dev.synchronize();

        let reg = telemetry.registry().unwrap();
        let dev0: [(&str, &str); 1] = [("device", "0")];
        // Streamed launches and copies still count at submit time…
        assert_eq!(
            reg.counter_value_with("tsp_gpu_kernel_launches_total", &dev0),
            Some(1.0)
        );
        assert_eq!(
            reg.counter_value_with("tsp_gpu_h2d_transfers_total", &dev0),
            Some(1.0)
        );
        // …and the synchronize reports schedule-level occupancy.
        assert_eq!(
            reg.counter_value_with("tsp_gpu_stream_ops_total", &dev0),
            Some(2.0)
        );
        assert_eq!(
            reg.counter_value_with("tsp_gpu_stream_busy_seconds_total", &dev0),
            Some(report.busy_seconds)
        );
        assert_eq!(
            reg.counter_value_with("tsp_gpu_stream_wall_seconds_total", &dev0),
            Some(report.wall_seconds)
        );
        assert_eq!(
            reg.gauge_value_with("tsp_gpu_stream_overlap", &dev0),
            Some(report.overlap())
        );
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let dev = Device::new(gtx_680_cuda());
        assert!(!dev.recorder().is_enabled());
        let data = vec![1u32; 8];
        let (buf, _) = dev.copy_to_device(&data).unwrap();
        let out = dev.alloc_atomic(1, 0).unwrap();
        let kernel = SumSquares {
            data: &buf,
            out: &out,
        };
        dev.launch(LaunchConfig::new(1, 8), &kernel).unwrap();
        assert!(dev.recorder().is_empty());
    }

    #[test]
    fn allocation_accounting_via_device() {
        let dev = Device::new(gtx_680_cuda());
        assert_eq!(dev.allocated_bytes(), 0);
        let buf = dev.alloc(vec![0u64; 100]).unwrap();
        assert_eq!(dev.allocated_bytes(), 800);
        drop(buf);
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    fn bigger_work_costs_more_modeled_time() {
        let dev = Device::new(gtx_680_cuda());
        let small: Vec<u32> = (0..512).collect();
        let large: Vec<u32> = (0..4096).collect();
        let (bs, _) = dev.copy_to_device(&small).unwrap();
        let (bl, _) = dev.copy_to_device(&large).unwrap();
        let os = dev.alloc_atomic(1, 0).unwrap();
        let ol = dev.alloc_atomic(1, 0).unwrap();
        let ps = dev
            .launch(
                LaunchConfig::new(8, 64),
                &SumSquares {
                    data: &bs,
                    out: &os,
                },
            )
            .unwrap();
        let pl = dev
            .launch(
                LaunchConfig::new(8, 64),
                &SumSquares {
                    data: &bl,
                    out: &ol,
                },
            )
            .unwrap();
        assert!(pl.seconds > ps.seconds);
    }
}
