//! Simulator error type.

use std::fmt;

/// Errors raised by the device simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel requested more shared memory than the device provides per
    /// block — the hard limit that motivates the paper's §IV.B division
    /// scheme.
    SharedMemExceeded {
        /// Bytes the kernel asked for.
        requested: usize,
        /// Per-block limit of the device.
        limit: usize,
    },
    /// The launch configuration exceeds a hardware limit.
    InvalidLaunch(String),
    /// A device allocation would exceed global memory capacity.
    OutOfMemory {
        /// Bytes requested by the allocation.
        requested: u64,
        /// Bytes still free on the device.
        available: u64,
    },
    /// A copy involved mismatched buffer sizes.
    SizeMismatch {
        /// Elements in the destination.
        dst: usize,
        /// Elements in the source.
        src: usize,
    },
    /// A `StreamId` (or an `EventId`) was used on a device that never
    /// created it — stream handles are only valid on the minting device.
    InvalidStream {
        /// The offending stream or event index.
        index: usize,
        /// How many the device has.
        count: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SharedMemExceeded { requested, limit } => write!(
                f,
                "kernel requests {requested} B of shared memory but the device provides {limit} B per block"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch configuration: {msg}"),
            SimError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device allocation of {requested} B exceeds remaining capacity of {available} B"
            ),
            SimError::SizeMismatch { dst, src } => {
                write!(f, "copy size mismatch: destination {dst} elements, source {src}")
            }
            SimError::InvalidStream { index, count } => write!(
                f,
                "stream/event index {index} is not valid on this device ({count} exist)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        let e = SimError::SharedMemExceeded {
            requested: 64 * 1024,
            limit: 48 * 1024,
        };
        let s = e.to_string();
        assert!(s.contains("65536") && s.contains("49152"));
    }
}
