//! The kernel programming model: phase-structured SIMT programs.
//!
//! A simulated kernel implements [`Kernel`]. Execution of one block runs
//! every thread through phase 0, then every thread through phase 1, and
//! so on — a phase boundary is exactly a `__syncthreads()` barrier. The
//! 2-opt kernels use this shape directly (the paper's Algorithm 2):
//!
//! * **phase 0** — cooperative load: each thread stages a strided slice of
//!   the coordinate array into shared memory;
//! * *(barrier)*
//! * **phase 1** — evaluation: each thread sweeps its strided subset of
//!   candidate pairs, keeping a thread-local best, then publishes it with
//!   a global atomic min.
//!
//! Within a phase, threads of one block run sequentially on the host, so
//! mutable access to the block's shared memory is safe; *blocks* run in
//! parallel on the host's cores (rayon), so anything global must be
//! atomic — which the memory model enforces by construction.

use crate::counters::PerfCounters;

/// Launch geometry (1-D grids and blocks; the paper's kernels are 1-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks in the grid.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
}

impl LaunchConfig {
    /// Convenience constructor.
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
        }
    }

    /// Total threads in the launch.
    #[inline]
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }
}

/// Per-thread execution context handed to kernel phases.
///
/// Carries the SIMT coordinates plus the counter sink. Kernels account
/// their own work — `flops`, `shared_*`, `global_*` — the way one would
/// annotate a kernel for a roofline model; the executor turns the counts
/// into modeled time.
pub struct ThreadCtx<'a> {
    /// Thread index within the block (`threadIdx.x`).
    pub thread_idx: u32,
    /// Block index within the grid (`blockIdx.x`).
    pub block_idx: u32,
    /// Threads per block (`blockDim.x`).
    pub block_dim: u32,
    /// Blocks in the grid (`gridDim.x`).
    pub grid_dim: u32,
    pub(crate) counters: &'a mut PerfCounters,
}

impl ThreadCtx<'_> {
    /// The flattened global thread id (`blockIdx.x * blockDim.x +
    /// threadIdx.x`).
    #[inline]
    pub fn global_thread_id(&self) -> u64 {
        self.block_idx as u64 * self.block_dim as u64 + self.thread_idx as u64
    }

    /// Total threads in the launch — the paper's striding distance
    /// (`blocks × threads`).
    #[inline]
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }

    /// Account `n` floating-point operations.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.counters.flops += n;
    }

    /// Account `bytes` of shared-memory traffic.
    #[inline]
    pub fn shared_bytes(&mut self, bytes: u64) {
        self.counters.shared_bytes += bytes;
    }

    /// Account `bytes` read from global memory.
    #[inline]
    pub fn global_read(&mut self, bytes: u64) {
        self.counters.global_read_bytes += bytes;
    }

    /// Account `bytes` written to global memory.
    #[inline]
    pub fn global_write(&mut self, bytes: u64) {
        self.counters.global_write_bytes += bytes;
    }

    /// Account `n` global atomic operations.
    #[inline]
    pub fn atomics(&mut self, n: u64) {
        self.counters.atomic_ops += n;
    }
}

/// A phase-structured SIMT kernel.
pub trait Kernel: Sync {
    /// Per-block shared memory. Allocated once per block; phases may
    /// mutate it; a phase boundary acts as `__syncthreads()`.
    type Shared: Send;

    /// Bytes of shared memory this kernel needs per block. Checked
    /// against [`crate::spec::DeviceSpec::shared_mem_per_block`] at
    /// launch — exceeding it is the error that motivates the paper's
    /// §IV.B division scheme.
    fn shared_bytes(&self) -> usize;

    /// Allocate the shared memory for one block.
    fn make_shared(&self) -> Self::Shared;

    /// Number of barrier-separated phases.
    fn num_phases(&self) -> usize;

    /// Run one thread's portion of `phase`.
    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>, shared: &mut Self::Shared);

    /// Profiler label for launches of this kernel (the name a real
    /// profiler would show). Override per kernel; a per-launch override
    /// is available through [`crate::Device::launch_labeled`].
    fn label(&self) -> &str {
        "kernel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_flatten_like_cuda() {
        let mut c = PerfCounters::new();
        let ctx = ThreadCtx {
            thread_idx: 5,
            block_idx: 3,
            block_dim: 128,
            grid_dim: 28,
            counters: &mut c,
        };
        assert_eq!(ctx.global_thread_id(), 3 * 128 + 5);
        assert_eq!(ctx.total_threads(), 28 * 128);
    }

    #[test]
    fn counters_flow_through_ctx() {
        let mut c = PerfCounters::new();
        {
            let mut ctx = ThreadCtx {
                thread_idx: 0,
                block_idx: 0,
                block_dim: 1,
                grid_dim: 1,
                counters: &mut c,
            };
            ctx.flops(8);
            ctx.shared_bytes(16);
            ctx.global_read(4);
            ctx.global_write(2);
            ctx.atomics(1);
        }
        assert_eq!(c.flops, 8);
        assert_eq!(c.shared_bytes, 16);
        assert_eq!(c.global_read_bytes, 4);
        assert_eq!(c.global_write_bytes, 2);
        assert_eq!(c.atomic_ops, 1);
    }

    #[test]
    fn launch_config_totals() {
        assert_eq!(LaunchConfig::new(28, 1024).total_threads(), 28_672);
    }
}
