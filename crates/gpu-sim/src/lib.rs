//! # gpu-sim
//!
//! A SIMT GPU **simulator** substrate, built so that the GPU 2-opt kernels
//! of Rocki & Suda (IPDPSW 2013) can be reproduced on machines without
//! CUDA/OpenCL hardware or toolchains.
//!
//! Two concerns are deliberately separated:
//!
//! 1. **Functional execution** — kernels are ordinary Rust implementing
//!    the [`kernel::Kernel`] trait. They really run: a launch produces
//!    the exact values a GPU would produce (the 2-opt kernels are verified
//!    bit-for-bit against a sequential CPU search). Blocks execute in
//!    parallel on the host; threads within a block are serialized per
//!    phase, with phase boundaries acting as `__syncthreads()`.
//! 2. **Timing** — kernels account their work (FLOPs, shared-memory
//!    bytes, global bytes, atomics) through [`kernel::ThreadCtx`]; the
//!    roofline-style model in [`timing`] plus the per-device parameters
//!    in [`spec`] turn those counters into deterministic modeled times,
//!    calibrated against the paper's published measurements.
//!
//! The device model covers what the paper's algorithm exercises: a
//! capacity-limited global memory ([`memory`]), a per-block shared memory
//! *limit* that forces the paper's §IV.B division scheme, atomic-min
//! reductions for publishing the best move, PCIe transfer costs, launch
//! overheads and wave-quantized block scheduling.
//!
//! ```
//! use gpu_sim::{Device, LaunchConfig, Kernel, ThreadCtx, spec};
//!
//! struct Doubler<'a> {
//!     input: &'a gpu_sim::DeviceBuffer<u32>,
//!     output: &'a gpu_sim::AtomicDeviceBuffer,
//! }
//!
//! impl Kernel for Doubler<'_> {
//!     type Shared = ();
//!     fn shared_bytes(&self) -> usize { 0 }
//!     fn make_shared(&self) {}
//!     fn num_phases(&self) -> usize { 1 }
//!     fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>, _s: &mut ()) {
//!         let n = self.input.len() as u64;
//!         let mut k = ctx.global_thread_id();
//!         while k < n {
//!             let v = self.input.as_slice()[k as usize];
//!             self.output.store(k as usize, (v as u64) * 2);
//!             ctx.global_read(4);
//!             ctx.global_write(8);
//!             k += ctx.total_threads();
//!         }
//!     }
//! }
//!
//! let dev = Device::new(spec::gtx_680_cuda());
//! let (input, _h2d) = dev.copy_to_device(&[1u32, 2, 3, 4]).unwrap();
//! let output = dev.alloc_atomic(4, 0).unwrap();
//! let profile = dev
//!     .launch(LaunchConfig::new(2, 32), &Doubler { input: &input, output: &output })
//!     .unwrap();
//! assert_eq!(output.to_vec(), vec![2, 4, 6, 8]);
//! assert!(profile.seconds > 0.0);
//! ```

pub mod counters;
pub mod device;
pub mod error;
pub mod kernel;
pub mod memory;
mod metrics;
pub mod pool;
pub mod profile;
pub mod spec;
pub mod stream;
pub mod timeline;
pub mod timing;

pub use counters::PerfCounters;
pub use device::Device;
pub use error::SimError;
pub use kernel::{Kernel, LaunchConfig, ThreadCtx};
pub use memory::{AtomicDeviceBuffer, DeviceBuffer, MemoryPool, DEFAULT_BUFFER_LABEL};
pub use pool::DevicePool;
pub use profile::{KernelProfile, TransferProfile};
pub use spec::{Api, DeviceKind, DeviceSpec};
pub use stream::{EngineClass, EventId, ScheduledOp, StreamId, StreamReport};
pub use timeline::{Event, Timeline};
pub use tsp_prof::Profiler;
pub use tsp_telemetry::Telemetry;
pub use tsp_trace::{Recorder, TraceEvent};
