//! Device global memory: a capacity-tracked pool with typed buffers.
//!
//! The simulator does not fake address spaces — a [`DeviceBuffer`] simply
//! owns host memory — but it *does* enforce the device's global-memory
//! capacity (§II.B: "a typical GPU is equipped with approximately 1-3 GB
//! of relatively slow global memory"), so allocation failures behave like
//! the real thing. Kernels receive read-only slices; all kernel-visible
//! writes go through [`AtomicDeviceBuffer`], mirroring the paper's use of
//! atomic operations to publish the best move ("Using atomic operations
//! the best candidates for swapping are stored in the global memory").

use crate::error::SimError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use tsp_prof::Profiler;
use tsp_telemetry::Gauge;

/// Label used by the unlabeled allocation entry points.
pub const DEFAULT_BUFFER_LABEL: &str = "buffer";

/// Ledger label of the pre-allocated serving arena.
pub const ARENA_LABEL: &str = "arena";

#[derive(Debug, Default)]
struct PoolState {
    allocated: u64,
    peak: u64,
    /// Bytes reserved up front as a serving arena. While non-zero,
    /// buffer reserves/releases are satisfied *inside* the arena:
    /// pool-level `allocated` stays flat and no ledger events fire.
    arena_capacity: u64,
    /// Bytes of the arena currently handed out to live buffers.
    arena_live: u64,
    /// High-water mark of `arena_live`.
    arena_peak: u64,
}

/// The ledger binding of a pool: a profiler handle plus the device
/// index its events are journaled under.
struct LedgerBinding {
    prof: Profiler,
    device: u32,
}

/// Live/peak gauges mirrored into a telemetry registry
/// (`tsp_device_mem_live_bytes` / `tsp_device_mem_peak_bytes`).
struct MemGauges {
    live: Gauge,
    peak: Gauge,
}

/// Shared allocation accounting for one device's global memory.
///
/// Besides enforcing capacity, the pool is the single choke point every
/// buffer's reserve/release passes through — which is where the
/// [`tsp_prof`] memory ledger and the `tsp_device_mem_*` gauges hook
/// in. Both are attach-once ([`OnceLock`]): detached, each costs one
/// branch per allocation.
pub struct MemoryPool {
    capacity: u64,
    state: Mutex<PoolState>,
    ledger: OnceLock<LedgerBinding>,
    gauges: OnceLock<MemGauges>,
}

impl std::fmt::Debug for MemoryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryPool")
            .field("capacity", &self.capacity)
            .field("allocated", &self.allocated())
            .finish()
    }
}

impl MemoryPool {
    /// Create a pool with `capacity` bytes.
    pub fn new(capacity: u64) -> Arc<Self> {
        Arc::new(MemoryPool {
            capacity,
            state: Mutex::new(PoolState::default()),
            ledger: OnceLock::new(),
            gauges: OnceLock::new(),
        })
    }

    /// Journal every reserve/release/upload of this pool into `prof`'s
    /// memory ledger as `device`. Attach once, before allocating.
    pub fn attach_ledger(&self, prof: &Profiler, device: u32) {
        let _ = self.ledger.set(LedgerBinding {
            prof: prof.clone(),
            device,
        });
    }

    /// Mirror live/peak bytes into the given gauges on every
    /// reserve/release. Attach once, before allocating.
    pub fn attach_mem_gauges(&self, live: Gauge, peak: Gauge) {
        let _ = self.gauges.set(MemGauges { live, peak });
    }

    /// Reserve `bytes`, failing when capacity would be exceeded.
    pub fn reserve(&self, bytes: u64) -> Result<(), SimError> {
        self.reserve_labeled(bytes, DEFAULT_BUFFER_LABEL)
    }

    /// [`MemoryPool::reserve`] journaled under `label`.
    pub fn reserve_labeled(&self, bytes: u64, label: &'static str) -> Result<(), SimError> {
        let (live, peak) = {
            let mut state = self.state.lock();
            if state.arena_capacity > 0 {
                // Arena mode: hand the bytes out of the pre-reserved
                // arena. Pool-level accounting already covered them at
                // install time, so neither the gauges nor the ledger
                // see a per-buffer event — this is the zero-steady-
                // state-allocations contract the serving layer relies
                // on.
                let available = state.arena_capacity - state.arena_live;
                if bytes > available {
                    return Err(SimError::OutOfMemory {
                        requested: bytes,
                        available,
                    });
                }
                state.arena_live += bytes;
                state.arena_peak = state.arena_peak.max(state.arena_live);
                return Ok(());
            }
            let available = self.capacity - state.allocated;
            if bytes > available {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    available,
                });
            }
            state.allocated += bytes;
            state.peak = state.peak.max(state.allocated);
            (state.allocated, state.peak)
        };
        if let Some(g) = self.gauges.get() {
            g.live.set(live as f64);
            g.peak.set(peak as f64);
        }
        if let Some(l) = self.ledger.get() {
            l.prof.mem_alloc(l.device, label, bytes);
        }
        Ok(())
    }

    /// Release `bytes` back to the pool.
    pub fn release(&self, bytes: u64) {
        self.release_labeled(bytes, DEFAULT_BUFFER_LABEL);
    }

    /// [`MemoryPool::release`] journaled under `label`.
    pub fn release_labeled(&self, bytes: u64, label: &'static str) {
        let live = {
            let mut state = self.state.lock();
            if state.arena_capacity > 0 {
                // Arena mode: return the bytes to the arena silently
                // (see `reserve_labeled`).
                debug_assert!(state.arena_live >= bytes);
                state.arena_live = state.arena_live.saturating_sub(bytes);
                return;
            }
            debug_assert!(state.allocated >= bytes);
            state.allocated = state.allocated.saturating_sub(bytes);
            state.allocated
        };
        if let Some(g) = self.gauges.get() {
            g.live.set(live as f64);
        }
        if let Some(l) = self.ledger.get() {
            l.prof.mem_free(l.device, label, bytes);
        }
    }

    /// Pre-reserve `bytes` as a serving arena (journaled once, under
    /// [`ARENA_LABEL`]). While an arena is installed every subsequent
    /// buffer reserve/release is satisfied from it with *no* ledger or
    /// gauge traffic — a warm pool serves requests with zero
    /// steady-state device allocations. Repeated calls grow the arena
    /// (one striped install per lane). Fails like any reserve when the
    /// device lacks capacity.
    pub fn install_arena(&self, bytes: u64) -> Result<(), SimError> {
        // Reserve directly on the pool path: `reserve_labeled` would be
        // absorbed by an already-installed arena when *growing* one, so
        // the warm-up accounting is done inline under a single lock.
        let (live, peak) = {
            let mut state = self.state.lock();
            let available = self.capacity - state.allocated;
            if bytes > available {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    available,
                });
            }
            state.allocated += bytes;
            state.peak = state.peak.max(state.allocated);
            state.arena_capacity += bytes;
            (state.allocated, state.peak)
        };
        if let Some(g) = self.gauges.get() {
            g.live.set(live as f64);
            g.peak.set(peak as f64);
        }
        if let Some(l) = self.ledger.get() {
            l.prof.mem_alloc(l.device, ARENA_LABEL, bytes);
        }
        Ok(())
    }

    /// Tear the arena down: journal the matching free and return the
    /// pool to direct accounting. Call at service shutdown, after every
    /// buffer has been dropped (`arena_live == 0`) — the ledger then
    /// balances end to end.
    pub fn uninstall_arena(&self) {
        let bytes = {
            let mut state = self.state.lock();
            debug_assert_eq!(
                state.arena_live, 0,
                "arena uninstalled with live suballocations"
            );
            let bytes = state.arena_capacity;
            state.arena_capacity = 0;
            state.arena_live = 0;
            bytes
        };
        if bytes > 0 {
            self.release_labeled(bytes, ARENA_LABEL);
        }
    }

    /// Installed arena bytes (0 when no arena is installed).
    pub fn arena_capacity(&self) -> u64 {
        self.state.lock().arena_capacity
    }

    /// Arena bytes currently handed out to live buffers.
    pub fn arena_live(&self) -> u64 {
        self.state.lock().arena_live
    }

    /// High-water mark of arena bytes handed out — the number to size
    /// the arena by.
    pub fn arena_peak_bytes(&self) -> u64 {
        self.state.lock().arena_peak
    }

    /// Journal `bytes` of H2D traffic into the buffer labeled `label`
    /// (no accounting change — uploads land in existing allocations).
    pub fn note_upload(&self, bytes: u64, label: &'static str) {
        if let Some(l) = self.ledger.get() {
            l.prof.mem_upload(l.device, label, bytes);
        }
    }

    /// Journal a leak: the owning device dropped with `bytes` live.
    pub(crate) fn note_leak(&self, bytes: u64) {
        if let Some(l) = self.ledger.get() {
            l.prof.mem_leak(l.device, bytes);
        }
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.state.lock().allocated
    }

    /// High-water mark of allocated bytes over the pool's lifetime.
    /// Tracked unconditionally (one max per reserve), so peak usage is
    /// observable even without an attached ledger.
    pub fn peak_bytes(&self) -> u64 {
        self.state.lock().peak
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// A typed, read-only (from the kernel's perspective) device allocation.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    pool: Arc<MemoryPool>,
    label: &'static str,
}

impl<T: Copy> DeviceBuffer<T> {
    /// Allocate a buffer against a pool. Most callers go through
    /// [`crate::Device::alloc`] / [`crate::Device::copy_to_device`];
    /// this constructor exists for tests and for composing custom
    /// device façades.
    pub fn new(data: Vec<T>, pool: Arc<MemoryPool>) -> Result<Self, SimError> {
        Self::new_labeled(data, pool, DEFAULT_BUFFER_LABEL)
    }

    /// [`DeviceBuffer::new`] with a ledger label: the allocation, every
    /// upload into it, and its eventual release are journaled under
    /// `label` when the pool has an attached ledger.
    pub fn new_labeled(
        data: Vec<T>,
        pool: Arc<MemoryPool>,
        label: &'static str,
    ) -> Result<Self, SimError> {
        pool.reserve_labeled((data.len() * core::mem::size_of::<T>()) as u64, label)?;
        Ok(DeviceBuffer { data, pool, label })
    }

    /// The ledger label this buffer was allocated under.
    #[inline]
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Kernel-side view of the buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes on the device.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.data.len() * core::mem::size_of::<T>()) as u64
    }

    /// Overwrite the buffer contents from the host (a fresh H2D copy into
    /// an existing allocation). Lengths must match.
    pub fn overwrite(&mut self, src: &[T]) -> Result<(), SimError> {
        if src.len() != self.data.len() {
            return Err(SimError::SizeMismatch {
                dst: self.data.len(),
                src: src.len(),
            });
        }
        self.data.copy_from_slice(src);
        Ok(())
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.release_labeled(
            (self.data.len() * core::mem::size_of::<T>()) as u64,
            self.label,
        );
    }
}

/// A device allocation of 64-bit words that kernels may mutate through
/// atomics — the only kernel-visible write path, which both keeps the
/// simulator data-race-free (blocks run on host threads) and mirrors how
/// the paper's kernel publishes results.
#[derive(Debug)]
pub struct AtomicDeviceBuffer {
    words: Vec<AtomicU64>,
    pool: Arc<MemoryPool>,
    label: &'static str,
}

impl AtomicDeviceBuffer {
    pub(crate) fn new(
        len: usize,
        init: u64,
        pool: Arc<MemoryPool>,
        label: &'static str,
    ) -> Result<Self, SimError> {
        pool.reserve_labeled((len * 8) as u64, label)?;
        Ok(AtomicDeviceBuffer {
            words: (0..len).map(|_| AtomicU64::new(init)).collect(),
            pool,
            label,
        })
    }

    /// The ledger label this buffer was allocated under.
    #[inline]
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Number of 64-bit words.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the buffer has no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        self.words[i].store(v, Ordering::Relaxed)
    }

    /// Atomic minimum; returns the previous value. This is the reduction
    /// primitive the best-move kernels use (`atomicMin` in CUDA terms).
    #[inline]
    pub fn fetch_min(&self, i: usize, v: u64) -> u64 {
        self.words[i].fetch_min(v, Ordering::Relaxed)
    }

    /// Atomic maximum; returns the previous value.
    #[inline]
    pub fn fetch_max(&self, i: usize, v: u64) -> u64 {
        self.words[i].fetch_max(v, Ordering::Relaxed)
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: u64) -> u64 {
        self.words[i].fetch_add(v, Ordering::Relaxed)
    }

    /// Reset every word to `v` (host-side, between launches).
    pub fn fill(&self, v: u64) {
        for w in &self.words {
            w.store(v, Ordering::Relaxed);
        }
    }

    /// Overwrite the whole buffer from the host (a fresh H2D copy into an
    /// existing allocation — the refresh path of a device-resident
    /// pipeline). Lengths must match. Use
    /// [`crate::Device::upload_atomic`] when the transfer cost matters.
    pub fn overwrite(&self, src: &[u64]) -> Result<(), SimError> {
        if src.len() != self.words.len() {
            return Err(SimError::SizeMismatch {
                dst: self.words.len(),
                src: src.len(),
            });
        }
        for (w, &v) in self.words.iter().zip(src) {
            w.store(v, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Copy the contents back to the host.
    pub fn to_vec(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Size in bytes on the device.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }
}

impl Drop for AtomicDeviceBuffer {
    fn drop(&mut self) {
        self.pool
            .release_labeled((self.words.len() * 8) as u64, self.label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_tracks_alloc_and_free() {
        let pool = MemoryPool::new(1024);
        {
            let buf = DeviceBuffer::new(vec![0u32; 64], pool.clone()).unwrap();
            assert_eq!(pool.allocated(), 256);
            assert_eq!(buf.bytes(), 256);
        }
        assert_eq!(pool.allocated(), 0);
    }

    #[test]
    fn pool_rejects_over_capacity() {
        let pool = MemoryPool::new(100);
        let err = DeviceBuffer::new(vec![0u64; 20], pool.clone()).unwrap_err();
        assert!(matches!(
            err,
            SimError::OutOfMemory {
                requested: 160,
                available: 100
            }
        ));
        // Failed allocations must not leak accounting.
        assert_eq!(pool.allocated(), 0);
    }

    #[test]
    fn overwrite_checks_length() {
        let pool = MemoryPool::new(1024);
        let mut buf = DeviceBuffer::new(vec![1u32, 2, 3], pool).unwrap();
        assert!(buf.overwrite(&[4, 5]).is_err());
        buf.overwrite(&[4, 5, 6]).unwrap();
        assert_eq!(buf.as_slice(), &[4, 5, 6]);
    }

    #[test]
    fn atomic_buffer_min_reduction() {
        let pool = MemoryPool::new(1024);
        let buf = AtomicDeviceBuffer::new(1, u64::MAX, pool, DEFAULT_BUFFER_LABEL).unwrap();
        buf.fetch_min(0, 42);
        buf.fetch_min(0, 100);
        buf.fetch_min(0, 7);
        assert_eq!(buf.load(0), 7);
    }

    #[test]
    fn atomic_buffer_overwrite_checks_length() {
        let pool = MemoryPool::new(1024);
        let buf = AtomicDeviceBuffer::new(3, 0, pool, DEFAULT_BUFFER_LABEL).unwrap();
        assert!(buf.overwrite(&[1, 2]).is_err());
        buf.overwrite(&[7, 8, 9]).unwrap();
        assert_eq!(buf.to_vec(), vec![7, 8, 9]);
    }

    #[test]
    fn arena_absorbs_buffer_churn() {
        let pool = MemoryPool::new(4096);
        pool.install_arena(1024).unwrap();
        assert_eq!(pool.allocated(), 1024);
        assert_eq!(pool.arena_capacity(), 1024);
        {
            let buf = DeviceBuffer::new(vec![0u32; 64], pool.clone()).unwrap();
            assert_eq!(buf.bytes(), 256);
            // Pool-level accounting stays flat: the buffer lives in the arena.
            assert_eq!(pool.allocated(), 1024);
            assert_eq!(pool.arena_live(), 256);
        }
        assert_eq!(pool.arena_live(), 0);
        assert_eq!(pool.arena_peak_bytes(), 256);
        pool.uninstall_arena();
        assert_eq!(pool.allocated(), 0);
        assert_eq!(pool.arena_capacity(), 0);
    }

    #[test]
    fn arena_overflow_fails_like_oom() {
        let pool = MemoryPool::new(4096);
        pool.install_arena(100).unwrap();
        let err = DeviceBuffer::new(vec![0u64; 20], pool.clone()).unwrap_err();
        assert!(matches!(
            err,
            SimError::OutOfMemory {
                requested: 160,
                available: 100
            }
        ));
        // Failed arena suballocations must not leak accounting.
        assert_eq!(pool.arena_live(), 0);
    }

    #[test]
    fn arena_install_respects_device_capacity() {
        let pool = MemoryPool::new(512);
        assert!(pool.install_arena(1024).is_err());
        assert_eq!(pool.allocated(), 0);
        assert_eq!(pool.arena_capacity(), 0);
        // Repeated installs accumulate (striped per-lane warm-up).
        pool.install_arena(128).unwrap();
        pool.install_arena(128).unwrap();
        assert_eq!(pool.arena_capacity(), 256);
        assert_eq!(pool.allocated(), 256);
    }

    #[test]
    fn arena_buffers_skip_the_ledger() {
        use tsp_prof::Profiler;
        let prof = Profiler::attached();
        let pool = MemoryPool::new(4096);
        pool.attach_ledger(&prof, 0);
        pool.install_arena(512).unwrap();
        {
            let _buf = DeviceBuffer::new(vec![0u32; 32], pool.clone()).unwrap();
        }
        pool.uninstall_arena();
        let report = prof.report().memory;
        // One alloc (the arena) and one free (its teardown) — the
        // buffer churn inside the arena never reached the ledger.
        let device = &report.devices[0];
        assert_eq!(device.allocs, 1);
        assert_eq!(device.frees, 1);
        assert!(report.balanced(), "{}", report.render());
        assert!(report.labels.iter().any(|l| l.label == ARENA_LABEL));
    }

    #[test]
    fn atomic_buffer_fill_and_roundtrip() {
        let pool = MemoryPool::new(1024);
        let buf = AtomicDeviceBuffer::new(4, 0, pool.clone(), DEFAULT_BUFFER_LABEL).unwrap();
        buf.fill(9);
        assert_eq!(buf.to_vec(), vec![9, 9, 9, 9]);
        assert_eq!(pool.allocated(), 32);
        drop(buf);
        assert_eq!(pool.allocated(), 0);
    }
}
