//! Device global memory: a capacity-tracked pool with typed buffers.
//!
//! The simulator does not fake address spaces — a [`DeviceBuffer`] simply
//! owns host memory — but it *does* enforce the device's global-memory
//! capacity (§II.B: "a typical GPU is equipped with approximately 1-3 GB
//! of relatively slow global memory"), so allocation failures behave like
//! the real thing. Kernels receive read-only slices; all kernel-visible
//! writes go through [`AtomicDeviceBuffer`], mirroring the paper's use of
//! atomic operations to publish the best move ("Using atomic operations
//! the best candidates for swapping are stored in the global memory").

use crate::error::SimError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared allocation accounting for one device's global memory.
#[derive(Debug)]
pub struct MemoryPool {
    capacity: u64,
    allocated: Mutex<u64>,
}

impl MemoryPool {
    /// Create a pool with `capacity` bytes.
    pub fn new(capacity: u64) -> Arc<Self> {
        Arc::new(MemoryPool {
            capacity,
            allocated: Mutex::new(0),
        })
    }

    /// Reserve `bytes`, failing when capacity would be exceeded.
    pub fn reserve(&self, bytes: u64) -> Result<(), SimError> {
        let mut used = self.allocated.lock();
        let available = self.capacity - *used;
        if bytes > available {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                available,
            });
        }
        *used += bytes;
        Ok(())
    }

    /// Release `bytes` back to the pool.
    pub fn release(&self, bytes: u64) {
        let mut used = self.allocated.lock();
        debug_assert!(*used >= bytes);
        *used = used.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        *self.allocated.lock()
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// A typed, read-only (from the kernel's perspective) device allocation.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    pool: Arc<MemoryPool>,
}

impl<T: Copy> DeviceBuffer<T> {
    /// Allocate a buffer against a pool. Most callers go through
    /// [`crate::Device::alloc`] / [`crate::Device::copy_to_device`];
    /// this constructor exists for tests and for composing custom
    /// device façades.
    pub fn new(data: Vec<T>, pool: Arc<MemoryPool>) -> Result<Self, SimError> {
        pool.reserve((data.len() * core::mem::size_of::<T>()) as u64)?;
        Ok(DeviceBuffer { data, pool })
    }

    /// Kernel-side view of the buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes on the device.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.data.len() * core::mem::size_of::<T>()) as u64
    }

    /// Overwrite the buffer contents from the host (a fresh H2D copy into
    /// an existing allocation). Lengths must match.
    pub fn overwrite(&mut self, src: &[T]) -> Result<(), SimError> {
        if src.len() != self.data.len() {
            return Err(SimError::SizeMismatch {
                dst: self.data.len(),
                src: src.len(),
            });
        }
        self.data.copy_from_slice(src);
        Ok(())
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool
            .release((self.data.len() * core::mem::size_of::<T>()) as u64);
    }
}

/// A device allocation of 64-bit words that kernels may mutate through
/// atomics — the only kernel-visible write path, which both keeps the
/// simulator data-race-free (blocks run on host threads) and mirrors how
/// the paper's kernel publishes results.
#[derive(Debug)]
pub struct AtomicDeviceBuffer {
    words: Vec<AtomicU64>,
    pool: Arc<MemoryPool>,
}

impl AtomicDeviceBuffer {
    pub(crate) fn new(len: usize, init: u64, pool: Arc<MemoryPool>) -> Result<Self, SimError> {
        pool.reserve((len * 8) as u64)?;
        Ok(AtomicDeviceBuffer {
            words: (0..len).map(|_| AtomicU64::new(init)).collect(),
            pool,
        })
    }

    /// Number of 64-bit words.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the buffer has no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        self.words[i].store(v, Ordering::Relaxed)
    }

    /// Atomic minimum; returns the previous value. This is the reduction
    /// primitive the best-move kernels use (`atomicMin` in CUDA terms).
    #[inline]
    pub fn fetch_min(&self, i: usize, v: u64) -> u64 {
        self.words[i].fetch_min(v, Ordering::Relaxed)
    }

    /// Atomic maximum; returns the previous value.
    #[inline]
    pub fn fetch_max(&self, i: usize, v: u64) -> u64 {
        self.words[i].fetch_max(v, Ordering::Relaxed)
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: u64) -> u64 {
        self.words[i].fetch_add(v, Ordering::Relaxed)
    }

    /// Reset every word to `v` (host-side, between launches).
    pub fn fill(&self, v: u64) {
        for w in &self.words {
            w.store(v, Ordering::Relaxed);
        }
    }

    /// Overwrite the whole buffer from the host (a fresh H2D copy into an
    /// existing allocation — the refresh path of a device-resident
    /// pipeline). Lengths must match. Use
    /// [`crate::Device::upload_atomic`] when the transfer cost matters.
    pub fn overwrite(&self, src: &[u64]) -> Result<(), SimError> {
        if src.len() != self.words.len() {
            return Err(SimError::SizeMismatch {
                dst: self.words.len(),
                src: src.len(),
            });
        }
        for (w, &v) in self.words.iter().zip(src) {
            w.store(v, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Copy the contents back to the host.
    pub fn to_vec(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Size in bytes on the device.
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }
}

impl Drop for AtomicDeviceBuffer {
    fn drop(&mut self) {
        self.pool.release((self.words.len() * 8) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_tracks_alloc_and_free() {
        let pool = MemoryPool::new(1024);
        {
            let buf = DeviceBuffer::new(vec![0u32; 64], pool.clone()).unwrap();
            assert_eq!(pool.allocated(), 256);
            assert_eq!(buf.bytes(), 256);
        }
        assert_eq!(pool.allocated(), 0);
    }

    #[test]
    fn pool_rejects_over_capacity() {
        let pool = MemoryPool::new(100);
        let err = DeviceBuffer::new(vec![0u64; 20], pool.clone()).unwrap_err();
        assert!(matches!(
            err,
            SimError::OutOfMemory {
                requested: 160,
                available: 100
            }
        ));
        // Failed allocations must not leak accounting.
        assert_eq!(pool.allocated(), 0);
    }

    #[test]
    fn overwrite_checks_length() {
        let pool = MemoryPool::new(1024);
        let mut buf = DeviceBuffer::new(vec![1u32, 2, 3], pool).unwrap();
        assert!(buf.overwrite(&[4, 5]).is_err());
        buf.overwrite(&[4, 5, 6]).unwrap();
        assert_eq!(buf.as_slice(), &[4, 5, 6]);
    }

    #[test]
    fn atomic_buffer_min_reduction() {
        let pool = MemoryPool::new(1024);
        let buf = AtomicDeviceBuffer::new(1, u64::MAX, pool).unwrap();
        buf.fetch_min(0, 42);
        buf.fetch_min(0, 100);
        buf.fetch_min(0, 7);
        assert_eq!(buf.load(0), 7);
    }

    #[test]
    fn atomic_buffer_overwrite_checks_length() {
        let pool = MemoryPool::new(1024);
        let buf = AtomicDeviceBuffer::new(3, 0, pool).unwrap();
        assert!(buf.overwrite(&[1, 2]).is_err());
        buf.overwrite(&[7, 8, 9]).unwrap();
        assert_eq!(buf.to_vec(), vec![7, 8, 9]);
    }

    #[test]
    fn atomic_buffer_fill_and_roundtrip() {
        let pool = MemoryPool::new(1024);
        let buf = AtomicDeviceBuffer::new(4, 0, pool.clone()).unwrap();
        buf.fill(9);
        assert_eq!(buf.to_vec(), vec![9, 9, 9, 9]);
        assert_eq!(pool.allocated(), 32);
        drop(buf);
        assert_eq!(pool.allocated(), 0);
    }
}
