//! Live metric bundles for the device layer.
//!
//! Instruments are resolved against the shared registry exactly once,
//! when telemetry is attached — the launch/transfer hot paths then
//! cost one `Option` branch plus a handful of relaxed atomic updates,
//! and never touch the registry lock.

use crate::stream::StreamReport;
use tsp_telemetry::{Counter, Gauge, Histogram, Registry, SECONDS_BUCKETS};

/// Per-device instruments, labeled by pool index.
pub(crate) struct DeviceTelemetry {
    kernel_launches: Counter,
    kernel_seconds: Histogram,
    h2d_transfers: Counter,
    h2d_bytes: Counter,
    h2d_seconds: Histogram,
    d2h_transfers: Counter,
    d2h_bytes: Counter,
    d2h_seconds: Histogram,
    stream_ops: Counter,
    stream_syncs: Counter,
    stream_busy_seconds: Counter,
    stream_wall_seconds: Counter,
    stream_overlap: Gauge,
    mem_live: Gauge,
    mem_peak: Gauge,
}

impl DeviceTelemetry {
    pub(crate) fn register(registry: &Registry, device: u32) -> Self {
        let idx = device.to_string();
        let labels: [(&str, &str); 1] = [("device", idx.as_str())];
        DeviceTelemetry {
            kernel_launches: registry.counter_with(
                "tsp_gpu_kernel_launches_total",
                "Kernel launches (serial and streamed)",
                &labels,
            ),
            kernel_seconds: registry.histogram_with(
                "tsp_gpu_kernel_seconds",
                "Modeled kernel seconds per launch",
                &labels,
                SECONDS_BUCKETS,
            ),
            h2d_transfers: registry.counter_with(
                "tsp_gpu_h2d_transfers_total",
                "Host-to-device transfers",
                &labels,
            ),
            h2d_bytes: registry.counter_with(
                "tsp_gpu_h2d_bytes_total",
                "Host-to-device bytes moved",
                &labels,
            ),
            h2d_seconds: registry.histogram_with(
                "tsp_gpu_h2d_seconds",
                "Modeled PCIe seconds per host-to-device transfer",
                &labels,
                SECONDS_BUCKETS,
            ),
            d2h_transfers: registry.counter_with(
                "tsp_gpu_d2h_transfers_total",
                "Device-to-host transfers",
                &labels,
            ),
            d2h_bytes: registry.counter_with(
                "tsp_gpu_d2h_bytes_total",
                "Device-to-host bytes moved",
                &labels,
            ),
            d2h_seconds: registry.histogram_with(
                "tsp_gpu_d2h_seconds",
                "Modeled PCIe seconds per device-to-host transfer",
                &labels,
                SECONDS_BUCKETS,
            ),
            stream_ops: registry.counter_with(
                "tsp_gpu_stream_ops_total",
                "Ops placed by the stream scheduler",
                &labels,
            ),
            stream_syncs: registry.counter_with(
                "tsp_gpu_stream_syncs_total",
                "Device synchronizations that scheduled work",
                &labels,
            ),
            stream_busy_seconds: registry.counter_with(
                "tsp_gpu_stream_busy_seconds_total",
                "Modeled engine-busy seconds across synchronizations",
                &labels,
            ),
            stream_wall_seconds: registry.counter_with(
                "tsp_gpu_stream_wall_seconds_total",
                "Modeled makespan seconds across synchronizations",
                &labels,
            ),
            stream_overlap: registry.gauge_with(
                "tsp_gpu_stream_overlap",
                "Fraction of busy time hidden by stream overlap in the last synchronization",
                &labels,
            ),
            mem_live: registry.gauge_with(
                "tsp_device_mem_live_bytes",
                "Bytes currently allocated in the device's global-memory pool",
                &labels,
            ),
            mem_peak: registry.gauge_with(
                "tsp_device_mem_peak_bytes",
                "High-water mark of the device's global-memory pool",
                &labels,
            ),
        }
    }

    /// Clones of the live/peak memory gauges, for the pool to update on
    /// every reserve/release (see [`crate::MemoryPool::attach_mem_gauges`]).
    pub(crate) fn mem_gauges(&self) -> (Gauge, Gauge) {
        (self.mem_live.clone(), self.mem_peak.clone())
    }

    #[inline]
    pub(crate) fn kernel(&self, seconds: f64) {
        self.kernel_launches.inc();
        self.kernel_seconds.observe(seconds);
    }

    #[inline]
    pub(crate) fn h2d(&self, bytes: u64, seconds: f64) {
        self.h2d_transfers.inc();
        self.h2d_bytes.add(bytes as f64);
        self.h2d_seconds.observe(seconds);
    }

    #[inline]
    pub(crate) fn d2h(&self, bytes: u64, seconds: f64) {
        self.d2h_transfers.inc();
        self.d2h_bytes.add(bytes as f64);
        self.d2h_seconds.observe(seconds);
    }

    pub(crate) fn sync(&self, report: &StreamReport) {
        self.stream_ops.add(report.ops.len() as f64);
        self.stream_syncs.inc();
        self.stream_busy_seconds.add(report.busy_seconds);
        self.stream_wall_seconds.add(report.wall_seconds);
        self.stream_overlap.set(report.overlap());
    }
}

/// Per-lane job counters for [`crate::DevicePool`], labeled by the
/// lane's device and stream so a scrape shows how evenly a batch
/// spread over the pool.
pub(crate) struct PoolTelemetry {
    lane_jobs: Vec<Counter>,
}

impl PoolTelemetry {
    pub(crate) fn register(registry: &Registry, lanes: &[(u32, usize)]) -> Self {
        let lane_jobs = lanes
            .iter()
            .map(|(device, stream)| {
                registry.counter_with(
                    "tsp_pool_lane_jobs_total",
                    "Jobs executed per pool lane (device x stream)",
                    &[
                        ("device", device.to_string().as_str()),
                        ("stream", stream.to_string().as_str()),
                    ],
                )
            })
            .collect();
        PoolTelemetry { lane_jobs }
    }

    #[inline]
    pub(crate) fn job(&self, lane: usize) {
        self.lane_jobs[lane].inc();
    }
}
