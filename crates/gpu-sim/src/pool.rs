//! A pool of simulated devices with a work-stealing submit queue.
//!
//! [`DevicePool`] owns N devices, each with S streams, and flattens them
//! into `N × S` *lanes*: lane `l` is stream `l / N` of device `l % N`,
//! so consecutive lanes land on different devices and a job batch spreads
//! across the pool before it starts doubling up streams.
//!
//! [`DevicePool::run`] executes a batch of independent jobs over the
//! lanes with host-side work stealing: worker threads repeatedly claim
//! the next unclaimed *lane* (not job) from a shared atomic counter and
//! run all of that lane's jobs in order. Stealing whole lanes keeps every
//! stream's op sequence in program order regardless of which host thread
//! executes it — and since the stream scheduler's output depends only on
//! those per-stream sequences (see [`crate::stream`]), the modeled
//! timelines and all functional results are bit-identical run to run, no
//! matter how the OS schedules the workers.

use crate::device::Device;
use crate::metrics::PoolTelemetry;
use crate::spec::DeviceSpec;
use crate::stream::{StreamId, StreamReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tsp_prof::Profiler;
use tsp_telemetry::Telemetry;
use tsp_trace::Recorder;

/// A fixed set of simulated devices sharing a work queue.
pub struct DevicePool {
    devices: Vec<Arc<Device>>,
    streams: Vec<Vec<StreamId>>,
    streams_per_device: usize,
    telemetry: Option<PoolTelemetry>,
}

impl DevicePool {
    /// Build a pool over the given specs, creating `streams_per_device`
    /// streams on each device. Device `i` gets pool index `i` (visible in
    /// its stream trace tracks).
    ///
    /// # Panics
    /// When `specs` is empty or `streams_per_device` is 0 — an empty pool
    /// cannot run anything, so this is a configuration error.
    pub fn new(specs: Vec<DeviceSpec>, streams_per_device: usize) -> Self {
        assert!(!specs.is_empty(), "a DevicePool needs at least one device");
        assert!(
            streams_per_device > 0,
            "a DevicePool needs at least one stream per device"
        );
        let devices: Vec<Arc<Device>> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Arc::new(Device::with_index(spec, i as u32)))
            .collect();
        let streams = devices
            .iter()
            .map(|d| (0..streams_per_device).map(|_| d.create_stream()).collect())
            .collect();
        DevicePool {
            devices,
            streams,
            streams_per_device,
            telemetry: None,
        }
    }

    /// A pool of `devices` identical devices (the multi-GPU scaling
    /// configuration of the paper's dual-GPU boards, generalized).
    pub fn homogeneous(spec: DeviceSpec, devices: usize, streams_per_device: usize) -> Self {
        Self::new(vec![spec; devices], streams_per_device)
    }

    /// Attach a recorder to every device. Must be called before the pool
    /// is used (the devices are still exclusively owned here).
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        for d in &mut self.devices {
            Arc::get_mut(d)
                .expect("attach_recorder must be called before the pool is shared")
                .attach_recorder(recorder.clone());
        }
    }

    /// Attach a live-metrics handle to every device and register one
    /// job counter per lane (labeled `device`/`stream`), so a scrape
    /// shows pool lane utilization. Must be called before the pool is
    /// used (the devices are still exclusively owned here).
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        for d in &mut self.devices {
            Arc::get_mut(d)
                .expect("attach_telemetry must be called before the pool is shared")
                .attach_telemetry(telemetry);
        }
        self.telemetry = telemetry.registry().map(|r| {
            let lanes: Vec<(u32, usize)> = (0..self.lanes())
                .map(|l| {
                    let (d, s) = self.lane(l);
                    (d.index(), s.index())
                })
                .collect();
            PoolTelemetry::register(r, &lanes)
        });
    }

    /// Attach a span/memory profiler to every device: transfers and
    /// launches record leaf spans, and each device's allocations are
    /// journaled in the ledger under its pool index. Must be called
    /// before the pool is used (the devices are still exclusively owned
    /// here).
    pub fn attach_profiler(&mut self, prof: &Profiler) {
        for d in &mut self.devices {
            Arc::get_mut(d)
                .expect("attach_profiler must be called before the pool is shared")
                .attach_profiler(prof);
        }
    }

    /// Devices in the pool.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Streams per device.
    pub fn streams_per_device(&self) -> usize {
        self.streams_per_device
    }

    /// Total lanes (`devices × streams_per_device`).
    pub fn lanes(&self) -> usize {
        self.devices.len() * self.streams_per_device
    }

    /// The devices, in pool-index order.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// Lane `l` → (device `l % N`, stream `l / N` of that device).
    pub fn lane(&self, lane: usize) -> (&Arc<Device>, StreamId) {
        let n = self.devices.len();
        (&self.devices[lane % n], self.streams[lane % n][lane / n])
    }

    /// Run `jobs` independent jobs across the pool's lanes with
    /// work-stealing host threads. Job `j` runs on lane `j % lanes()` —
    /// a fixed assignment, so results and modeled schedules do not depend
    /// on thread timing. Returns one result per job, in job order.
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &Arc<Device>, StreamId) -> T + Sync,
    {
        let lanes = self.lanes();
        let slots: Vec<parking_lot::Mutex<Option<T>>> =
            (0..jobs).map(|_| parking_lot::Mutex::new(None)).collect();
        let next_lane = AtomicUsize::new(0);
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(lanes)
            .max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let lane = next_lane.fetch_add(1, Ordering::Relaxed);
                    if lane >= lanes {
                        break;
                    }
                    let (device, stream) = self.lane(lane);
                    let mut job = lane;
                    while job < jobs {
                        *slots[job].lock() = Some(f(job, device, stream));
                        if let Some(t) = &self.telemetry {
                            t.job(lane);
                        }
                        job += lanes;
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every job ran exactly once"))
            .collect()
    }

    /// Synchronize every device, in pool-index order, returning one
    /// [`StreamReport`] per device.
    pub fn synchronize(&self) -> Vec<StreamReport> {
        self.devices.iter().map(|d| d.synchronize()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::gtx_680_cuda;

    #[test]
    fn lanes_spread_devices_first() {
        let pool = DevicePool::homogeneous(gtx_680_cuda(), 2, 2);
        assert_eq!(pool.lanes(), 4);
        let ids: Vec<(u32, usize)> = (0..4)
            .map(|l| {
                let (d, s) = pool.lane(l);
                (d.index(), s.index())
            })
            .collect();
        // Devices alternate before streams repeat.
        assert_eq!(ids, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn run_returns_results_in_job_order_and_is_deterministic() {
        let pool = DevicePool::homogeneous(gtx_680_cuda(), 2, 2);
        let out = pool.run(10, |job, device, stream| {
            (job, device.index(), stream.index())
        });
        let expected: Vec<(usize, u32, usize)> = (0..10)
            .map(|j| {
                let (d, s) = pool.lane(j % 4);
                (j, d.index(), s.index())
            })
            .collect();
        assert_eq!(out, expected);
        // Rerunning yields the identical assignment.
        let again = pool.run(10, |job, device, stream| {
            (job, device.index(), stream.index())
        });
        assert_eq!(again, expected);
    }

    #[test]
    fn synchronize_reports_per_device() {
        let pool = DevicePool::homogeneous(gtx_680_cuda(), 3, 1);
        let reports = pool.synchronize();
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.device, i as u32);
        }
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_is_rejected() {
        DevicePool::new(vec![], 1);
    }

    #[test]
    fn telemetry_counts_jobs_per_lane() {
        let mut pool = DevicePool::homogeneous(gtx_680_cuda(), 2, 2);
        let telemetry = Telemetry::attached();
        pool.attach_telemetry(&telemetry);
        // 10 jobs over 4 lanes: lanes 0,1 run 3 jobs, lanes 2,3 run 2.
        pool.run(10, |job, _, _| job);
        let reg = telemetry.registry().unwrap();
        let jobs = |device: &str, stream: &str| {
            reg.counter_value_with(
                "tsp_pool_lane_jobs_total",
                &[("device", device), ("stream", stream)],
            )
        };
        assert_eq!(jobs("0", "0"), Some(3.0));
        assert_eq!(jobs("1", "0"), Some(3.0));
        assert_eq!(jobs("0", "1"), Some(2.0));
        assert_eq!(jobs("1", "1"), Some(2.0));
        // Every device got the per-device bundle too.
        assert!(pool.devices().iter().all(|d| d.telemetry_enabled()));
    }
}
