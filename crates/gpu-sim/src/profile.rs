//! Profiling results returned by launches and transfers.

use crate::counters::PerfCounters;
use crate::kernel::LaunchConfig;

/// Result of one kernel launch: the modeled time plus everything needed
/// to derive the paper's reported metrics (GFLOP/s for Fig. 9, checks/s
/// for Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Modeled execution time in seconds.
    pub seconds: f64,
    /// Aggregated work counters over all blocks.
    pub counters: PerfCounters,
    /// The launch geometry used.
    pub config: LaunchConfig,
}

impl KernelProfile {
    /// Achieved GFLOP/s — the paper's Fig. 9 metric ("GFLOP/s (distance
    /// calculation) observed during the run").
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.counters.flops as f64 / self.seconds / 1e9
    }

    /// Modeled time in microseconds (the unit of Table II).
    pub fn micros(&self) -> f64 {
        self.seconds * 1e6
    }
}

/// Result of a modeled PCIe transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferProfile {
    /// Modeled transfer time in seconds.
    pub seconds: f64,
    /// Bytes moved.
    pub bytes: u64,
}

impl TransferProfile {
    /// Modeled time in microseconds.
    pub fn micros(&self) -> f64 {
        self.seconds * 1e6
    }

    /// Achieved bandwidth in GB/s (0 for empty transfers).
    pub fn gbs(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / self.seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_from_counters() {
        let p = KernelProfile {
            seconds: 0.001,
            counters: PerfCounters {
                flops: 2_000_000,
                ..Default::default()
            },
            config: LaunchConfig::new(1, 1),
        };
        assert!((p.gflops() - 2.0).abs() < 1e-12);
        assert!((p.micros() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_profiles_do_not_divide_by_zero() {
        let p = KernelProfile {
            seconds: 0.0,
            counters: PerfCounters::default(),
            config: LaunchConfig::new(1, 1),
        };
        assert_eq!(p.gflops(), 0.0);
        let t = TransferProfile {
            seconds: 0.0,
            bytes: 100,
        };
        assert_eq!(t.gbs(), 0.0);
    }

    #[test]
    fn transfer_bandwidth() {
        let t = TransferProfile {
            seconds: 0.001,
            bytes: 2_500_000,
        };
        assert!((t.gbs() - 2.5).abs() < 1e-12);
    }
}
