//! Device specifications and the preset catalogue.
//!
//! A [`DeviceSpec`] captures everything the simulator's timing model needs
//! to know about a device: geometry (compute units, warp size, shared
//! memory per block), throughputs (peak FLOP/s with a sustained fraction,
//! shared/on-chip bandwidth, global memory bandwidth) and fixed overheads
//! (kernel launch, PCIe latency and bandwidth).
//!
//! The presets reproduce the eight devices of the paper's Fig. 9/10.
//! Peak numbers come from vendor spec sheets; `sustained_fraction` is
//! calibrated so that the asymptotic 2-opt GFLOP/s matches the paper's
//! *observed* figures (§V: 680 GFLOP/s on GTX 680 CUDA, 830 GFLOP/s on
//! Radeon 7970 OpenCL), and the PCIe model is calibrated to the copy-time
//! columns of Table II. See EXPERIMENTS.md for the calibration notes.

use serde::{Deserialize, Serialize};

/// Broad device class. CPUs are modelled through the *same* kernel cost
/// model (the paper's CPU baseline is itself an OpenCL target), just with
/// CPU-shaped parameters — in particular an on-chip bandwidth that models
/// the cache/DRAM path, which the paper identifies as the CPU bottleneck
/// ("We believe that memory bandwidth is the limit in case of the parallel
/// CPU implementation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A discrete GPU with on-chip shared memory and a PCIe link.
    Gpu,
    /// A (multi-core) CPU driven through the same data-parallel model.
    Cpu,
}

/// Programming platform, used only for labelling (the paper distinguishes
/// CUDA and OpenCL builds of the same board, which perform differently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Api {
    /// NVIDIA CUDA.
    Cuda,
    /// OpenCL (NVIDIA, AMD or Intel runtimes).
    OpenCl,
}

/// Full description of a simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"GeForce GTX 680"`.
    pub name: String,
    /// GPU or CPU.
    pub kind: DeviceKind,
    /// CUDA or OpenCL (labelling only).
    pub api: Api,
    /// Streaming multiprocessors / CPU cores.
    pub compute_units: u32,
    /// SIMT width (32 on NVIDIA, 64 on GCN, 1 for scalar CPU modelling).
    pub warp_size: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// On-chip shared memory (or modelled cache slice) per block, bytes.
    pub shared_mem_per_block: usize,
    /// Global (device) memory capacity, bytes.
    pub global_mem_bytes: u64,
    /// Peak single-precision throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Fraction of peak sustainable on the 2-opt kernel (calibrated).
    pub sustained_fraction: f64,
    /// Aggregate on-chip (shared memory / cache) bandwidth, GB/s.
    pub shared_bandwidth_gbs: f64,
    /// Global memory bandwidth, GB/s.
    pub global_bandwidth_gbs: f64,
    /// Latency charged per kernel phase that touches global memory, µs.
    pub global_latency_us: f64,
    /// Cost of one global atomic operation, ns.
    pub atomic_cost_ns: f64,
    /// Fixed kernel-launch overhead, µs.
    pub launch_overhead_us: f64,
    /// Host→device copy latency, µs (driver + DMA setup).
    pub h2d_latency_us: f64,
    /// Device→host copy latency, µs.
    pub d2h_latency_us: f64,
    /// Effective PCIe bandwidth, GB/s (0 for CPUs: no copies needed).
    pub pcie_bandwidth_gbs: f64,
    /// Independent DMA copy engines. Devices with 2 can overlap an H2D
    /// and a D2H transfer with each other (and with compute); devices
    /// with 1 serialize all copies onto one engine. CPUs keep 1: their
    /// copies are free anyway ([`DeviceSpec::needs_transfers`]).
    pub copy_engines: u32,
}

impl DeviceSpec {
    /// Sustained whole-device throughput on the 2-opt kernel, GFLOP/s.
    #[inline]
    pub fn sustained_gflops(&self) -> f64 {
        self.peak_gflops * self.sustained_fraction
    }

    /// Sustained throughput of a single compute unit, GFLOP/s.
    #[inline]
    pub fn per_cu_gflops(&self) -> f64 {
        self.sustained_gflops() / self.compute_units as f64
    }

    /// On-chip bandwidth available to a single compute unit, GB/s.
    #[inline]
    pub fn per_cu_shared_bandwidth_gbs(&self) -> f64 {
        self.shared_bandwidth_gbs / self.compute_units as f64
    }

    /// `true` when a host↔device copy is required at all (GPUs).
    #[inline]
    pub fn needs_transfers(&self) -> bool {
        self.kind == DeviceKind::Gpu
    }

    /// A stable FNV-1a digest over every field of the spec, recorded in
    /// flight-recording headers so a replay can refuse to run against a
    /// device whose timing model differs from the recorded one (modeled
    /// seconds would silently diverge). Floats are hashed by bit
    /// pattern, so two specs digest equal iff every parameter is
    /// bit-identical.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&[self.kind as u8, self.api as u8]);
        for v in [
            u64::from(self.compute_units),
            u64::from(self.warp_size),
            u64::from(self.max_threads_per_block),
            self.shared_mem_per_block as u64,
            self.global_mem_bytes,
            u64::from(self.copy_engines),
        ] {
            eat(&v.to_le_bytes());
        }
        for v in [
            self.peak_gflops,
            self.sustained_fraction,
            self.shared_bandwidth_gbs,
            self.global_bandwidth_gbs,
            self.global_latency_us,
            self.atomic_cost_ns,
            self.launch_overhead_us,
            self.h2d_latency_us,
            self.d2h_latency_us,
            self.pcie_bandwidth_gbs,
        ] {
            eat(&v.to_bits().to_le_bytes());
        }
        h
    }

    /// The roofline-relevant slice of this spec, as recorded in traces.
    pub fn trace_info(&self) -> tsp_trace::DeviceInfo {
        tsp_trace::DeviceInfo {
            name: self.name.clone(),
            compute_units: self.compute_units,
            sustained_gflops: self.sustained_gflops(),
            shared_bandwidth_gbs: self.shared_bandwidth_gbs,
            global_bandwidth_gbs: self.global_bandwidth_gbs,
            pcie_bandwidth_gbs: self.pcie_bandwidth_gbs,
        }
    }
}

/// GeForce GTX 680 driven by CUDA — the paper's headline device
/// (Table II, Fig. 9/10). 8 SMX, 48 kB shared, 2 GB GDDR5.
/// Calibration: 3090 GFLOP/s peak × 0.22 ≈ the observed 680 GFLOP/s.
pub fn gtx_680_cuda() -> DeviceSpec {
    DeviceSpec {
        name: "GeForce GTX 680 (CUDA)".into(),
        kind: DeviceKind::Gpu,
        api: Api::Cuda,
        compute_units: 8,
        warp_size: 32,
        max_threads_per_block: 1024,
        shared_mem_per_block: 48 * 1024,
        global_mem_bytes: 2 * 1024 * 1024 * 1024,
        peak_gflops: 3090.0,
        sustained_fraction: 0.22,
        shared_bandwidth_gbs: 1400.0,
        global_bandwidth_gbs: 192.0,
        global_latency_us: 1.2,
        atomic_cost_ns: 30.0,
        launch_overhead_us: 4.0,
        h2d_latency_us: 46.0,
        d2h_latency_us: 10.5,
        pcie_bandwidth_gbs: 2.5,
        copy_engines: 2, // GK104 ships two copy engines
    }
}

/// GeForce GTX 680 driven by OpenCL — measurably slower than the CUDA
/// build in the paper's Fig. 9/10 (less mature compiler in 2013).
pub fn gtx_680_opencl() -> DeviceSpec {
    DeviceSpec {
        name: "GeForce GTX 680 (OpenCL)".into(),
        api: Api::OpenCl,
        sustained_fraction: 0.18,
        launch_overhead_us: 7.0,
        ..gtx_680_cuda()
    }
}

/// Radeon HD 7970 (OpenCL) — the paper's fastest device at 830 GFLOP/s
/// observed; 3789 GFLOP/s peak × 0.22.
pub fn radeon_7970() -> DeviceSpec {
    DeviceSpec {
        name: "Radeon HD 7970 (OpenCL)".into(),
        kind: DeviceKind::Gpu,
        api: Api::OpenCl,
        compute_units: 32,
        warp_size: 64,
        max_threads_per_block: 256,
        shared_mem_per_block: 32 * 1024,
        global_mem_bytes: 3 * 1024 * 1024 * 1024,
        peak_gflops: 3789.0,
        sustained_fraction: 0.22,
        shared_bandwidth_gbs: 1900.0,
        global_bandwidth_gbs: 264.0,
        global_latency_us: 1.5,
        atomic_cost_ns: 40.0,
        launch_overhead_us: 8.0,
        h2d_latency_us: 55.0,
        d2h_latency_us: 12.0,
        pcie_bandwidth_gbs: 2.2,
        copy_engines: 2, // GCN dual DMA engines
    }
}

/// Radeon HD 7970 GHz Edition — the slightly faster bin in Fig. 9/10.
pub fn radeon_7970_ghz() -> DeviceSpec {
    DeviceSpec {
        name: "Radeon HD 7970 GHz Edition (OpenCL)".into(),
        peak_gflops: 4300.0,
        ..radeon_7970()
    }
}

/// One processor of the dual-GPU Radeon HD 6990 (VLIW4 generation).
pub fn radeon_6990_single() -> DeviceSpec {
    DeviceSpec {
        name: "Radeon HD 6990 single processor (OpenCL)".into(),
        kind: DeviceKind::Gpu,
        api: Api::OpenCl,
        compute_units: 24,
        warp_size: 64,
        max_threads_per_block: 256,
        shared_mem_per_block: 32 * 1024,
        global_mem_bytes: 2 * 1024 * 1024 * 1024,
        peak_gflops: 2550.0,
        sustained_fraction: 0.17, // VLIW packing losses on this kernel
        shared_bandwidth_gbs: 1100.0,
        global_bandwidth_gbs: 160.0,
        global_latency_us: 1.8,
        atomic_cost_ns: 60.0,
        launch_overhead_us: 9.0,
        h2d_latency_us: 60.0,
        d2h_latency_us: 14.0,
        pcie_bandwidth_gbs: 2.0,
        copy_engines: 1, // single VLIW-era DMA engine
    }
}

/// One processor of the dual-GPU Radeon HD 5970 (VLIW5 generation) —
/// the slowest GPU in Fig. 9.
pub fn radeon_5970_single() -> DeviceSpec {
    DeviceSpec {
        name: "Radeon HD 5970 single processor (OpenCL)".into(),
        compute_units: 20,
        peak_gflops: 2320.0,
        sustained_fraction: 0.14, // VLIW5: worse packing than VLIW4
        shared_bandwidth_gbs: 900.0,
        global_bandwidth_gbs: 128.0,
        ..radeon_6990_single()
    }
}

/// Dual-socket Intel Xeon E5-2660 (2 × 8 cores, 2.2 GHz) under Intel
/// OpenCL — the parallel CPU baseline of Fig. 10.
///
/// Peak SP ≈ 16 cores × 2.2 GHz × 16 FLOP/cycle ≈ 563 GFLOP/s, but the
/// paper identifies memory bandwidth as the CPU limit: the per-pair 32 B
/// of coordinate loads stream from the cache/DRAM hierarchy (random
/// access "decreases cache efficiency drastically", §V) rather than from
/// an explicitly managed on-chip store, so the `shared_bandwidth`
/// channel is set to an effective 19 GB/s, pinning the kernel at
/// ≈ 19 GFLOP/s. That yields asymptotic GPU speedups in the paper's
/// reported 5–45× band.
pub fn xeon_e5_2660_x2() -> DeviceSpec {
    DeviceSpec {
        name: "2x Xeon E5-2660 (Intel OpenCL)".into(),
        kind: DeviceKind::Cpu,
        api: Api::OpenCl,
        compute_units: 16,
        warp_size: 8, // AVX lanes
        max_threads_per_block: 1024,
        shared_mem_per_block: 256 * 1024, // modelled L2 slice
        global_mem_bytes: 64 * 1024 * 1024 * 1024,
        peak_gflops: 563.0,
        sustained_fraction: 0.10,
        shared_bandwidth_gbs: 19.0,
        global_bandwidth_gbs: 51.2,
        global_latency_us: 0.1,
        atomic_cost_ns: 20.0,
        launch_overhead_us: 15.0, // OpenCL CPU runtime dispatch
        h2d_latency_us: 0.0,
        d2h_latency_us: 0.0,
        pcie_bandwidth_gbs: 0.0,
        copy_engines: 1,
    }
}

/// 32-core AMD Opteron (2.3 GHz) under AMD OpenCL — Fig. 9's second CPU.
pub fn opteron_32core() -> DeviceSpec {
    DeviceSpec {
        name: "Opteron 2.3 GHz 32 cores (AMD OpenCL)".into(),
        compute_units: 32,
        peak_gflops: 589.0, // 32 x 2.3 x 8
        sustained_fraction: 0.09,
        shared_bandwidth_gbs: 16.0,
        global_bandwidth_gbs: 85.0,
        ..xeon_e5_2660_x2()
    }
}

/// Intel Core i7-3960X (6 cores, 3.3 GHz) — the *host* CPU of Table II
/// and the base for the "parallel CPU code implementation using 6 cores"
/// the abstract's 5–45× claim compares against.
pub fn core_i7_3960x() -> DeviceSpec {
    DeviceSpec {
        name: "Core i7-3960X (6 cores)".into(),
        compute_units: 6,
        peak_gflops: 317.0, // 6 x 3.3 x 16
        sustained_fraction: 0.12,
        shared_bandwidth_gbs: 15.0,
        global_bandwidth_gbs: 51.2,
        launch_overhead_us: 8.0,
        ..xeon_e5_2660_x2()
    }
}

/// Single-core sequential execution on the i7-3960X — the "sequential CPU
/// version" of the paper's up-to-300× convergence claim.
pub fn sequential_cpu() -> DeviceSpec {
    DeviceSpec {
        name: "Core i7-3960X (1 core, sequential)".into(),
        compute_units: 1,
        warp_size: 1,
        peak_gflops: 6.6, // 3.3 GHz x 2 FLOP/cycle scalar
        sustained_fraction: 0.45,
        shared_bandwidth_gbs: 12.0, // scalar loads; compute-bound anyway
        launch_overhead_us: 0.0,
        ..core_i7_3960x()
    }
}

/// Every preset of the paper's Fig. 9, in its legend order.
pub fn fig9_devices() -> Vec<DeviceSpec> {
    vec![
        xeon_e5_2660_x2(),
        opteron_32core(),
        gtx_680_cuda(),
        gtx_680_opencl(),
        radeon_5970_single(),
        radeon_6990_single(),
        radeon_7970(),
        radeon_7970_ghz(),
    ]
}

/// The four GPU presets of Fig. 10 (speedup vs. the Xeon baseline).
pub fn fig10_devices() -> Vec<DeviceSpec> {
    vec![
        radeon_7970_ghz(),
        gtx_680_cuda(),
        gtx_680_opencl(),
        radeon_6990_single(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_separates_specs_and_is_stable() {
        let a = gtx_680_cuda();
        assert_eq!(a.digest(), gtx_680_cuda().digest());
        // Every catalogued spec digests differently.
        let digests: Vec<u64> = fig10_devices().iter().map(DeviceSpec::digest).collect();
        let mut unique = digests.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            digests.len(),
            "digest collision in {digests:?}"
        );
        // Any single timing parameter changes the digest.
        let mut b = gtx_680_cuda();
        b.launch_overhead_us += 1e-9;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn sustained_matches_paper_observations() {
        // §V: "We recorded the peak GPU performance of 680 GFLOP/s
        // (GeForce using CUDA) and 830 GFLOP/s (Radeon in OpenCL)".
        let g = gtx_680_cuda().sustained_gflops();
        assert!((g - 680.0).abs() < 20.0, "GTX 680 sustained = {g}");
        let r = radeon_7970().sustained_gflops();
        assert!((r - 830.0).abs() < 20.0, "Radeon 7970 sustained = {r}");
    }

    #[test]
    fn gpu_beats_cpu_by_paper_band() {
        // The asymptotic GTX680/Xeon ratio must fall in the 5-45x band
        // (Fig. 10 tops out around 40-45x).
        let gpu = gtx_680_cuda();
        let cpu = xeon_e5_2660_x2();
        // CPU effective rate is min(compute, on-chip bandwidth-bound rate).
        // 32 bytes of coordinate loads per 32-FLOP pair evaluation:
        let cpu_bw_bound = cpu.shared_bandwidth_gbs / 32.0 * 32.0;
        let cpu_rate = cpu.sustained_gflops().min(cpu_bw_bound);
        let ratio = gpu.sustained_gflops() / cpu_rate;
        assert!(
            (20.0..=45.0).contains(&ratio),
            "GPU/CPU asymptotic ratio = {ratio}"
        );
    }

    #[test]
    fn shared_memory_is_48kb_on_gtx680() {
        assert_eq!(gtx_680_cuda().shared_mem_per_block, 48 * 1024);
    }

    #[test]
    fn cpu_needs_no_transfers() {
        assert!(!xeon_e5_2660_x2().needs_transfers());
        assert!(gtx_680_cuda().needs_transfers());
    }

    #[test]
    fn per_cu_partitions_whole_device() {
        let spec = radeon_7970();
        let whole = spec.per_cu_gflops() * spec.compute_units as f64;
        assert!((whole - spec.sustained_gflops()).abs() < 1e-9);
    }

    #[test]
    fn fig_device_lists_are_complete() {
        assert_eq!(fig9_devices().len(), 8);
        assert_eq!(fig10_devices().len(), 4);
    }
}
