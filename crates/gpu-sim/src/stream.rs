//! Streams, events and the deterministic overlap scheduler.
//!
//! ## Model
//!
//! Real CUDA/OpenCL streams decouple *correctness* (ops on one stream run
//! in order; ops on different streams may overlap subject to events) from
//! *performance* (how much overlap the hardware's engines actually
//! deliver). The simulator mirrors that split:
//!
//! - **Functional execution happens at submit time.** `launch_on`,
//!   `copy_to_device_on` etc. run the kernel / copy immediately, so
//!   results are identical to the serial path bit for bit — streams only
//!   re-time the schedule, never the data. This is sound because each
//!   stream's ops execute in program order and cross-stream work in this
//!   codebase is data-independent (independent ILS shards).
//! - **Timing is resolved at [`crate::Device::synchronize`]**
//!   (`Device` lives in [`crate::device`]): every submitted op was
//!   recorded as a `QueuedOp` on its stream, and `synchronize` runs the
//!   event-driven list scheduler in `schedule` to lay those durations
//!   onto the device's engines.
//!
//! ## Engines
//!
//! A device has one compute engine plus [`DeviceSpec::copy_engines`] DMA
//! engines (`DeviceSpec` lives in [`crate::spec`]). H2D copies use copy
//! engine 0 and D2H copies use the *last* copy engine, so a dual-engine
//! device overlaps the two directions while a single-engine device
//! serializes them — the distinction the paper-era hardware actually had.
//!
//! ## Determinism
//!
//! The schedule depends only on the per-stream op sequences, never on
//! host-thread interleaving: ready ops are started in min-start-time
//! order with ties broken by lowest stream id. Work-stealing in
//! `DevicePool` therefore cannot change a single modeled timestamp.

use crate::spec::DeviceSpec;
use tsp_trace::TraceEvent;

/// Handle to one stream of a device, created by `Device::create_stream`.
///
/// The wrapped index is private: a `StreamId` is only meaningful on the
/// device that minted it, and `Device` validates that on every use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

impl StreamId {
    /// Index of this stream on its device (0-based creation order).
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Handle to a recorded event, created by `Device::record_event`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) usize);

/// Which engine an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineClass {
    /// Kernel execution.
    Compute,
    /// Host→device DMA.
    CopyH2d,
    /// Device→host DMA.
    CopyD2h,
}

impl EngineClass {
    /// Stable name used in traces.
    pub fn name(&self) -> &'static str {
        match self {
            EngineClass::Compute => "compute",
            EngineClass::CopyH2d => "h2d",
            EngineClass::CopyD2h => "d2h",
        }
    }
}

/// One op recorded on a stream's queue at submit time.
#[derive(Debug, Clone)]
pub(crate) enum QueuedOp {
    /// A timed operation occupying an engine.
    Exec {
        engine: EngineClass,
        label: String,
        seconds: f64,
        bytes: u64,
    },
    /// Record event `.0` at the stream's current position (zero cost).
    Record(usize),
    /// Block the stream until event `.0` has been recorded and all work
    /// preceding its record has finished (zero cost).
    Wait(usize),
}

/// Per-device stream state: one op queue per stream.
#[derive(Debug, Default)]
pub(crate) struct StreamTable {
    pub(crate) queues: Vec<Vec<QueuedOp>>,
    pub(crate) n_events: usize,
}

/// One operation with its scheduler-assigned start time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledOp {
    /// Stream the op was submitted on.
    pub stream: u32,
    /// Engine the op occupied.
    pub engine: EngineClass,
    /// Kernel label or transfer direction.
    pub label: String,
    /// Start time on the device clock, seconds.
    pub start_seconds: f64,
    /// Modeled duration, seconds.
    pub seconds: f64,
    /// Bytes moved (0 for kernels).
    pub bytes: u64,
}

/// Outcome of one `Device::synchronize`: the resolved schedule plus its
/// busy/wall summary.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Device index within its pool (0 for standalone devices).
    pub device: u32,
    /// Streams that carried at least one op.
    pub streams: u32,
    /// Every op with its assigned start time, in start order.
    pub ops: Vec<ScheduledOp>,
    /// Sum of all op durations — the work submitted.
    pub busy_seconds: f64,
    /// Schedule makespan — the modeled time to drain all streams.
    pub wall_seconds: f64,
}

impl StreamReport {
    /// Fraction of busy time hidden by overlap: `(busy - wall) / busy`,
    /// clamped at 0. A serial schedule scores 0; two fully overlapped
    /// equal-length streams score 0.5.
    pub fn overlap(&self) -> f64 {
        if self.busy_seconds <= 0.0 {
            return 0.0;
        }
        ((self.busy_seconds - self.wall_seconds) / self.busy_seconds).max(0.0)
    }

    /// The trace events describing this schedule, in emission order.
    pub(crate) fn trace_events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        let ops = self.ops.iter().map(move |op| TraceEvent::StreamOp {
            device: self.device,
            stream: op.stream,
            engine: op.engine.name().to_string(),
            label: op.label.clone(),
            start_seconds: op.start_seconds,
            seconds: op.seconds,
            bytes: op.bytes,
        });
        ops.chain(std::iter::once(TraceEvent::StreamSync {
            device: self.device,
            streams: self.streams,
            busy_seconds: self.busy_seconds,
            wall_seconds: self.wall_seconds,
        }))
    }
}

/// Engine slot assignment: the compute engine is slot 0; copy engines
/// follow. H2D maps to the first copy engine and D2H to the last, so
/// `copy_engines >= 2` overlaps the two directions.
fn engine_slot(engine: EngineClass, copy_engines: usize) -> usize {
    match engine {
        EngineClass::Compute => 0,
        EngineClass::CopyH2d => 1,
        EngineClass::CopyD2h => copy_engines, // == 1 + (copy_engines - 1)
    }
}

/// Event-driven greedy list scheduler.
///
/// Repeatedly: resolve all zero-cost record/wait ops at the queue heads,
/// then among streams whose head is a ready `Exec` op pick the one with
/// the minimum feasible start time `max(stream_ready, engine_free)`,
/// breaking ties by lowest stream id, and commit it. Runs until every
/// queue drains; panics on a genuine event deadlock (a cycle of waits),
/// which is a programming error in the submitting code.
pub(crate) fn schedule(device_index: u32, spec: &DeviceSpec, table: StreamTable) -> StreamReport {
    let copy_engines = spec.copy_engines.max(1) as usize;
    let n_streams = table.queues.len();
    let mut cursors = vec![0usize; n_streams];
    let mut stream_ready = vec![0.0f64; n_streams];
    let mut engine_free = vec![0.0f64; 1 + copy_engines];
    // When an event is recorded, the modeled time all work before the
    // record completes at. `None` until recorded.
    let mut event_time: Vec<Option<f64>> = vec![None; table.n_events];

    let mut ops: Vec<ScheduledOp> = Vec::new();
    let mut busy = 0.0f64;

    loop {
        // Phase 1: resolve zero-cost ops until a fixed point. Record is
        // always resolvable; Wait resolves once its event is recorded.
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..n_streams {
                while let Some(op) = table.queues[s].get(cursors[s]) {
                    match op {
                        QueuedOp::Record(e) => {
                            event_time[*e] = Some(stream_ready[s]);
                            cursors[s] += 1;
                            changed = true;
                        }
                        QueuedOp::Wait(e) => {
                            if let Some(t) = event_time[*e] {
                                stream_ready[s] = stream_ready[s].max(t);
                                cursors[s] += 1;
                                changed = true;
                            } else {
                                break;
                            }
                        }
                        QueuedOp::Exec { .. } => break,
                    }
                }
            }
        }

        // Phase 2: among ready Exec heads, commit the earliest-starting
        // one (ties: lowest stream id — `<` on candidate keeps the first).
        let mut pick: Option<(usize, f64, usize)> = None; // (stream, start, slot)
        for s in 0..n_streams {
            if let Some(QueuedOp::Exec { engine, .. }) = table.queues[s].get(cursors[s]) {
                let slot = engine_slot(*engine, copy_engines);
                let start = stream_ready[s].max(engine_free[slot]);
                if pick.is_none_or(|(_, best, _)| start < best) {
                    pick = Some((s, start, slot));
                }
            }
        }

        let Some((s, start, slot)) = pick else {
            if table.queues.iter().zip(&cursors).any(|(q, &c)| c < q.len()) {
                panic!("stream scheduler deadlock: a Wait's event is never recorded");
            }
            break;
        };
        let Some(QueuedOp::Exec {
            engine,
            label,
            seconds,
            bytes,
        }) = table.queues[s].get(cursors[s])
        else {
            unreachable!("picked head is an Exec op");
        };
        let finish = start + seconds;
        stream_ready[s] = finish;
        engine_free[slot] = finish;
        busy += seconds;
        ops.push(ScheduledOp {
            stream: s as u32,
            engine: *engine,
            label: label.clone(),
            start_seconds: start,
            seconds: *seconds,
            bytes: *bytes,
        });
        cursors[s] += 1;
    }

    // Present in start order (stable: equal starts keep commit order,
    // which already breaks ties by stream id).
    ops.sort_by(|a, b| a.start_seconds.total_cmp(&b.start_seconds));
    let wall = ops
        .iter()
        .map(|op| op.start_seconds + op.seconds)
        .fold(0.0f64, f64::max);
    let streams = {
        let mut ids: Vec<u32> = ops.iter().map(|op| op.stream).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len() as u32
    };
    StreamReport {
        device: device_index,
        streams,
        ops,
        busy_seconds: busy,
        wall_seconds: wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::gtx_680_cuda;

    fn exec(engine: EngineClass, label: &str, seconds: f64) -> QueuedOp {
        QueuedOp::Exec {
            engine,
            label: label.into(),
            seconds,
            bytes: 0,
        }
    }

    fn run(queues: Vec<Vec<QueuedOp>>, n_events: usize) -> StreamReport {
        schedule(0, &gtx_680_cuda(), StreamTable { queues, n_events })
    }

    #[test]
    fn single_stream_serializes_in_program_order() {
        let r = run(
            vec![vec![
                exec(EngineClass::CopyH2d, "h2d", 1.0),
                exec(EngineClass::Compute, "k", 2.0),
                exec(EngineClass::CopyD2h, "d2h", 0.5),
            ]],
            0,
        );
        assert_eq!(r.ops.len(), 3);
        assert_eq!(r.ops[0].start_seconds, 0.0);
        assert_eq!(r.ops[1].start_seconds, 1.0);
        assert_eq!(r.ops[2].start_seconds, 3.0);
        assert_eq!(r.wall_seconds, 3.5);
        assert_eq!(r.busy_seconds, 3.5);
        assert_eq!(r.overlap(), 0.0);
    }

    #[test]
    fn two_streams_overlap_compute_with_copies() {
        // Stream 0: copy(1) then compute(2). Stream 1: copy(1) then
        // compute(2). The copies share the H2D engine (serialize) but
        // overlap with the other stream's compute.
        let q = |label: &str| {
            vec![
                exec(EngineClass::CopyH2d, label, 1.0),
                exec(EngineClass::Compute, label, 2.0),
            ]
        };
        let r = run(vec![q("a"), q("b")], 0);
        // s0: h2d [0,1), compute [1,3). s1: h2d [1,2), compute [3,5)
        // (compute engine busy with s0 until 3).
        assert_eq!(r.wall_seconds, 5.0);
        assert_eq!(r.busy_seconds, 6.0);
        assert!(r.overlap() > 0.0);
        // Versus serial on one stream: wall would be 6.
        let serial = run(vec![[q("a"), q("b")].concat()], 0);
        assert_eq!(serial.wall_seconds, 6.0);
    }

    #[test]
    fn copy_engine_count_gates_bidirectional_overlap() {
        // One stream pushing D2H while another pushes H2D: with two copy
        // engines they overlap; with one they serialize.
        let queues = || {
            vec![
                vec![exec(EngineClass::CopyH2d, "up", 1.0)],
                vec![exec(EngineClass::CopyD2h, "down", 1.0)],
            ]
        };
        let dual = run(queues(), 0);
        assert_eq!(dual.wall_seconds, 1.0);

        let mut single_spec = gtx_680_cuda();
        single_spec.copy_engines = 1;
        let single = schedule(
            0,
            &single_spec,
            StreamTable {
                queues: queues(),
                n_events: 0,
            },
        );
        assert_eq!(single.wall_seconds, 2.0);
    }

    #[test]
    fn events_order_across_streams() {
        // Stream 0 computes then records; stream 1 waits on the event
        // before its own compute, so it cannot start before t=2 even
        // though the compute engine is the only dependency otherwise.
        let queues = vec![
            vec![
                exec(EngineClass::Compute, "producer", 2.0),
                QueuedOp::Record(0),
            ],
            vec![
                QueuedOp::Wait(0),
                exec(EngineClass::CopyH2d, "consumer", 1.0),
            ],
        ];
        let r = run(queues, 1);
        let consumer = r.ops.iter().find(|o| o.label == "consumer").unwrap();
        assert_eq!(consumer.start_seconds, 2.0);
    }

    #[test]
    fn wait_before_record_still_resolves() {
        // Stream 0 waits on an event stream 1 records after its op —
        // phase 1 alone can't resolve the wait until stream 1's exec has
        // been committed, exercising the outer loop's re-resolution.
        let queues = vec![
            vec![QueuedOp::Wait(0), exec(EngineClass::Compute, "after", 1.0)],
            vec![
                exec(EngineClass::CopyH2d, "before", 1.5),
                QueuedOp::Record(0),
            ],
        ];
        let r = run(queues, 1);
        let after = r.ops.iter().find(|o| o.label == "after").unwrap();
        assert_eq!(after.start_seconds, 1.5);
        assert_eq!(r.wall_seconds, 2.5);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unrecorded_event_panics() {
        run(
            vec![vec![
                QueuedOp::Wait(0),
                exec(EngineClass::Compute, "never", 1.0),
            ]],
            1,
        );
    }

    #[test]
    fn schedule_is_deterministic_under_tie() {
        // Two identical streams: stream 0 must win the tie every time.
        let q = || vec![exec(EngineClass::Compute, "same", 1.0)];
        let a = run(vec![q(), q()], 0);
        let b = run(vec![q(), q()], 0);
        assert_eq!(a, b);
        assert_eq!(a.ops[0].stream, 0);
        assert_eq!(a.ops[1].stream, 1);
    }

    #[test]
    fn empty_table_reports_zero() {
        let r = run(vec![vec![], vec![]], 0);
        assert_eq!(r.streams, 0);
        assert_eq!(r.busy_seconds, 0.0);
        assert_eq!(r.wall_seconds, 0.0);
        assert_eq!(r.overlap(), 0.0);
    }
}
