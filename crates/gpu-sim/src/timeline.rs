//! A profiler timeline — the simulator's equivalent of `nvprof`.
//!
//! A [`Timeline`] attached to a [`crate::Device`] records every kernel
//! launch and transfer with its modeled duration, then summarizes them
//! the way a profiler would: per-kernel call counts, total/mean times,
//! achieved GFLOP/s, and the transfer share of the modeled run — the
//! numbers behind the paper's observation that the copy proportion
//! "decreases with the problem size growing".

use crate::counters::PerfCounters;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A kernel launch.
    Kernel {
        /// Label, resolved at launch: a per-launch override
        /// ([`crate::Device::launch_labeled`]) wins over
        /// [`crate::Kernel::label`].
        label: String,
        /// Modeled seconds.
        seconds: f64,
        /// The launch's aggregated counters.
        counters: PerfCounters,
    },
    /// A host→device copy.
    H2d {
        /// Bytes moved.
        bytes: u64,
        /// Modeled seconds.
        seconds: f64,
    },
    /// A device→host copy.
    D2h {
        /// Bytes moved.
        bytes: u64,
        /// Modeled seconds.
        seconds: f64,
    },
}

impl Event {
    /// Modeled duration of the event.
    pub fn seconds(&self) -> f64 {
        match self {
            Event::Kernel { seconds, .. }
            | Event::H2d { seconds, .. }
            | Event::D2h { seconds, .. } => *seconds,
        }
    }
}

/// Shared, thread-safe event recorder.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    inner: Arc<Mutex<TimelineInner>>,
}

#[derive(Debug, Default)]
struct TimelineInner {
    events: Vec<Event>,
}

impl Timeline {
    /// A fresh, empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_kernel(&self, seconds: f64, counters: PerfCounters, label: &str) {
        self.inner.lock().events.push(Event::Kernel {
            label: label.to_string(),
            seconds,
            counters,
        });
    }

    pub(crate) fn record_h2d(&self, bytes: u64, seconds: f64) {
        self.inner.lock().events.push(Event::H2d { bytes, seconds });
    }

    pub(crate) fn record_d2h(&self, bytes: u64, seconds: f64) {
        self.inner.lock().events.push(Event::D2h { bytes, seconds });
    }

    /// Snapshot of all recorded events, in order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }

    /// Total modeled time across all events.
    pub fn total_seconds(&self) -> f64 {
        self.inner.lock().events.iter().map(Event::seconds).sum()
    }

    /// Fraction of total modeled time spent in transfers.
    pub fn transfer_share(&self) -> f64 {
        let g = self.inner.lock();
        let total: f64 = g.events.iter().map(Event::seconds).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let transfers: f64 = g
            .events
            .iter()
            .filter(|e| !matches!(e, Event::Kernel { .. }))
            .map(Event::seconds)
            .sum();
        transfers / total
    }

    /// A per-label summary report, profiler-style. Kernel rows include
    /// arithmetic intensity (FLOPs per global byte); transfer rows show
    /// `-` where the concept does not apply.
    pub fn report(&self) -> String {
        use std::collections::BTreeMap;
        let g = self.inner.lock();
        // label -> (calls, seconds, counters, is_kernel)
        let mut rows: BTreeMap<String, (u64, f64, PerfCounters, bool)> = BTreeMap::new();
        for e in &g.events {
            let (key, secs, counters, is_kernel) = match e {
                Event::Kernel {
                    label,
                    seconds,
                    counters,
                } => (label.clone(), *seconds, *counters, true),
                Event::H2d { seconds, .. } => (
                    "[H2D copy]".to_string(),
                    *seconds,
                    PerfCounters::new(),
                    false,
                ),
                Event::D2h { seconds, .. } => (
                    "[D2H copy]".to_string(),
                    *seconds,
                    PerfCounters::new(),
                    false,
                ),
            };
            let r = rows
                .entry(key)
                .or_insert((0, 0.0, PerfCounters::new(), is_kernel));
            r.0 += 1;
            r.1 += secs;
            r.2 += counters;
        }
        let total: f64 = g.events.iter().map(Event::seconds).sum();
        let mut out = String::new();
        writeln!(
            out,
            "{:<20} {:>8} {:>14} {:>14} {:>8} {:>10} {:>8}",
            "activity", "calls", "total", "mean", "share", "GFLOP/s", "AI"
        )
        .unwrap();
        for (label, (calls, secs, counters, is_kernel)) in rows {
            let gf = if secs > 0.0 && counters.flops > 0 {
                format!("{:.0}", counters.flops as f64 / secs / 1e9)
            } else {
                "-".to_string()
            };
            let ai = if is_kernel && counters.global_bytes() > 0 {
                format!("{:.2}", counters.arithmetic_intensity())
            } else {
                "-".to_string()
            };
            writeln!(
                out,
                "{:<20} {:>8} {:>11.3} ms {:>11.3} us {:>7.1}% {:>10} {:>8}",
                label,
                calls,
                secs * 1e3,
                secs / calls as f64 * 1e6,
                100.0 * secs / total.max(1e-300),
                gf,
                ai
            )
            .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let t = Timeline::new();
        t.record_h2d(1000, 50e-6);
        t.record_kernel(
            100e-6,
            PerfCounters {
                flops: 1_000_000,
                global_read_bytes: 40_000,
                ..Default::default()
            },
            "sweep",
        );
        t.record_d2h(8, 11e-6);
        assert_eq!(t.len(), 3);
        assert!((t.total_seconds() - 161e-6).abs() < 1e-12);
        assert!((t.transfer_share() - 61.0 / 161.0).abs() < 1e-9);
        let report = t.report();
        assert!(report.contains("sweep"));
        assert!(report.contains("[H2D copy]"));
        assert!(report.contains("[D2H copy]"));
        // The kernel row carries its arithmetic intensity (1e6 / 4e4 = 25).
        assert!(report.contains("25.00"), "report:\n{report}");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.transfer_share(), 0.0);
    }
}
