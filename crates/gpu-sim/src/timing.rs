//! The analytic timing model.
//!
//! Times are derived from the counters a kernel accumulated, through a
//! roofline-style overlap model:
//!
//! * a block's time is the **maximum** of its compute time, its
//!   shared-memory time and its global-memory time (hardware overlaps the
//!   three pipelines), plus serialized atomic costs and a per-phase
//!   global latency;
//! * blocks are scheduled onto compute units in waves by a greedy
//!   earliest-free-slot scheduler; the kernel's time is the makespan plus
//!   the fixed launch overhead;
//! * PCIe transfers cost `latency + bytes / bandwidth`.
//!
//! Everything is deterministic: the same kernel on the same spec always
//! reports the same time, which keeps the paper-reproduction harnesses
//! reproducible run to run.

use crate::counters::PerfCounters;
use crate::spec::DeviceSpec;

/// Modeled execution time of one block, in seconds.
pub fn block_time(spec: &DeviceSpec, c: &PerfCounters, phases_touching_global: u32) -> f64 {
    let compute = c.flops as f64 / (spec.per_cu_gflops() * 1e9);
    let shared = c.shared_bytes as f64 / (spec.per_cu_shared_bandwidth_gbs() * 1e9);
    // Global bandwidth is a whole-device resource; approximate a block's
    // share as the full pipe divided among the compute units (uniform
    // pressure assumption — kernels here are homogeneous).
    let global =
        c.global_bytes() as f64 / (spec.global_bandwidth_gbs * 1e9 / spec.compute_units as f64);
    let overlap = compute.max(shared).max(global);
    let atomics = c.atomic_ops as f64 * spec.atomic_cost_ns * 1e-9;
    let latency = phases_touching_global as f64 * spec.global_latency_us * 1e-6;
    overlap + atomics + latency
}

/// Greedy earliest-free-slot schedule of per-block times onto
/// `compute_units` units; returns the makespan in seconds.
pub fn schedule_makespan(compute_units: u32, block_times: &[f64]) -> f64 {
    if block_times.is_empty() {
        return 0.0;
    }
    let slots = compute_units.max(1) as usize;
    let mut free_at = vec![0.0f64; slots.min(block_times.len())];
    for &t in block_times {
        // Index of the earliest-free slot.
        let (idx, _) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("times are finite"))
            .expect("at least one slot");
        free_at[idx] += t;
    }
    free_at.iter().cloned().fold(0.0, f64::max)
}

/// Modeled kernel time: launch overhead plus the block-schedule makespan.
pub fn kernel_time(spec: &DeviceSpec, block_times: &[f64]) -> f64 {
    spec.launch_overhead_us * 1e-6 + schedule_makespan(spec.compute_units, block_times)
}

/// Modeled host→device transfer time for `bytes`.
pub fn h2d_time(spec: &DeviceSpec, bytes: u64) -> f64 {
    if !spec.needs_transfers() {
        return 0.0;
    }
    spec.h2d_latency_us * 1e-6 + bytes as f64 / (spec.pcie_bandwidth_gbs * 1e9)
}

/// Modeled device→host transfer time for `bytes`.
pub fn d2h_time(spec: &DeviceSpec, bytes: u64) -> f64 {
    if !spec.needs_transfers() {
        return 0.0;
    }
    spec.d2h_latency_us * 1e-6 + bytes as f64 / (spec.pcie_bandwidth_gbs * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{gtx_680_cuda, xeon_e5_2660_x2};

    #[test]
    fn makespan_of_uniform_blocks_quantizes_into_waves() {
        // 16 equal blocks on 8 units -> exactly 2 waves.
        let times = vec![1.0; 16];
        assert!((schedule_makespan(8, &times) - 2.0).abs() < 1e-12);
        // 17 blocks -> 3 waves.
        let times = vec![1.0; 17];
        assert!((schedule_makespan(8, &times) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_handles_heterogeneous_blocks() {
        // One long block dominates.
        let times = vec![10.0, 1.0, 1.0, 1.0];
        assert!((schedule_makespan(4, &times) - 10.0).abs() < 1e-12);
        // Greedy packs short blocks around the long one.
        let times = vec![3.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let m = schedule_makespan(2, &times);
        assert!((m - 4.0).abs() < 1e-12, "makespan = {m}");
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let spec = gtx_680_cuda();
        let t = kernel_time(&spec, &[]);
        assert!((t - spec.launch_overhead_us * 1e-6).abs() < 1e-15);
    }

    #[test]
    fn compute_bound_block_matches_roofline() {
        let spec = gtx_680_cuda();
        let c = PerfCounters {
            flops: 1_000_000,
            ..Default::default()
        };
        let t = block_time(&spec, &c, 0);
        let expected = 1e6 / (spec.per_cu_gflops() * 1e9);
        assert!((t - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn bandwidth_bound_block_ignores_small_compute() {
        let spec = xeon_e5_2660_x2();
        let c = PerfCounters {
            flops: 1, // negligible
            shared_bytes: 1_000_000_000,
            ..Default::default()
        };
        let t = block_time(&spec, &c, 0);
        let expected = 1e9 / (spec.per_cu_shared_bandwidth_gbs() * 1e9);
        assert!((t - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn global_writes_are_priced_like_reads() {
        // A segment-reversal kernel does no arithmetic: its cost is pure
        // global traffic, half reads and half writes. Both directions
        // must travel on the same modeled pipe.
        let spec = gtx_680_cuda();
        let write_only = PerfCounters {
            global_write_bytes: 1 << 20,
            ..Default::default()
        };
        let read_only = PerfCounters {
            global_read_bytes: 1 << 20,
            ..Default::default()
        };
        let tw = block_time(&spec, &write_only, 1);
        let tr = block_time(&spec, &read_only, 1);
        assert!(tw > spec.global_latency_us * 1e-6, "writes must cost time");
        assert_eq!(tw, tr);
        // Mixed traffic sums: 2x the bytes -> the bandwidth term doubles.
        let both = PerfCounters {
            global_read_bytes: 1 << 20,
            global_write_bytes: 1 << 20,
            ..Default::default()
        };
        let latency = spec.global_latency_us * 1e-6;
        let tb = block_time(&spec, &both, 1);
        assert!((tb - latency - 2.0 * (tr - latency)).abs() < 1e-15);
    }

    #[test]
    fn transfers_are_free_on_cpu() {
        let cpu = xeon_e5_2660_x2();
        assert_eq!(h2d_time(&cpu, 1 << 20), 0.0);
        assert_eq!(d2h_time(&cpu, 1 << 20), 0.0);
    }

    #[test]
    fn h2d_matches_table2_order_of_magnitude() {
        // Table II: berlin52 h2d = 50 us (latency-dominated);
        // pla33810 h2d = 96 us; usa115475 h2d = 287 us.
        let spec = gtx_680_cuda();
        let t52 = h2d_time(&spec, 52 * 8) * 1e6;
        assert!((t52 - 46.0).abs() < 2.0, "berlin52 h2d = {t52} us");
        let t33810 = h2d_time(&spec, 33_810 * 8) * 1e6;
        assert!(
            (60.0..250.0).contains(&t33810),
            "pla33810 h2d = {t33810} us"
        );
        let t115475 = h2d_time(&spec, 115_475 * 8) * 1e6;
        assert!(
            (200.0..700.0).contains(&t115475),
            "usa115475 h2d = {t115475} us"
        );
    }

    #[test]
    fn atomics_and_latency_add_serially() {
        let spec = gtx_680_cuda();
        let c = PerfCounters {
            atomic_ops: 1000,
            ..Default::default()
        };
        let t = block_time(&spec, &c, 2);
        let expected = 1000.0 * spec.atomic_cost_ns * 1e-9 + 2.0 * spec.global_latency_us * 1e-6;
        assert!((t - expected).abs() < 1e-12);
    }
}
