//! Property and concurrency tests for the device simulator.

use gpu_sim::{spec, timing, Device, Kernel, LaunchConfig, MemoryPool, PerfCounters, ThreadCtx};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn makespan_is_bounded_by_lpt_bounds(
        slots in 1u32..64,
        times in proptest::collection::vec(0.0f64..10.0, 1..60),
    ) {
        let m = timing::schedule_makespan(slots, &times);
        let total: f64 = times.iter().sum();
        let longest = times.iter().cloned().fold(0.0, f64::max);
        // Lower bounds: the longest job, and perfect division.
        prop_assert!(m >= longest - 1e-9);
        prop_assert!(m >= total / slots as f64 - 1e-9);
        // Upper bound of greedy list scheduling.
        prop_assert!(m <= total / slots as f64 + longest + 1e-9);
    }

    #[test]
    fn makespan_with_one_slot_is_the_sum(
        times in proptest::collection::vec(0.0f64..10.0, 1..40),
    ) {
        let m = timing::schedule_makespan(1, &times);
        let total: f64 = times.iter().sum();
        prop_assert!((m - total).abs() < 1e-9);
    }

    #[test]
    fn block_time_is_monotone_in_work(
        flops in 0u64..1_000_000,
        shared in 0u64..1_000_000,
        glob in 0u64..1_000_000,
        extra in 1u64..1_000_000,
    ) {
        let s = spec::gtx_680_cuda();
        let base = PerfCounters {
            flops,
            shared_bytes: shared,
            global_read_bytes: glob,
            ..Default::default()
        };
        let t0 = timing::block_time(&s, &base, 1);
        for bumped in [
            PerfCounters { flops: flops + extra, ..base },
            PerfCounters { shared_bytes: shared + extra, ..base },
            PerfCounters { global_read_bytes: glob + extra, ..base },
            PerfCounters { atomic_ops: 5, ..base },
        ] {
            prop_assert!(timing::block_time(&s, &bumped, 1) >= t0);
        }
    }

    #[test]
    fn transfer_times_are_affine_and_monotone(bytes in 0u64..100_000_000) {
        let s = spec::gtx_680_cuda();
        let t = timing::h2d_time(&s, bytes);
        prop_assert!(t >= s.h2d_latency_us * 1e-6 - 1e-12);
        prop_assert!(timing::h2d_time(&s, bytes + 1024) >= t);
        let d = timing::d2h_time(&s, bytes);
        prop_assert!(d >= s.d2h_latency_us * 1e-6 - 1e-12);
    }

    #[test]
    fn pool_accounting_is_exact_under_any_alloc_sequence(
        sizes in proptest::collection::vec(1usize..10_000, 1..30),
    ) {
        let pool = MemoryPool::new(1 << 30);
        let mut live = Vec::new();
        let mut expected = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            let dev_bytes = (s * 4) as u64;
            let buf = gpu_sim::DeviceBuffer::new(vec![0u32; s], pool.clone()).unwrap();
            expected += dev_bytes;
            live.push(buf);
            // Drop every third allocation immediately.
            if i % 3 == 2 {
                let b = live.remove(0);
                expected -= b.bytes();
                drop(b);
            }
            prop_assert_eq!(pool.allocated(), expected);
        }
        drop(live);
        prop_assert_eq!(pool.allocated(), 0);
    }
}

/// A kernel whose per-thread work depends only on the global thread id,
/// used to check executor invariants.
struct IdSum<'a> {
    out: &'a gpu_sim::AtomicDeviceBuffer,
}

impl Kernel for IdSum<'_> {
    type Shared = ();
    fn shared_bytes(&self) -> usize {
        0
    }
    fn make_shared(&self) {}
    fn num_phases(&self) -> usize {
        1
    }
    fn run(&self, _p: usize, ctx: &mut ThreadCtx<'_>, _s: &mut ()) {
        ctx.flops(1);
        self.out.fetch_add(0, ctx.global_thread_id());
    }
}

#[test]
fn executor_visits_every_thread_exactly_once() {
    let dev = Device::new(spec::gtx_680_cuda());
    for (g, b) in [(1u32, 1u32), (3, 7), (16, 256), (5, 33)] {
        let out = dev.alloc_atomic(1, 0).unwrap();
        let p = dev
            .launch(LaunchConfig::new(g, b), &IdSum { out: &out })
            .unwrap();
        let t = g as u64 * b as u64;
        assert_eq!(out.load(0), t * (t - 1) / 2, "{g}x{b}");
        assert_eq!(p.counters.flops, t);
    }
}

#[test]
fn concurrent_pool_usage_is_consistent() {
    // Blocks run on rayon worker threads; hammer the pool from many
    // host threads to check the accounting under contention.
    let pool = MemoryPool::new(1 << 24);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let pool = pool.clone();
            s.spawn(move || {
                for i in 0..200 {
                    let buf =
                        gpu_sim::DeviceBuffer::new(vec![0u8; 1 + i % 512], pool.clone()).unwrap();
                    std::hint::black_box(&buf);
                }
            });
        }
    });
    assert_eq!(pool.allocated(), 0);
}
