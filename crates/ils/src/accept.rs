//! Acceptance criteria — Algorithm 1's `AcceptanceCriterion(s*, s*')`.

use rand::Rng;

/// Whether a freshly optimized candidate replaces the incumbent.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Acceptance {
    /// Accept strictly better candidates only (the standard ILS choice
    /// and our default).
    #[default]
    Better,
    /// Accept better-or-equal candidates (drifts across plateaus).
    BetterOrEqual,
    /// Accept everything (random restart walk).
    Always,
    /// Metropolis rule: always accept improvements, accept a worsening
    /// of `Δ` with probability `exp(-Δ / t)` (simulated-annealing-ish).
    Metropolis {
        /// Temperature in tour-length units.
        temperature: f64,
    },
}

impl Acceptance {
    /// Decide whether `candidate` (length) replaces `incumbent` (length).
    pub fn accept<R: Rng + ?Sized>(&self, incumbent: i64, candidate: i64, rng: &mut R) -> bool {
        match self {
            Acceptance::Better => candidate < incumbent,
            Acceptance::BetterOrEqual => candidate <= incumbent,
            Acceptance::Always => true,
            Acceptance::Metropolis { temperature } => {
                if candidate <= incumbent {
                    true
                } else if *temperature <= 0.0 {
                    false
                } else {
                    let delta = (candidate - incumbent) as f64;
                    rng.gen_bool((-delta / temperature).exp().clamp(0.0, 1.0))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn better_only_accepts_strict_improvements() {
        let mut rng = SmallRng::seed_from_u64(0);
        let a = Acceptance::Better;
        assert!(a.accept(100, 99, &mut rng));
        assert!(!a.accept(100, 100, &mut rng));
        assert!(!a.accept(100, 101, &mut rng));
    }

    #[test]
    fn better_or_equal_accepts_plateaus() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(Acceptance::BetterOrEqual.accept(100, 100, &mut rng));
    }

    #[test]
    fn always_accepts_anything() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(Acceptance::Always.accept(100, 1000, &mut rng));
    }

    #[test]
    fn metropolis_accepts_improvements_and_sometimes_worsenings() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = Acceptance::Metropolis { temperature: 50.0 };
        assert!(m.accept(100, 90, &mut rng));
        // Over many trials, a small worsening is accepted sometimes but
        // not always.
        let trials = 2000;
        let accepted = (0..trials).filter(|_| m.accept(100, 110, &mut rng)).count();
        assert!(accepted > trials / 10, "accepted {accepted}");
        assert!(accepted < trials, "accepted {accepted}");
        // Zero temperature degenerates to Better(-or-equal).
        let cold = Acceptance::Metropolis { temperature: 0.0 };
        assert!(!cold.accept(100, 101, &mut rng));
        assert!(cold.accept(100, 100, &mut rng));
    }
}
