//! # tsp-ils
//!
//! Iterated Local Search — the paper's Algorithm 1:
//!
//! ```text
//! s0 <- GenerateInitialSolution()
//! s* <- 2optLocalSearch(s0)            # accelerated step
//! while termination condition not met:
//!     s' <- Perturbation(s*)           # double bridge
//!     s*' <- 2optLocalSearch(s')       # accelerated step
//!     s* <- AcceptanceCriterion(s*, s*')
//! ```
//!
//! The local-search step is any [`TwoOptEngine`] — plugging in the GPU
//! engine reproduces the paper's §V experiment ("We have also implemented
//! the Iterated Local Search algorithm and used the GPU version of 2-opt
//! to test its performance"), and the recorded convergence trace
//! regenerates Fig. 11.

pub mod accept;
pub mod multistart;
pub mod perturb;

pub use accept::Acceptance;
pub use multistart::{parallel_multistart, ShardedMultistart, ShardedOutcome};
pub use perturb::Perturbation;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tsp_2opt::{optimize_profiled, EngineError, SearchOptions, StepProfile, TwoOptEngine};
use tsp_core::{CancelToken, Instance, Tour};
use tsp_prof::Profiler;
use tsp_replay::{hash_tour, FlightRecorder, ReplayEvent};
use tsp_telemetry::{Counter, Gauge, Journal, JournalEvent, JournalRecord, Registry, Telemetry};
use tsp_trace::{Recorder, TraceEvent};

/// Termination and behaviour knobs for [`iterated_local_search`].
///
/// The struct is `#[non_exhaustive]`: build it with
/// [`IlsOptions::default`] (or [`IlsOptions::new`]) and the `with_*`
/// setters, so new knobs can be added without breaking downstream code.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct IlsOptions {
    /// Stop after this many perturbation iterations.
    pub max_iterations: Option<u64>,
    /// Stop once the accumulated *modeled* time exceeds this budget
    /// (seconds) — the x-axis of Fig. 11.
    pub max_modeled_seconds: Option<f64>,
    /// Stop once real wall-clock time exceeds this budget (seconds).
    pub max_host_seconds: Option<f64>,
    /// RNG seed (perturbations are deterministic given the seed).
    pub seed: u64,
    /// Perturbation operator.
    pub perturbation: Perturbation,
    /// Acceptance criterion.
    pub acceptance: Acceptance,
    /// Under non-elitist acceptance, reset the incumbent to the best
    /// tour after this many iterations without improving the best
    /// (`None` = never restart).
    pub stagnation_restart: Option<u64>,
    /// Structured-event recorder for descent/sweep/iteration telemetry
    /// (disabled by default — zero cost when unused). Attach the *same*
    /// recorder to the engine's device (`GpuTwoOpt::with_recorder`) to
    /// interleave kernel and transfer events with the ILS events.
    pub recorder: Recorder,
    /// Live-metrics handle (disabled by default — zero cost when
    /// unused). When attached, the run maintains the `tsp_ils_*` metric
    /// families (iterations, acceptance rate, best length, …) and the
    /// descents feed the `tsp_search_*` families. Attach the *same*
    /// handle to the engine's device (`GpuTwoOpt::with_telemetry`) to
    /// add the `tsp_gpu_*` families.
    pub telemetry: Telemetry,
    /// Convergence journal (disabled by default — zero cost when
    /// unused). When attached, the run appends one [`JournalRecord`] per
    /// notable event: the initial descent, every iteration
    /// (improved/accepted/rejected), stagnation restarts, and a final
    /// summary record.
    pub journal: Journal,
    /// Flight recorder (detached by default — zero cost when unused).
    /// When attached, the run logs every decision a replay needs: the
    /// start tour digest, every applied 2-opt move, each kick's RNG
    /// checkpoint and cut points, and each acceptance verdict.
    pub flight: FlightRecorder,
    /// Resume the perturbation/acceptance RNG from an explicit
    /// xoshiro256++ state instead of seeding from [`IlsOptions::seed`] —
    /// how a replayer restores a recorded run's stream mid-flight.
    pub rng_state: Option<[u64; 4]>,
    /// Cooperative cancellation, polled once per ILS iteration next to
    /// the budget checks: when the token trips (explicit cancel or a
    /// deadline), the loop stops and returns the best tour found so
    /// far, exactly like an exhausted budget. The default
    /// ([`CancelToken::none`]) costs one branch per iteration. Armed
    /// tokens make the run wall-clock dependent, so the record/replay
    /// layer rejects them like `max_host_seconds`.
    pub cancel: CancelToken,
    /// Span/memory profiler (detached by default — zero cost when
    /// unused). When attached, the run nests `"ils"` → `"iteration"` →
    /// `"kick"`/`"sweep"` spans around the descents; attach the *same*
    /// handle to the engine's device (`GpuTwoOpt::with_profiler`) to
    /// nest the `h2d`/`kernel:*`/`d2h` leaves and the memory ledger
    /// under them.
    pub prof: Profiler,
}

impl Default for IlsOptions {
    fn default() -> Self {
        IlsOptions {
            max_iterations: Some(100),
            max_modeled_seconds: None,
            max_host_seconds: None,
            seed: 0x2013,
            perturbation: Perturbation::DoubleBridge,
            acceptance: Acceptance::Better,
            stagnation_restart: None,
            recorder: Recorder::disabled(),
            telemetry: Telemetry::detached(),
            journal: Journal::detached(),
            flight: FlightRecorder::detached(),
            rng_state: None,
            prof: Profiler::detached(),
            cancel: CancelToken::none(),
        }
    }
}

impl IlsOptions {
    /// Alias for [`IlsOptions::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or with `None`, disable) the iteration budget.
    pub fn with_max_iterations(mut self, max: impl Into<Option<u64>>) -> Self {
        self.max_iterations = max.into();
        self
    }

    /// Set (or with `None`, disable) the modeled-time budget, seconds.
    pub fn with_max_modeled_seconds(mut self, max: impl Into<Option<f64>>) -> Self {
        self.max_modeled_seconds = max.into();
        self
    }

    /// Set (or with `None`, disable) the wall-clock budget, seconds.
    pub fn with_max_host_seconds(mut self, max: impl Into<Option<f64>>) -> Self {
        self.max_host_seconds = max.into();
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the perturbation operator.
    pub fn with_perturbation(mut self, perturbation: Perturbation) -> Self {
        self.perturbation = perturbation;
        self
    }

    /// Set the acceptance criterion.
    pub fn with_acceptance(mut self, acceptance: Acceptance) -> Self {
        self.acceptance = acceptance;
        self
    }

    /// Set (or with `None`, disable) the stagnation-restart threshold.
    pub fn with_stagnation_restart(mut self, limit: impl Into<Option<u64>>) -> Self {
        self.stagnation_restart = limit.into();
        self
    }

    /// Attach a structured-event recorder.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach a live-metrics handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attach a convergence journal.
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// Attach a flight recorder.
    pub fn with_flight(mut self, flight: FlightRecorder) -> Self {
        self.flight = flight;
        self
    }

    /// Resume the RNG from an explicit xoshiro256++ state (or with
    /// `None`, seed it from [`IlsOptions::seed`] — the default).
    pub fn with_rng_state(mut self, state: impl Into<Option<[u64; 4]>>) -> Self {
        self.rng_state = state.into();
        self
    }

    /// Attach a span/memory profiler.
    pub fn with_prof(mut self, prof: Profiler) -> Self {
        self.prof = prof;
        self
    }

    /// Attach a cooperative cancellation token (polled per iteration).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

/// One point of the convergence trace (Fig. 11's curve).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Perturbation iteration (0 = the initial descent).
    pub iteration: u64,
    /// Accumulated modeled time when this length was reached, seconds.
    pub modeled_seconds: f64,
    /// Accumulated wall-clock time, seconds.
    pub host_seconds: f64,
    /// Best tour length known at this time.
    pub best_length: i64,
}

/// Result of an ILS run.
#[derive(Debug, Clone)]
pub struct IlsOutcome {
    /// The best tour found.
    pub best: Tour,
    /// Its length.
    pub best_length: i64,
    /// Perturbation iterations performed.
    pub iterations: u64,
    /// Iterations whose candidate was accepted.
    pub accepted: u64,
    /// Stagnation restarts performed (see
    /// [`IlsOptions::stagnation_restart`]).
    pub restarts: u64,
    /// Aggregate cost over every local-search sweep.
    pub profile: StepProfile,
    /// Total wall-clock seconds.
    pub host_seconds: f64,
    /// Convergence trace: one point per improvement of the best length.
    pub trace: Vec<TracePoint>,
}

/// The `tsp_ils_*` metric families, resolved once per run so the loop
/// never touches the registry lock.
struct IlsMetrics {
    iterations: Counter,
    accepted: Counter,
    improvements: Counter,
    restarts: Counter,
    acceptance_rate: Gauge,
    best_length: Gauge,
    time_to_best: Gauge,
    efficacy: Gauge,
}

impl IlsMetrics {
    fn register(registry: &Registry) -> Self {
        IlsMetrics {
            iterations: registry.counter(
                "tsp_ils_iterations_total",
                "Perturbation iterations performed",
            ),
            accepted: registry.counter(
                "tsp_ils_accepted_total",
                "Iterations whose candidate was accepted by the acceptance criterion",
            ),
            improvements: registry.counter(
                "tsp_ils_improvements_total",
                "Iterations that improved the best-known tour length",
            ),
            restarts: registry.counter(
                "tsp_ils_restarts_total",
                "Stagnation restarts (incumbent reset to the best tour)",
            ),
            acceptance_rate: registry.gauge(
                "tsp_ils_acceptance_rate",
                "Accepted iterations / total iterations so far (0 to 1)",
            ),
            best_length: registry.gauge("tsp_ils_best_length", "Best tour length found so far"),
            time_to_best: registry.gauge(
                "tsp_ils_time_to_best_seconds",
                "Modeled seconds elapsed when the current best was found",
            ),
            efficacy: registry.gauge(
                "tsp_ils_perturbation_efficacy",
                "Improving iterations / total iterations so far (0 to 1)",
            ),
        }
    }
}

/// Run Algorithm 1 starting from `initial`.
pub fn iterated_local_search<E: TwoOptEngine + ?Sized>(
    engine: &mut E,
    inst: &Instance,
    initial: Tour,
    opts: IlsOptions,
) -> Result<IlsOutcome, EngineError> {
    let _ils = opts.prof.span("ils");
    let wall = std::time::Instant::now();
    let mut rng = match opts.rng_state {
        Some(state) => SmallRng::from_state(state),
        None => SmallRng::seed_from_u64(opts.seed),
    };
    let mut profile = StepProfile::default();
    let mut trace = Vec::new();
    let metrics = opts.telemetry.registry().map(|r| IlsMetrics::register(r));

    // s* <- 2optLocalSearch(s0)
    let mut best = initial;
    opts.flight.record_with(|| ReplayEvent::Start {
        tour_hash: hash_tour(&best),
    });
    let stats = {
        let _initial = opts.prof.span("initial_descent");
        optimize_profiled(
            engine,
            inst,
            &mut best,
            SearchOptions::default(),
            &opts.recorder,
            &opts.telemetry,
            &opts.flight,
            &opts.prof,
        )?
    };
    profile.accumulate(&stats.profile);
    let mut best_length = stats.final_length;
    opts.flight.record_with(|| ReplayEvent::DescentEnd {
        iteration: 0,
        sweeps: stats.sweeps,
        length: best_length,
        tour_hash: hash_tour(&best),
        modeled_seconds: stats.profile.modeled_seconds(),
    });
    trace.push(TracePoint {
        iteration: 0,
        modeled_seconds: profile.modeled_seconds(),
        host_seconds: wall.elapsed().as_secs_f64(),
        best_length,
    });
    if let Some(m) = &metrics {
        m.best_length.set(best_length as f64);
        m.time_to_best.set(profile.modeled_seconds());
    }
    opts.journal.record_with(|| JournalRecord {
        run_id: String::new(),
        trace_id: String::new(),
        chain: 0,
        iteration: 0,
        modeled_seconds: profile.modeled_seconds(),
        wall_seconds: wall.elapsed().as_secs_f64(),
        tour_length: best_length,
        gap_to_best: 0.0,
        event: JournalEvent::Initial,
    });

    let mut iterations = 0u64;
    let mut accepted = 0u64;
    let mut restarts = 0u64;
    let mut since_improvement = 0u64;
    // Incumbent for the acceptance criterion (may differ from `best`
    // under non-elitist acceptance).
    let mut incumbent = best.clone();
    let mut incumbent_length = best_length;

    loop {
        if let Some(max) = opts.max_iterations {
            if iterations >= max {
                break;
            }
        }
        if let Some(max) = opts.max_modeled_seconds {
            if profile.modeled_seconds() >= max {
                break;
            }
        }
        if let Some(max) = opts.max_host_seconds {
            if wall.elapsed().as_secs_f64() >= max {
                break;
            }
        }
        if opts.cancel.is_cancelled() {
            break;
        }
        iterations += 1;
        let _iteration = opts.prof.span("iteration");
        opts.recorder.record(TraceEvent::IterationBegin {
            iteration: iterations,
        });

        // s' <- Perturbation(s*)
        let mut candidate = incumbent.clone();
        let rng_before_kick = rng.state();
        let kicks = {
            let _kick = opts.prof.span("kick");
            opts.perturbation.apply(&mut candidate, &mut rng)
        };
        opts.flight.record_with(move || ReplayEvent::Kick {
            iteration: iterations,
            rng: rng_before_kick,
            kicks,
        });
        opts.recorder.record_with(|| TraceEvent::Perturbation {
            kind: format!("{:?}", opts.perturbation),
        });
        // s*' <- 2optLocalSearch(s')
        let stats = optimize_profiled(
            engine,
            inst,
            &mut candidate,
            SearchOptions::default(),
            &opts.recorder,
            &opts.telemetry,
            &opts.flight,
            &opts.prof,
        )?;
        profile.accumulate(&stats.profile);
        let candidate_length = stats.final_length;
        opts.flight.record_with(|| ReplayEvent::DescentEnd {
            iteration: iterations,
            sweeps: stats.sweeps,
            length: candidate_length,
            tour_hash: hash_tour(&candidate),
            modeled_seconds: stats.profile.modeled_seconds(),
        });

        // s* <- AcceptanceCriterion(s*, s*')
        let pre_incumbent_length = incumbent_length;
        let took = opts
            .acceptance
            .accept(incumbent_length, candidate_length, &mut rng);
        if took {
            incumbent = candidate;
            incumbent_length = candidate_length;
            accepted += 1;
        }
        opts.flight.record_with(|| ReplayEvent::Acceptance {
            iteration: iterations,
            incumbent_length: pre_incumbent_length,
            candidate_length,
            accepted: took,
            rng: rng.state(),
            tour_hash: hash_tour(&incumbent),
        });
        opts.recorder.record_with(|| TraceEvent::IterationEnd {
            iteration: iterations,
            candidate_length,
            accepted: took,
            best_length: best_length.min(incumbent_length),
        });
        let improved = incumbent_length < best_length;
        if improved {
            best = incumbent.clone();
            best_length = incumbent_length;
            since_improvement = 0;
            trace.push(TracePoint {
                iteration: iterations,
                modeled_seconds: profile.modeled_seconds(),
                host_seconds: wall.elapsed().as_secs_f64(),
                best_length,
            });
        } else {
            since_improvement += 1;
            if let Some(limit) = opts.stagnation_restart {
                if since_improvement >= limit {
                    incumbent = best.clone();
                    incumbent_length = best_length;
                    restarts += 1;
                    since_improvement = 0;
                    opts.flight.record_with(|| ReplayEvent::Restart {
                        iteration: iterations,
                        tour_hash: hash_tour(&incumbent),
                    });
                    if let Some(m) = &metrics {
                        m.restarts.inc();
                    }
                    opts.journal.record_with(|| JournalRecord {
                        run_id: String::new(),
                        trace_id: String::new(),
                        chain: 0,
                        iteration: iterations,
                        modeled_seconds: profile.modeled_seconds(),
                        wall_seconds: wall.elapsed().as_secs_f64(),
                        tour_length: best_length,
                        gap_to_best: 0.0,
                        event: JournalEvent::Restart,
                    });
                }
            }
        }
        if let Some(m) = &metrics {
            m.iterations.inc();
            if took {
                m.accepted.inc();
            }
            m.acceptance_rate.set(accepted as f64 / iterations as f64);
            if improved {
                m.improvements.inc();
                m.best_length.set(best_length as f64);
                m.time_to_best.set(profile.modeled_seconds());
            }
            m.efficacy
                .set(trace.len().saturating_sub(1) as f64 / iterations as f64);
        }
        opts.journal.record_with(|| JournalRecord {
            run_id: String::new(),
            trace_id: String::new(),
            chain: 0,
            iteration: iterations,
            modeled_seconds: profile.modeled_seconds(),
            wall_seconds: wall.elapsed().as_secs_f64(),
            tour_length: candidate_length,
            gap_to_best: (candidate_length - best_length) as f64 / best_length as f64,
            event: if improved {
                JournalEvent::Improved
            } else if took {
                JournalEvent::Accepted
            } else {
                JournalEvent::Rejected
            },
        });
    }

    opts.journal.record_with(|| JournalRecord {
        run_id: String::new(),
        trace_id: String::new(),
        chain: 0,
        iteration: iterations,
        modeled_seconds: profile.modeled_seconds(),
        wall_seconds: wall.elapsed().as_secs_f64(),
        tour_length: best_length,
        gap_to_best: 0.0,
        event: JournalEvent::Final,
    });
    opts.flight.record_with(|| ReplayEvent::Final {
        iterations,
        best_length,
        tour_hash: hash_tour(&best),
        modeled_seconds: profile.modeled_seconds(),
    });

    Ok(IlsOutcome {
        best,
        best_length,
        iterations,
        accepted,
        restarts,
        profile,
        host_seconds: wall.elapsed().as_secs_f64(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_2opt::{optimize, SequentialTwoOpt};
    use tsp_tsplib::{generate, Style};

    #[test]
    fn ils_improves_on_plain_two_opt() {
        let inst = generate("ils", 80, Style::Uniform, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let start = Tour::random(80, &mut rng);

        // Plain descent.
        let mut plain = start.clone();
        let mut eng = SequentialTwoOpt::new();
        let stats = optimize(&mut eng, &inst, &mut plain, SearchOptions::default()).unwrap();

        // 60 ILS kicks from the same start.
        let out = iterated_local_search(
            &mut eng,
            &inst,
            start,
            IlsOptions {
                max_iterations: Some(60),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            out.best_length <= stats.final_length,
            "ILS {} vs plain {}",
            out.best_length,
            stats.final_length
        );
        out.best.validate().unwrap();
        assert_eq!(out.iterations, 60);
    }

    #[test]
    fn trace_is_monotone_in_time_and_length() {
        let inst = generate("trace", 60, Style::Uniform, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let start = Tour::random(60, &mut rng);
        let mut eng = SequentialTwoOpt::new();
        let out = iterated_local_search(
            &mut eng,
            &inst,
            start,
            IlsOptions {
                max_iterations: Some(40),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!out.trace.is_empty());
        for w in out.trace.windows(2) {
            assert!(w[0].modeled_seconds <= w[1].modeled_seconds);
            assert!(w[0].best_length > w[1].best_length);
        }
        assert_eq!(out.trace.last().unwrap().best_length, out.best_length);
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = generate("det", 50, Style::Uniform, 7);
        let start = Tour::identity(50);
        let mut eng = SequentialTwoOpt::new();
        let opts = IlsOptions {
            max_iterations: Some(20),
            seed: 99,
            ..Default::default()
        };
        let a = iterated_local_search(&mut eng, &inst, start.clone(), opts.clone()).unwrap();
        let b = iterated_local_search(&mut eng, &inst, start, opts).unwrap();
        assert_eq!(a.best_length, b.best_length);
        assert_eq!(a.best.as_slice(), b.best.as_slice());
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn recorder_captures_iteration_telemetry() {
        let inst = generate("rec", 60, Style::Uniform, 9);
        let start = Tour::identity(60);
        let mut eng = SequentialTwoOpt::new();
        let rec = Recorder::enabled();
        let out = iterated_local_search(
            &mut eng,
            &inst,
            start,
            IlsOptions {
                max_iterations: Some(5),
                recorder: rec.clone(),
                ..Default::default()
            },
        )
        .unwrap();
        let events = rec.events();
        let begins = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::IterationBegin { .. }))
            .count();
        let perturbs = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Perturbation { kind } if kind == "DoubleBridge"))
            .count();
        let descents = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DescentEnd { .. }))
            .count();
        assert_eq!(begins, 5);
        assert_eq!(perturbs, 5);
        // Initial descent + one per iteration.
        assert_eq!(descents, 6);
        // The last IterationEnd carries the final best length.
        let last_best = events
            .iter()
            .rev()
            .find_map(|e| match e {
                TraceEvent::IterationEnd { best_length, .. } => Some(*best_length),
                _ => None,
            })
            .unwrap();
        assert_eq!(last_best, out.best_length);
    }

    #[test]
    fn tracing_does_not_change_the_search() {
        let inst = generate("inert", 70, Style::Uniform, 11);
        let start = Tour::identity(70);
        let opts = IlsOptions {
            max_iterations: Some(8),
            seed: 41,
            ..Default::default()
        };
        let mut eng = SequentialTwoOpt::new();
        let plain = iterated_local_search(&mut eng, &inst, start.clone(), opts.clone()).unwrap();
        let mut eng = SequentialTwoOpt::new();
        let traced = iterated_local_search(
            &mut eng,
            &inst,
            start,
            IlsOptions {
                recorder: Recorder::enabled(),
                ..opts
            },
        )
        .unwrap();
        assert_eq!(plain.best_length, traced.best_length);
        assert_eq!(plain.best.as_slice(), traced.best.as_slice());
        assert_eq!(plain.accepted, traced.accepted);
        assert_eq!(
            plain.profile.modeled_seconds().to_bits(),
            traced.profile.modeled_seconds().to_bits()
        );
    }

    #[test]
    fn telemetry_and_journal_capture_the_run() {
        let inst = generate("live", 80, Style::Uniform, 17);
        let start = Tour::identity(80);
        let mut eng = SequentialTwoOpt::new();
        let telemetry = Telemetry::attached();
        let journal = Journal::attached();
        let out = iterated_local_search(
            &mut eng,
            &inst,
            start,
            IlsOptions {
                max_iterations: Some(12),
                telemetry: telemetry.clone(),
                journal: journal.clone(),
                ..Default::default()
            },
        )
        .unwrap();

        let reg = telemetry.registry().unwrap();
        assert_eq!(
            reg.counter_value("tsp_ils_iterations_total"),
            Some(out.iterations as f64)
        );
        assert_eq!(
            reg.counter_value("tsp_ils_accepted_total"),
            Some(out.accepted as f64)
        );
        assert_eq!(
            reg.gauge_value("tsp_ils_best_length"),
            Some(out.best_length as f64)
        );
        let rate = reg.gauge_value("tsp_ils_acceptance_rate").unwrap();
        assert!((0.0..=1.0).contains(&rate));
        assert_eq!(rate, out.accepted as f64 / out.iterations as f64);
        let efficacy = reg.gauge_value("tsp_ils_perturbation_efficacy").unwrap();
        assert!((0.0..=1.0).contains(&efficacy));
        // The descents fed the search-layer families too.
        assert!(reg.counter_value("tsp_search_sweeps_total").unwrap() > 0.0);

        // Journal: Initial, one record per iteration, then Final.
        let records = journal.records();
        assert_eq!(records.len() as u64, out.iterations + 2);
        assert_eq!(records[0].event, JournalEvent::Initial);
        assert_eq!(records.last().unwrap().event, JournalEvent::Final);
        assert_eq!(records.last().unwrap().tour_length, out.best_length);
        for w in records.windows(2) {
            assert!(w[0].iteration <= w[1].iteration);
            assert!(w[0].modeled_seconds <= w[1].modeled_seconds);
        }
        // Improved records are at-the-time best lengths: gap 0.
        for r in &records {
            if r.event == JournalEvent::Improved {
                assert_eq!(r.gap_to_best, 0.0);
            }
            assert_eq!(r.chain, 0);
        }
        // The JSONL round-trips.
        let parsed = tsp_telemetry::parse_jsonl(&journal.to_jsonl()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn telemetry_is_inert_for_the_search() {
        let inst = generate("inert-tel", 70, Style::Uniform, 19);
        let start = Tour::identity(70);
        let opts = IlsOptions {
            max_iterations: Some(8),
            seed: 43,
            ..Default::default()
        };
        let mut eng = SequentialTwoOpt::new();
        let plain = iterated_local_search(&mut eng, &inst, start.clone(), opts.clone()).unwrap();
        let mut eng = SequentialTwoOpt::new();
        let observed = iterated_local_search(
            &mut eng,
            &inst,
            start,
            IlsOptions {
                telemetry: Telemetry::attached(),
                journal: Journal::attached(),
                ..opts
            },
        )
        .unwrap();
        assert_eq!(plain.best_length, observed.best_length);
        assert_eq!(plain.best.as_slice(), observed.best.as_slice());
        assert_eq!(plain.accepted, observed.accepted);
        assert_eq!(
            plain.profile.modeled_seconds().to_bits(),
            observed.profile.modeled_seconds().to_bits()
        );
    }

    #[test]
    fn modeled_time_budget_terminates() {
        let inst = generate("budget", 120, Style::Uniform, 8);
        let start = Tour::identity(120);
        let mut eng = SequentialTwoOpt::new();
        let out = iterated_local_search(
            &mut eng,
            &inst,
            start,
            IlsOptions {
                max_iterations: None,
                max_modeled_seconds: Some(0.05),
                ..Default::default()
            },
        )
        .unwrap();
        // It ran some iterations, then stopped on the time budget.
        assert!(out.profile.modeled_seconds() >= 0.05);
        assert!(out.iterations > 0);
    }
}
