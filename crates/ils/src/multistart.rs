//! Parallel multi-start ILS.
//!
//! The paper's related work (§III) discusses multi-start hill climbing
//! (O'Neil et al.) and argues iterative refinement is stronger; this
//! module lets the library *test* that claim: run many independent ILS
//! chains from different starts on host threads, and keep the best.

use crate::{iterated_local_search, IlsOptions, IlsOutcome};
use gpu_sim::{Device, DevicePool, StreamId, StreamReport};
use std::sync::Arc;
use tsp_2opt::{EngineError, TwoOptEngine};
use tsp_core::{Instance, Tour};

/// Run one ILS chain per starting tour, in parallel on host threads
/// (each chain gets its own engine from `factory` and a distinct RNG
/// seed `opts.seed + chain index`). Returns the best outcome and the
/// per-chain results.
pub fn parallel_multistart<E, F>(
    factory: F,
    inst: &Instance,
    starts: Vec<Tour>,
    opts: IlsOptions,
) -> Result<(IlsOutcome, Vec<IlsOutcome>), EngineError>
where
    E: TwoOptEngine + Send,
    F: Fn() -> E + Sync,
{
    assert!(!starts.is_empty(), "at least one start is required");
    let opts = &opts;
    let results: Vec<Result<IlsOutcome, EngineError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = starts
            .into_iter()
            .enumerate()
            .map(|(i, start)| {
                let factory = &factory;
                scope.spawn(move || {
                    let mut engine = factory();
                    let chain_opts = IlsOptions {
                        seed: opts.seed.wrapping_add(i as u64),
                        journal: opts.journal.for_chain(i as u64),
                        flight: opts.flight.for_chain(i as u64),
                        ..opts.clone()
                    };
                    // The profiler's span stack is thread-local, so each
                    // chain's "chain" → "ils" subtree stays well-nested
                    // on its own worker thread.
                    let _chain = chain_opts.prof.span("chain");
                    iterated_local_search(&mut engine, inst, start, chain_opts)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chain panicked"))
            .collect()
    });

    let mut outcomes = Vec::with_capacity(results.len());
    for r in results {
        outcomes.push(r?);
    }
    let best_idx = outcomes
        .iter()
        .enumerate()
        .min_by_key(|(_, o)| o.best_length)
        .map(|(i, _)| i)
        .expect("nonempty");
    Ok((outcomes[best_idx].clone(), outcomes))
}

/// Result of a [`ShardedMultistart`] run.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// The best chain's outcome (ties broken by lowest chain index,
    /// exactly like [`parallel_multistart`]).
    pub best: IlsOutcome,
    /// Every chain's outcome, in start order.
    pub chains: Vec<IlsOutcome>,
    /// One modeled-schedule report per device, in pool order.
    pub reports: Vec<StreamReport>,
}

impl ShardedOutcome {
    /// Modeled wall time of the run: the slowest device's makespan
    /// (devices run concurrently).
    pub fn wall_seconds(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.wall_seconds)
            .fold(0.0, f64::max)
    }

    /// Total modeled busy time summed over every device's engines.
    pub fn busy_seconds(&self) -> f64 {
        self.reports.iter().map(|r| r.busy_seconds).sum()
    }

    /// Modeled chain throughput, chains per second of wall time.
    pub fn throughput(&self) -> f64 {
        self.chains.len() as f64 / self.wall_seconds()
    }

    /// Fraction of per-device busy time hidden by overlap, averaged
    /// over devices weighted by busy time. Zero on a one-stream pool
    /// with a single copy engine; positive once streams overlap
    /// transfers with compute.
    pub fn overlap(&self) -> f64 {
        let busy = self.busy_seconds();
        if busy == 0.0 {
            return 0.0;
        }
        self.reports
            .iter()
            .map(|r| r.overlap() * r.busy_seconds)
            .sum::<f64>()
            / busy
    }
}

/// Multi-start ILS sharded across the devices and streams of a
/// [`DevicePool`].
///
/// Each starting tour becomes one independent ILS chain, pinned to a
/// pool lane (device × stream) by `chain index % lanes` and executed on
/// a work-stealing host thread. Chain `i` runs with RNG seed
/// `opts.seed + i` — the same contract as [`parallel_multistart`] — so
/// for any pool shape the per-chain outcomes and the reduced best tour
/// are **bit-identical** to the host-threaded version; only the modeled
/// schedule (and thus [`ShardedOutcome::wall_seconds`]) changes with
/// the device and stream counts.
pub struct ShardedMultistart {
    pool: DevicePool,
}

impl ShardedMultistart {
    /// Shard over `pool`.
    pub fn new(pool: DevicePool) -> Self {
        ShardedMultistart { pool }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// Run one ILS chain per starting tour across the pool and keep the
    /// best. `factory` builds a chain's engine on its assigned device
    /// and stream — typically `GpuTwoOpt::on_stream` composed with a
    /// strategy:
    ///
    /// ```ignore
    /// let sharded = ShardedMultistart::new(pool);
    /// let out = sharded.run(
    ///     |device, stream| GpuTwoOpt::on_stream(device.clone(), stream),
    ///     &inst,
    ///     starts,
    ///     IlsOptions::default(),
    /// )?;
    /// ```
    pub fn run<E, F>(
        &self,
        factory: F,
        inst: &Instance,
        starts: Vec<Tour>,
        opts: IlsOptions,
    ) -> Result<ShardedOutcome, EngineError>
    where
        E: TwoOptEngine + Send,
        F: Fn(&Arc<Device>, StreamId) -> E + Sync,
    {
        assert!(!starts.is_empty(), "at least one start is required");
        let opts = &opts;
        let results: Vec<Result<IlsOutcome, EngineError>> =
            self.pool.run(starts.len(), |i, device, stream| {
                let mut engine = factory(device, stream);
                let chain_opts = IlsOptions {
                    seed: opts.seed.wrapping_add(i as u64),
                    journal: opts.journal.for_chain(i as u64),
                    flight: opts.flight.for_chain(i as u64),
                    ..opts.clone()
                };
                // Thread-local span stack: see `parallel_multistart`.
                let _chain = chain_opts.prof.span("chain");
                iterated_local_search(&mut engine, inst, starts[i].clone(), chain_opts)
            });

        let reports = self.pool.synchronize();
        let mut chains = Vec::with_capacity(results.len());
        for r in results {
            chains.push(r?);
        }
        let best_idx = chains
            .iter()
            .enumerate()
            .min_by_key(|(_, o)| o.best_length)
            .map(|(i, _)| i)
            .expect("nonempty");
        Ok(ShardedOutcome {
            best: chains[best_idx].clone(),
            chains,
            reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tsp_2opt::SequentialTwoOpt;
    use tsp_tsplib::{generate, Style};

    #[test]
    fn multistart_beats_or_ties_any_single_chain() {
        let inst = generate("ms", 100, Style::Uniform, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let starts: Vec<Tour> = (0..4).map(|_| Tour::random(100, &mut rng)).collect();
        let opts = IlsOptions {
            max_iterations: Some(15),
            ..Default::default()
        };
        let (best, all) = parallel_multistart(SequentialTwoOpt::new, &inst, starts, opts).unwrap();
        assert_eq!(all.len(), 4);
        for o in &all {
            assert!(best.best_length <= o.best_length);
        }
        best.best.validate().unwrap();
    }

    #[test]
    fn chains_use_distinct_seeds() {
        let inst = generate("ms-seeds", 80, Style::Uniform, 5);
        let start = Tour::identity(80);
        let opts = IlsOptions {
            max_iterations: Some(10),
            seed: 100,
            ..Default::default()
        };
        let (_, all) = parallel_multistart(
            SequentialTwoOpt::new,
            &inst,
            vec![start.clone(), start],
            opts,
        )
        .unwrap();
        // Same start, different seeds: the chains diverge (with
        // overwhelming probability on 10 double bridges).
        assert_ne!(all[0].best.as_slice(), all[1].best.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn empty_starts_panic() {
        let inst = generate("ms-empty", 50, Style::Uniform, 6);
        let _ = parallel_multistart(
            SequentialTwoOpt::new,
            &inst,
            Vec::new(),
            IlsOptions::default(),
        );
    }

    #[test]
    fn sharded_matches_host_threaded_multistart_bit_for_bit() {
        let inst = generate("shard", 64, Style::Uniform, 12);
        let mut rng = SmallRng::seed_from_u64(7);
        let starts: Vec<Tour> = (0..6).map(|_| Tour::random(64, &mut rng)).collect();
        let opts = IlsOptions::new().with_max_iterations(8u64).with_seed(21);

        let (best, all) = parallel_multistart(
            || tsp_2opt::GpuTwoOpt::new(gpu_sim::spec::gtx_680_cuda()),
            &inst,
            starts.clone(),
            opts.clone(),
        )
        .unwrap();

        let pool = DevicePool::homogeneous(gpu_sim::spec::gtx_680_cuda(), 2, 2);
        let sharded = ShardedMultistart::new(pool);
        let out = sharded
            .run(
                |device, stream| tsp_2opt::GpuTwoOpt::on_stream(device.clone(), stream),
                &inst,
                starts,
                opts,
            )
            .unwrap();

        assert_eq!(out.chains.len(), all.len());
        for (a, b) in all.iter().zip(&out.chains) {
            assert_eq!(a.best_length, b.best_length);
            assert_eq!(a.best.as_slice(), b.best.as_slice());
            assert_eq!(a.profile, b.profile);
        }
        assert_eq!(out.best.best_length, best.best_length);
        assert_eq!(out.best.best.as_slice(), best.best.as_slice());
        assert_eq!(out.reports.len(), 2);
        assert!(out.wall_seconds() > 0.0);
        assert!(out.busy_seconds() >= out.wall_seconds());
        assert!(out.throughput() > 0.0);
    }

    #[test]
    fn multistart_journal_stamps_chain_ids() {
        let inst = generate("ms-journal", 60, Style::Uniform, 9);
        let mut rng = SmallRng::seed_from_u64(10);
        let starts: Vec<Tour> = (0..3).map(|_| Tour::random(60, &mut rng)).collect();
        let journal = tsp_telemetry::Journal::attached();
        let opts = IlsOptions {
            max_iterations: Some(4),
            journal: journal.clone(),
            ..Default::default()
        };
        let (_, all) = parallel_multistart(SequentialTwoOpt::new, &inst, starts, opts).unwrap();

        let records = journal.records();
        // Every chain contributed Initial + per-iteration + Final records.
        let expected: usize = all.iter().map(|o| o.iterations as usize + 2).sum();
        assert_eq!(records.len(), expected);
        for chain in 0..3u64 {
            let of_chain: Vec<_> = records.iter().filter(|r| r.chain == chain).collect();
            assert_eq!(of_chain.len() as u64, all[chain as usize].iterations + 2);
            assert_eq!(
                of_chain.last().unwrap().tour_length,
                all[chain as usize].best_length
            );
        }
    }

    #[test]
    fn sharded_schedule_is_independent_of_worker_interleaving() {
        // Run the same sharded workload twice; the modeled schedule (and
        // hence every report) must be identical even though host threads
        // steal lanes in nondeterministic real-time order.
        let inst = generate("shard-det", 48, Style::Uniform, 13);
        let mut rng = SmallRng::seed_from_u64(8);
        let starts: Vec<Tour> = (0..5).map(|_| Tour::random(48, &mut rng)).collect();
        let opts = IlsOptions::new().with_max_iterations(5u64);

        let run = || {
            let pool = DevicePool::homogeneous(gpu_sim::spec::gtx_680_cuda(), 2, 2);
            ShardedMultistart::new(pool)
                .run(
                    |device, stream| tsp_2opt::GpuTwoOpt::on_stream(device.clone(), stream),
                    &inst,
                    starts.clone(),
                    opts.clone(),
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.wall_seconds().to_bits(), b.wall_seconds().to_bits());
        assert_eq!(a.busy_seconds().to_bits(), b.busy_seconds().to_bits());
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.ops.len(), rb.ops.len());
            for (oa, ob) in ra.ops.iter().zip(&rb.ops) {
                assert_eq!(oa.stream, ob.stream);
                assert_eq!(oa.start_seconds.to_bits(), ob.start_seconds.to_bits());
                assert_eq!(oa.seconds.to_bits(), ob.seconds.to_bits());
            }
        }
    }
}
