//! Parallel multi-start ILS.
//!
//! The paper's related work (§III) discusses multi-start hill climbing
//! (O'Neil et al.) and argues iterative refinement is stronger; this
//! module lets the library *test* that claim: run many independent ILS
//! chains from different starts on host threads, and keep the best.

use crate::{iterated_local_search, IlsOptions, IlsOutcome};
use tsp_2opt::{EngineError, TwoOptEngine};
use tsp_core::{Instance, Tour};

/// Run one ILS chain per starting tour, in parallel on host threads
/// (each chain gets its own engine from `factory` and a distinct RNG
/// seed `opts.seed + chain index`). Returns the best outcome and the
/// per-chain results.
pub fn parallel_multistart<E, F>(
    factory: F,
    inst: &Instance,
    starts: Vec<Tour>,
    opts: IlsOptions,
) -> Result<(IlsOutcome, Vec<IlsOutcome>), EngineError>
where
    E: TwoOptEngine + Send,
    F: Fn() -> E + Sync,
{
    assert!(!starts.is_empty(), "at least one start is required");
    let opts = &opts;
    let results: Vec<Result<IlsOutcome, EngineError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = starts
            .into_iter()
            .enumerate()
            .map(|(i, start)| {
                let factory = &factory;
                scope.spawn(move || {
                    let mut engine = factory();
                    let chain_opts = IlsOptions {
                        seed: opts.seed.wrapping_add(i as u64),
                        ..opts.clone()
                    };
                    iterated_local_search(&mut engine, inst, start, chain_opts)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chain panicked"))
            .collect()
    });

    let mut outcomes = Vec::with_capacity(results.len());
    for r in results {
        outcomes.push(r?);
    }
    let best_idx = outcomes
        .iter()
        .enumerate()
        .min_by_key(|(_, o)| o.best_length)
        .map(|(i, _)| i)
        .expect("nonempty");
    Ok((outcomes[best_idx].clone(), outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tsp_2opt::SequentialTwoOpt;
    use tsp_tsplib::{generate, Style};

    #[test]
    fn multistart_beats_or_ties_any_single_chain() {
        let inst = generate("ms", 100, Style::Uniform, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let starts: Vec<Tour> = (0..4).map(|_| Tour::random(100, &mut rng)).collect();
        let opts = IlsOptions {
            max_iterations: Some(15),
            ..Default::default()
        };
        let (best, all) = parallel_multistart(SequentialTwoOpt::new, &inst, starts, opts).unwrap();
        assert_eq!(all.len(), 4);
        for o in &all {
            assert!(best.best_length <= o.best_length);
        }
        best.best.validate().unwrap();
    }

    #[test]
    fn chains_use_distinct_seeds() {
        let inst = generate("ms-seeds", 80, Style::Uniform, 5);
        let start = Tour::identity(80);
        let opts = IlsOptions {
            max_iterations: Some(10),
            seed: 100,
            ..Default::default()
        };
        let (_, all) = parallel_multistart(
            SequentialTwoOpt::new,
            &inst,
            vec![start.clone(), start],
            opts,
        )
        .unwrap();
        // Same start, different seeds: the chains diverge (with
        // overwhelming probability on 10 double bridges).
        assert_ne!(all[0].best.as_slice(), all[1].best.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn empty_starts_panic() {
        let inst = generate("ms-empty", 50, Style::Uniform, 6);
        let _ = parallel_multistart(
            SequentialTwoOpt::new,
            &inst,
            Vec::new(),
            IlsOptions::default(),
        );
    }
}
