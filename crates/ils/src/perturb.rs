//! Perturbation operators for Iterated Local Search.
//!
//! The paper uses "a simple double-bridge move as a perturbation
//! technique" (§V); the others are provided for experimentation.

use rand::Rng;
use tsp_core::{KickMove, Tour};

/// How to kick a tour out of a 2-opt local minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Perturbation {
    /// The classic 4-opt double bridge (the paper's choice).
    #[default]
    DoubleBridge,
    /// `count` independent double bridges — a stronger kick for when the
    /// search stagnates.
    MultiBridge {
        /// Number of double-bridge applications.
        count: u8,
    },
    /// Reverse a random segment (a random 2-opt move; a *weak* kick that
    /// plain 2-opt can often undo — included to let the benches show why
    /// the double bridge is the right choice).
    RandomReversal,
}

impl Perturbation {
    /// Apply the perturbation in place, returning the concrete
    /// [`KickMove`]s drawn (in application order) so a flight recording
    /// can replay them without the RNG. The draws are identical whether
    /// or not anyone keeps the returned moves.
    pub fn apply<R: Rng + ?Sized>(&self, tour: &mut Tour, rng: &mut R) -> Vec<KickMove> {
        match self {
            Perturbation::DoubleBridge => vec![tour.double_bridge(rng)],
            Perturbation::MultiBridge { count } => {
                (0..*count).map(|_| tour.double_bridge(rng)).collect()
            }
            Perturbation::RandomReversal => {
                let n = tour.len();
                if n >= 4 {
                    let i = rng.gen_range(0..n - 2);
                    let j = rng.gen_range(i + 1..n - 1);
                    tour.apply_two_opt(i, j);
                    vec![KickMove::SegmentReversal { i, j }]
                } else {
                    vec![KickMove::Noop]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_perturbations_preserve_validity() {
        let mut rng = SmallRng::seed_from_u64(3);
        for p in [
            Perturbation::DoubleBridge,
            Perturbation::MultiBridge { count: 3 },
            Perturbation::RandomReversal,
        ] {
            let mut t = Tour::identity(64);
            for _ in 0..25 {
                let before = t.clone();
                let kicks = p.apply(&mut t, &mut rng);
                t.validate().unwrap();
                // The returned moves replay to the same tour.
                let mut replayed = before;
                for k in &kicks {
                    replayed.apply_kick(k);
                }
                assert_eq!(replayed, t, "{p:?}");
            }
        }
    }

    #[test]
    fn double_bridge_changes_the_tour() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut t = Tour::identity(64);
        Perturbation::DoubleBridge.apply(&mut t, &mut rng);
        assert_ne!(t.as_slice(), Tour::identity(64).as_slice());
    }
}
