//! The device-memory ledger: every simulator allocation, free and
//! upload journaled with a label, size and modeled timestamp, folded
//! into live/peak accounting per device and per label.

use std::collections::BTreeMap;
use tsp_trace::json::{self, Json};

/// What a ledger event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEventKind {
    /// Bytes reserved in a device's global-memory pool.
    Alloc,
    /// Bytes released back to the pool.
    Free,
    /// H2D traffic into an existing allocation (or the initial fill).
    Upload,
    /// The device dropped with bytes still allocated.
    Leak,
}

impl MemEventKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            MemEventKind::Alloc => "alloc",
            MemEventKind::Free => "free",
            MemEventKind::Upload => "upload",
            MemEventKind::Leak => "leak",
        }
    }
}

/// One journaled ledger event.
#[derive(Debug, Clone, PartialEq)]
pub struct MemEvent {
    /// Device index the event happened on.
    pub device: u32,
    /// Buffer label (`"coords"`, `"best_out"`, ...).
    pub label: String,
    /// Event kind.
    pub kind: MemEventKind,
    /// Size of the event in bytes.
    pub bytes: u64,
    /// Device-wide live bytes immediately after the event.
    pub live_bytes: u64,
    /// The recording thread's modeled clock at event time.
    pub modeled_seconds: f64,
}

/// Per-device totals in a [`MemoryReport`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceMemory {
    /// Device index.
    pub device: u32,
    /// Bytes currently allocated.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Bytes still live when the device dropped (0 = clean).
    pub leaked_bytes: u64,
    /// Number of allocations.
    pub allocs: u64,
    /// Number of frees.
    pub frees: u64,
    /// Number of uploads.
    pub uploads: u64,
}

/// Per-(device, label) totals in a [`MemoryReport`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LabelMemory {
    /// Device index.
    pub device: u32,
    /// Buffer label.
    pub label: String,
    /// Number of allocations under this label.
    pub allocs: u64,
    /// Number of frees under this label.
    pub frees: u64,
    /// Total bytes ever allocated under this label.
    pub alloc_bytes: u64,
    /// Total H2D bytes uploaded into this label.
    pub upload_bytes: u64,
    /// Bytes currently live under this label.
    pub live_bytes: u64,
    /// High-water mark of this label's live bytes.
    pub peak_bytes: u64,
}

/// A snapshot of the ledger: per-device and per-label accounting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemoryReport {
    /// Per-device totals, ordered by device index.
    pub devices: Vec<DeviceMemory>,
    /// Per-(device, label) totals, ordered by (device, label).
    pub labels: Vec<LabelMemory>,
    /// Number of journaled events behind this snapshot.
    pub events: u64,
}

impl MemoryReport {
    /// Live bytes summed over every device.
    pub fn live_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.live_bytes).sum()
    }

    /// Peak bytes of one device, when it ever allocated.
    pub fn peak_bytes(&self, device: u32) -> Option<u64> {
        self.devices
            .iter()
            .find(|d| d.device == device)
            .map(|d| d.peak_bytes)
    }

    /// The totals of one (device, label) pair.
    pub fn label(&self, device: u32, label: &str) -> Option<&LabelMemory> {
        self.labels
            .iter()
            .find(|l| l.device == device && l.label == label)
    }

    /// True when every alloc has been freed and nothing leaked: the
    /// invariant the differential suite pins for every solve sequence.
    pub fn balanced(&self) -> bool {
        self.devices
            .iter()
            .all(|d| d.live_bytes == 0 && d.leaked_bytes == 0)
    }

    /// Serialize as a JSON document (`tsp-inspect mem` renders these).
    pub fn to_json_string(&self) -> String {
        let mut root = Json::obj();
        root.set("format", Json::Str("tsp-memory-report/v1".into()));
        root.set("events", Json::Num(self.events as f64));
        let mut devices = Vec::new();
        for d in &self.devices {
            let mut o = Json::obj();
            o.set("device", Json::Num(f64::from(d.device)));
            o.set("live_bytes", Json::Num(d.live_bytes as f64));
            o.set("peak_bytes", Json::Num(d.peak_bytes as f64));
            o.set("leaked_bytes", Json::Num(d.leaked_bytes as f64));
            o.set("allocs", Json::Num(d.allocs as f64));
            o.set("frees", Json::Num(d.frees as f64));
            o.set("uploads", Json::Num(d.uploads as f64));
            devices.push(o);
        }
        root.set("devices", Json::Arr(devices));
        let mut labels = Vec::new();
        for l in &self.labels {
            let mut o = Json::obj();
            o.set("device", Json::Num(f64::from(l.device)));
            o.set("label", Json::Str(l.label.clone()));
            o.set("allocs", Json::Num(l.allocs as f64));
            o.set("frees", Json::Num(l.frees as f64));
            o.set("alloc_bytes", Json::Num(l.alloc_bytes as f64));
            o.set("upload_bytes", Json::Num(l.upload_bytes as f64));
            o.set("live_bytes", Json::Num(l.live_bytes as f64));
            o.set("peak_bytes", Json::Num(l.peak_bytes as f64));
            labels.push(o);
        }
        root.set("labels", Json::Arr(labels));
        root.to_string()
    }

    /// Parse a document produced by [`MemoryReport::to_json_string`].
    pub fn parse(text: &str) -> Result<MemoryReport, String> {
        let root = json::parse(text).map_err(|e| format!("memory report: {e}"))?;
        let num = |o: &Json, key: &str| -> Result<u64, String> {
            o.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("memory report: missing numeric {key:?}"))
        };
        if root.get("format").and_then(Json::as_str) != Some("tsp-memory-report/v1") {
            return Err("memory report: unknown format".into());
        }
        let mut report = MemoryReport {
            events: num(&root, "events")?,
            ..MemoryReport::default()
        };
        for d in root
            .get("devices")
            .and_then(Json::as_array)
            .ok_or("memory report: missing devices")?
        {
            report.devices.push(DeviceMemory {
                device: num(d, "device")? as u32,
                live_bytes: num(d, "live_bytes")?,
                peak_bytes: num(d, "peak_bytes")?,
                leaked_bytes: num(d, "leaked_bytes")?,
                allocs: num(d, "allocs")?,
                frees: num(d, "frees")?,
                uploads: num(d, "uploads")?,
            });
        }
        for l in root
            .get("labels")
            .and_then(Json::as_array)
            .ok_or("memory report: missing labels")?
        {
            report.labels.push(LabelMemory {
                device: num(l, "device")? as u32,
                label: l
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("memory report: missing label")?
                    .to_string(),
                allocs: num(l, "allocs")?,
                frees: num(l, "frees")?,
                alloc_bytes: num(l, "alloc_bytes")?,
                upload_bytes: num(l, "upload_bytes")?,
                live_bytes: num(l, "live_bytes")?,
                peak_bytes: num(l, "peak_bytes")?,
            });
        }
        Ok(report)
    }

    /// Render a text table: devices first, then labels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("device   live B      peak B      leaked B    allocs  frees   uploads\n");
        for d in &self.devices {
            out.push_str(&format!(
                "{:<8} {:<11} {:<11} {:<11} {:<7} {:<7} {}\n",
                d.device, d.live_bytes, d.peak_bytes, d.leaked_bytes, d.allocs, d.frees, d.uploads
            ));
        }
        out.push('\n');
        out.push_str("device   label              live B      peak B      alloc B     allocs\n");
        for l in &self.labels {
            out.push_str(&format!(
                "{:<8} {:<18} {:<11} {:<11} {:<11} {}\n",
                l.device, l.label, l.live_bytes, l.peak_bytes, l.alloc_bytes, l.allocs
            ));
        }
        out
    }
}

/// The mutable ledger behind an attached [`crate::Profiler`].
#[derive(Default)]
pub(crate) struct MemLog {
    events: Vec<MemEvent>,
    devices: BTreeMap<u32, DeviceMemory>,
    labels: BTreeMap<(u32, String), LabelMemory>,
}

impl MemLog {
    pub(crate) fn apply(
        &mut self,
        kind: MemEventKind,
        device: u32,
        label: &str,
        bytes: u64,
        clock: f64,
    ) {
        let dev = self.devices.entry(device).or_insert_with(|| DeviceMemory {
            device,
            ..DeviceMemory::default()
        });
        let lab = self
            .labels
            .entry((device, label.to_string()))
            .or_insert_with(|| LabelMemory {
                device,
                label: label.to_string(),
                ..LabelMemory::default()
            });
        match kind {
            MemEventKind::Alloc => {
                dev.allocs += 1;
                dev.live_bytes += bytes;
                dev.peak_bytes = dev.peak_bytes.max(dev.live_bytes);
                lab.allocs += 1;
                lab.alloc_bytes += bytes;
                lab.live_bytes += bytes;
                lab.peak_bytes = lab.peak_bytes.max(lab.live_bytes);
            }
            MemEventKind::Free => {
                dev.frees += 1;
                dev.live_bytes = dev.live_bytes.saturating_sub(bytes);
                lab.frees += 1;
                lab.live_bytes = lab.live_bytes.saturating_sub(bytes);
            }
            MemEventKind::Upload => {
                dev.uploads += 1;
                lab.upload_bytes += bytes;
            }
            MemEventKind::Leak => {
                dev.leaked_bytes = bytes;
            }
        }
        self.events.push(MemEvent {
            device,
            label: label.to_string(),
            kind,
            bytes,
            live_bytes: dev.live_bytes,
            modeled_seconds: clock,
        });
    }

    pub(crate) fn events(&self) -> &[MemEvent] {
        &self.events
    }

    pub(crate) fn report(&self) -> MemoryReport {
        MemoryReport {
            devices: self.devices.values().cloned().collect(),
            labels: self.labels.values().cloned().collect(),
            events: self.events.len() as u64,
        }
    }

    pub(crate) fn clear(&mut self) {
        self.events.clear();
        self.devices.clear();
        self.labels.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoryReport {
        let mut log = MemLog::default();
        log.apply(MemEventKind::Alloc, 0, "coords", 640, 0.0);
        log.apply(MemEventKind::Upload, 0, "coords", 640, 0.001);
        log.apply(MemEventKind::Alloc, 0, "best_out", 8, 0.001);
        log.apply(MemEventKind::Free, 0, "coords", 640, 0.002);
        log.apply(MemEventKind::Free, 0, "best_out", 8, 0.002);
        log.report()
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let text = report.to_json_string();
        let parsed = MemoryReport::parse(&text).expect("own output parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MemoryReport::parse("{}").is_err());
        assert!(MemoryReport::parse("not json").is_err());
    }

    #[test]
    fn render_mentions_every_label() {
        let text = sample().render();
        assert!(text.contains("coords"));
        assert!(text.contains("best_out"));
    }

    #[test]
    fn events_keep_running_live_bytes() {
        let mut log = MemLog::default();
        log.apply(MemEventKind::Alloc, 0, "a", 10, 0.0);
        log.apply(MemEventKind::Alloc, 0, "b", 5, 0.0);
        log.apply(MemEventKind::Free, 0, "a", 10, 0.0);
        let live: Vec<u64> = log.events().iter().map(|e| e.live_bytes).collect();
        assert_eq!(live, vec![10, 15, 5]);
    }
}
