//! # tsp-prof
//!
//! Profiling and accounting for the GPU-accelerated 2-opt stack: a
//! scoped **span profiler** on a dual modeled/wall clock, a
//! **device-memory ledger** fed by the simulator's allocator, and the
//! **run manifest** that correlates every artifact a solve produces.
//!
//! Like `tsp_trace::Recorder` and `tsp_telemetry::Telemetry`, the
//! [`Profiler`] is a cheap cloneable handle: [`Profiler::detached`]
//! costs one `Option` branch on every instrumented call and is provably
//! bit-inert (pinned by `tests/prof_differential.rs`), while clones of
//! an attached handle share one buffer.
//!
//! ## Span protocol
//!
//! A *span* is a scoped region opened with [`Profiler::span`] and closed
//! when the returned [`Span`] guard drops (strictly LIFO per thread).
//! Nested spans form a call path joined with `;` — the collapsed-stack
//! convention — e.g. `solve;ils;iteration;descent;sweep`. Two clocks run
//! per thread:
//!
//! - the **modeled clock** advances only through [`Profiler::leaf`],
//!   which the simulator calls once per kernel launch and transfer with
//!   the op's modeled duration (serial submission order — overlap is the
//!   stream scheduler's business, not the profiler's);
//! - the **wall clock** is `std::time::Instant`, measured per span.
//!
//! Every span therefore folds into inclusive and exclusive (self) costs
//! on both clocks; [`ProfileReport::flamegraph`] exports the exclusive
//! modeled nanoseconds per path as inferno-compatible collapsed stacks.

mod ledger;
mod manifest;
mod report;

pub use ledger::{DeviceMemory, LabelMemory, MemEvent, MemEventKind, MemoryReport};
pub use manifest::{run_id_from_parts, Manifest, ManifestEntry};
pub use report::{parse_collapsed, ProfileReport, SpanStat};

use ledger::MemLog;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// One open frame of a thread's span stack.
struct Frame {
    path: String,
    start_clock: f64,
    child_modeled: f64,
    start_wall: Instant,
    child_wall: f64,
}

/// Per-thread profiler state: the span stack and the modeled clock.
/// Thread-local so concurrent chains (scoped threads, pool lanes) each
/// carry an independent serial clock, matching how per-chain profiles
/// accumulate.
struct TlState {
    clock: f64,
    frames: Vec<Frame>,
}

thread_local! {
    static TL: RefCell<TlState> = const {
        RefCell::new(TlState { clock: 0.0, frames: Vec::new() })
    };
}

/// One closed span, as recorded into the shared buffer.
#[derive(Debug, Clone)]
pub(crate) struct SpanSample {
    pub(crate) path: String,
    pub(crate) modeled: f64,
    pub(crate) modeled_self: f64,
    pub(crate) wall: f64,
    pub(crate) wall_self: f64,
}

struct ProfCore {
    spans: Mutex<Vec<SpanSample>>,
    mem: Mutex<MemLog>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A cloneable profiling handle: scoped spans plus the device-memory
/// ledger. A detached handle ignores everything at the cost of one
/// branch per call; clones of an attached handle share one buffer.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfCore>>,
}

impl Profiler {
    /// A live profiler with an empty buffer.
    pub fn attached() -> Self {
        Profiler {
            inner: Some(Arc::new(ProfCore {
                spans: Mutex::new(Vec::new()),
                mem: Mutex::new(MemLog::default()),
            })),
        }
    }

    /// A no-op handle: every call is one branch, nothing is stored.
    pub fn detached() -> Self {
        Profiler { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span named `label` under the current thread's span stack;
    /// it closes (and is recorded) when the returned guard drops. Guards
    /// must drop in LIFO order — bind them to scope ends, as usual.
    #[must_use = "a span measures the scope of its guard; dropping it immediately records nothing"]
    pub fn span(&self, label: &str) -> Span {
        let Some(core) = &self.inner else {
            return Span { core: None };
        };
        TL.with(|tl| {
            let mut tl = tl.borrow_mut();
            let path = match tl.frames.last() {
                Some(top) => format!("{};{label}", top.path),
                None => label.to_string(),
            };
            let start_clock = tl.clock;
            tl.frames.push(Frame {
                path,
                start_clock,
                child_modeled: 0.0,
                start_wall: Instant::now(),
                child_wall: 0.0,
            });
        });
        Span {
            core: Some(core.clone()),
        }
    }

    /// Record a leaf operation of known modeled duration (a kernel
    /// launch, a PCIe transfer) under the current span path, and advance
    /// this thread's modeled clock by `seconds`. The simulator calls
    /// this once per device op, in submission order.
    pub fn leaf(&self, label: &str, seconds: f64) {
        let Some(core) = &self.inner else { return };
        let sample = TL.with(|tl| {
            let mut tl = tl.borrow_mut();
            tl.clock += seconds;
            let path = match tl.frames.last_mut() {
                Some(top) => {
                    top.child_modeled += seconds;
                    format!("{};{label}", top.path)
                }
                None => label.to_string(),
            };
            SpanSample {
                path,
                modeled: seconds,
                modeled_self: seconds,
                wall: 0.0,
                wall_self: 0.0,
            }
        });
        lock(&core.spans).push(sample);
    }

    /// The calling thread's modeled clock (seconds advanced through
    /// [`Profiler::leaf`] on this thread). Always 0 when detached.
    pub fn modeled_now(&self) -> f64 {
        if self.inner.is_none() {
            return 0.0;
        }
        TL.with(|tl| tl.borrow().clock)
    }

    fn mem_event(&self, kind: MemEventKind, device: u32, label: &str, bytes: u64) {
        let Some(core) = &self.inner else { return };
        let clock = TL.with(|tl| tl.borrow().clock);
        lock(&core.mem).apply(kind, device, label, bytes, clock);
    }

    /// Ledger: `bytes` were reserved on `device` for a buffer labeled
    /// `label`.
    pub fn mem_alloc(&self, device: u32, label: &str, bytes: u64) {
        self.mem_event(MemEventKind::Alloc, device, label, bytes);
    }

    /// Ledger: a buffer labeled `label` released `bytes` on `device`.
    pub fn mem_free(&self, device: u32, label: &str, bytes: u64) {
        self.mem_event(MemEventKind::Free, device, label, bytes);
    }

    /// Ledger: `bytes` were uploaded into the buffer labeled `label` on
    /// `device` (H2D traffic into an existing allocation, or the initial
    /// fill of a fresh one).
    pub fn mem_upload(&self, device: u32, label: &str, bytes: u64) {
        self.mem_event(MemEventKind::Upload, device, label, bytes);
    }

    /// Ledger: `device` was dropped with `bytes` still allocated — a
    /// leak unless buffers deliberately outlive their device.
    pub fn mem_leak(&self, device: u32, bytes: u64) {
        self.mem_event(MemEventKind::Leak, device, "leak", bytes);
    }

    /// Snapshot the memory ledger. Empty when detached.
    pub fn memory_report(&self) -> MemoryReport {
        match &self.inner {
            Some(core) => lock(&core.mem).report(),
            None => MemoryReport::default(),
        }
    }

    /// The raw ledger events, in record order. Empty when detached.
    pub fn mem_events(&self) -> Vec<MemEvent> {
        match &self.inner {
            Some(core) => lock(&core.mem).events().to_vec(),
            None => Vec::new(),
        }
    }

    /// Fold every closed span into per-path statistics plus the memory
    /// ledger snapshot. Empty when detached.
    pub fn report(&self) -> ProfileReport {
        let spans = match &self.inner {
            Some(core) => report::fold(&lock(&core.spans)),
            None => Vec::new(),
        };
        ProfileReport {
            spans,
            memory: self.memory_report(),
        }
    }

    /// Number of closed spans (leaves included) recorded so far.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            Some(core) => lock(&core.spans).len(),
            None => 0,
        }
    }

    /// Drop every recorded span and ledger event (the handle stays
    /// attached; per-thread clocks are *not* reset).
    pub fn clear(&self) {
        if let Some(core) = &self.inner {
            lock(&core.spans).clear();
            lock(&core.mem).clear();
        }
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => write!(f, "Profiler(attached, {} spans)", self.span_count()),
            None => write!(f, "Profiler(detached)"),
        }
    }
}

/// Guard returned by [`Profiler::span`]; records the span when dropped.
pub struct Span {
    core: Option<Arc<ProfCore>>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(core) = self.core.take() else { return };
        let sample = TL.with(|tl| {
            let mut tl = tl.borrow_mut();
            let frame = tl.frames.pop()?;
            let modeled = tl.clock - frame.start_clock;
            let wall = frame.start_wall.elapsed().as_secs_f64();
            // Charge this span's inclusive cost to its parent so the
            // parent's exclusive (self) cost excludes it.
            if let Some(parent) = tl.frames.last_mut() {
                parent.child_modeled += modeled;
                parent.child_wall += wall;
            }
            Some(SpanSample {
                path: frame.path,
                modeled,
                modeled_self: (modeled - frame.child_modeled).max(0.0),
                wall,
                wall_self: (wall - frame.child_wall).max(0.0),
            })
        });
        if let Some(sample) = sample {
            lock(&core.spans).push(sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_profiler_records_nothing() {
        let p = Profiler::detached();
        {
            let _g = p.span("root");
            p.leaf("kernel", 1.0);
        }
        p.mem_alloc(0, "coords", 64);
        assert!(!p.is_enabled());
        assert_eq!(p.span_count(), 0);
        assert!(p.report().spans.is_empty());
        assert!(p.memory_report().devices.is_empty());
        assert_eq!(p.modeled_now(), 0.0);
    }

    #[test]
    fn nested_spans_fold_with_self_costs() {
        let p = Profiler::attached();
        {
            let _solve = p.span("solve");
            {
                let _sweep = p.span("sweep");
                p.leaf("kernel", 2.0);
                p.leaf("d2h", 1.0);
            }
            p.leaf("h2d", 4.0);
        }
        let report = p.report();
        let stat = |path: &str| {
            report
                .spans
                .iter()
                .find(|s| s.path == path)
                .unwrap_or_else(|| panic!("missing {path}"))
                .clone()
        };
        // 5 samples: solve, sweep, and the three leaves.
        assert_eq!(p.span_count(), 5);
        let solve = stat("solve");
        assert_eq!(solve.modeled_seconds, 7.0);
        assert_eq!(solve.modeled_self_seconds, 0.0);
        let sweep = stat("solve;sweep");
        assert_eq!(sweep.modeled_seconds, 3.0);
        assert_eq!(sweep.modeled_self_seconds, 0.0);
        assert_eq!(stat("solve;sweep;kernel").modeled_self_seconds, 2.0);
        assert_eq!(stat("solve;h2d").modeled_seconds, 4.0);
        assert_eq!(p.modeled_now(), 7.0);
    }

    #[test]
    fn repeated_paths_accumulate_counts() {
        let p = Profiler::attached();
        for _ in 0..3 {
            let _s = p.span("sweep");
            p.leaf("kernel", 1.0);
        }
        let report = p.report();
        let sweep = report.spans.iter().find(|s| s.path == "sweep").unwrap();
        assert_eq!(sweep.count, 3);
        assert_eq!(sweep.modeled_seconds, 3.0);
        let kernel = report
            .spans
            .iter()
            .find(|s| s.path == "sweep;kernel")
            .unwrap();
        assert_eq!(kernel.count, 3);
    }

    #[test]
    fn clones_share_one_buffer() {
        let p = Profiler::attached();
        let q = p.clone();
        q.leaf("kernel", 1.0);
        assert_eq!(p.span_count(), 1);
        p.clear();
        assert_eq!(q.span_count(), 0);
    }

    #[test]
    fn threads_carry_independent_clocks() {
        let p = Profiler::attached();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let p = p.clone();
                s.spawn(move || {
                    let _c = p.span("chain");
                    p.leaf("kernel", 1.5);
                    assert_eq!(p.modeled_now(), 1.5);
                });
            }
        });
        let report = p.report();
        let chain = report.spans.iter().find(|s| s.path == "chain").unwrap();
        assert_eq!(chain.count, 2);
        assert_eq!(chain.modeled_seconds, 3.0);
        // The spawning thread never advanced its own clock.
        assert_eq!(p.modeled_now(), 0.0);
    }

    #[test]
    fn ledger_tracks_live_and_peak() {
        let p = Profiler::attached();
        p.mem_alloc(0, "coords", 100);
        p.mem_alloc(0, "out", 8);
        p.mem_upload(0, "coords", 100);
        p.mem_free(0, "coords", 100);
        p.mem_alloc(0, "coords", 100);
        p.mem_free(0, "coords", 100);
        p.mem_free(0, "out", 8);
        let m = p.memory_report();
        assert_eq!(m.devices.len(), 1);
        assert_eq!(m.devices[0].live_bytes, 0);
        assert_eq!(m.devices[0].peak_bytes, 108);
        assert!(m.balanced());
        let coords = m.label(0, "coords").unwrap();
        assert_eq!(coords.allocs, 2);
        assert_eq!(coords.alloc_bytes, 200);
        assert_eq!(coords.upload_bytes, 100);
        assert_eq!(coords.peak_bytes, 100);
        assert_eq!(coords.live_bytes, 0);
    }

    #[test]
    fn leak_events_unbalance_the_report() {
        let p = Profiler::attached();
        p.mem_alloc(1, "coords", 64);
        p.mem_leak(1, 64);
        let m = p.memory_report();
        assert!(!m.balanced());
        assert_eq!(m.devices[0].leaked_bytes, 64);
    }
}
