//! Run manifests: a deterministic `run_id` plus a `manifest.json`
//! schema indexing every artifact one solve produced (trace, journal,
//! recording, flamegraph, memory report), so tools can correlate them
//! without guessing at file names.

use tsp_trace::json::{self, Json};

/// Derive a deterministic 16-hex-digit run id from content digests
/// (instance digest, spec digest, a config hash, ...). The same inputs
/// always produce the same id — which is exactly what lets a replayed
/// run land on the artifacts of the original.
pub fn run_id_from_parts(parts: &[u64]) -> String {
    // splitmix64 finalizer over a running fold: cheap, stable, and
    // well-mixed even for near-identical inputs.
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        h ^= p;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    format!("{h:016x}")
}

/// One artifact referenced by a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Artifact kind: `"trace"`, `"journal"`, `"recording"`,
    /// `"flamegraph"`, `"flamegraph_wall"`, `"memory"`, ...
    pub kind: String,
    /// Path of the artifact, relative to the manifest's directory.
    pub path: String,
}

/// The index of one run's artifacts, keyed by its deterministic run id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// The run id every listed artifact is stamped with.
    pub run_id: String,
    /// The artifacts, in insertion order.
    pub entries: Vec<ManifestEntry>,
}

/// Wire format tag of `manifest.json`.
pub const MANIFEST_FORMAT: &str = "tsp-run-manifest/v1";

impl Manifest {
    /// An empty manifest for `run_id`.
    pub fn new(run_id: impl Into<String>) -> Self {
        Manifest {
            run_id: run_id.into(),
            entries: Vec::new(),
        }
    }

    /// Append an artifact.
    pub fn push(&mut self, kind: impl Into<String>, path: impl Into<String>) -> &mut Self {
        self.entries.push(ManifestEntry {
            kind: kind.into(),
            path: path.into(),
        });
        self
    }

    /// The path registered under `kind`, when present.
    pub fn path_of(&self, kind: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.kind == kind)
            .map(|e| e.path.as_str())
    }

    /// Serialize as `manifest.json`.
    pub fn to_json_string(&self) -> String {
        let mut root = Json::obj();
        root.set("format", Json::Str(MANIFEST_FORMAT.into()));
        root.set("run_id", Json::Str(self.run_id.clone()));
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut o = Json::obj();
                o.set("kind", Json::Str(e.kind.clone()));
                o.set("path", Json::Str(e.path.clone()));
                o
            })
            .collect();
        root.set("artifacts", Json::Arr(entries));
        root.to_string()
    }

    /// Parse a document produced by [`Manifest::to_json_string`].
    /// Unknown keys are ignored so the schema can grow.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let root = json::parse(text).map_err(|e| format!("manifest: {e}"))?;
        if root.get("format").and_then(Json::as_str) != Some(MANIFEST_FORMAT) {
            return Err("manifest: unknown format".into());
        }
        let mut manifest = Manifest::new(
            root.get("run_id")
                .and_then(Json::as_str)
                .ok_or("manifest: missing run_id")?,
        );
        for e in root
            .get("artifacts")
            .and_then(Json::as_array)
            .ok_or("manifest: missing artifacts")?
        {
            let kind = e
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("manifest: artifact missing kind")?;
            let path = e
                .get("path")
                .and_then(Json::as_str)
                .ok_or("manifest: artifact missing path")?;
            manifest.push(kind, path);
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ids_are_deterministic_and_distinct() {
        let a = run_id_from_parts(&[1, 2, 3]);
        assert_eq!(a, run_id_from_parts(&[1, 2, 3]));
        assert_ne!(a, run_id_from_parts(&[1, 2, 4]));
        assert_ne!(a, run_id_from_parts(&[3, 2, 1]));
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn manifest_round_trips() {
        let mut m = Manifest::new("00ff00ff00ff00ff");
        m.push("trace", "run.trace.json")
            .push("flamegraph", "run.folded")
            .push("memory", "run.memory.json");
        let text = m.to_json_string();
        let parsed = Manifest::parse(&text).expect("own output parses");
        assert_eq!(parsed, m);
        assert_eq!(parsed.path_of("flamegraph"), Some("run.folded"));
        assert_eq!(parsed.path_of("nope"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Manifest::parse("{}").is_err());
        assert!(Manifest::parse("{\"format\":\"tsp-run-manifest/v1\"}").is_err());
        assert!(Manifest::parse("nope").is_err());
    }
}
