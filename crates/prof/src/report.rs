//! Folding closed spans into per-path statistics, the collapsed-stack
//! flamegraph export, and the top-N hot-path table.

use crate::SpanSample;
use std::collections::BTreeMap;

/// Folded statistics of one call path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// `;`-joined call path (collapsed-stack convention).
    pub path: String,
    /// Number of spans folded into this path.
    pub count: u64,
    /// Inclusive modeled seconds.
    pub modeled_seconds: f64,
    /// Exclusive (self) modeled seconds.
    pub modeled_self_seconds: f64,
    /// Inclusive wall seconds.
    pub wall_seconds: f64,
    /// Exclusive (self) wall seconds.
    pub wall_self_seconds: f64,
}

pub(crate) fn fold(samples: &[SpanSample]) -> Vec<SpanStat> {
    let mut folded: BTreeMap<&str, SpanStat> = BTreeMap::new();
    for s in samples {
        let stat = folded.entry(&s.path).or_insert_with(|| SpanStat {
            path: s.path.clone(),
            count: 0,
            modeled_seconds: 0.0,
            modeled_self_seconds: 0.0,
            wall_seconds: 0.0,
            wall_self_seconds: 0.0,
        });
        stat.count += 1;
        stat.modeled_seconds += s.modeled;
        stat.modeled_self_seconds += s.modeled_self;
        stat.wall_seconds += s.wall;
        stat.wall_self_seconds += s.wall_self;
    }
    folded.into_values().collect()
}

/// A profiler snapshot: folded spans plus the memory ledger.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Per-path span statistics, ordered by path.
    pub spans: Vec<SpanStat>,
    /// The device-memory ledger snapshot.
    pub memory: crate::MemoryReport,
}

fn collapsed(spans: &[SpanStat], weight: impl Fn(&SpanStat) -> f64) -> String {
    let mut out = String::new();
    for s in spans {
        let w = (weight(s) * 1e9).round() as u64;
        if w > 0 {
            out.push_str(&s.path);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
    }
    out
}

impl ProfileReport {
    /// Collapsed-stack flamegraph on the **modeled** clock: one line per
    /// path, weighted by exclusive modeled nanoseconds. The text format
    /// `inferno-flamegraph` (and speedscope) consume directly; paths
    /// whose self cost rounds to zero are omitted.
    pub fn flamegraph(&self) -> String {
        collapsed(&self.spans, |s| s.modeled_self_seconds)
    }

    /// Collapsed-stack flamegraph on the **wall** clock (exclusive wall
    /// nanoseconds). Leaf device ops carry no wall cost — host submit
    /// time stays attributed to the enclosing span.
    pub fn flamegraph_wall(&self) -> String {
        collapsed(&self.spans, |s| s.wall_self_seconds)
    }

    /// The `n` hottest paths by exclusive modeled seconds.
    pub fn hot_paths(&self, n: usize) -> Vec<&SpanStat> {
        let mut sorted: Vec<&SpanStat> = self.spans.iter().collect();
        sorted.sort_by(|a, b| {
            b.modeled_self_seconds
                .total_cmp(&a.modeled_self_seconds)
                .then_with(|| a.path.cmp(&b.path))
        });
        sorted.truncate(n);
        sorted
    }

    /// Render the top-`n` hot-path table (modeled + wall columns).
    pub fn render_hot(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str("calls    modeled s      self s         wall s         path\n");
        for s in self.hot_paths(n) {
            out.push_str(&format!(
                "{:<8} {:<14.9} {:<14.9} {:<14.9} {}\n",
                s.count, s.modeled_seconds, s.modeled_self_seconds, s.wall_seconds, s.path
            ));
        }
        out
    }
}

/// Parse collapsed-stack text (`path weight` per line) back into
/// `(path, weight)` pairs — the `tsp-inspect flame` reader.
pub fn parse_collapsed(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let (path, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: expected \"path weight\"", lineno + 1))?;
        let weight: u64 = weight
            .parse()
            .map_err(|_| format!("line {}: bad weight {weight:?}", lineno + 1))?;
        if path.is_empty() {
            return Err(format!("line {}: empty path", lineno + 1));
        }
        out.push((path.to_string(), weight));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profiler;

    fn sample_report() -> ProfileReport {
        let p = Profiler::attached();
        {
            let _a = p.span("solve");
            {
                let _b = p.span("sweep");
                p.leaf("kernel", 3e-3);
            }
            {
                let _b = p.span("sweep");
                p.leaf("kernel", 2e-3);
            }
        }
        p.report()
    }

    #[test]
    fn flamegraph_lines_are_collapsed_stacks() {
        let fg = sample_report().flamegraph();
        let parsed = parse_collapsed(&fg).expect("own output parses");
        // Only the kernel leaves carry self cost on the modeled clock.
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "solve;sweep;kernel");
        assert_eq!(parsed[0].1, 5_000_000); // 5 ms in ns
    }

    #[test]
    fn hot_paths_rank_by_self_cost() {
        let report = sample_report();
        let hot = report.hot_paths(1);
        assert_eq!(hot[0].path, "solve;sweep;kernel");
        assert_eq!(hot[0].count, 2);
        let table = report.render_hot(5);
        assert!(table.contains("solve;sweep;kernel"));
    }

    #[test]
    fn parse_collapsed_rejects_malformed_lines() {
        assert!(parse_collapsed("justonepath\n").is_err());
        assert!(parse_collapsed("path notanumber\n").is_err());
        assert!(parse_collapsed(" 12\n").is_err());
        assert_eq!(parse_collapsed("").unwrap(), vec![]);
    }
}
