//! The divergence bisector: given an expected event stream (a
//! recording) and an actual one (a live re-run), find the first event
//! where they disagree and build a structured diagnosis.
//!
//! Both streams are deterministic appends, so prefix equality is
//! monotone in the prefix length — which is what makes binary search
//! valid: if prefixes of length `m` match, so do all shorter ones.

use crate::event::ReplayEvent;
use crate::recorder::FlightEntry;
use std::fmt;

fn prefix_eq(expected: &[ReplayEvent], actual: &[ReplayEvent], len: usize) -> bool {
    expected[..len]
        .iter()
        .zip(&actual[..len])
        .all(|(e, a)| e.bit_eq(a))
}

/// Index of the first event where the streams disagree (an index equal
/// to the shorter length means one stream is a strict prefix of the
/// other), or `None` when they are bit-identical end to end.
///
/// Binary search on the longest matching prefix: each probe compares
/// the candidate prefix, so the divergent event is localized in
/// `O(n log n)` comparisons without assuming anything about how the
/// streams behave *after* the divergence.
pub fn first_divergence(expected: &[ReplayEvent], actual: &[ReplayEvent]) -> Option<usize> {
    let max = expected.len().min(actual.len());
    if prefix_eq(expected, actual, max) {
        return if expected.len() == actual.len() {
            None
        } else {
            Some(max)
        };
    }
    // Invariant: prefix of length `lo` matches, prefix of length `hi`
    // does not.
    let (mut lo, mut hi) = (0usize, max);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if prefix_eq(expected, actual, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// A structured divergence diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Chain whose sub-stream diverged.
    pub chain: u64,
    /// Event index *within the chain's sub-stream* of the first
    /// disagreement.
    pub index: usize,
    /// What the recording expected there (`None`: recording ended).
    pub expected: Option<ReplayEvent>,
    /// What the live run produced (`None`: live stream ended).
    pub actual: Option<ReplayEvent>,
}

fn describe(f: &mut fmt::Formatter<'_>, label: &str, event: &Option<ReplayEvent>) -> fmt::Result {
    match event {
        None => writeln!(f, "  {label}: <stream ended>"),
        Some(e) => {
            writeln!(f, "  {label}: {e:?}")?;
            if let Some(rng) = e.rng_state() {
                writeln!(
                    f,
                    "    rng state: {:016x} {:016x} {:016x} {:016x}",
                    rng[0], rng[1], rng[2], rng[3]
                )?;
            }
            if let Some(h) = e.tour_hash() {
                writeln!(f, "    tour hash: {h:016x}")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence at chain {} event {}{}:",
            self.chain,
            self.index,
            match self.expected.as_ref().map(ReplayEvent::iteration) {
                Some(Some(it)) => format!(" (iteration {it})"),
                _ => String::new(),
            }
        )?;
        describe(f, "expected", &self.expected)?;
        describe(f, "actual  ", &self.actual)
    }
}

/// Outcome of comparing a recording's stream against a live run's.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Chains compared.
    pub chains: usize,
    /// Events verified bit-identical across all compared chains.
    pub events_checked: usize,
    /// The first divergence found (lowest chain id wins), if any.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// `true` when every chain matched end to end.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.divergence {
            None => write!(
                f,
                "replay clean: {} events bit-identical across {} chain(s)",
                self.events_checked, self.chains
            ),
            Some(d) => write!(
                f,
                "replay diverged after {} clean events across {} chain(s)\n{d}",
                self.events_checked, self.chains
            ),
        }
    }
}

/// Compare two chain-stamped streams chain by chain. Chains present in
/// only one stream count as divergent at index 0 (or at the end of the
/// shorter sub-stream).
pub fn compare_streams(expected: &[FlightEntry], actual: &[FlightEntry]) -> ReplayReport {
    let split = |entries: &[FlightEntry], chain: u64| -> Vec<ReplayEvent> {
        entries
            .iter()
            .filter(|e| e.chain == chain)
            .map(|e| e.event.clone())
            .collect()
    };
    let mut chains: Vec<u64> = expected.iter().chain(actual).map(|e| e.chain).collect();
    chains.sort_unstable();
    chains.dedup();

    let mut events_checked = 0usize;
    let mut divergence = None;
    for &chain in &chains {
        let exp = split(expected, chain);
        let act = split(actual, chain);
        match first_divergence(&exp, &act) {
            None => events_checked += exp.len(),
            Some(index) => {
                events_checked += index;
                if divergence.is_none() {
                    divergence = Some(Divergence {
                        chain,
                        index,
                        expected: exp.get(index).cloned(),
                        actual: act.get(index).cloned(),
                    });
                }
            }
        }
    }
    ReplayReport {
        chains: chains.len(),
        events_checked,
        divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(hashes: &[u64]) -> Vec<ReplayEvent> {
        hashes
            .iter()
            .map(|&h| ReplayEvent::Start { tour_hash: h })
            .collect()
    }

    #[test]
    fn identical_streams_are_clean() {
        let s = stream(&[1, 2, 3, 4, 5]);
        assert_eq!(first_divergence(&s, &s), None);
    }

    #[test]
    fn bisection_localizes_every_position() {
        let base: Vec<u64> = (0..97).collect();
        for fault in 0..base.len() {
            let mut tampered = base.clone();
            tampered[fault] = 1_000_000 + fault as u64;
            assert_eq!(
                first_divergence(&stream(&base), &stream(&tampered)),
                Some(fault),
                "fault injected at {fault}"
            );
        }
    }

    #[test]
    fn prefix_truncation_diverges_at_the_cut() {
        let full = stream(&[1, 2, 3, 4]);
        let cut = stream(&[1, 2]);
        assert_eq!(first_divergence(&full, &cut), Some(2));
        assert_eq!(first_divergence(&cut, &full), Some(2));
        assert_eq!(first_divergence(&full, &[]), Some(0));
    }

    #[test]
    fn compare_streams_reports_lowest_divergent_chain() {
        let entry = |chain, h| FlightEntry {
            chain,
            event: ReplayEvent::Start { tour_hash: h },
        };
        let expected = vec![entry(0, 1), entry(1, 10), entry(0, 2), entry(1, 11)];
        let mut actual = expected.clone();
        let clean = compare_streams(&expected, &actual);
        assert!(clean.is_clean());
        assert_eq!(clean.events_checked, 4);
        assert_eq!(clean.chains, 2);

        // Tamper with chain 1's second event.
        actual[3] = entry(1, 99);
        let report = compare_streams(&expected, &actual);
        let d = report.divergence.clone().expect("must diverge");
        assert_eq!((d.chain, d.index), (1, 1));
        assert_eq!(d.expected, Some(ReplayEvent::Start { tour_hash: 11 }));
        assert_eq!(d.actual, Some(ReplayEvent::Start { tour_hash: 99 }));
        // 2 clean on chain 0 + 1 clean on chain 1 before the fault.
        assert_eq!(report.events_checked, 3);
        let text = report.to_string();
        assert!(text.contains("chain 1 event 1"), "{text}");
        assert!(text.contains("tour hash"), "{text}");
    }
}
