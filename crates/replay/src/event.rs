//! The replay event model: one [`ReplayEvent`] per search decision,
//! with a JSON codec built on `tsp-trace`'s hand-rolled [`Json`].
//!
//! Values that do not fit an `f64` exactly — packed best-move words,
//! xoshiro256++ state words, tour digests — are encoded as fixed-width
//! lowercase hex strings, because the JSON number type is `f64` and
//! would silently round anything above 2^53. Tour lengths and move
//! deltas stay plain numbers (they are sums of `i32` edge weights, far
//! inside the exact-integer range). Modeled seconds are written through
//! `f64` `Display`, which round-trips bit-exactly for finite values.

use tsp_core::KickMove;
use tsp_trace::json::Json;

/// One recorded decision of a 2-opt/ILS run, in stream order.
///
/// A chain's stream is: [`Start`](ReplayEvent::Start), the initial
/// descent ([`Sweep`](ReplayEvent::Sweep)* then
/// [`DescentEnd`](ReplayEvent::DescentEnd) with `iteration = 0`), then
/// per ILS iteration a [`Kick`](ReplayEvent::Kick), the descent's
/// `Sweep`*/`DescentEnd`, an [`Acceptance`](ReplayEvent::Acceptance)
/// and possibly a [`Restart`](ReplayEvent::Restart), and finally
/// [`Final`](ReplayEvent::Final). Plain descents (no ILS) record
/// `Start`, `Sweep`*, `DescentEnd`, `Final`.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayEvent {
    /// The chain's starting tour.
    Start {
        /// [`crate::hash_tour`] of the start tour.
        tour_hash: u64,
    },
    /// One applied improving 2-opt move.
    Sweep {
        /// Left tour position of the candidate pair.
        i: u32,
        /// Right tour position of the candidate pair.
        j: u32,
        /// The move's (negative) length delta.
        delta: i32,
        /// The packed best-move word as read back from the device
        /// (`tsp_2opt::bestmove::pack` layout), or a host-side repack
        /// for engines without a device word.
        key: u64,
    },
    /// A local-search descent reached its stopping point.
    DescentEnd {
        /// ILS iteration the descent belongs to (0 = initial descent).
        iteration: u64,
        /// Sweeps performed, including the final unsuccessful one.
        sweeps: u64,
        /// Tour length at the local minimum.
        length: i64,
        /// Digest of the descended tour.
        tour_hash: u64,
        /// The descent's own modeled seconds (bit-exact).
        modeled_seconds: f64,
    },
    /// A perturbation, with the RNG checkpoint taken *before* the
    /// draws and the concrete cut points drawn.
    Kick {
        /// ILS iteration (1-based).
        iteration: u64,
        /// xoshiro256++ state before the perturbation consumed it.
        rng: [u64; 4],
        /// The kick moves applied, in order.
        kicks: Vec<KickMove>,
    },
    /// The acceptance decision for an iteration's candidate.
    Acceptance {
        /// ILS iteration (1-based).
        iteration: u64,
        /// Incumbent length going into the decision.
        incumbent_length: i64,
        /// The candidate's (descended) length.
        candidate_length: i64,
        /// Whether the candidate was accepted.
        accepted: bool,
        /// xoshiro256++ state after the decision (Metropolis consumes
        /// a draw; `Better` does not).
        rng: [u64; 4],
        /// Digest of the incumbent after the decision.
        tour_hash: u64,
    },
    /// A stagnation restart: the incumbent was reset to the best tour.
    Restart {
        /// ILS iteration at which the restart fired.
        iteration: u64,
        /// Digest of the restored incumbent (= best tour).
        tour_hash: u64,
    },
    /// End of the chain.
    Final {
        /// Total ILS iterations performed (0 for a plain descent).
        iterations: u64,
        /// Best tour length found.
        best_length: i64,
        /// Digest of the best tour.
        tour_hash: u64,
        /// Total modeled seconds over every sweep (bit-exact).
        modeled_seconds: f64,
    },
}

fn hex(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn rng_json(rng: &[u64; 4]) -> Json {
    Json::Arr(rng.iter().map(|&w| hex(w)).collect())
}

fn kick_str(kick: &KickMove) -> String {
    match *kick {
        KickMove::DoubleBridge { a, b, c } => format!("db:{a}:{b}:{c}"),
        KickMove::SegmentReversal { i, j } => format!("rev:{i}:{j}"),
        KickMove::Noop => "noop".to_string(),
    }
}

fn parse_kick(s: &str) -> Result<KickMove, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let num = |p: &str| {
        p.parse::<usize>()
            .map_err(|_| format!("bad kick operand {p:?} in {s:?}"))
    };
    match parts.as_slice() {
        ["noop"] => Ok(KickMove::Noop),
        ["db", a, b, c] => Ok(KickMove::DoubleBridge {
            a: num(a)?,
            b: num(b)?,
            c: num(c)?,
        }),
        ["rev", i, j] => Ok(KickMove::SegmentReversal {
            i: num(i)?,
            j: num(j)?,
        }),
        _ => Err(format!("unknown kick move {s:?}")),
    }
}

fn get_hex(obj: &Json, key: &str) -> Result<u64, String> {
    let s = obj
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing hex field {key:?}"))?;
    u64::from_str_radix(s, 16).map_err(|_| format!("bad hex in {key:?}: {s:?}"))
}

fn get_num(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    Ok(get_num(obj, key)? as u64)
}

fn get_i64(obj: &Json, key: &str) -> Result<i64, String> {
    Ok(get_num(obj, key)? as i64)
}

fn get_rng(obj: &Json, key: &str) -> Result<[u64; 4], String> {
    let arr = obj
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing rng field {key:?}"))?;
    if arr.len() != 4 {
        return Err(format!("rng state must have 4 words, got {}", arr.len()));
    }
    let mut out = [0u64; 4];
    for (slot, word) in out.iter_mut().zip(arr) {
        let s = word.as_str().ok_or("rng word must be a hex string")?;
        *slot = u64::from_str_radix(s, 16).map_err(|_| format!("bad rng word {s:?}"))?;
    }
    Ok(out)
}

impl ReplayEvent {
    /// The event's type tag as written to JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            ReplayEvent::Start { .. } => "start",
            ReplayEvent::Sweep { .. } => "sweep",
            ReplayEvent::DescentEnd { .. } => "descent_end",
            ReplayEvent::Kick { .. } => "kick",
            ReplayEvent::Acceptance { .. } => "acceptance",
            ReplayEvent::Restart { .. } => "restart",
            ReplayEvent::Final { .. } => "final",
        }
    }

    /// The ILS iteration the event belongs to, where defined.
    pub fn iteration(&self) -> Option<u64> {
        match self {
            ReplayEvent::DescentEnd { iteration, .. }
            | ReplayEvent::Kick { iteration, .. }
            | ReplayEvent::Acceptance { iteration, .. }
            | ReplayEvent::Restart { iteration, .. } => Some(*iteration),
            _ => None,
        }
    }

    /// The tour digest the event carries, where defined.
    pub fn tour_hash(&self) -> Option<u64> {
        match self {
            ReplayEvent::Start { tour_hash }
            | ReplayEvent::DescentEnd { tour_hash, .. }
            | ReplayEvent::Acceptance { tour_hash, .. }
            | ReplayEvent::Restart { tour_hash, .. }
            | ReplayEvent::Final { tour_hash, .. } => Some(*tour_hash),
            ReplayEvent::Sweep { .. } | ReplayEvent::Kick { .. } => None,
        }
    }

    /// The RNG checkpoint the event carries, where defined.
    pub fn rng_state(&self) -> Option<[u64; 4]> {
        match self {
            ReplayEvent::Kick { rng, .. } | ReplayEvent::Acceptance { rng, .. } => Some(*rng),
            _ => None,
        }
    }

    /// Structural equality with `f64` fields compared *by bit pattern*
    /// (`PartialEq` would conflate `0.0`/`-0.0` and reject equal NaNs).
    /// The bisector compares with this, so a replay that matches every
    /// decision but drifts by one ulp of modeled time still diverges.
    pub fn bit_eq(&self, other: &ReplayEvent) -> bool {
        use ReplayEvent::*;
        match (self, other) {
            (
                DescentEnd {
                    iteration: a1,
                    sweeps: a2,
                    length: a3,
                    tour_hash: a4,
                    modeled_seconds: a5,
                },
                DescentEnd {
                    iteration: b1,
                    sweeps: b2,
                    length: b3,
                    tour_hash: b4,
                    modeled_seconds: b5,
                },
            ) => a1 == b1 && a2 == b2 && a3 == b3 && a4 == b4 && a5.to_bits() == b5.to_bits(),
            (
                Final {
                    iterations: a1,
                    best_length: a2,
                    tour_hash: a3,
                    modeled_seconds: a4,
                },
                Final {
                    iterations: b1,
                    best_length: b2,
                    tour_hash: b3,
                    modeled_seconds: b4,
                },
            ) => a1 == b1 && a2 == b2 && a3 == b3 && a4.to_bits() == b4.to_bits(),
            (a, b) => a == b,
        }
    }

    /// Encode as a JSON object (without the chain stamp — the
    /// [`crate::Recording`] writer adds it).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("type", Json::Str(self.kind().to_string()));
        match self {
            ReplayEvent::Start { tour_hash } => {
                obj.set("tour", hex(*tour_hash));
            }
            ReplayEvent::Sweep { i, j, delta, key } => {
                obj.set("i", Json::from(u64::from(*i)))
                    .set("j", Json::from(u64::from(*j)))
                    .set("delta", Json::from(i64::from(*delta)))
                    .set("key", hex(*key));
            }
            ReplayEvent::DescentEnd {
                iteration,
                sweeps,
                length,
                tour_hash,
                modeled_seconds,
            } => {
                obj.set("iter", Json::from(*iteration))
                    .set("sweeps", Json::from(*sweeps))
                    .set("length", Json::from(*length))
                    .set("tour", hex(*tour_hash))
                    .set("modeled", Json::from(*modeled_seconds));
            }
            ReplayEvent::Kick {
                iteration,
                rng,
                kicks,
            } => {
                obj.set("iter", Json::from(*iteration))
                    .set("rng", rng_json(rng))
                    .set(
                        "kicks",
                        Json::Arr(kicks.iter().map(|k| Json::Str(kick_str(k))).collect()),
                    );
            }
            ReplayEvent::Acceptance {
                iteration,
                incumbent_length,
                candidate_length,
                accepted,
                rng,
                tour_hash,
            } => {
                obj.set("iter", Json::from(*iteration))
                    .set("incumbent", Json::from(*incumbent_length))
                    .set("candidate", Json::from(*candidate_length))
                    .set("accepted", Json::from(*accepted))
                    .set("rng", rng_json(rng))
                    .set("tour", hex(*tour_hash));
            }
            ReplayEvent::Restart {
                iteration,
                tour_hash,
            } => {
                obj.set("iter", Json::from(*iteration))
                    .set("tour", hex(*tour_hash));
            }
            ReplayEvent::Final {
                iterations,
                best_length,
                tour_hash,
                modeled_seconds,
            } => {
                obj.set("iters", Json::from(*iterations))
                    .set("best", Json::from(*best_length))
                    .set("tour", hex(*tour_hash))
                    .set("modeled", Json::from(*modeled_seconds));
            }
        }
        obj
    }

    /// Decode an event object produced by [`ReplayEvent::to_json`].
    pub fn from_json(obj: &Json) -> Result<ReplayEvent, String> {
        let kind = obj
            .get("type")
            .and_then(Json::as_str)
            .ok_or("event without a type tag")?;
        match kind {
            "start" => Ok(ReplayEvent::Start {
                tour_hash: get_hex(obj, "tour")?,
            }),
            "sweep" => Ok(ReplayEvent::Sweep {
                i: get_u64(obj, "i")? as u32,
                j: get_u64(obj, "j")? as u32,
                delta: get_i64(obj, "delta")? as i32,
                key: get_hex(obj, "key")?,
            }),
            "descent_end" => Ok(ReplayEvent::DescentEnd {
                iteration: get_u64(obj, "iter")?,
                sweeps: get_u64(obj, "sweeps")?,
                length: get_i64(obj, "length")?,
                tour_hash: get_hex(obj, "tour")?,
                modeled_seconds: get_num(obj, "modeled")?,
            }),
            "kick" => {
                let kicks = obj
                    .get("kicks")
                    .and_then(Json::as_array)
                    .ok_or("kick without kicks array")?
                    .iter()
                    .map(|k| parse_kick(k.as_str().ok_or("kick move must be a string")?))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ReplayEvent::Kick {
                    iteration: get_u64(obj, "iter")?,
                    rng: get_rng(obj, "rng")?,
                    kicks,
                })
            }
            "acceptance" => Ok(ReplayEvent::Acceptance {
                iteration: get_u64(obj, "iter")?,
                incumbent_length: get_i64(obj, "incumbent")?,
                candidate_length: get_i64(obj, "candidate")?,
                accepted: obj
                    .get("accepted")
                    .and_then(Json::as_bool)
                    .ok_or("acceptance without accepted flag")?,
                rng: get_rng(obj, "rng")?,
                tour_hash: get_hex(obj, "tour")?,
            }),
            "restart" => Ok(ReplayEvent::Restart {
                iteration: get_u64(obj, "iter")?,
                tour_hash: get_hex(obj, "tour")?,
            }),
            "final" => Ok(ReplayEvent::Final {
                iterations: get_u64(obj, "iters")?,
                best_length: get_i64(obj, "best")?,
                tour_hash: get_hex(obj, "tour")?,
                modeled_seconds: get_num(obj, "modeled")?,
            }),
            other => Err(format!("unknown event type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_trace::json;

    fn samples() -> Vec<ReplayEvent> {
        vec![
            ReplayEvent::Start {
                tour_hash: u64::MAX,
            },
            ReplayEvent::Sweep {
                i: 12,
                j: 907,
                delta: -314,
                key: 0xfedc_ba98_7654_3210,
            },
            ReplayEvent::DescentEnd {
                iteration: 0,
                sweeps: 41,
                length: 123_456_789,
                tour_hash: 0x0123_4567_89ab_cdef,
                modeled_seconds: 1.25e-4,
            },
            ReplayEvent::Kick {
                iteration: 3,
                rng: [u64::MAX, 1, 0, 0x8000_0000_0000_0001],
                kicks: vec![
                    tsp_core::KickMove::DoubleBridge { a: 3, b: 9, c: 40 },
                    tsp_core::KickMove::SegmentReversal { i: 1, j: 5 },
                    tsp_core::KickMove::Noop,
                ],
            },
            ReplayEvent::Acceptance {
                iteration: 3,
                incumbent_length: 900,
                candidate_length: 890,
                accepted: true,
                rng: [5, 6, 7, 8],
                tour_hash: 77,
            },
            ReplayEvent::Restart {
                iteration: 4,
                tour_hash: 78,
            },
            ReplayEvent::Final {
                iterations: 4,
                best_length: 890,
                tour_hash: 77,
                modeled_seconds: 0.000244140625,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json_text() {
        for event in samples() {
            let text = event.to_json().to_string();
            let parsed = json::parse(&text).expect("writer output parses");
            let back = ReplayEvent::from_json(&parsed).expect("event decodes");
            assert!(event.bit_eq(&back), "{event:?} vs {back:?}");
            assert_eq!(event, back);
        }
    }

    #[test]
    fn hex_fields_survive_above_2_pow_53() {
        // The f64-backed JSON number type would round these; the hex
        // string codec must not.
        let event = ReplayEvent::Sweep {
            i: 0,
            j: 1,
            delta: -1,
            key: (1u64 << 53) + 1,
        };
        let text = event.to_json().to_string();
        let back = ReplayEvent::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(event, back);
    }

    #[test]
    fn bit_eq_distinguishes_one_ulp_of_modeled_time() {
        let a = ReplayEvent::Final {
            iterations: 1,
            best_length: 10,
            tour_hash: 1,
            modeled_seconds: 1.0,
        };
        let b = ReplayEvent::Final {
            iterations: 1,
            best_length: 10,
            tour_hash: 1,
            modeled_seconds: f64::from_bits(1.0f64.to_bits() + 1),
        };
        assert!(a.bit_eq(&a));
        assert!(!a.bit_eq(&b));
    }
}
