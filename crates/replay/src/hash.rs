//! Content digests used by recordings: FNV-1a over the bytes that
//! determine a run — tour orders, instance geometry — so a recording
//! can refuse to replay against the wrong inputs.

use tsp_core::{Instance, Tour};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `state` (seed the first
/// call with [`fnv1a_init`]).
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The FNV-1a offset basis (the starting state).
pub fn fnv1a_init() -> u64 {
    FNV_OFFSET
}

/// Digest of a visiting order: every recorded tour hash in a flight
/// recording is this function over the tour at that event.
pub fn hash_order(order: &[u32]) -> u64 {
    let mut h = FNV_OFFSET;
    for &c in order {
        h = fnv1a(h, &c.to_le_bytes());
    }
    h
}

/// [`hash_order`] of a [`Tour`].
pub fn hash_tour(tour: &Tour) -> u64 {
    hash_order(tour.as_slice())
}

/// Digest of the inputs that determine every distance an engine will
/// ever compute for `inst`: the metric, the city count, and either the
/// coordinate bit patterns or the explicit matrix entries. Two
/// instances with equal digests drive a deterministic solver through
/// identical move sequences.
pub fn digest_instance(inst: &Instance) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, format!("{:?}", inst.metric()).as_bytes());
    h = fnv1a(h, &(inst.len() as u64).to_le_bytes());
    if inst.is_coordinate_based() {
        for p in inst.points() {
            h = fnv1a(h, &p.x.to_bits().to_le_bytes());
            h = fnv1a(h, &p.y.to_bits().to_le_bytes());
        }
    } else {
        for i in 0..inst.len() {
            for j in (i + 1)..inst.len() {
                h = fnv1a(h, &inst.dist(i, j).to_le_bytes());
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsp_core::{Metric, Point};

    fn square(name: &str, jitter: f32) -> Instance {
        Instance::new(
            name,
            Metric::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0 + jitter),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn tour_hash_is_order_sensitive() {
        let a = Tour::identity(8);
        let mut b = Tour::identity(8);
        b.apply_two_opt(1, 4);
        assert_ne!(hash_tour(&a), hash_tour(&b));
        assert_eq!(hash_tour(&a), hash_order(&[0, 1, 2, 3, 4, 5, 6, 7]));
    }

    #[test]
    fn instance_digest_ignores_name_but_not_geometry() {
        // The name is presentation, not geometry: digests must match so
        // a renamed copy of the same instance still replays.
        assert_eq!(
            digest_instance(&square("a", 0.0)),
            digest_instance(&square("b", 0.0))
        );
        assert_ne!(
            digest_instance(&square("a", 0.0)),
            digest_instance(&square("a", 0.5))
        );
    }
}
