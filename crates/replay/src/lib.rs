//! # tsp-replay
//!
//! The flight recorder: a replayable event log of every *decision* a
//! 2-opt/ILS run makes — applied moves with their packed best-move
//! words, perturbation cut points, RNG checkpoints, acceptance
//! decisions — enough to reproduce the run bit for bit, long after the
//! fact.
//!
//! Where the other observability layers answer *how fast* (`tsp-trace`
//! Chrome traces, `tsp-telemetry` metrics) and *how well*
//! (`tsp-telemetry`'s convergence journal), a [`Recording`] answers
//! *why*: which move was applied at each sweep, what the generator
//! state was before each kick, and which candidates were accepted.
//!
//! * [`FlightRecorder`] — the zero-cost-when-detached handle threaded
//!   through the search and ILS layers, chain-stamped for sharded
//!   multistart exactly like the journal.
//! * [`ReplayEvent`] — one decision; [`Recording`] — a header (instance
//!   digest, device digest, solver configuration, start tour) plus the
//!   chain-stamped event stream, with a JSONL codec.
//! * [`TourReconstructor`] — re-derives the tour at any event *without
//!   re-running the solver*, verifying tour hashes as it goes.
//! * [`first_divergence`] / [`compare_streams`] — the divergence
//!   bisector: binary-search two event streams to the first event where
//!   they disagree and produce a structured [`Divergence`] diagnosis.
//! * [`correlate_journal`] — cross-link a convergence journal's records
//!   to the recording events that produced them.

pub mod bisect;
pub mod event;
pub mod hash;
pub mod reconstruct;
pub mod recorder;
pub mod recording;

pub use bisect::{compare_streams, first_divergence, Divergence, ReplayReport};
pub use event::ReplayEvent;
pub use hash::{digest_instance, fnv1a, hash_order, hash_tour};
pub use reconstruct::{tour_at_iteration, TourReconstructor};
pub use recorder::{FlightEntry, FlightRecorder};
pub use recording::{
    correlate_journal, parse_recording, Header, JournalLink, Recording, RecordingWriter,
};
