//! Re-derive tours from a recording *without re-running the solver*:
//! a [`TourReconstructor`] folds a chain's event stream over the start
//! tour, applying recorded 2-opt moves and kicks and verifying every
//! tour digest the stream carries. This is what lets `tsp-inspect`
//! render a tour snapshot at iteration k from the log alone.

use crate::event::ReplayEvent;
use crate::hash::hash_tour;
use crate::recording::Recording;
use tsp_core::Tour;

/// Replays a chain's decisions over the start tour, tracking the three
/// tours the ILS loop tracks: the `working` tour being swept, the
/// `incumbent` of the acceptance criterion, and the `best` found.
#[derive(Debug, Clone)]
pub struct TourReconstructor {
    working: Tour,
    incumbent: Tour,
    best: Tour,
    best_length: Option<i64>,
    events_applied: usize,
}

impl TourReconstructor {
    /// Start from a chain's initial visiting order.
    pub fn new(start: &[u32]) -> Result<TourReconstructor, String> {
        let tour = Tour::new(start.to_vec()).map_err(|e| format!("invalid start tour: {e}"))?;
        Ok(TourReconstructor {
            working: tour.clone(),
            incumbent: tour.clone(),
            best: tour,
            best_length: None,
            events_applied: 0,
        })
    }

    /// The tour currently being swept.
    pub fn working(&self) -> &Tour {
        &self.working
    }

    /// The acceptance criterion's incumbent.
    pub fn incumbent(&self) -> &Tour {
        &self.incumbent
    }

    /// The best tour seen so far.
    pub fn best(&self) -> &Tour {
        &self.best
    }

    /// Events applied so far.
    pub fn events_applied(&self) -> usize {
        self.events_applied
    }

    fn check(&self, what: &str, tour: &Tour, expected: u64) -> Result<(), String> {
        let got = hash_tour(tour);
        if got == expected {
            Ok(())
        } else {
            Err(format!(
                "event {}: {what} hash mismatch: recorded {expected:016x}, reconstructed {got:016x}",
                self.events_applied
            ))
        }
    }

    /// Fold one event. Errors on any digest mismatch — a mismatch
    /// means the recording and the reconstruction have diverged.
    pub fn apply(&mut self, event: &ReplayEvent) -> Result<(), String> {
        match event {
            ReplayEvent::Start { tour_hash } => {
                self.check("start tour", &self.working, *tour_hash)?;
            }
            ReplayEvent::Sweep { i, j, .. } => {
                self.working.apply_two_opt(*i as usize, *j as usize);
            }
            ReplayEvent::DescentEnd {
                iteration,
                length,
                tour_hash,
                ..
            } => {
                self.check("descended tour", &self.working, *tour_hash)?;
                if *iteration == 0 {
                    // The initial descent's result is the first
                    // incumbent and best.
                    self.incumbent = self.working.clone();
                    self.best = self.working.clone();
                    self.best_length = Some(*length);
                }
            }
            ReplayEvent::Kick { kicks, .. } => {
                self.working = self.incumbent.clone();
                for kick in kicks {
                    self.working.apply_kick(kick);
                }
            }
            ReplayEvent::Acceptance {
                candidate_length,
                accepted,
                tour_hash,
                ..
            } => {
                if *accepted {
                    self.incumbent = self.working.clone();
                    if self.best_length.is_none_or(|b| *candidate_length < b) {
                        self.best = self.working.clone();
                        self.best_length = Some(*candidate_length);
                    }
                } else {
                    self.working = self.incumbent.clone();
                }
                self.check("post-acceptance incumbent", &self.incumbent, *tour_hash)?;
            }
            ReplayEvent::Restart { tour_hash, .. } => {
                self.incumbent = self.best.clone();
                self.check("restarted incumbent", &self.incumbent, *tour_hash)?;
            }
            ReplayEvent::Final { tour_hash, .. } => {
                self.check("final best tour", &self.best, *tour_hash)?;
            }
        }
        self.events_applied += 1;
        Ok(())
    }
}

/// The incumbent tour after ILS iteration `iteration` of `chain` (0 =
/// after the initial descent), reconstructed from the log alone.
pub fn tour_at_iteration(
    recording: &Recording,
    chain: u64,
    iteration: u64,
) -> Result<Tour, String> {
    let mut r = TourReconstructor::new(start_for(recording, chain)?)?;
    let events = recording.chain_events(chain);
    if events.is_empty() {
        return Err(format!("recording has no events for chain {chain}"));
    }
    for event in &events {
        r.apply(event)?;
        let done = match event {
            ReplayEvent::DescentEnd { iteration: it, .. } => iteration == 0 && *it == 0,
            ReplayEvent::Acceptance { iteration: it, .. } => *it == iteration,
            _ => false,
        };
        if done {
            return Ok(r.incumbent().clone());
        }
    }
    Err(format!(
        "chain {chain} never reached iteration {iteration} (stream has {} events)",
        events.len()
    ))
}

fn start_for(recording: &Recording, chain: u64) -> Result<&[u32], String> {
    if chain == 0 {
        Ok(&recording.header.start)
    } else {
        Err(format!(
            "recording headers carry only chain 0's start tour; \
             chain {chain} must be reconstructed through a replay"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;
    use crate::recording::Header;

    fn header_for(start: &Tour, chains: u64) -> Header {
        Header {
            run_id: String::new(),
            trace_id: String::new(),
            instance_name: "reconstruct".to_string(),
            n: start.len(),
            instance_digest: 0,
            spec_digest: 0,
            chains,
            start: start.as_slice().to_vec(),
            config: Vec::new(),
        }
    }

    /// Script a tiny ILS-shaped stream by hand and reconstruct it.
    #[test]
    fn reconstruction_follows_an_ils_stream() {
        let start = Tour::identity(10);
        let flight = FlightRecorder::attached();

        // Initial descent: one move.
        let mut working = start.clone();
        flight.record_with(|| ReplayEvent::Start {
            tour_hash: hash_tour(&working),
        });
        working.apply_two_opt(2, 6);
        flight.record_with(|| ReplayEvent::Sweep {
            i: 2,
            j: 6,
            delta: -5,
            key: 0,
        });
        let incumbent = working.clone();
        flight.record_with(|| ReplayEvent::DescentEnd {
            iteration: 0,
            sweeps: 2,
            length: 100,
            tour_hash: hash_tour(&incumbent),
            modeled_seconds: 1e-6,
        });

        // Iteration 1: kick, descend (no move), reject.
        let kick = tsp_core::KickMove::DoubleBridge { a: 2, b: 5, c: 8 };
        let mut kicked = incumbent.clone();
        kicked.apply_kick(&kick);
        flight.record_with(|| ReplayEvent::Kick {
            iteration: 1,
            rng: [1, 2, 3, 4],
            kicks: vec![kick],
        });
        flight.record_with(|| ReplayEvent::DescentEnd {
            iteration: 1,
            sweeps: 1,
            length: 120,
            tour_hash: hash_tour(&kicked),
            modeled_seconds: 1e-6,
        });
        flight.record_with(|| ReplayEvent::Acceptance {
            iteration: 1,
            incumbent_length: 100,
            candidate_length: 120,
            accepted: false,
            rng: [1, 2, 3, 4],
            tour_hash: hash_tour(&incumbent),
        });
        flight.record_with(|| ReplayEvent::Final {
            iterations: 1,
            best_length: 100,
            tour_hash: hash_tour(&incumbent),
            modeled_seconds: 2e-6,
        });

        let rec = Recording::from_flight(header_for(&start, 1), &flight);
        let mut r = TourReconstructor::new(&rec.header.start).unwrap();
        for e in rec.chain_events(0) {
            r.apply(&e).unwrap();
        }
        assert_eq!(r.best().as_slice(), incumbent.as_slice());
        assert_eq!(r.incumbent().as_slice(), incumbent.as_slice());

        // Snapshot API: iteration 0 = post-initial-descent incumbent,
        // iteration 1 = incumbent after the rejection (unchanged).
        let t0 = tour_at_iteration(&rec, 0, 0).unwrap();
        assert_eq!(t0.as_slice(), incumbent.as_slice());
        let t1 = tour_at_iteration(&rec, 0, 1).unwrap();
        assert_eq!(t1.as_slice(), incumbent.as_slice());
        assert!(tour_at_iteration(&rec, 0, 7).is_err());
    }

    #[test]
    fn hash_mismatch_is_detected() {
        let start = Tour::identity(6);
        let flight = FlightRecorder::attached();
        flight.record_with(|| ReplayEvent::Start { tour_hash: 42 }); // wrong
        let rec = Recording::from_flight(header_for(&start, 1), &flight);
        let mut r = TourReconstructor::new(&rec.header.start).unwrap();
        let err = r.apply(&rec.chain_events(0)[0]).unwrap_err();
        assert!(err.contains("hash mismatch"), "{err}");
    }
}
