//! The [`FlightRecorder`] handle threaded through the search and ILS
//! layers — same zero-cost-when-detached pattern as
//! `tsp_trace::Recorder` and `tsp_telemetry::Journal`: a detached
//! recorder carries no buffer, so instrumented hot paths pay one
//! skipped `Option` branch; clones of an attached recorder share one
//! buffer, and [`FlightRecorder::for_chain`] stamps a clone with a
//! chain id so concurrent multistart chains interleave safely into one
//! stream that can still be split back into deterministic sub-logs.

use crate::event::ReplayEvent;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// One chain-stamped entry of a flight recording.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Multistart chain the event belongs to (0 for single runs).
    pub chain: u64,
    /// The recorded decision.
    pub event: ReplayEvent,
}

/// A cheap, cloneable handle onto a shared event buffer.
#[derive(Debug, Default, Clone)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<Vec<FlightEntry>>>>,
    /// Chain id stamped onto events pushed through this handle.
    chain: u64,
}

fn lock(buf: &Mutex<Vec<FlightEntry>>) -> MutexGuard<'_, Vec<FlightEntry>> {
    buf.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FlightRecorder {
    /// A recorder that collects events.
    pub fn attached() -> Self {
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
            chain: 0,
        }
    }

    /// A recorder that drops everything (same as `default()`).
    pub fn detached() -> Self {
        Self::default()
    }

    /// `true` when events are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto the same buffer that stamps `chain` onto every
    /// event — used by multistart to tell concurrent chains apart.
    pub fn for_chain(&self, chain: u64) -> FlightRecorder {
        FlightRecorder {
            inner: self.inner.clone(),
            chain,
        }
    }

    /// The chain id this handle stamps.
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// Append one event, stamping this handle's chain id (no-op when
    /// detached). The closure only runs when the recorder is attached,
    /// so building the event (hashing a tour, snapshotting an RNG)
    /// costs nothing on unrecorded runs.
    #[inline]
    pub fn record_with(&self, make: impl FnOnce() -> ReplayEvent) {
        if let Some(buf) = &self.inner {
            let entry = FlightEntry {
                chain: self.chain,
                event: make(),
            };
            lock(buf).push(entry);
        }
    }

    /// Snapshot of all entries, in append order (empty when detached).
    pub fn entries(&self) -> Vec<FlightEntry> {
        match &self.inner {
            Some(buf) => lock(buf).clone(),
            None => Vec::new(),
        }
    }

    /// The events of one chain, in their recorded (deterministic)
    /// order — concurrent chains interleave in the shared buffer, but
    /// each chain's sub-stream is appended by a single thread.
    pub fn chain_events(&self, chain: u64) -> Vec<ReplayEvent> {
        self.entries()
            .into_iter()
            .filter(|e| e.chain == chain)
            .map(|e| e.event)
            .collect()
    }

    /// Sorted, de-duplicated chain ids present in the buffer.
    pub fn chains(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.entries().iter().map(|e| e.chain).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(buf) => lock(buf).len(),
            None => 0,
        }
    }

    /// `true` when nothing has been recorded (always for detached).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(h: u64) -> ReplayEvent {
        ReplayEvent::Start { tour_hash: h }
    }

    #[test]
    fn detached_recorder_never_runs_the_closure() {
        let r = FlightRecorder::detached();
        r.record_with(|| panic!("must not run when detached"));
        assert!(r.is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn chain_stamping_splits_back_into_sub_logs() {
        let r = FlightRecorder::attached();
        r.record_with(|| ev(1));
        let c2 = r.for_chain(2);
        c2.record_with(|| ev(20));
        r.record_with(|| ev(2));
        c2.record_with(|| ev(21));
        assert_eq!(r.len(), 4);
        assert_eq!(r.chains(), vec![0, 2]);
        assert_eq!(r.chain_events(0), vec![ev(1), ev(2)]);
        assert_eq!(r.chain_events(2), vec![ev(20), ev(21)]);
        assert_eq!(c2.chain(), 2);
    }
}
