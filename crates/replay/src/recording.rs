//! A complete, self-describing recording: the header pins everything
//! the events do not repeat (instance digest, device digest, solver
//! configuration, the chain-0 start tour), and the body is the
//! chain-stamped event stream. Serialized as JSON Lines: the first
//! line is the header object, every following line one event with its
//! chain stamp.

use crate::event::ReplayEvent;
use crate::recorder::{FlightEntry, FlightRecorder};
use tsp_telemetry::{JournalEvent, JournalRecord};
use tsp_trace::json::{self, Json};

/// Format tag written to (and required from) the header line.
pub const FORMAT: &str = "tsp-flight-recording/v1";

/// The run description a replayer needs before the first event.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Deterministic run id of the recorded run (empty = unstamped,
    /// for recordings taken before the id existed). Correlates the
    /// recording with the journal, trace and profiler artifacts of the
    /// same run; replay compatibility is decided by the digests and
    /// config below, not by this field.
    pub run_id: String,
    /// Distributed trace id of the request that triggered the recorded
    /// run (empty = unstamped). Like `run_id`, purely correlational.
    pub trace_id: String,
    /// Instance name (presentation only; the digest is authoritative).
    pub instance_name: String,
    /// City count.
    pub n: usize,
    /// [`crate::digest_instance`] of the instance.
    pub instance_digest: u64,
    /// `DeviceSpec::digest()` of the simulated device (0 for CPU
    /// engines).
    pub spec_digest: u64,
    /// Number of multistart chains in the run.
    pub chains: u64,
    /// Chain 0's starting tour. Other chains derive their starts
    /// deterministically from the recorded construction config.
    pub start: Vec<u32>,
    /// Solver configuration as ordered key/value pairs — the facade's
    /// codec (`tsp::replay_config`) writes and reads these.
    pub config: Vec<(String, String)>,
}

impl Header {
    /// Look up one config value.
    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn to_json(&self) -> Json {
        let mut cfg = Json::obj();
        for (k, v) in &self.config {
            cfg.set(k, Json::Str(v.clone()));
        }
        let mut o = Json::obj();
        o.set("format", Json::Str(FORMAT.to_string()));
        if !self.run_id.is_empty() {
            o.set("run_id", Json::Str(self.run_id.clone()));
        }
        if !self.trace_id.is_empty() {
            o.set("trace_id", Json::Str(self.trace_id.clone()));
        }
        o.set("instance", Json::Str(self.instance_name.clone()))
            .set("n", Json::from(self.n))
            .set(
                "instance_digest",
                Json::Str(format!("{:016x}", self.instance_digest)),
            )
            .set(
                "spec_digest",
                Json::Str(format!("{:016x}", self.spec_digest)),
            )
            .set("chains", Json::from(self.chains))
            .set(
                "start",
                Json::Arr(self.start.iter().map(|&c| Json::from(c)).collect()),
            )
            .set("config", cfg);
        o
    }

    fn from_json(j: &Json) -> Result<Header, String> {
        match j.get("format").and_then(Json::as_str) {
            Some(f) if f == FORMAT => {}
            Some(f) => return Err(format!("unsupported recording format {f:?}")),
            None => return Err("recording header missing format tag".to_string()),
        }
        let hex = |key: &str| {
            j.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("header missing {key:?}"))
                .and_then(|s| {
                    u64::from_str_radix(s, 16).map_err(|_| format!("bad hex {key:?}: {s:?}"))
                })
        };
        let start = j
            .get("start")
            .and_then(Json::as_array)
            .ok_or("header missing start tour")?
            .iter()
            .map(|v| v.as_f64().map(|f| f as u32).ok_or("non-numeric start city"))
            .collect::<Result<Vec<u32>, _>>()?;
        let config = match j.get("config") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("config value {k:?} must be a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("header missing config object".to_string()),
        };
        Ok(Header {
            // Absent in pre-run-id recordings: default to unstamped.
            run_id: j
                .get("run_id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            trace_id: j
                .get("trace_id")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            instance_name: j
                .get("instance")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            n: j.get("n")
                .and_then(Json::as_f64)
                .ok_or("header missing n")? as usize,
            instance_digest: hex("instance_digest")?,
            spec_digest: hex("spec_digest")?,
            chains: j
                .get("chains")
                .and_then(Json::as_f64)
                .ok_or("header missing chains")? as u64,
            start,
            config,
        })
    }
}

/// A header plus the chain-stamped event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// The run description.
    pub header: Header,
    /// The recorded events, in append order.
    pub entries: Vec<FlightEntry>,
}

impl Recording {
    /// Bundle a header with the entries captured by `flight`.
    pub fn from_flight(header: Header, flight: &FlightRecorder) -> Recording {
        Recording {
            header,
            entries: flight.entries(),
        }
    }

    /// The events of one chain, in order.
    pub fn chain_events(&self, chain: u64) -> Vec<ReplayEvent> {
        self.entries
            .iter()
            .filter(|e| e.chain == chain)
            .map(|e| e.event.clone())
            .collect()
    }

    /// Sorted, de-duplicated chain ids present in the stream.
    pub fn chains(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.entries.iter().map(|e| e.chain).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize: header line, then one event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.to_json().to_string());
        out.push('\n');
        for entry in &self.entries {
            let mut obj = entry.event.to_json();
            obj.set("chain", Json::from(entry.chain));
            out.push_str(&obj.to_string());
            out.push('\n');
        }
        out
    }
}

/// Parse a recording written by [`Recording::to_jsonl`].
pub fn parse_recording(text: &str) -> Result<Recording, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, head) = lines.next().ok_or("empty recording")?;
    let header = Header::from_json(&json::parse(head).map_err(|e| format!("line 1: {e:?}"))?)?;
    let mut entries = Vec::new();
    for (lineno, line) in lines {
        let obj = json::parse(line).map_err(|e| format!("line {}: {e:?}", lineno + 1))?;
        let chain = obj
            .get("chain")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: event without chain stamp", lineno + 1))?
            as u64;
        let event =
            ReplayEvent::from_json(&obj).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        entries.push(FlightEntry { chain, event });
    }
    Ok(Recording { header, entries })
}

/// A line-atomic streaming writer for recordings.
///
/// Mirrors [`Recording::to_jsonl`] — header line first, then one
/// chain-stamped event object per line — but streams to a sink as
/// events arrive instead of serializing an in-memory `Recording` at
/// the end. Every line is written with a single `write_all` and the
/// sink is flushed per line *and* on drop, so a recording cut short
/// by cancellation or a deadline never ends in a truncated line:
/// whatever reached the file parses with [`parse_recording`].
pub struct RecordingWriter {
    sink: Box<dyn std::io::Write + Send>,
    events: u64,
}

impl std::fmt::Debug for RecordingWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingWriter")
            .field("events", &self.events)
            .finish()
    }
}

impl RecordingWriter {
    /// Create (truncating) `path` and write the header line.
    pub fn create(
        path: impl AsRef<std::path::Path>,
        header: &Header,
    ) -> std::io::Result<RecordingWriter> {
        Self::from_writer(std::fs::File::create(path)?, header)
    }

    /// Stream into an arbitrary sink, writing the header line now.
    pub fn from_writer(
        sink: impl std::io::Write + Send + 'static,
        header: &Header,
    ) -> std::io::Result<RecordingWriter> {
        let mut w = RecordingWriter {
            sink: Box::new(sink),
            events: 0,
        };
        w.write_line(header.to_json())?;
        Ok(w)
    }

    fn write_line(&mut self, json: Json) -> std::io::Result<()> {
        let mut line = json.to_string();
        line.push('\n');
        self.sink.write_all(line.as_bytes())?;
        self.sink.flush()
    }

    /// Append one chain-stamped event as a complete, flushed line.
    pub fn append(&mut self, entry: &FlightEntry) -> std::io::Result<()> {
        let mut obj = entry.event.to_json();
        obj.set("chain", Json::from(entry.chain));
        self.write_line(obj)?;
        self.events += 1;
        Ok(())
    }

    /// Append every entry the flight recorder has captured so far (a
    /// final drain for runs that buffered in memory first).
    pub fn append_flight(&mut self, flight: &FlightRecorder) -> std::io::Result<()> {
        for entry in flight.entries() {
            self.append(&entry)?;
        }
        Ok(())
    }

    /// Events written so far (excluding the header line).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flush the sink explicitly (also happens per line and on drop).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.sink.flush()
    }
}

impl Drop for RecordingWriter {
    fn drop(&mut self) {
        let _ = self.sink.flush();
    }
}

/// A journal record resolved against the recording event that produced
/// it — the journal ↔ recording cross-link.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalLink {
    /// Index of the journal record in the journal stream.
    pub record: usize,
    /// Index into [`Recording::entries`] of the matching event, or
    /// `None` when the recording carries no counterpart (e.g. the
    /// journal came from a different run).
    pub entry: Option<usize>,
}

/// Cross-link a convergence journal to a recording: each journal
/// record maps to the flight event of the same chain and iteration —
/// `Initial` to the initial [`ReplayEvent::DescentEnd`],
/// `Improved`/`Accepted`/`Rejected` to the iteration's
/// [`ReplayEvent::Acceptance`], `Restart` to its
/// [`ReplayEvent::Restart`], `Final` to [`ReplayEvent::Final`].
///
/// Both streams append per-chain records in the same loop, so a
/// journal and a recording captured from the same run link completely:
/// every [`JournalLink::entry`] is `Some`.
pub fn correlate_journal(recording: &Recording, journal: &[JournalRecord]) -> Vec<JournalLink> {
    journal
        .iter()
        .enumerate()
        .map(|(record, jr)| {
            let entry = recording.entries.iter().position(|e| {
                if e.chain != jr.chain {
                    return false;
                }
                match (&e.event, jr.event) {
                    (ReplayEvent::DescentEnd { iteration: 0, .. }, JournalEvent::Initial) => true,
                    (
                        ReplayEvent::Acceptance { iteration, .. },
                        JournalEvent::Improved | JournalEvent::Accepted | JournalEvent::Rejected,
                    ) => *iteration == jr.iteration,
                    (ReplayEvent::Restart { iteration, .. }, JournalEvent::Restart) => {
                        *iteration == jr.iteration
                    }
                    (ReplayEvent::Final { .. }, JournalEvent::Final) => true,
                    _ => false,
                }
            });
            JournalLink { record, entry }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header {
            run_id: String::new(),
            trace_id: String::new(),
            instance_name: "rec-test".to_string(),
            n: 5,
            instance_digest: 0xdead_beef_dead_beef,
            spec_digest: 0x1234_5678_9abc_def0,
            chains: 2,
            start: vec![0, 3, 1, 4, 2],
            config: vec![
                ("engine".to_string(), "gpu".to_string()),
                ("strategy".to_string(), "tiled:64".to_string()),
            ],
        }
    }

    fn sample() -> Recording {
        let flight = FlightRecorder::attached();
        flight.record_with(|| ReplayEvent::Start { tour_hash: 11 });
        flight.for_chain(1).record_with(|| ReplayEvent::Sweep {
            i: 1,
            j: 3,
            delta: -7,
            key: u64::MAX - 1,
        });
        flight.record_with(|| ReplayEvent::Final {
            iterations: 0,
            best_length: 40,
            tour_hash: 11,
            modeled_seconds: 2.5e-6,
        });
        Recording::from_flight(header(), &flight)
    }

    #[test]
    fn jsonl_round_trips_with_chain_stamps() {
        let rec = sample();
        let text = rec.to_jsonl();
        assert_eq!(text.lines().count(), 4);
        let back = parse_recording(&text).expect("writer output parses");
        assert_eq!(back, rec);
        assert_eq!(back.chains(), vec![0, 1]);
        assert_eq!(back.chain_events(1).len(), 1);
        assert_eq!(back.header.config_value("strategy"), Some("tiled:64"));
    }

    #[test]
    fn streaming_writer_dropped_mid_run_leaves_a_parseable_file() {
        let rec = sample();
        let path = std::env::temp_dir().join(format!(
            "tsp-recording-writer-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let mut w = RecordingWriter::create(&path, &rec.header).expect("create recording");
            // Stream only the first two of three events, then drop —
            // the abrupt-stop path of a cancelled job.
            for entry in &rec.entries[..2] {
                w.append(entry).unwrap();
            }
            assert_eq!(w.events(), 2);
        }
        let text = std::fs::read_to_string(&path).expect("read recording file");
        let _ = std::fs::remove_file(&path);
        assert!(text.ends_with('\n'), "no truncated trailing line: {text:?}");
        let back = parse_recording(&text).expect("every line must parse");
        assert_eq!(back.header, rec.header);
        assert_eq!(back.entries, rec.entries[..2]);
    }

    #[test]
    fn parser_rejects_wrong_format_and_garbage() {
        assert!(parse_recording("").is_err());
        assert!(parse_recording("{\"format\":\"bogus/v9\"}\n").is_err());
        let mut text = sample().to_jsonl();
        text.push_str("{\"type\":\"sweep\"}\n"); // chainless event
        assert!(parse_recording(&text).is_err());
    }

    #[test]
    fn journal_records_link_to_their_events() {
        let flight = FlightRecorder::attached();
        flight.record_with(|| ReplayEvent::DescentEnd {
            iteration: 0,
            sweeps: 3,
            length: 100,
            tour_hash: 1,
            modeled_seconds: 1e-6,
        });
        flight.record_with(|| ReplayEvent::Acceptance {
            iteration: 1,
            incumbent_length: 100,
            candidate_length: 90,
            accepted: true,
            rng: [1, 2, 3, 4],
            tour_hash: 2,
        });
        flight.record_with(|| ReplayEvent::Final {
            iterations: 1,
            best_length: 90,
            tour_hash: 2,
            modeled_seconds: 2e-6,
        });
        let rec = Recording::from_flight(header(), &flight);
        let journal = vec![
            JournalRecord {
                run_id: String::new(),
                trace_id: String::new(),
                chain: 0,
                iteration: 0,
                modeled_seconds: 1e-6,
                wall_seconds: 0.0,
                tour_length: 100,
                gap_to_best: 0.0,
                event: JournalEvent::Initial,
            },
            JournalRecord {
                run_id: String::new(),
                trace_id: String::new(),
                chain: 0,
                iteration: 1,
                modeled_seconds: 2e-6,
                wall_seconds: 0.0,
                tour_length: 90,
                gap_to_best: 0.0,
                event: JournalEvent::Improved,
            },
            JournalRecord {
                run_id: String::new(),
                trace_id: String::new(),
                chain: 0,
                iteration: 1,
                modeled_seconds: 2e-6,
                wall_seconds: 0.0,
                tour_length: 90,
                gap_to_best: 0.0,
                event: JournalEvent::Final,
            },
            // A record from a chain the recording never saw.
            JournalRecord {
                run_id: String::new(),
                trace_id: String::new(),
                chain: 9,
                iteration: 0,
                modeled_seconds: 0.0,
                wall_seconds: 0.0,
                tour_length: 0,
                gap_to_best: 0.0,
                event: JournalEvent::Initial,
            },
        ];
        let links = correlate_journal(&rec, &journal);
        assert_eq!(
            links.iter().map(|l| l.entry).collect::<Vec<_>>(),
            vec![Some(0), Some(1), Some(2), None]
        );
    }
}
