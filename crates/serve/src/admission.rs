//! Admission control: a bounded FIFO with per-tenant quotas.
//!
//! A submission is admitted only if (a) the tenant's live job count —
//! queued **plus** running — is under its quota, and (b) the queue has
//! room. Rejections are typed [`ApiError`]s with a `Retry-After`
//! hint: quota → 429 [`ErrorCode::QuotaExceeded`], capacity → 503
//! [`ErrorCode::QueueFull`]. A rejected request never reaches a
//! device lane — admission happens strictly before slot acquisition.
//!
//! The tenant's count is released by [`AdmissionQueue::finish`] when
//! its job reaches a terminal state, not when the ticket is popped:
//! quotas bound *live work*, not queue residency.

use crate::api::{ApiError, ErrorCode};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;
use tsp_telemetry::{Gauge, Telemetry};

/// One queued unit of work: the job id to look up and the tenant to
/// credit on completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ticket {
    /// The job to run.
    pub job_id: String,
    /// The tenant whose quota the job occupies.
    pub tenant: String,
}

#[derive(Debug, Default)]
struct QueueState {
    /// Waiting tickets with their enqueue instants — the front one's
    /// age is the queue-age SLO signal.
    queue: VecDeque<(Ticket, Instant)>,
    /// Live (queued + running) jobs per tenant.
    live: HashMap<String, usize>,
    closed: bool,
}

/// The bounded admission queue. See the module docs for the policy.
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
    per_tenant: usize,
    depth: Option<Gauge>,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` tickets, with at most
    /// `per_tenant` live jobs per tenant. Registers a depth gauge
    /// when `telemetry` is attached.
    pub fn new(capacity: usize, per_tenant: usize, telemetry: &Telemetry) -> AdmissionQueue {
        let depth = telemetry.registry().map(|r| {
            r.gauge(
                "tsp_serve_queue_depth",
                "Admitted jobs waiting for a device slot",
            )
        });
        if let Some(gauge) = &depth {
            gauge.set(0.0);
        }
        AdmissionQueue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            capacity,
            per_tenant,
            depth,
        }
    }

    /// Admit a ticket or reject it with a typed, retryable error.
    pub fn submit(&self, ticket: Ticket) -> Result<(), ApiError> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(ApiError::new(
                ErrorCode::QueueFull,
                "the service is shutting down",
            ));
        }
        let live = state.live.get(&ticket.tenant).copied().unwrap_or(0);
        if live >= self.per_tenant {
            return Err(ApiError::new(
                ErrorCode::QuotaExceeded,
                format!(
                    "tenant {:?} has {live} live jobs (quota {})",
                    ticket.tenant, self.per_tenant
                ),
            )
            .with_retry_after_ms(self.backoff_ms(&state)));
        }
        if state.queue.len() >= self.capacity {
            return Err(ApiError::new(
                ErrorCode::QueueFull,
                format!("admission queue is full ({} tickets)", self.capacity),
            )
            .with_retry_after_ms(self.backoff_ms(&state)));
        }
        *state.live.entry(ticket.tenant.clone()).or_insert(0) += 1;
        state.queue.push_back((ticket, Instant::now()));
        if let Some(gauge) = &self.depth {
            gauge.set(state.queue.len() as f64);
        }
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// A coarse back-off hint proportional to the backlog.
    fn backoff_ms(&self, state: &QueueState) -> u64 {
        250 * (state.queue.len() as u64 + 1)
    }

    /// Pop the next ticket, blocking while the queue is open and
    /// empty. `None` means the queue closed and drained — the worker
    /// should exit.
    pub fn pop(&self) -> Option<Ticket> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some((ticket, _enqueued)) = state.queue.pop_front() {
                if let Some(gauge) = &self.depth {
                    gauge.set(state.queue.len() as f64);
                }
                return Some(ticket);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Credit the tenant back when one of its jobs reaches a terminal
    /// state (done, failed, cancelled, or expired).
    pub fn finish(&self, tenant: &str) {
        let mut state = self.state.lock().unwrap();
        if let Some(live) = state.live.get_mut(tenant) {
            *live = live.saturating_sub(1);
            if *live == 0 {
                state.live.remove(tenant);
            }
        }
    }

    /// Tickets waiting right now.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// Live (queued + running) jobs for `tenant`.
    pub fn live(&self, tenant: &str) -> usize {
        self.state
            .lock()
            .unwrap()
            .live
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Wall seconds the front (oldest) ticket has been waiting, `0`
    /// when the queue is empty. The lane watchdog mirrors this into
    /// `tsp_serve_queue_age_seconds` for the queue-age SLO rule.
    pub fn oldest_wait_seconds(&self) -> f64 {
        self.state
            .lock()
            .unwrap()
            .queue
            .front()
            .map(|(_, enqueued)| enqueued.elapsed().as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Every tenant with live work and its live count, sorted by
    /// tenant — the quota-ratio gauges fan out over this census.
    pub fn live_tenants(&self) -> Vec<(String, usize)> {
        let state = self.state.lock().unwrap();
        let mut tenants: Vec<(String, usize)> = state
            .live
            .iter()
            .map(|(tenant, &count)| (tenant.clone(), count))
            .collect();
        tenants.sort();
        tenants
    }

    /// Close the queue: no further submissions; blocked `pop`s return
    /// `None` once the backlog drains.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(id: &str, tenant: &str) -> Ticket {
        Ticket {
            job_id: id.to_string(),
            tenant: tenant.to_string(),
        }
    }

    #[test]
    fn quota_covers_queued_plus_running() {
        let q = AdmissionQueue::new(16, 2, &Telemetry::detached());
        q.submit(ticket("a", "t1")).unwrap();
        q.submit(ticket("b", "t1")).unwrap();
        let err = q.submit(ticket("c", "t1")).unwrap_err();
        assert_eq!(err.code, ErrorCode::QuotaExceeded);
        assert!(err.retry_after_ms.is_some());
        // Popping (job starts running) does not release the quota...
        assert_eq!(q.pop().unwrap().job_id, "a");
        assert_eq!(
            q.submit(ticket("c", "t1")).unwrap_err().code,
            ErrorCode::QuotaExceeded
        );
        // ...finishing does.
        q.finish("t1");
        q.submit(ticket("c", "t1")).unwrap();
        // Other tenants are unaffected throughout.
        q.submit(ticket("x", "t2")).unwrap();
    }

    #[test]
    fn full_queue_rejects_with_queue_full() {
        let q = AdmissionQueue::new(1, 10, &Telemetry::detached());
        q.submit(ticket("a", "t1")).unwrap();
        let err = q.submit(ticket("b", "t2")).unwrap_err();
        assert_eq!(err.code, ErrorCode::QueueFull);
        assert!(err.retry_after_ms.is_some());
    }

    #[test]
    fn depth_gauge_tracks_the_backlog() {
        let telemetry = Telemetry::attached();
        let q = AdmissionQueue::new(8, 8, &telemetry);
        q.submit(ticket("a", "t")).unwrap();
        q.submit(ticket("b", "t")).unwrap();
        let registry = telemetry.registry().unwrap();
        assert_eq!(registry.gauge_value("tsp_serve_queue_depth"), Some(2.0));
        q.pop().unwrap();
        assert_eq!(registry.gauge_value("tsp_serve_queue_depth"), Some(1.0));
    }

    #[test]
    fn queue_age_and_tenant_census_track_the_backlog() {
        let q = AdmissionQueue::new(8, 8, &Telemetry::detached());
        assert_eq!(q.oldest_wait_seconds(), 0.0);
        q.submit(ticket("a", "t2")).unwrap();
        q.submit(ticket("b", "t1")).unwrap();
        q.submit(ticket("c", "t1")).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        // The front ticket has aged; the census is sorted by tenant
        // and counts queued + running work.
        assert!(q.oldest_wait_seconds() > 0.0);
        assert_eq!(
            q.live_tenants(),
            vec![("t1".to_string(), 2), ("t2".to_string(), 1)]
        );
        q.pop().unwrap();
        assert_eq!(q.live_tenants().len(), 2, "popped work is still live");
        q.finish("t2");
        assert_eq!(q.live_tenants(), vec![("t1".to_string(), 2)]);
        q.pop().unwrap();
        q.pop().unwrap();
        assert_eq!(q.oldest_wait_seconds(), 0.0);
    }

    #[test]
    fn close_drains_then_releases_blocked_workers() {
        let q = AdmissionQueue::new(8, 8, &Telemetry::detached());
        q.submit(ticket("a", "t")).unwrap();
        q.close();
        assert_eq!(
            q.submit(ticket("b", "t")).unwrap_err().code,
            ErrorCode::QueueFull
        );
        assert_eq!(q.pop().unwrap().job_id, "a");
        assert_eq!(q.pop(), None);
    }
}
