//! The versioned wire types of the solve service — `v1`.
//!
//! Everything that crosses the HTTP boundary lives here as a plain
//! struct with hand-rolled JSON (via [`tsp_trace::json`], like every
//! other codec in the workspace — no serde): [`SolveRequest`] in,
//! [`SolveResponse`] / [`JobStatus`] / [`ApiError`] out. The same
//! types are the *config surface*: [`FromRequest`] turns a request
//! into a [`SolverBuilder`], so the CLI, the benches and the service
//! configure a solver through one structure instead of three ad-hoc
//! argument lists.
//!
//! ## The `v1` compatibility rule
//!
//! * Every document carries `"api_version": "v1"`. Readers reject any
//!   other version; a missing field means `v1` (the field was
//!   introduced with it).
//! * Unknown members are **ignored on read** — `v1` readers accept
//!   documents written by later minor revisions.
//! * Within `v1`, fields are only ever **added**, never renamed,
//!   removed, or re-typed; absent fields take the documented default.
//!   A change that cannot follow this rule is a `v2` under a new
//!   route prefix.
//!
//! The structs are `#[non_exhaustive]` with `with_*` setters for the
//! same reason on the Rust side: adding a field is not a breaking
//! change for any caller.

use std::fmt;
use tsp::{Solver, SolverBuilder};
use tsp_core::{Instance, Metric, Point};
use tsp_ils::IlsOptions;
use tsp_trace::json::{self, Json};

/// The wire version every document in this module speaks.
pub const API_VERSION: &str = "v1";

/// Machine-readable error category; the HTTP status is derived from
/// it, never hand-picked per call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request document failed to parse or validate.
    BadRequest,
    /// No job with the given id.
    NotFound,
    /// The tenant is at its admission quota (retryable).
    QuotaExceeded,
    /// The admission queue is full (retryable).
    QueueFull,
    /// The deadline passed before the job could run.
    DeadlineExceeded,
    /// The request is valid but asks for something the service
    /// refuses (instance too large, unsupported knob).
    Unsupported,
    /// The solver failed; the job, not the request, is at fault.
    Internal,
}

impl ErrorCode {
    /// The stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse the wire spelling.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "not_found" => ErrorCode::NotFound,
            "quota_exceeded" => ErrorCode::QuotaExceeded,
            "queue_full" => ErrorCode::QueueFull,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "unsupported" => ErrorCode::Unsupported,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The HTTP status this category is answered with.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest | ErrorCode::Unsupported => 400,
            ErrorCode::NotFound => 404,
            ErrorCode::QuotaExceeded => 429,
            ErrorCode::QueueFull | ErrorCode::DeadlineExceeded => 503,
            ErrorCode::Internal => 500,
        }
    }
}

/// A typed error document, also used as Rust-side error value
/// throughout the service.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ApiError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For retryable rejections (429/503): how long to back off.
    pub retry_after_ms: Option<u64>,
}

impl ApiError {
    /// A typed error with a message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ApiError {
        ApiError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Attach a back-off hint (serialized, and mirrored into the
    /// `Retry-After` response header by the server).
    pub fn with_retry_after_ms(mut self, ms: u64) -> ApiError {
        self.retry_after_ms = Some(ms);
        self
    }

    /// The back-off in whole seconds, rounded up — exactly the value
    /// the server puts in the `Retry-After` header, so clients can
    /// back off from the typed body without header parsing.
    pub fn retry_after_seconds(&self) -> Option<u64> {
        self.retry_after_ms.map(|ms| ms.div_ceil(1000).max(1))
    }

    /// Serialize as a `v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("api_version", Json::from(API_VERSION));
        obj.set("code", Json::from(self.code.as_str()));
        obj.set("message", Json::from(self.message.as_str()));
        if let Some(ms) = self.retry_after_ms {
            obj.set("retry_after_ms", Json::from(ms));
        }
        // Derived, additive: the header value, readable from the body.
        if let Some(s) = self.retry_after_seconds() {
            obj.set("retry_after_s", Json::from(s));
        }
        obj
    }

    /// Parse a `v1` document (unknown members ignored).
    pub fn from_json(doc: &Json) -> Result<ApiError, String> {
        check_version(doc)?;
        let code = doc
            .get("code")
            .and_then(Json::as_str)
            .ok_or("missing \"code\"")?;
        let code = ErrorCode::parse(code).ok_or_else(|| format!("unknown code {code:?}"))?;
        let message = doc
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let retry_after_ms = doc
            .get("retry_after_ms")
            .and_then(Json::as_f64)
            .map(|v| v as u64);
        Ok(ApiError {
            code,
            message,
            retry_after_ms,
        })
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ApiError {}

fn check_version(doc: &Json) -> Result<(), String> {
    match doc.get("api_version").and_then(Json::as_str) {
        None => Ok(()), // absent means v1: the field was introduced with it
        Some(v) if v == API_VERSION => Ok(()),
        Some(v) => Err(format!(
            "unsupported api_version {v:?} (this is {API_VERSION})"
        )),
    }
}

fn bad(message: impl Into<String>) -> ApiError {
    ApiError::new(ErrorCode::BadRequest, message)
}

/// One solve submission. Exactly one of [`SolveRequest::tsplib`]
/// (a full TSPLIB document) and [`SolveRequest::coords`] (Euclidean
/// city coordinates) must be present.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SolveRequest {
    /// Always [`API_VERSION`] on serialized documents.
    pub api_version: String,
    /// Admission-quota identity (default `"anonymous"`).
    pub tenant: String,
    /// Instance name for coordinate payloads (TSPLIB payloads carry
    /// their own).
    pub name: String,
    /// A TSPLIB document, verbatim.
    pub tsplib: Option<String>,
    /// `EUC_2D` city coordinates as `[x, y]` pairs.
    pub coords: Option<Vec<(f64, f64)>>,
    /// Independent ILS chains; the best tour wins (default 1).
    pub restarts: usize,
    /// Enable ILS with this iteration budget; absent means a single
    /// 2-opt descent to the local optimum.
    pub ils_iterations: Option<u64>,
    /// Seed for ILS chain 0 (chain `i` uses `seed + i`; default 0).
    pub seed: u64,
    /// Relative deadline: the job is cancelled (or rejected before it
    /// ever reaches a device lane) once this many milliseconds pass
    /// after admission.
    pub deadline_ms: Option<u64>,
}

impl Default for SolveRequest {
    fn default() -> Self {
        SolveRequest {
            api_version: API_VERSION.to_string(),
            tenant: "anonymous".to_string(),
            name: "request".to_string(),
            tsplib: None,
            coords: None,
            restarts: 1,
            ils_iterations: None,
            seed: 0,
            deadline_ms: None,
        }
    }
}

impl SolveRequest {
    /// A request carrying a TSPLIB document.
    pub fn tsplib(text: impl Into<String>) -> SolveRequest {
        SolveRequest {
            tsplib: Some(text.into()),
            ..SolveRequest::default()
        }
    }

    /// A request carrying Euclidean coordinates.
    pub fn coords(name: impl Into<String>, coords: Vec<(f64, f64)>) -> SolveRequest {
        SolveRequest {
            name: name.into(),
            coords: Some(coords),
            ..SolveRequest::default()
        }
    }

    /// Set the tenant identity.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> SolveRequest {
        self.tenant = tenant.into();
        self
    }

    /// Set the restart count.
    pub fn with_restarts(mut self, restarts: usize) -> SolveRequest {
        self.restarts = restarts;
        self
    }

    /// Enable ILS with an iteration budget.
    pub fn with_ils_iterations(mut self, iterations: u64) -> SolveRequest {
        self.ils_iterations = Some(iterations);
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed: u64) -> SolveRequest {
        self.seed = seed;
        self
    }

    /// Set a relative deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> SolveRequest {
        self.deadline_ms = Some(ms);
        self
    }

    /// Structural validation (payload arity, basic ranges); the
    /// instance itself is validated by [`SolveRequest::instance`].
    pub fn validate(&self) -> Result<(), ApiError> {
        match (&self.tsplib, &self.coords) {
            (Some(_), Some(_)) => Err(bad("pass \"tsplib\" or \"coords\", not both")),
            (None, None) => Err(bad("one of \"tsplib\" or \"coords\" is required")),
            _ => Ok(()),
        }?;
        if self.restarts == 0 {
            return Err(bad("\"restarts\" must be at least 1"));
        }
        Ok(())
    }

    /// Materialize the payload as an [`Instance`].
    pub fn instance(&self) -> Result<Instance, ApiError> {
        self.validate()?;
        if let Some(text) = &self.tsplib {
            return tsp_tsplib::parse(text).map_err(|e| bad(format!("TSPLIB payload: {e}")));
        }
        let coords = self.coords.as_ref().expect("validated above");
        let points: Vec<Point> = coords
            .iter()
            .map(|&(x, y)| Point::new(x as f32, y as f32))
            .collect();
        Instance::new(self.name.clone(), Metric::Euc2d, points)
            .map_err(|e| bad(format!("coordinate payload: {e}")))
    }

    /// Serialize as a `v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("api_version", Json::from(self.api_version.as_str()));
        obj.set("tenant", Json::from(self.tenant.as_str()));
        obj.set("name", Json::from(self.name.as_str()));
        if let Some(text) = &self.tsplib {
            obj.set("tsplib", Json::from(text.as_str()));
        }
        if let Some(coords) = &self.coords {
            let pairs = coords
                .iter()
                .map(|&(x, y)| Json::Arr(vec![Json::from(x), Json::from(y)]))
                .collect();
            obj.set("coords", Json::Arr(pairs));
        }
        obj.set("restarts", Json::from(self.restarts));
        if let Some(iters) = self.ils_iterations {
            obj.set("ils_iterations", Json::from(iters));
        }
        obj.set("seed", Json::from(self.seed));
        if let Some(ms) = self.deadline_ms {
            obj.set("deadline_ms", Json::from(ms));
        }
        obj
    }

    /// Parse a `v1` document (unknown members ignored, absent fields
    /// take their defaults).
    pub fn from_json(doc: &Json) -> Result<SolveRequest, ApiError> {
        check_version(doc).map_err(bad)?;
        let mut req = SolveRequest::default();
        if let Some(t) = doc.get("tenant").and_then(Json::as_str) {
            req.tenant = t.to_string();
        }
        if let Some(n) = doc.get("name").and_then(Json::as_str) {
            req.name = n.to_string();
        }
        req.tsplib = doc.get("tsplib").and_then(Json::as_str).map(str::to_string);
        if let Some(arr) = doc.get("coords").and_then(Json::as_array) {
            let mut coords = Vec::with_capacity(arr.len());
            for pair in arr {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| bad("\"coords\" entries must be [x, y] pairs"))?;
                let (x, y) = (pair[0].as_f64(), pair[1].as_f64());
                let (Some(x), Some(y)) = (x, y) else {
                    return Err(bad("\"coords\" entries must be numeric"));
                };
                coords.push((x, y));
            }
            req.coords = Some(coords);
        }
        if let Some(r) = doc.get("restarts").and_then(Json::as_f64) {
            req.restarts = r as usize;
        }
        req.ils_iterations = doc
            .get("ils_iterations")
            .and_then(Json::as_f64)
            .map(|v| v as u64);
        if let Some(s) = doc.get("seed").and_then(Json::as_f64) {
            req.seed = s as u64;
        }
        req.deadline_ms = doc
            .get("deadline_ms")
            .and_then(Json::as_f64)
            .map(|v| v as u64);
        Ok(req)
    }

    /// Parse a request body.
    pub fn parse(text: &str) -> Result<SolveRequest, ApiError> {
        let doc = json::parse(text).map_err(|e| bad(format!("request body: {e:?}")))?;
        SolveRequest::from_json(&doc)
    }
}

/// The shared request→builder mapping — the one config surface for
/// the service, the CLI and the benches. Implemented on
/// [`SolverBuilder`] so it reads as a constructor:
/// `SolverBuilder::from_request(&req)`.
pub trait FromRequest: Sized {
    /// Build a solver configuration from a validated request.
    fn from_request(req: &SolveRequest) -> Result<Self, ApiError>;
}

impl FromRequest for SolverBuilder {
    fn from_request(req: &SolveRequest) -> Result<SolverBuilder, ApiError> {
        req.validate()?;
        let mut builder = Solver::builder().restarts(req.restarts);
        if let Some(iterations) = req.ils_iterations {
            builder = builder.ils(
                IlsOptions::default()
                    .with_max_iterations(iterations)
                    .with_seed(req.seed),
            );
        } else if req.restarts > 1 {
            // Restarts imply ILS chains; pin the seed so the chains
            // are the ones the request asked for.
            builder = builder.ils(IlsOptions::default().with_seed(req.seed));
        }
        Ok(builder)
    }
}

/// Lifecycle of a job. Terminal states are [`JobState::Done`],
/// [`JobState::Failed`], [`JobState::Cancelled`] and
/// [`JobState::Expired`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobState {
    /// Admitted, waiting for a device slot.
    Queued,
    /// Solving on a device lane.
    Running,
    /// Finished; the result fields are populated.
    Done,
    /// The solver returned an error.
    Failed,
    /// Cancelled via `DELETE /v1/jobs/{id}`.
    Cancelled,
    /// The deadline passed before completion.
    Expired,
}

impl JobState {
    /// The stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Expired => "expired",
        }
    }

    /// Parse the wire spelling.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            "expired" => JobState::Expired,
            _ => return None,
        })
    }

    /// Whether the job can still change state.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// `GET /v1/jobs/{id}` — status plus, once done, the result.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct JobStatus {
    /// Always [`API_VERSION`] on serialized documents.
    pub api_version: String,
    /// The job id minted at submission.
    pub job_id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// The submitting tenant.
    pub tenant: String,
    /// The deterministic run id (populated once the solve ran; the
    /// key into the job's manifest/journal artifacts).
    pub run_id: Option<String>,
    /// The best tour, as a city permutation.
    pub tour: Option<Vec<u32>>,
    /// Its length.
    pub length: Option<i64>,
    /// Length of the constructed initial tour.
    pub initial_length: Option<i64>,
    /// Independent chains run.
    pub chains: Option<usize>,
    /// Total modeled device seconds.
    pub modeled_seconds: Option<f64>,
    /// Why the job failed / was rejected, when terminal-unsuccessful.
    pub error: Option<ApiError>,
    /// W3C trace id correlating this job with the distributed trace
    /// that submitted it (populated when request spans are on).
    pub trace_id: Option<String>,
}

impl JobStatus {
    /// A fresh status in [`JobState::Queued`].
    pub fn queued(job_id: impl Into<String>, tenant: impl Into<String>) -> JobStatus {
        JobStatus {
            api_version: API_VERSION.to_string(),
            job_id: job_id.into(),
            state: JobState::Queued,
            tenant: tenant.into(),
            run_id: None,
            tour: None,
            length: None,
            initial_length: None,
            chains: None,
            modeled_seconds: None,
            error: None,
            trace_id: None,
        }
    }

    /// Set the lifecycle state.
    pub fn with_state(mut self, state: JobState) -> JobStatus {
        self.state = state;
        self
    }

    /// Attach the correlating trace id.
    pub fn with_trace_id(mut self, trace_id: impl Into<String>) -> JobStatus {
        self.trace_id = Some(trace_id.into());
        self
    }

    /// Attach the error of a terminal-unsuccessful state.
    pub fn with_error(mut self, error: ApiError) -> JobStatus {
        self.error = Some(error);
        self
    }

    /// Serialize as a `v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("api_version", Json::from(self.api_version.as_str()));
        obj.set("job_id", Json::from(self.job_id.as_str()));
        obj.set("state", Json::from(self.state.as_str()));
        obj.set("tenant", Json::from(self.tenant.as_str()));
        if let Some(run_id) = &self.run_id {
            obj.set("run_id", Json::from(run_id.as_str()));
        }
        if let Some(tour) = &self.tour {
            obj.set(
                "tour",
                Json::Arr(tour.iter().map(|&c| Json::from(c)).collect()),
            );
        }
        if let Some(length) = self.length {
            obj.set("length", Json::from(length));
        }
        if let Some(initial) = self.initial_length {
            obj.set("initial_length", Json::from(initial));
        }
        if let Some(chains) = self.chains {
            obj.set("chains", Json::from(chains));
        }
        if let Some(modeled) = self.modeled_seconds {
            obj.set("modeled_seconds", Json::from(modeled));
        }
        if let Some(error) = &self.error {
            obj.set("error", error.to_json());
        }
        if let Some(trace_id) = &self.trace_id {
            obj.set("trace_id", Json::from(trace_id.as_str()));
        }
        obj
    }

    /// Parse a `v1` document (unknown members ignored).
    pub fn from_json(doc: &Json) -> Result<JobStatus, ApiError> {
        check_version(doc).map_err(bad)?;
        let job_id = doc
            .get("job_id")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"job_id\""))?;
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::parse)
            .ok_or_else(|| bad("missing or unknown \"state\""))?;
        let tenant = doc.get("tenant").and_then(Json::as_str).unwrap_or_default();
        let mut status = JobStatus::queued(job_id, tenant).with_state(state);
        status.run_id = doc.get("run_id").and_then(Json::as_str).map(str::to_string);
        if let Some(arr) = doc.get("tour").and_then(Json::as_array) {
            let mut tour = Vec::with_capacity(arr.len());
            for city in arr {
                let city = city
                    .as_f64()
                    .ok_or_else(|| bad("\"tour\" entries must be numeric"))?;
                tour.push(city as u32);
            }
            status.tour = Some(tour);
        }
        status.length = doc.get("length").and_then(Json::as_f64).map(|v| v as i64);
        status.initial_length = doc
            .get("initial_length")
            .and_then(Json::as_f64)
            .map(|v| v as i64);
        status.chains = doc.get("chains").and_then(Json::as_f64).map(|v| v as usize);
        status.modeled_seconds = doc.get("modeled_seconds").and_then(Json::as_f64);
        if let Some(err) = doc.get("error") {
            status.error = Some(ApiError::from_json(err).map_err(bad)?);
        }
        status.trace_id = doc
            .get("trace_id")
            .and_then(Json::as_str)
            .map(str::to_string);
        Ok(status)
    }

    /// Parse a response body.
    pub fn parse(text: &str) -> Result<JobStatus, ApiError> {
        let doc = json::parse(text).map_err(|e| bad(format!("status body: {e:?}")))?;
        JobStatus::from_json(&doc)
    }
}

/// `POST /v1/solve` → `202 Accepted` with this body.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SolveResponse {
    /// Always [`API_VERSION`] on serialized documents.
    pub api_version: String,
    /// The minted job id.
    pub job_id: String,
    /// Relative URL to poll for status/result.
    pub status_url: String,
    /// State at admission (always [`JobState::Queued`] today).
    pub state: JobState,
    /// W3C trace id of the request's distributed trace — the caller's
    /// own when it sent `traceparent`, a generated one otherwise.
    pub trace_id: Option<String>,
}

impl SolveResponse {
    /// The admission response for a freshly queued job.
    pub fn queued(job_id: impl Into<String>) -> SolveResponse {
        let job_id = job_id.into();
        SolveResponse {
            api_version: API_VERSION.to_string(),
            status_url: format!("/v1/jobs/{job_id}"),
            job_id,
            state: JobState::Queued,
            trace_id: None,
        }
    }

    /// Override the admission state.
    pub fn with_state(mut self, state: JobState) -> SolveResponse {
        self.state = state;
        self
    }

    /// Attach the correlating trace id.
    pub fn with_trace_id(mut self, trace_id: impl Into<String>) -> SolveResponse {
        self.trace_id = Some(trace_id.into());
        self
    }

    /// Serialize as a `v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("api_version", Json::from(self.api_version.as_str()));
        obj.set("job_id", Json::from(self.job_id.as_str()));
        obj.set("status_url", Json::from(self.status_url.as_str()));
        obj.set("state", Json::from(self.state.as_str()));
        if let Some(trace_id) = &self.trace_id {
            obj.set("trace_id", Json::from(trace_id.as_str()));
        }
        obj
    }

    /// Parse a `v1` document (unknown members ignored).
    pub fn from_json(doc: &Json) -> Result<SolveResponse, ApiError> {
        check_version(doc).map_err(bad)?;
        let job_id = doc
            .get("job_id")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"job_id\""))?;
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::parse)
            .ok_or_else(|| bad("missing or unknown \"state\""))?;
        let mut resp = SolveResponse::queued(job_id).with_state(state);
        if let Some(url) = doc.get("status_url").and_then(Json::as_str) {
            resp.status_url = url.to_string();
        }
        resp.trace_id = doc
            .get("trace_id")
            .and_then(Json::as_str)
            .map(str::to_string);
        Ok(resp)
    }

    /// Parse a response body.
    pub fn parse(text: &str) -> Result<SolveResponse, ApiError> {
        let doc = json::parse(text).map_err(|e| bad(format!("response body: {e:?}")))?;
        SolveResponse::from_json(&doc)
    }
}

/// One job's row in the [`OpsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OpsJob {
    /// The service-minted job id.
    pub job_id: String,
    /// Submitting tenant.
    pub tenant: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Correlating W3C trace id, when known.
    pub trace_id: Option<String>,
    /// Device pool index, once leased.
    pub device: Option<u64>,
    /// Stream index on that device, once leased.
    pub stream: Option<u64>,
    /// End-to-end wall seconds, once terminal.
    pub end_to_end_seconds: Option<f64>,
}

impl OpsJob {
    /// A row for a job in `state`.
    pub fn new(job_id: impl Into<String>, tenant: impl Into<String>, state: JobState) -> OpsJob {
        OpsJob {
            job_id: job_id.into(),
            tenant: tenant.into(),
            state,
            trace_id: None,
            device: None,
            stream: None,
            end_to_end_seconds: None,
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("job_id", Json::from(self.job_id.as_str()))
            .set("tenant", Json::from(self.tenant.as_str()))
            .set("state", Json::from(self.state.as_str()));
        if let Some(t) = &self.trace_id {
            o.set("trace_id", Json::from(t.as_str()));
        }
        if let Some(d) = self.device {
            o.set("device", Json::from(d as f64));
        }
        if let Some(s) = self.stream {
            o.set("stream", Json::from(s as f64));
        }
        if let Some(e) = self.end_to_end_seconds {
            o.set("end_to_end_seconds", Json::from(e));
        }
        o
    }

    fn from_json(j: &Json) -> Result<OpsJob, String> {
        let job_id = j
            .get("job_id")
            .and_then(Json::as_str)
            .ok_or("ops job missing job_id")?;
        let tenant = j.get("tenant").and_then(Json::as_str).unwrap_or_default();
        let state = j
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::parse)
            .ok_or("ops job missing a known state")?;
        let mut job = OpsJob::new(job_id, tenant, state);
        job.trace_id = j.get("trace_id").and_then(Json::as_str).map(str::to_string);
        job.device = j.get("device").and_then(Json::as_f64).map(|d| d as u64);
        job.stream = j.get("stream").and_then(Json::as_f64).map(|s| s as u64);
        job.end_to_end_seconds = j.get("end_to_end_seconds").and_then(Json::as_f64);
        Ok(job)
    }
}

/// One latency stage's rolling quantiles in the [`OpsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OpsLatency {
    /// The stage name (`queue_wait`, `lease_wait`, `solve`,
    /// `end_to_end`).
    pub stage: String,
    /// Observations folded into the estimators.
    pub count: u64,
    /// `(quantile, wall seconds)` estimates, ascending by quantile.
    pub quantiles: Vec<(f64, f64)>,
}

impl OpsLatency {
    /// A stage's latency summary.
    pub fn new(stage: impl Into<String>, count: u64, quantiles: Vec<(f64, f64)>) -> OpsLatency {
        OpsLatency {
            stage: stage.into(),
            count,
            quantiles,
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("stage", Json::from(self.stage.as_str()))
            .set("count", Json::from(self.count));
        let qs = self
            .quantiles
            .iter()
            .map(|&(q, v)| {
                let mut e = Json::obj();
                e.set("quantile", Json::from(q))
                    .set("seconds", Json::from(v));
                e
            })
            .collect();
        o.set("quantiles", Json::Arr(qs));
        o
    }

    fn from_json(j: &Json) -> Result<OpsLatency, String> {
        let stage = j
            .get("stage")
            .and_then(Json::as_str)
            .ok_or("ops latency missing stage")?;
        let count = j
            .get("count")
            .and_then(Json::as_f64)
            .ok_or("ops latency missing count")? as u64;
        let mut quantiles = Vec::new();
        for e in j
            .get("quantiles")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
        {
            let q = e
                .get("quantile")
                .and_then(Json::as_f64)
                .ok_or("ops quantile missing quantile")?;
            let v = e
                .get("seconds")
                .and_then(Json::as_f64)
                .ok_or("ops quantile missing seconds")?;
            quantiles.push((q, v));
        }
        Ok(OpsLatency::new(stage, count, quantiles))
    }
}

/// One worker lane's health row in the [`OpsSnapshot`]: what the
/// lane watchdog last saw between heartbeat stamps.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OpsLane {
    /// Lane index (one worker thread per lane).
    pub lane: u64,
    /// Whether the lane is currently executing a job.
    pub busy: bool,
    /// The job the lane is executing, when busy.
    pub job_id: Option<String>,
    /// Wall seconds since the lane's last heartbeat while busy
    /// (`0` for idle lanes). The `LaneStalled` rule fires on this.
    pub stall_seconds: f64,
}

impl OpsLane {
    /// An idle lane row.
    pub fn new(lane: u64) -> OpsLane {
        OpsLane {
            lane,
            busy: false,
            job_id: None,
            stall_seconds: 0.0,
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("lane", Json::from(self.lane))
            .set("busy", Json::from(self.busy));
        if let Some(id) = &self.job_id {
            o.set("job_id", Json::from(id.as_str()));
        }
        o.set("stall_seconds", Json::from(self.stall_seconds));
        o
    }

    fn from_json(j: &Json) -> Result<OpsLane, String> {
        let lane = j
            .get("lane")
            .and_then(Json::as_f64)
            .ok_or("ops lane missing lane")? as u64;
        let mut row = OpsLane::new(lane);
        row.busy = j.get("busy").and_then(Json::as_bool).unwrap_or(false);
        row.job_id = j.get("job_id").and_then(Json::as_str).map(str::to_string);
        row.stall_seconds = j.get("stall_seconds").and_then(Json::as_f64).unwrap_or(0.0);
        Ok(row)
    }
}

/// `GET /v1/ops` — a live operational snapshot of the service:
/// pool pressure, every known job with its lane and trace id, the
/// rolling latency quantiles per stage, and rejection totals per
/// [`ErrorCode`]. Purely observational; serving it never touches a
/// solve.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OpsSnapshot {
    /// Always [`API_VERSION`] on serialized documents.
    pub api_version: String,
    /// Jobs waiting in the admission queue.
    pub queue_depth: u64,
    /// Device lanes currently leased.
    pub slot_occupancy: u64,
    /// Total device lanes.
    pub lanes: u64,
    /// Every job the service knows, in job-id order.
    pub jobs: Vec<OpsJob>,
    /// Rolling latency quantiles per lifecycle stage.
    pub latency: Vec<OpsLatency>,
    /// `(error code, count)` rejection totals, ascending by code.
    pub rejections: Vec<(String, u64)>,
    /// Per-lane watchdog health rows, ascending by lane (additive
    /// `v1` field; absent on documents written before alerting).
    pub lane_health: Vec<OpsLane>,
    /// Alert rules currently in the `firing` state (additive `v1`
    /// field; the full census lives on `GET /v1/alerts`).
    pub alerts_firing: u64,
}

impl OpsSnapshot {
    /// An empty snapshot for a pool of `lanes` lanes.
    pub fn new(lanes: u64) -> OpsSnapshot {
        OpsSnapshot {
            api_version: API_VERSION.to_string(),
            queue_depth: 0,
            slot_occupancy: 0,
            lanes,
            jobs: Vec::new(),
            latency: Vec::new(),
            rejections: Vec::new(),
            lane_health: Vec::new(),
            alerts_firing: 0,
        }
    }

    /// Serialize as a `v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("api_version", Json::from(self.api_version.as_str()))
            .set("queue_depth", Json::from(self.queue_depth))
            .set("slot_occupancy", Json::from(self.slot_occupancy))
            .set("lanes", Json::from(self.lanes))
            .set(
                "jobs",
                Json::Arr(self.jobs.iter().map(OpsJob::to_json).collect()),
            )
            .set(
                "latency",
                Json::Arr(self.latency.iter().map(OpsLatency::to_json).collect()),
            );
        let rej = self
            .rejections
            .iter()
            .map(|(code, n)| {
                let mut e = Json::obj();
                e.set("code", Json::from(code.as_str()))
                    .set("count", Json::from(*n));
                e
            })
            .collect();
        obj.set("rejections", Json::Arr(rej));
        obj.set(
            "lane_health",
            Json::Arr(self.lane_health.iter().map(OpsLane::to_json).collect()),
        )
        .set("alerts_firing", Json::from(self.alerts_firing));
        obj
    }

    /// Parse a `v1` document (unknown members ignored).
    pub fn from_json(doc: &Json) -> Result<OpsSnapshot, ApiError> {
        check_version(doc).map_err(bad)?;
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(format!("ops snapshot missing {key:?}")))
        };
        let mut snap = OpsSnapshot::new(num("lanes")? as u64);
        snap.queue_depth = num("queue_depth")? as u64;
        snap.slot_occupancy = num("slot_occupancy")? as u64;
        for j in doc.get("jobs").and_then(Json::as_array).unwrap_or(&[]) {
            snap.jobs.push(OpsJob::from_json(j).map_err(bad)?);
        }
        for l in doc.get("latency").and_then(Json::as_array).unwrap_or(&[]) {
            snap.latency.push(OpsLatency::from_json(l).map_err(bad)?);
        }
        for r in doc
            .get("rejections")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            let code = r
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("rejection entry missing code"))?;
            let count =
                r.get("count")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("rejection entry missing count"))? as u64;
            snap.rejections.push((code.to_string(), count));
        }
        for l in doc
            .get("lane_health")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            snap.lane_health.push(OpsLane::from_json(l).map_err(bad)?);
        }
        snap.alerts_firing = doc
            .get("alerts_firing")
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        Ok(snap)
    }

    /// Parse a response body.
    pub fn parse(text: &str) -> Result<OpsSnapshot, ApiError> {
        let doc = json::parse(text).map_err(|e| bad(format!("ops body: {e:?}")))?;
        OpsSnapshot::from_json(&doc)
    }
}

/// One alert instance's row in the [`AlertsSnapshot`] — the wire
/// mirror of `tsp_telemetry::alerts::ActiveAlert`.
///
/// `severity` and `state` carry the engine's stable lowercase
/// spellings (`info`/`warning`/`critical`, `pending`/`firing`/
/// `resolved`); the wire layer keeps them as strings so the document
/// never lags an engine enum.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct OpsAlert {
    /// The rule that produced this instance.
    pub rule: String,
    /// Severity spelling (`info`, `warning`, `critical`).
    pub severity: String,
    /// State spelling (`pending`, `firing`, `resolved`).
    pub state: String,
    /// The sample labels that fanned this instance out, sorted.
    pub labels: Vec<(String, String)>,
    /// Wall seconds (service clock) the instance entered its state.
    pub since_seconds: f64,
    /// The sampled value at the last evaluation.
    pub value: f64,
}

impl OpsAlert {
    /// An alert row for `rule` in `state`.
    pub fn new(
        rule: impl Into<String>,
        severity: impl Into<String>,
        state: impl Into<String>,
    ) -> OpsAlert {
        OpsAlert {
            rule: rule.into(),
            severity: severity.into(),
            state: state.into(),
            labels: Vec::new(),
            since_seconds: 0.0,
            value: 0.0,
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("rule", Json::from(self.rule.as_str()))
            .set("severity", Json::from(self.severity.as_str()))
            .set("state", Json::from(self.state.as_str()));
        if !self.labels.is_empty() {
            let mut labels = Json::obj();
            for (k, v) in &self.labels {
                labels.set(k.as_str(), Json::from(v.as_str()));
            }
            o.set("labels", labels);
        }
        o.set("since_seconds", Json::from(self.since_seconds))
            .set("value", Json::from(self.value));
        o
    }

    fn from_json(j: &Json) -> Result<OpsAlert, String> {
        let rule = j
            .get("rule")
            .and_then(Json::as_str)
            .ok_or("alert row missing rule")?;
        let severity = j
            .get("severity")
            .and_then(Json::as_str)
            .ok_or("alert row missing severity")?;
        let state = j
            .get("state")
            .and_then(Json::as_str)
            .ok_or("alert row missing state")?;
        let mut row = OpsAlert::new(rule, severity, state);
        if let Some(Json::Obj(pairs)) = j.get("labels") {
            for (k, v) in pairs {
                let v = v.as_str().ok_or("alert label value must be a string")?;
                row.labels.push((k.clone(), v.to_string()));
            }
        }
        row.since_seconds = j.get("since_seconds").and_then(Json::as_f64).unwrap_or(0.0);
        row.value = j.get("value").and_then(Json::as_f64).unwrap_or(0.0);
        Ok(row)
    }
}

/// `GET /v1/alerts` — the alert engine's live census: every instance
/// currently pending, firing, or freshly resolved, plus lifetime
/// transition and evaluation counts. Purely observational, like
/// [`OpsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct AlertsSnapshot {
    /// Always [`API_VERSION`] on serialized documents.
    pub api_version: String,
    /// Active instances, ascending by `(rule, labels)`.
    pub alerts: Vec<OpsAlert>,
    /// Rules the engine evaluates.
    pub rules: u64,
    /// Instances currently firing.
    pub firing: u64,
    /// Lifetime state transitions journaled to `alerts.jsonl`.
    pub transitions_total: u64,
    /// Watchdog evaluations performed so far.
    pub evaluations_total: u64,
}

impl AlertsSnapshot {
    /// An empty census for an engine with `rules` rules.
    pub fn new(rules: u64) -> AlertsSnapshot {
        AlertsSnapshot {
            api_version: API_VERSION.to_string(),
            alerts: Vec::new(),
            rules,
            firing: 0,
            transitions_total: 0,
            evaluations_total: 0,
        }
    }

    /// Serialize as a `v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("api_version", Json::from(self.api_version.as_str()))
            .set(
                "alerts",
                Json::Arr(self.alerts.iter().map(OpsAlert::to_json).collect()),
            )
            .set("rules", Json::from(self.rules))
            .set("firing", Json::from(self.firing))
            .set("transitions_total", Json::from(self.transitions_total))
            .set("evaluations_total", Json::from(self.evaluations_total));
        obj
    }

    /// Parse a `v1` document (unknown members ignored).
    pub fn from_json(doc: &Json) -> Result<AlertsSnapshot, ApiError> {
        check_version(doc).map_err(bad)?;
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(format!("alerts snapshot missing {key:?}")))
        };
        let mut snap = AlertsSnapshot::new(num("rules")? as u64);
        for a in doc.get("alerts").and_then(Json::as_array).unwrap_or(&[]) {
            snap.alerts.push(OpsAlert::from_json(a).map_err(bad)?);
        }
        snap.firing = num("firing")? as u64;
        snap.transitions_total = num("transitions_total")? as u64;
        snap.evaluations_total = num("evaluations_total")? as u64;
        Ok(snap)
    }

    /// Parse a response body.
    pub fn parse(text: &str) -> Result<AlertsSnapshot, ApiError> {
        let doc = json::parse(text).map_err(|e| bad(format!("alerts body: {e:?}")))?;
        AlertsSnapshot::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_payload_arity_is_enforced() {
        assert_eq!(
            SolveRequest::default().validate().unwrap_err().code,
            ErrorCode::BadRequest
        );
        let both = SolveRequest {
            tsplib: Some("x".into()),
            coords: Some(vec![(0.0, 0.0)]),
            ..SolveRequest::default()
        };
        assert_eq!(both.validate().unwrap_err().code, ErrorCode::BadRequest);
        assert!(SolveRequest::coords("t", vec![(0.0, 0.0); 3])
            .validate()
            .is_ok());
    }

    #[test]
    fn coords_payload_builds_a_euclidean_instance() {
        let req = SolveRequest::coords("tri", vec![(0.0, 0.0), (3.0, 0.0), (0.0, 4.0)]);
        let inst = req.instance().unwrap();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.metric(), Metric::Euc2d);
        assert_eq!(inst.name(), "tri");
    }

    #[test]
    fn unknown_members_are_ignored_and_versions_are_checked() {
        let req =
            SolveRequest::parse(r#"{"coords":[[0,0],[1,0],[0,1]],"future_field":42,"seed":7}"#)
                .unwrap();
        assert_eq!(req.seed, 7);
        assert_eq!(req.coords.as_ref().unwrap().len(), 3);

        let err = SolveRequest::parse(r#"{"api_version":"v9","coords":[[0,0]]}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("v9"), "{}", err.message);
    }

    #[test]
    fn error_codes_map_to_the_documented_statuses() {
        for (code, status) in [
            (ErrorCode::BadRequest, 400),
            (ErrorCode::NotFound, 404),
            (ErrorCode::QuotaExceeded, 429),
            (ErrorCode::QueueFull, 503),
            (ErrorCode::DeadlineExceeded, 503),
            (ErrorCode::Unsupported, 400),
            (ErrorCode::Internal, 500),
        ] {
            assert_eq!(code.http_status(), status);
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
    }

    #[test]
    fn retry_after_seconds_matches_the_header_computation() {
        let err = ApiError::new(ErrorCode::QuotaExceeded, "over quota");
        assert_eq!(err.retry_after_seconds(), None);
        assert!(!err.to_json().to_string().contains("retry_after_s"));
        for (ms, s) in [(1, 1), (999, 1), (1000, 1), (1001, 2), (1500, 2), (0, 1)] {
            let err = err.clone().with_retry_after_ms(ms);
            assert_eq!(err.retry_after_seconds(), Some(s), "{ms}ms");
            let doc = err.to_json();
            assert_eq!(
                doc.get("retry_after_s").and_then(Json::as_f64),
                Some(s as f64)
            );
            // Derived field: the round trip reconstructs it from ms.
            let back = ApiError::from_json(&doc).unwrap();
            assert_eq!(back, err);
        }
    }

    #[test]
    fn trace_ids_ride_the_responses() {
        let resp = SolveResponse::queued("job-1").with_trace_id("0af7651916cd43dd8448eb211c80319c");
        let back = SolveResponse::parse(&resp.to_json().to_string()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(
            back.trace_id.as_deref(),
            Some("0af7651916cd43dd8448eb211c80319c")
        );
        // Absent stays absent (pre-trace documents parse unchanged).
        let plain = SolveResponse::queued("job-2");
        assert_eq!(
            SolveResponse::parse(&plain.to_json().to_string()).unwrap(),
            plain
        );

        let status = JobStatus::queued("job-1", "dispatch")
            .with_state(JobState::Done)
            .with_trace_id("0af7651916cd43dd8448eb211c80319c");
        let back = JobStatus::parse(&status.to_json().to_string()).unwrap();
        assert_eq!(back, status);
    }

    #[test]
    fn ops_snapshot_round_trips() {
        let mut snap = OpsSnapshot::new(4);
        snap.queue_depth = 2;
        snap.slot_occupancy = 3;
        let mut job = OpsJob::new("job-00000001", "dispatch", JobState::Done);
        job.trace_id = Some("0af7651916cd43dd8448eb211c80319c".into());
        job.device = Some(1);
        job.stream = Some(0);
        job.end_to_end_seconds = Some(0.064);
        snap.jobs.push(job);
        snap.jobs
            .push(OpsJob::new("job-00000002", "burst", JobState::Queued));
        snap.latency.push(OpsLatency::new(
            "end_to_end",
            50,
            vec![(0.5, 0.031), (0.95, 0.059), (0.99, 0.064)],
        ));
        snap.rejections.push(("queue_full".into(), 3));
        let back = OpsSnapshot::parse(&snap.to_json().to_string()).unwrap();
        assert_eq!(back, snap);
        // Unknown members are ignored, like everywhere on v1.
        let mut doc = snap.to_json();
        doc.set("future_field", Json::from(1u64));
        assert_eq!(OpsSnapshot::from_json(&doc).unwrap(), snap);
        // Version checks still apply (`Json::set` appends, so build a
        // fresh document carrying the wrong version).
        let mut wrong = Json::obj();
        wrong.set("api_version", Json::from("v9"));
        assert!(OpsSnapshot::from_json(&wrong).is_err());
    }

    #[test]
    fn lane_health_and_alerts_snapshot_round_trip() {
        let mut snap = OpsSnapshot::new(2);
        let mut stuck = OpsLane::new(0);
        stuck.busy = true;
        stuck.job_id = Some("job-00000001".into());
        stuck.stall_seconds = 4.25;
        snap.lane_health.push(stuck);
        snap.lane_health.push(OpsLane::new(1));
        snap.alerts_firing = 1;
        let back = OpsSnapshot::parse(&snap.to_json().to_string()).unwrap();
        assert_eq!(back, snap);
        // Pre-alerting documents parse with empty lane health.
        let mut old = Json::obj();
        old.set("queue_depth", Json::from(0u64))
            .set("slot_occupancy", Json::from(0u64))
            .set("lanes", Json::from(2u64));
        let parsed = OpsSnapshot::from_json(&old).unwrap();
        assert!(parsed.lane_health.is_empty());
        assert_eq!(parsed.alerts_firing, 0);

        let mut alerts = AlertsSnapshot::new(5);
        let mut row = OpsAlert::new("LaneStalled", "critical", "firing");
        row.labels.push(("lane".into(), "0".into()));
        row.since_seconds = 12.5;
        row.value = 4.25;
        alerts.alerts.push(row);
        alerts.firing = 1;
        alerts.transitions_total = 3;
        alerts.evaluations_total = 40;
        let back = AlertsSnapshot::parse(&alerts.to_json().to_string()).unwrap();
        assert_eq!(back, alerts);
        let mut doc = alerts.to_json();
        doc.set("future_field", Json::from(true));
        assert_eq!(AlertsSnapshot::from_json(&doc).unwrap(), alerts);
    }

    #[test]
    fn from_request_is_deterministic_for_the_same_request() {
        let req = SolveRequest::coords("c", vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)])
            .with_ils_iterations(3)
            .with_seed(11);
        let inst = req.instance().unwrap();
        let a = SolverBuilder::from_request(&req)
            .unwrap()
            .build()
            .run(&inst)
            .unwrap();
        let b = SolverBuilder::from_request(&req)
            .unwrap()
            .build()
            .run(&inst)
            .unwrap();
        assert_eq!(a.length, b.length);
        assert_eq!(a.tour.as_slice(), b.tour.as_slice());
    }
}
