//! `tsp-serve` — boot the multi-tenant solve service from a JSON
//! config file and serve until stdin closes.
//!
//! ```text
//! tsp-serve [CONFIG.json]        boot from a config file (defaults without one)
//! tsp-serve --print-config      print the default config document and exit
//! ```
//!
//! The config document is [`ServiceConfig::to_json`] plus one extra
//! member, `"bind"` (default `127.0.0.1:7878`; use port `0` for an
//! ephemeral port). Everything is optional; absent fields take their
//! defaults and unknown members are ignored, like every other `v1`
//! document. Example:
//!
//! ```json
//! {
//!   "bind": "127.0.0.1:7878",
//!   "spec": "gtx_680_cuda",
//!   "devices": 2,
//!   "streams": 2,
//!   "per_tenant_quota": 16,
//!   "artifacts_dir": "/tmp/tsp-serve-artifacts",
//!   "alerts": { "stall_seconds": 30, "watchdog_interval_ms": 250 }
//! }
//! ```
//!
//! The process serves until stdin reaches EOF (pipe `/dev/null` to
//! run until killed), then drains the queue, joins the workers, and
//! exits 0.

use std::io::Read;
use std::process::ExitCode;
use tsp_prof::Profiler;
use tsp_serve::{ServeServer, ServiceConfig, SolveService};
use tsp_telemetry::Telemetry;
use tsp_trace::json::{self, Json};

const DEFAULT_BIND: &str = "127.0.0.1:7878";

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("tsp-serve: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: tsp-serve [CONFIG.json] | tsp-serve --print-config");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--print-config") {
        let mut doc = Json::obj();
        doc.set("bind", Json::from(DEFAULT_BIND));
        if let Json::Obj(pairs) = ServiceConfig::default().to_json() {
            for (key, value) in pairs {
                doc.set(&key, value);
            }
        }
        println!("{doc}");
        return ExitCode::SUCCESS;
    }

    let (cfg, bind) = match args.first() {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => return fail(format!("read {path}: {err}")),
            };
            let doc = match json::parse(&text) {
                Ok(doc) => doc,
                Err(err) => return fail(format!("parse {path}: {err:?}")),
            };
            let cfg = match ServiceConfig::from_json(&doc) {
                Ok(cfg) => cfg,
                Err(err) => return fail(format!("{path}: {err}")),
            };
            let bind = doc
                .get("bind")
                .and_then(Json::as_str)
                .unwrap_or(DEFAULT_BIND)
                .to_string();
            (cfg, bind)
        }
        None => (ServiceConfig::default(), DEFAULT_BIND.to_string()),
    };

    let service = match SolveService::start(cfg, Telemetry::attached(), Profiler::attached()) {
        Ok(service) => service,
        Err(err) => return fail(format!("boot: {err}")),
    };
    let server = match ServeServer::spawn(bind.as_str(), service) {
        Ok(server) => server,
        Err(err) => return fail(format!("bind {bind}: {err}")),
    };
    println!("tsp-serve listening on http://{}", server.addr());
    println!("routes: POST /v1/solve  GET/DELETE /v1/jobs/{{id}}  GET /v1/ops  GET /v1/alerts  GET /metrics  GET /healthz");
    println!("serving until stdin closes...");

    // Serve until stdin EOF, then drain and exit cleanly.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    let (_service, reports) = server.shutdown();
    println!(
        "tsp-serve drained: {} stream schedules collected",
        reports.len()
    );
    ExitCode::SUCCESS
}
