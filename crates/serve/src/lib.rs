//! # tsp-serve
//!
//! The serving layer: a long-running, multi-tenant solve service over
//! the simulated-GPU stack, answering the road-map's "heavy traffic"
//! arc. Three pieces:
//!
//! * [`api`] — the versioned `v1` wire types ([`SolveRequest`],
//!   [`SolveResponse`], [`JobStatus`], [`ApiError`]) with hand-rolled
//!   JSON and a documented compatibility rule, plus [`FromRequest`]:
//!   the one request→[`SolverBuilder`] mapping shared by the service,
//!   the CLI and the benches.
//! * [`pool`] — the slot pool: one pre-installed device arena per
//!   pooled device and a free-index allocator leasing `(device,
//!   stream)` lanes, so steady-state traffic causes **zero** device
//!   allocations on the `tsp-prof` ledger.
//! * [`admission`] / [`service`] / [`server`] — bounded admission
//!   with per-tenant quotas and deadlines (typed 429/503 + `Retry-After`;
//!   rejected work never touches a lane), worker-per-lane execution
//!   through [`Solver::run_on`], and the HTTP front on the shared
//!   [`tsp_telemetry::http`] core:
//!   `POST /v1/solve`, `GET /v1/jobs/{id}`, `DELETE /v1/jobs/{id}`,
//!   `GET /v1/ops` (queue/lane/latency snapshot), `GET /v1/alerts`
//!   (the fleet-health census from the lane-heartbeat watchdog),
//!   plus `/metrics` and `/healthz` on the same port.
//!
//! ```no_run
//! use tsp_serve::{ServeServer, ServiceConfig, SolveService, SolveRequest};
//! use tsp_prof::Profiler;
//! use tsp_telemetry::Telemetry;
//!
//! let service = SolveService::start(
//!     ServiceConfig::default(),
//!     Telemetry::attached(),
//!     Profiler::attached(),
//! )
//! .unwrap();
//! let server = ServeServer::spawn("127.0.0.1:0", service).unwrap();
//! println!("serving on http://{}", server.addr());
//! ```
//!
//! [`SolverBuilder`]: tsp::SolverBuilder
//! [`Solver::run_on`]: tsp::Solver::run_on

pub mod admission;
pub mod api;
pub mod pool;
pub mod server;
pub mod service;
pub mod span;

pub use admission::{AdmissionQueue, Ticket};
pub use api::{
    AlertsSnapshot, ApiError, ErrorCode, FromRequest, JobState, JobStatus, OpsAlert, OpsJob,
    OpsLane, OpsLatency, OpsSnapshot, SolveRequest, SolveResponse, API_VERSION,
};
pub use pool::{SlotIndexAllocator, SlotLease, SlotPool};
pub use server::{error_response, router, ServeServer};
pub use service::{AlertConfig, ServiceConfig, SolveService};
pub use span::{RequestSpan, Stage, StageStamp, REQUEST_SPAN_FORMAT};
