//! The slot pool: fixed pre-allocated device arenas plus a free-index
//! allocator striped across [`DevicePool`] lanes.
//!
//! In the spirit of wasmtime's pooling allocator, all device memory
//! the service will ever use is reserved **once** at boot: each device
//! gets one arena sized `streams × slot_bytes`, journaled to the
//! `tsp-prof` ledger as a single labeled allocation. Every concurrent
//! solve then leases a *slot* — an index that maps 1:1 onto a
//! `(device, stream)` lane — and all of its buffer churn is absorbed
//! by the arena: the ledger shows **zero steady-state allocations**
//! once the pool is warm, which is exactly the property the smoke
//! bench asserts.
//!
//! The allocator itself is a Mutex'd free list with a lease bitmap
//! (double-release is a hard error, not a silent corruption) and a
//! Condvar for blocking acquisition; an occupancy gauge tracks live
//! leases when telemetry is attached.

use gpu_sim::{Device, DevicePool, DeviceSpec, SimError, StreamId, StreamReport};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use tsp_prof::Profiler;
use tsp_telemetry::{Gauge, Telemetry};

/// A Mutex'd free-index allocator with a lease bitmap and blocking
/// acquisition. Indices are dense `0..capacity`.
#[derive(Debug)]
pub struct SlotIndexAllocator {
    state: Mutex<AllocState>,
    available: Condvar,
}

#[derive(Debug)]
struct AllocState {
    /// LIFO free list (popping yields the lowest index first at boot).
    free: Vec<u32>,
    /// `leased[i]` iff slot `i` is out; catches double-releases.
    leased: Vec<bool>,
}

impl SlotIndexAllocator {
    /// An allocator over `slots` dense indices, all free.
    pub fn new(slots: u32) -> SlotIndexAllocator {
        SlotIndexAllocator {
            state: Mutex::new(AllocState {
                free: (0..slots).rev().collect(),
                leased: vec![false; slots as usize],
            }),
            available: Condvar::new(),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.state.lock().unwrap().leased.len()
    }

    /// Currently leased slot count.
    pub fn leased(&self) -> usize {
        self.state
            .lock()
            .unwrap()
            .leased
            .iter()
            .filter(|&&l| l)
            .count()
    }

    /// Lease a slot if one is free.
    pub fn try_acquire(&self) -> Option<u32> {
        let mut state = self.state.lock().unwrap();
        let slot = state.free.pop()?;
        state.leased[slot as usize] = true;
        Some(slot)
    }

    /// Lease a slot, blocking until one frees up.
    pub fn acquire(&self) -> u32 {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(slot) = state.free.pop() {
                state.leased[slot as usize] = true;
                return slot;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Return a lease. Releasing an out-of-range or un-leased slot is
    /// an error — the caller's bookkeeping is broken, and silently
    /// accepting it would hand the same lane to two jobs.
    pub fn release(&self, slot: u32) -> Result<(), String> {
        let mut state = self.state.lock().unwrap();
        let Some(leased) = state.leased.get_mut(slot as usize) else {
            return Err(format!("slot {slot} is out of range"));
        };
        if !*leased {
            return Err(format!("slot {slot} is not leased (double release?)"));
        }
        *leased = false;
        state.free.push(slot);
        drop(state);
        self.available.notify_one();
        Ok(())
    }
}

/// The serving-side device pool: a [`DevicePool`] whose lanes are
/// leased through a [`SlotIndexAllocator`], with one pre-installed
/// arena per device absorbing all per-solve buffer traffic.
pub struct SlotPool {
    pool: DevicePool,
    allocator: SlotIndexAllocator,
    occupancy: Option<Gauge>,
    slot_bytes: u64,
    arenas_installed: AtomicBool,
}

impl std::fmt::Debug for SlotPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotPool")
            .field("lanes", &self.pool.lanes())
            .field("slot_bytes", &self.slot_bytes)
            .field("leased", &self.allocator.leased())
            .finish()
    }
}

impl SlotPool {
    /// Build the pool and warm it up: attach the observability sinks
    /// first (so the arena reservations themselves are journaled),
    /// then install one arena of `streams × slot_bytes` per device.
    /// Fails with the device's own OOM error when `slot_bytes` is
    /// oversubscribed against the spec's memory.
    pub fn new(
        spec: DeviceSpec,
        devices: usize,
        streams: usize,
        slot_bytes: u64,
        telemetry: &Telemetry,
        prof: &Profiler,
    ) -> Result<SlotPool, SimError> {
        let mut pool = DevicePool::homogeneous(spec, devices, streams);
        pool.attach_telemetry(telemetry);
        pool.attach_profiler(prof);
        for device in pool.devices() {
            device.install_arena(streams as u64 * slot_bytes)?;
        }
        let occupancy = telemetry.registry().map(|r| {
            r.gauge(
                "tsp_serve_slot_occupancy",
                "Device slots currently leased to running solves",
            )
        });
        if let Some(gauge) = &occupancy {
            gauge.set(0.0);
        }
        Ok(SlotPool {
            allocator: SlotIndexAllocator::new(pool.lanes() as u32),
            pool,
            occupancy,
            slot_bytes,
            arenas_installed: AtomicBool::new(true),
        })
    }

    /// Total lanes (= slots).
    pub fn lanes(&self) -> usize {
        self.pool.lanes()
    }

    /// Bytes budgeted per slot.
    pub fn slot_bytes(&self) -> u64 {
        self.slot_bytes
    }

    /// Currently leased slots.
    pub fn occupancy(&self) -> usize {
        self.allocator.leased()
    }

    /// The devices behind the lanes (for ledger/arena introspection).
    pub fn devices(&self) -> &[Arc<Device>] {
        self.pool.devices()
    }

    /// Lease a lane, blocking until one frees up.
    pub fn acquire(&self) -> SlotLease<'_> {
        let slot = self.allocator.acquire();
        self.lease(slot)
    }

    /// Lease a lane if one is free.
    pub fn try_acquire(&self) -> Option<SlotLease<'_>> {
        self.allocator.try_acquire().map(|slot| self.lease(slot))
    }

    fn lease(&self, slot: u32) -> SlotLease<'_> {
        if let Some(gauge) = &self.occupancy {
            gauge.set(self.allocator.leased() as f64);
        }
        SlotLease { pool: self, slot }
    }

    fn release(&self, slot: u32) {
        self.allocator
            .release(slot)
            .expect("SlotLease releases each slot exactly once");
        if let Some(gauge) = &self.occupancy {
            gauge.set(self.allocator.leased() as f64);
        }
    }

    /// Drain every stream and collect the per-stream modeled
    /// schedules (wall/busy/overlap).
    pub fn synchronize(&self) -> Vec<StreamReport> {
        self.pool.synchronize()
    }

    /// Tear the arenas back down, journaling the matching frees so
    /// the ledger balances end-to-end. Idempotent; called by `Drop`.
    pub fn release_arenas(&self) {
        if !self.arenas_installed.swap(false, Ordering::SeqCst) {
            return;
        }
        for device in self.pool.devices() {
            device.uninstall_arena();
        }
    }
}

impl Drop for SlotPool {
    fn drop(&mut self) {
        self.release_arenas();
    }
}

/// An exclusive lease on one `(device, stream)` lane; returned to the
/// allocator on drop.
#[derive(Debug)]
pub struct SlotLease<'a> {
    pool: &'a SlotPool,
    slot: u32,
}

impl SlotLease<'_> {
    /// The leased slot index (= lane index).
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The lane's device.
    pub fn device(&self) -> &Arc<Device> {
        self.pool.pool.lane(self.slot as usize).0
    }

    /// Pool index of the lane's device (lane `l` → device
    /// `l % device_count`, mirroring [`DevicePool::lane`]).
    ///
    /// [`DevicePool::lane`]: gpu_sim::DevicePool::lane
    pub fn device_index(&self) -> usize {
        self.slot as usize % self.pool.pool.device_count()
    }

    /// The lane's stream on that device.
    pub fn stream(&self) -> StreamId {
        self.pool.pool.lane(self.slot as usize).1
    }
}

impl Drop for SlotLease<'_> {
    fn drop(&mut self) {
        self.pool.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_hands_out_each_slot_once() {
        let alloc = SlotIndexAllocator::new(3);
        let a = alloc.try_acquire().unwrap();
        let b = alloc.try_acquire().unwrap();
        let c = alloc.try_acquire().unwrap();
        assert_eq!(alloc.try_acquire(), None);
        let mut got = [a, b, c];
        got.sort_unstable();
        assert_eq!(got, [0, 1, 2]);
        assert_eq!(alloc.leased(), 3);
        alloc.release(b).unwrap();
        assert_eq!(alloc.try_acquire(), Some(b));
    }

    #[test]
    fn double_release_is_a_hard_error() {
        let alloc = SlotIndexAllocator::new(2);
        let slot = alloc.try_acquire().unwrap();
        alloc.release(slot).unwrap();
        assert!(alloc.release(slot).is_err());
        assert!(alloc.release(99).is_err());
        // The failed releases must not have corrupted the free list.
        assert_eq!(alloc.capacity(), 2);
        assert_eq!(alloc.leased(), 0);
    }

    #[test]
    fn leases_map_onto_distinct_lanes_and_release_on_drop() {
        let prof = Profiler::detached();
        let telemetry = Telemetry::attached();
        let pool = SlotPool::new(
            gpu_sim::spec::gtx_680_cuda(),
            2,
            2,
            1 << 20,
            &telemetry,
            &prof,
        )
        .unwrap();
        assert_eq!(pool.lanes(), 4);
        {
            let leases: Vec<_> = (0..4).map(|_| pool.try_acquire().unwrap()).collect();
            assert!(pool.try_acquire().is_none());
            assert_eq!(pool.occupancy(), 4);
            let registry = telemetry.registry().unwrap();
            assert_eq!(registry.gauge_value("tsp_serve_slot_occupancy"), Some(4.0));
            // Every lease owns a distinct lane.
            let mut lanes: Vec<u32> = leases.iter().map(|l| l.slot()).collect();
            lanes.sort_unstable();
            assert_eq!(lanes, vec![0, 1, 2, 3]);
        }
        assert_eq!(pool.occupancy(), 0);
        assert_eq!(
            telemetry
                .registry()
                .unwrap()
                .gauge_value("tsp_serve_slot_occupancy"),
            Some(0.0)
        );
        pool.release_arenas();
    }

    #[test]
    fn arenas_install_once_per_device_and_balance_on_teardown() {
        let prof = Profiler::attached();
        let telemetry = Telemetry::detached();
        {
            let _pool = SlotPool::new(
                gpu_sim::spec::gtx_680_cuda(),
                2,
                2,
                1 << 20,
                &telemetry,
                &prof,
            )
            .unwrap();
        }
        let report = prof.memory_report();
        assert!(report.balanced(), "arena teardown must balance the ledger");
        for device in &report.devices {
            assert_eq!(device.allocs, 1, "exactly the arena install");
            assert_eq!(device.frees, 1, "exactly the arena teardown");
        }
    }
}
