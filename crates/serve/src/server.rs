//! HTTP front of the service: the `v1` routes on the shared
//! [`tsp_telemetry::http`] core, plus the scrape endpoints
//! (`/metrics`, `/healthz`) on the same port.
//!
//! Every `POST /v1/solve` runs under a W3C trace context: a valid
//! incoming `traceparent` header is adopted (so the job correlates
//! with the caller's distributed trace), anything else gets a
//! generated context. The context's trace id is echoed in the
//! response body and `traceparent` response header, stamped on the
//! job's journal lines and request span, and tagged onto its Chrome
//! trace artifact.

use crate::api::{ApiError, SolveRequest};
use crate::service::SolveService;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use tsp_telemetry::http::{
    trace_seed, AccessLog, HttpServer, Response, Router, TraceContext, TRACEPARENT,
};
use tsp_telemetry::prometheus::CONTENT_TYPE;

/// Render a typed error as its documented status, mirroring the
/// back-off hint into `Retry-After` (whole seconds, rounded up) on
/// the retryable 429/503 rejections.
pub fn error_response(err: &ApiError) -> Response {
    let mut response = Response::json(err.code.http_status(), err.to_json().to_string());
    if let Some(ms) = err.retry_after_ms {
        response = response.with_header("Retry-After", ms.div_ceil(1000).max(1).to_string());
    }
    response
}

/// The full routing table: the `v1` solve API plus the scrape
/// endpoints every embedded server in this workspace exposes.
pub fn router(service: Arc<SolveService>) -> Router {
    let telemetry = service.telemetry().clone();
    let submit = service.clone();
    let status = service.clone();
    let cancel = service.clone();
    let alerts = service.clone();
    let ops = service;
    Router::new()
        .route("POST", "/v1/solve", move |req, _| {
            // Adopt the caller's trace context when it sends a valid
            // `traceparent`; mint one otherwise so every admitted job
            // is correlatable.
            let ctx = TraceContext::of_request(req)
                .unwrap_or_else(|| TraceContext::generate(&trace_seed()));
            let body = String::from_utf8_lossy(&req.body);
            let outcome = SolveRequest::parse(&body)
                .inspect_err(|err| {
                    // submit_traced counts its own rejections; the
                    // parse failures never reach it.
                    submit.count_rejection(err.code);
                })
                .and_then(|r| submit.submit_traced(r, &ctx.trace_id));
            let response = match outcome {
                Ok(resp) => Response::json(202, resp.to_json().to_string()),
                Err(err) => error_response(&err),
            };
            response.with_header(TRACEPARENT, ctx.to_header())
        })
        .route("GET", "/v1/jobs/{id}", move |_, params| {
            let id = params.get("id").unwrap_or_default();
            match status.status(id) {
                Ok(job) => Response::json(200, job.to_json().to_string()),
                Err(err) => {
                    status.count_rejection(err.code);
                    error_response(&err)
                }
            }
        })
        .route("DELETE", "/v1/jobs/{id}", move |_, params| {
            let id = params.get("id").unwrap_or_default();
            match cancel.cancel(id) {
                Ok(job) => Response::json(200, job.to_json().to_string()),
                Err(err) => {
                    cancel.count_rejection(err.code);
                    error_response(&err)
                }
            }
        })
        .route("GET", "/v1/ops", move |_, _| {
            Response::json(200, ops.ops_snapshot().to_json().to_string())
        })
        .route("GET", "/v1/alerts", move |_, _| {
            Response::json(200, alerts.alerts_snapshot().to_json().to_string())
        })
        .route("GET", "/metrics", move |_, _| {
            Response::new(200, CONTENT_TYPE, telemetry.expose())
        })
        .route("GET", "/healthz", |_, _| Response::text(200, "ok\n"))
}

/// The served solve API: [`SolveService`] behind an [`HttpServer`].
#[derive(Debug)]
pub struct ServeServer {
    http: HttpServer,
    service: Arc<SolveService>,
}

impl ServeServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve. When
    /// the service config names an access-log file, every request gets
    /// one structured JSONL line there.
    pub fn spawn(addr: impl ToSocketAddrs, service: SolveService) -> io::Result<ServeServer> {
        let service = Arc::new(service);
        let access_log = match service.access_log_path() {
            Some(path) => Some(AccessLog::create(path)?),
            None => None,
        };
        let http = HttpServer::spawn_with_log(
            addr,
            "tsp-serve",
            Arc::new(router(service.clone())),
            access_log,
        )?;
        Ok(ServeServer { http, service })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// The service behind the routes (for in-process inspection).
    pub fn service(&self) -> &Arc<SolveService> {
        &self.service
    }

    /// Stop accepting connections, then shut the service down: drain
    /// the queue, join the workers, and balance the ledger. Returns
    /// the service (for post-mortem inspection) and the per-stream
    /// modeled schedules collected at drain time.
    pub fn shutdown(self) -> (Arc<SolveService>, Vec<gpu_sim::StreamReport>) {
        self.http.shutdown();
        let reports = self.service.shutdown();
        (self.service, reports)
    }
}
