//! HTTP front of the service: the `v1` routes on the shared
//! [`tsp_telemetry::http`] core, plus the scrape endpoints
//! (`/metrics`, `/healthz`) on the same port.

use crate::api::{ApiError, SolveRequest};
use crate::service::SolveService;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use tsp_telemetry::http::{HttpServer, Response, Router};
use tsp_telemetry::prometheus::CONTENT_TYPE;

/// Render a typed error as its documented status, mirroring the
/// back-off hint into `Retry-After` (whole seconds, rounded up) on
/// the retryable 429/503 rejections.
pub fn error_response(err: &ApiError) -> Response {
    let mut response = Response::json(err.code.http_status(), err.to_json().to_string());
    if let Some(ms) = err.retry_after_ms {
        response = response.with_header("Retry-After", ms.div_ceil(1000).max(1).to_string());
    }
    response
}

/// The full routing table: the `v1` solve API plus the scrape
/// endpoints every embedded server in this workspace exposes.
pub fn router(service: Arc<SolveService>) -> Router {
    let telemetry = service.telemetry().clone();
    let submit = service.clone();
    let status = service.clone();
    let cancel = service;
    Router::new()
        .route("POST", "/v1/solve", move |req, _| {
            let body = String::from_utf8_lossy(&req.body);
            match SolveRequest::parse(&body).and_then(|r| submit.submit(r)) {
                Ok(resp) => Response::json(202, resp.to_json().to_string()),
                Err(err) => error_response(&err),
            }
        })
        .route("GET", "/v1/jobs/{id}", move |_, params| {
            let id = params.get("id").unwrap_or_default();
            match status.status(id) {
                Ok(job) => Response::json(200, job.to_json().to_string()),
                Err(err) => error_response(&err),
            }
        })
        .route("DELETE", "/v1/jobs/{id}", move |_, params| {
            let id = params.get("id").unwrap_or_default();
            match cancel.cancel(id) {
                Ok(job) => Response::json(200, job.to_json().to_string()),
                Err(err) => error_response(&err),
            }
        })
        .route("GET", "/metrics", move |_, _| {
            Response::new(200, CONTENT_TYPE, telemetry.expose())
        })
        .route("GET", "/healthz", |_, _| Response::text(200, "ok\n"))
}

/// The served solve API: [`SolveService`] behind an [`HttpServer`].
#[derive(Debug)]
pub struct ServeServer {
    http: HttpServer,
    service: Arc<SolveService>,
}

impl ServeServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve.
    pub fn spawn(addr: impl ToSocketAddrs, service: SolveService) -> io::Result<ServeServer> {
        let service = Arc::new(service);
        let http = HttpServer::spawn(addr, "tsp-serve", Arc::new(router(service.clone())))?;
        Ok(ServeServer { http, service })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// The service behind the routes (for in-process inspection).
    pub fn service(&self) -> &Arc<SolveService> {
        &self.service
    }

    /// Stop accepting connections, then shut the service down: drain
    /// the queue, join the workers, and balance the ledger. Returns
    /// the service (for post-mortem inspection) and the per-stream
    /// modeled schedules collected at drain time.
    pub fn shutdown(self) -> (Arc<SolveService>, Vec<gpu_sim::StreamReport>) {
        self.http.shutdown();
        let reports = self.service.shutdown();
        (self.service, reports)
    }
}
