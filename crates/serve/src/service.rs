//! The solve service proper: jobs, workers, deadlines, artifacts.
//!
//! One worker thread per pool lane pops tickets off the
//! [`AdmissionQueue`], re-checks cancellation/deadline **before**
//! leasing a slot (a past-deadline job never touches a device lane),
//! then drives [`tsp::Solver::run_on`] on the leased `(device, stream)`
//! pair. Terminal states credit the tenant's quota back and, when an
//! artifacts directory is configured, leave a `tsp-inspect`-readable
//! manifest (`manifest.json` + `journal.jsonl` + `run.folded` +
//! `memory.json`) keyed by the run's deterministic `run_id`.
//!
//! ## Fleet health
//!
//! Each worker stamps a **heartbeat** between span stages; a watchdog
//! (a background thread on [`AlertConfig::watchdog_interval_ms`], or
//! explicit [`SolveService::watchdog_tick`] calls when that is `0`)
//! derives health gauges from the heartbeats and queue state —
//! `tsp_serve_lane_stall_seconds{lane}`, `tsp_serve_queue_age_seconds`,
//! `tsp_serve_tenant_quota_ratio{tenant}` — then runs the
//! [`AlertEngine`] over the registry. Every state transition is
//! appended to `alerts.jsonl` under the artifacts dir and the live
//! census is served on `GET /v1/alerts`. All of it is observational:
//! alerting on or off changes neither tour bytes nor modeled seconds.

use crate::admission::{AdmissionQueue, Ticket};
use crate::api::{
    AlertsSnapshot, ApiError, ErrorCode, FromRequest, JobState, JobStatus, OpsAlert, OpsJob,
    OpsLane, OpsLatency, OpsSnapshot, SolveRequest, SolveResponse,
};
use crate::pool::SlotPool;
use crate::span::{RequestSpan, Stage};
use gpu_sim::{DeviceSpec, SimError, StreamReport};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsp::{Solution, SolverBuilder, TelemetryOptions};
use tsp_core::CancelToken;
use tsp_prof::{Manifest, Profiler};
use tsp_telemetry::{
    AlertEngine, AlertRule, AlertTransition, Cmp, Histogram, Journal, JournalWriter,
    RollingQuantiles, Selector, Severity, Telemetry, SECONDS_BUCKETS,
};
use tsp_trace::json::{self, Json};
use tsp_trace::{chrome_trace_with_ids, Recorder};

/// A zero-argument constructor for a named device spec.
type SpecCtor = fn() -> DeviceSpec;

/// The device specs a config file can name, keyed by their stable
/// config spelling.
const KNOWN_SPECS: [(&str, SpecCtor); 4] = [
    ("gtx_680_cuda", gpu_sim::spec::gtx_680_cuda),
    ("gtx_680_opencl", gpu_sim::spec::gtx_680_opencl),
    ("radeon_7970", gpu_sim::spec::radeon_7970),
    ("radeon_7970_ghz", gpu_sim::spec::radeon_7970_ghz),
];

/// Fleet-health knobs: the built-in alert rules and the watchdog that
/// evaluates them. All thresholds are wall seconds on the service's
/// own clock (seconds since boot).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AlertConfig {
    /// Master switch; `false` removes the watchdog and every rule.
    pub enabled: bool,
    /// Background watchdog period; `0` spawns no thread — the owner
    /// drives evaluation with [`SolveService::watchdog_tick`]
    /// (deterministic tests, smoke phases).
    pub watchdog_interval_ms: u64,
    /// `LaneStalled` (critical): a busy lane without a heartbeat for
    /// longer than this.
    pub stall_seconds: f64,
    /// `QueueAgeSlo` (warning): the oldest queued ticket has waited
    /// longer than this.
    pub queue_age_slo_seconds: f64,
    /// `TenantStarved` (warning) dwell: a tenant pegged at its full
    /// quota for this long.
    pub starvation_for_seconds: f64,
    /// `LatencyP99Burn` (critical): the rolling end-to-end p99 above
    /// this...
    pub p99_slo_seconds: f64,
    /// ...for this long.
    pub p99_for_seconds: f64,
    /// `RejectionSpike` (critical): the error budget — tolerated
    /// rejected/submitted ratio.
    pub rejection_budget: f64,
    /// Long burn window (seconds).
    pub rejection_long_seconds: f64,
    /// Short burn window (seconds); recovery is read off this one.
    pub rejection_short_seconds: f64,
    /// Burn factor both windows must exceed.
    pub rejection_factor: f64,
    /// Caller-defined rules appended after the built-ins.
    pub extra_rules: Vec<AlertRule>,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            enabled: true,
            watchdog_interval_ms: 250,
            stall_seconds: 30.0,
            queue_age_slo_seconds: 30.0,
            starvation_for_seconds: 5.0,
            p99_slo_seconds: 60.0,
            p99_for_seconds: 5.0,
            rejection_budget: 0.25,
            rejection_long_seconds: 60.0,
            rejection_short_seconds: 15.0,
            rejection_factor: 1.0,
            extra_rules: Vec::new(),
        }
    }
}

impl AlertConfig {
    /// No watchdog, no rules.
    pub fn disabled() -> AlertConfig {
        AlertConfig {
            enabled: false,
            ..AlertConfig::default()
        }
    }

    /// Set the background watchdog period (`0` = manual ticks only).
    pub fn with_watchdog_interval_ms(mut self, ms: u64) -> Self {
        self.watchdog_interval_ms = ms;
        self
    }

    /// Set the `LaneStalled` threshold.
    pub fn with_stall_seconds(mut self, seconds: f64) -> Self {
        self.stall_seconds = seconds;
        self
    }

    /// Set the `QueueAgeSlo` threshold.
    pub fn with_queue_age_slo_seconds(mut self, seconds: f64) -> Self {
        self.queue_age_slo_seconds = seconds;
        self
    }

    /// Set the `TenantStarved` dwell.
    pub fn with_starvation_for_seconds(mut self, seconds: f64) -> Self {
        self.starvation_for_seconds = seconds;
        self
    }

    /// Set the `LatencyP99Burn` threshold and dwell.
    pub fn with_p99_slo(mut self, slo_seconds: f64, for_seconds: f64) -> Self {
        self.p99_slo_seconds = slo_seconds;
        self.p99_for_seconds = for_seconds;
        self
    }

    /// Set the `RejectionSpike` budget and windows.
    pub fn with_rejection_burn(
        mut self,
        budget: f64,
        long_seconds: f64,
        short_seconds: f64,
        factor: f64,
    ) -> Self {
        self.rejection_budget = budget;
        self.rejection_long_seconds = long_seconds;
        self.rejection_short_seconds = short_seconds;
        self.rejection_factor = factor;
        self
    }

    /// Append a caller-defined rule after the built-ins.
    pub fn with_rule(mut self, rule: AlertRule) -> Self {
        self.extra_rules.push(rule);
        self
    }

    /// Serialize for a config file.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("enabled", Json::from(self.enabled))
            .set(
                "watchdog_interval_ms",
                Json::from(self.watchdog_interval_ms),
            )
            .set("stall_seconds", Json::from(self.stall_seconds))
            .set(
                "queue_age_slo_seconds",
                Json::from(self.queue_age_slo_seconds),
            )
            .set(
                "starvation_for_seconds",
                Json::from(self.starvation_for_seconds),
            )
            .set("p99_slo_seconds", Json::from(self.p99_slo_seconds))
            .set("p99_for_seconds", Json::from(self.p99_for_seconds))
            .set("rejection_budget", Json::from(self.rejection_budget))
            .set(
                "rejection_long_seconds",
                Json::from(self.rejection_long_seconds),
            )
            .set(
                "rejection_short_seconds",
                Json::from(self.rejection_short_seconds),
            )
            .set("rejection_factor", Json::from(self.rejection_factor));
        if !self.extra_rules.is_empty() {
            obj.set(
                "extra_rules",
                Json::Arr(self.extra_rules.iter().map(AlertRule::to_json).collect()),
            );
        }
        obj
    }

    /// Parse a config-file document; absent fields take their
    /// defaults, unknown members are ignored.
    pub fn from_json(doc: &Json) -> Result<AlertConfig, String> {
        let mut cfg = AlertConfig::default();
        let num = |key: &str, into: &mut f64| {
            if let Some(v) = doc.get(key).and_then(Json::as_f64) {
                *into = v;
            }
        };
        if let Some(v) = doc.get("enabled").and_then(Json::as_bool) {
            cfg.enabled = v;
        }
        if let Some(v) = doc.get("watchdog_interval_ms").and_then(Json::as_f64) {
            cfg.watchdog_interval_ms = v as u64;
        }
        num("stall_seconds", &mut cfg.stall_seconds);
        num("queue_age_slo_seconds", &mut cfg.queue_age_slo_seconds);
        num("starvation_for_seconds", &mut cfg.starvation_for_seconds);
        num("p99_slo_seconds", &mut cfg.p99_slo_seconds);
        num("p99_for_seconds", &mut cfg.p99_for_seconds);
        num("rejection_budget", &mut cfg.rejection_budget);
        num("rejection_long_seconds", &mut cfg.rejection_long_seconds);
        num("rejection_short_seconds", &mut cfg.rejection_short_seconds);
        num("rejection_factor", &mut cfg.rejection_factor);
        for rule in doc
            .get("extra_rules")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            cfg.extra_rules.push(AlertRule::from_json(rule)?);
        }
        Ok(cfg)
    }
}

/// Boot-time service configuration.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Device spec for every pooled device.
    pub spec: DeviceSpec,
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Streams per device; `devices × streams` lanes = concurrent solves.
    pub streams: usize,
    /// Arena bytes budgeted per lane.
    pub slot_bytes: u64,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Live (queued + running) jobs allowed per tenant.
    pub per_tenant_quota: usize,
    /// Largest instance accepted.
    pub max_cities: usize,
    /// Per-job artifact directory (`<dir>/<job_id>/manifest.json`…);
    /// `None` keeps everything in memory.
    pub artifacts_dir: Option<PathBuf>,
    /// Stamp a [`RequestSpan`] lifecycle timeline on every job (and,
    /// with an artifacts dir, persist it as `request.json` plus a
    /// trace-tagged `trace.json`). Observational only: turning this
    /// off changes neither tour bytes nor modeled seconds.
    pub request_spans: bool,
    /// Append one structured JSONL access-log line per HTTP request to
    /// this file (served by [`crate::server::ServeServer`]).
    pub access_log: Option<PathBuf>,
    /// Fleet-health rules and watchdog cadence.
    pub alerts: AlertConfig,
    /// Fault-injection hook for tests and the smoke's fault phase:
    /// `(tenant, millis)` makes every worker running that tenant's
    /// jobs hold its lane for `millis` **without heartbeating** right
    /// after the `Solving` stamp, so the lane-stall signal grows while
    /// the solve itself stays untouched.
    pub injected_stall: Option<(String, u64)>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            spec: gpu_sim::spec::gtx_680_cuda(),
            devices: 2,
            streams: 2,
            slot_bytes: 32 << 20,
            queue_capacity: 256,
            per_tenant_quota: 16,
            max_cities: 4096,
            artifacts_dir: None,
            request_spans: true,
            access_log: None,
            alerts: AlertConfig::default(),
            injected_stall: None,
        }
    }
}

impl ServiceConfig {
    /// Set the device spec used for every pooled device.
    pub fn with_spec(mut self, spec: DeviceSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Set the simulated device count.
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// Set the streams per device.
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Set the arena bytes budgeted per lane.
    pub fn with_slot_bytes(mut self, bytes: u64) -> Self {
        self.slot_bytes = bytes;
        self
    }

    /// Set the admission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the per-tenant live-job quota.
    pub fn with_per_tenant_quota(mut self, quota: usize) -> Self {
        self.per_tenant_quota = quota;
        self
    }

    /// Set the largest accepted instance size.
    pub fn with_max_cities(mut self, max_cities: usize) -> Self {
        self.max_cities = max_cities;
        self
    }

    /// Write per-job artifacts (manifest, journal, flamegraph, ledger)
    /// under `dir/<job_id>/`.
    pub fn with_artifacts_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifacts_dir = Some(dir.into());
        self
    }

    /// Enable or disable per-request lifecycle spans (on by default).
    pub fn with_request_spans(mut self, enabled: bool) -> Self {
        self.request_spans = enabled;
        self
    }

    /// Append one JSONL access-log line per HTTP request to `path`.
    pub fn with_access_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.access_log = Some(path.into());
        self
    }

    /// Set the fleet-health configuration.
    pub fn with_alerts(mut self, alerts: AlertConfig) -> Self {
        self.alerts = alerts;
        self
    }

    /// Inject an artificial lane stall (see [`ServiceConfig::injected_stall`]).
    pub fn with_injected_stall(mut self, tenant: impl Into<String>, millis: u64) -> Self {
        self.injected_stall = Some((tenant.into(), millis));
        self
    }

    /// Serialize for a config file. The device spec is written by its
    /// stable config name (`gtx_680_cuda`, …); a spec matching no
    /// known digest is omitted and parses back as the default. The
    /// `injected_stall` test hook never crosses the file boundary.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        if let Some((name, _)) = KNOWN_SPECS
            .iter()
            .find(|(_, spec)| spec().digest() == self.spec.digest())
        {
            obj.set("spec", Json::from(*name));
        }
        obj.set("devices", Json::from(self.devices))
            .set("streams", Json::from(self.streams))
            .set("slot_bytes", Json::from(self.slot_bytes))
            .set("queue_capacity", Json::from(self.queue_capacity))
            .set("per_tenant_quota", Json::from(self.per_tenant_quota))
            .set("max_cities", Json::from(self.max_cities));
        if let Some(dir) = &self.artifacts_dir {
            obj.set("artifacts_dir", Json::from(dir.display().to_string()));
        }
        obj.set("request_spans", Json::from(self.request_spans));
        if let Some(path) = &self.access_log {
            obj.set("access_log", Json::from(path.display().to_string()));
        }
        obj.set("alerts", self.alerts.to_json());
        obj
    }

    /// Parse a config-file document; absent fields take their
    /// defaults, unknown members are ignored.
    pub fn from_json(doc: &Json) -> Result<ServiceConfig, String> {
        let mut cfg = ServiceConfig::default();
        if let Some(name) = doc.get("spec").and_then(Json::as_str) {
            cfg.spec = KNOWN_SPECS
                .iter()
                .find(|(known, _)| *known == name)
                .map(|(_, spec)| spec())
                .ok_or_else(|| {
                    let known: Vec<&str> = KNOWN_SPECS.iter().map(|&(n, _)| n).collect();
                    format!("unknown device spec {name:?} (known: {})", known.join(", "))
                })?;
        }
        let usize_field = |key: &str, into: &mut usize| {
            if let Some(v) = doc.get(key).and_then(Json::as_f64) {
                *into = v as usize;
            }
        };
        usize_field("devices", &mut cfg.devices);
        usize_field("streams", &mut cfg.streams);
        usize_field("queue_capacity", &mut cfg.queue_capacity);
        usize_field("per_tenant_quota", &mut cfg.per_tenant_quota);
        usize_field("max_cities", &mut cfg.max_cities);
        if let Some(v) = doc.get("slot_bytes").and_then(Json::as_f64) {
            cfg.slot_bytes = v as u64;
        }
        if let Some(dir) = doc.get("artifacts_dir").and_then(Json::as_str) {
            cfg.artifacts_dir = Some(PathBuf::from(dir));
        }
        if let Some(v) = doc.get("request_spans").and_then(Json::as_bool) {
            cfg.request_spans = v;
        }
        if let Some(path) = doc.get("access_log").and_then(Json::as_str) {
            cfg.access_log = Some(PathBuf::from(path));
        }
        if let Some(alerts) = doc.get("alerts") {
            cfg.alerts = AlertConfig::from_json(alerts)?;
        }
        Ok(cfg)
    }

    /// Parse a config-file's text.
    pub fn parse(text: &str) -> Result<ServiceConfig, String> {
        let doc = json::parse(text).map_err(|e| format!("config: {e:?}"))?;
        ServiceConfig::from_json(&doc)
    }
}

struct JobEntry {
    status: JobStatus,
    request: SolveRequest,
    /// Base token; `DELETE` arms the shared flag, workers derive the
    /// deadline-carrying copy from it.
    cancel: CancelToken,
    deadline: Option<Instant>,
    /// When the request reached the service; every span stamp is wall
    /// time relative to this.
    received: Instant,
    /// The lifecycle timeline (`None` when spans are configured off).
    span: Option<RequestSpan>,
}

/// The stage names fed into the rolling latency estimators, in the
/// order they are exported.
const LATENCY_STAGES: [&str; 4] = ["queue_wait", "lease_wait", "solve", "end_to_end"];

const LATENCY_HELP: &str = "Rolling latency quantile estimates per request stage";

/// One worker lane's heartbeat ledger, written by the worker between
/// span stages and read by the watchdog.
#[derive(Debug, Clone)]
struct LaneHealth {
    busy: bool,
    job_id: Option<String>,
    /// Service-clock seconds of the last heartbeat.
    last_beat: f64,
}

/// The alert engine and its journal — present only when alerting is
/// enabled *and* telemetry is attached (the engine reads the registry).
struct Health {
    engine: Mutex<AlertEngine>,
    /// `alerts.jsonl` under the artifacts dir, when configured.
    path: Option<PathBuf>,
    /// Every transition, in evaluation order (mirrors the journal).
    transitions: Mutex<Vec<AlertTransition>>,
    evaluations: AtomicU64,
}

struct Inner {
    queue: AdmissionQueue,
    slots: SlotPool,
    jobs: Mutex<HashMap<String, JobEntry>>,
    telemetry: Telemetry,
    prof: Profiler,
    latency: Option<Histogram>,
    artifacts_dir: Option<PathBuf>,
    max_cities: usize,
    request_spans: bool,
    access_log: Option<PathBuf>,
    /// One P² estimator set per [`LATENCY_STAGES`] entry.
    stage_latency: Mutex<Vec<(&'static str, RollingQuantiles)>>,
    /// Rejection totals per typed error code, ascending by code.
    rejections: Mutex<BTreeMap<&'static str, u64>>,
    /// Service boot instant; every health signal is seconds since it.
    started: Instant,
    /// One heartbeat ledger per worker lane.
    lane_health: Mutex<Vec<LaneHealth>>,
    /// Alert engine + journal, when enabled.
    health: Option<Health>,
    per_tenant_quota: usize,
    /// Tenants ever seen live — departed ones get their quota-ratio
    /// gauge zeroed instead of left dangling at its last value.
    seen_tenants: Mutex<BTreeSet<String>>,
    /// Stops the background watchdog thread.
    stopping: AtomicBool,
    /// Fault-injection: `(tenant, millis)` lane hold without beats.
    injected_stall: Option<(String, u64)>,
}

impl Inner {
    /// Seconds since boot — the clock every health signal and alert
    /// evaluation shares.
    fn now_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Stamp a heartbeat on `lane`.
    fn beat(&self, lane: usize) {
        let now = self.now_seconds();
        self.lane_health.lock().unwrap()[lane].last_beat = now;
    }

    /// Mark `lane` busy on `job_id` (fresh heartbeat included).
    fn lane_busy(&self, lane: usize, job_id: &str) {
        let now = self.now_seconds();
        let mut lanes = self.lane_health.lock().unwrap();
        lanes[lane].busy = true;
        lanes[lane].job_id = Some(job_id.to_string());
        lanes[lane].last_beat = now;
    }

    /// Mark `lane` idle again.
    fn lane_idle(&self, lane: usize) {
        let now = self.now_seconds();
        let mut lanes = self.lane_health.lock().unwrap();
        lanes[lane].busy = false;
        lanes[lane].job_id = None;
        lanes[lane].last_beat = now;
    }

    /// Current per-lane health rows (stall = heartbeat age while busy).
    fn lane_rows(&self) -> Vec<OpsLane> {
        let now = self.now_seconds();
        self.lane_health
            .lock()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(lane, health)| {
                let mut row = OpsLane::new(lane as u64);
                row.busy = health.busy;
                row.job_id = health.job_id.clone();
                row.stall_seconds = if health.busy {
                    (now - health.last_beat).max(0.0)
                } else {
                    0.0
                };
                row
            })
            .collect()
    }

    /// One watchdog evaluation: refresh the derived health gauges from
    /// the heartbeat ledgers and queue state, then run the alert
    /// engine over the registry at the current service clock, journal
    /// any transitions, and mirror the census into `ALERTS` gauges.
    fn watchdog_tick(&self) {
        let Some(registry) = self.telemetry.registry() else {
            return;
        };
        let now = self.now_seconds();
        for row in self.lane_rows() {
            registry
                .gauge_with(
                    "tsp_serve_lane_stall_seconds",
                    "Heartbeat age of each busy worker lane (0 when idle)",
                    &[("lane", &row.lane.to_string())],
                )
                .set(row.stall_seconds);
        }
        registry
            .gauge(
                "tsp_serve_queue_age_seconds",
                "Wall seconds the oldest admitted ticket has waited",
            )
            .set(self.queue.oldest_wait_seconds());
        {
            let live = self.queue.live_tenants();
            let mut seen = self.seen_tenants.lock().unwrap();
            for (tenant, _) in &live {
                seen.insert(tenant.clone());
            }
            let quota = self.per_tenant_quota.max(1) as f64;
            for tenant in seen.iter() {
                let count = live
                    .iter()
                    .find(|(t, _)| t == tenant)
                    .map(|&(_, n)| n)
                    .unwrap_or(0);
                registry
                    .gauge_with(
                        "tsp_serve_tenant_quota_ratio",
                        "Live (queued + running) jobs over the per-tenant quota",
                        &[("tenant", tenant)],
                    )
                    .set(count as f64 / quota);
            }
        }
        let Some(health) = &self.health else { return };
        let transitions = {
            let mut engine = health.engine.lock().unwrap();
            let transitions = engine.evaluate(registry, now);
            engine.expose_into(registry);
            transitions
        };
        health.evaluations.fetch_add(1, Ordering::Relaxed);
        if transitions.is_empty() {
            return;
        }
        if let Some(path) = &health.path {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                for tr in &transitions {
                    let _ = writeln!(file, "{}", tr.to_json());
                }
            }
        }
        health.transitions.lock().unwrap().extend(transitions);
    }

    /// Count one typed rejection: the `BTreeMap` backs `/v1/ops`, the
    /// labeled counter backs `/metrics`.
    fn count_rejection(&self, code: ErrorCode) {
        let name = code.as_str();
        *self.rejections.lock().unwrap().entry(name).or_insert(0) += 1;
        if let Some(registry) = self.telemetry.registry() {
            registry
                .counter_with(
                    "tsp_serve_rejections_total",
                    "Requests rejected, by typed error code",
                    &[("code", name)],
                )
                .inc();
        }
    }

    /// Fold one finished span into the rolling estimators and mirror
    /// the fresh p50/p95/p99 estimates onto the labeled gauges.
    fn observe_latency(&self, span: &RequestSpan) {
        let samples = [
            span.queue_wait_seconds(),
            span.lease_wait_seconds(),
            span.solve_seconds(),
            span.end_to_end_seconds(),
        ];
        let mut stages = self.stage_latency.lock().unwrap();
        for ((name, rolling), sample) in stages.iter_mut().zip(samples) {
            let Some(sample) = sample else { continue };
            rolling.observe(sample);
            if let Some(registry) = self.telemetry.registry() {
                for (q, estimate) in rolling.estimates() {
                    let label = quantile_label(q);
                    registry
                        .gauge_with(
                            "tsp_serve_latency_seconds",
                            LATENCY_HELP,
                            &[("stage", name), ("quantile", label)],
                        )
                        .set(estimate);
                }
            }
        }
    }
}

/// `0.5 → "p50"`; the label spelling for a quantile gauge.
fn quantile_label(q: f64) -> &'static str {
    match (q * 100.0).round() as u32 {
        50 => "p50",
        95 => "p95",
        99 => "p99",
        _ => "p",
    }
}

/// A running multi-tenant solve service. Submit with
/// [`SolveService::submit`], poll with [`SolveService::status`],
/// cancel with [`SolveService::cancel`]; mount it over HTTP with
/// [`crate::server::ServeServer`].
pub struct SolveService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
    seq: AtomicU64,
    reports: Mutex<Vec<StreamReport>>,
}

/// The built-in fleet-health rules for `cfg`, in a fixed order, with
/// the caller's extra rules appended.
fn built_in_rules(cfg: &AlertConfig) -> Vec<AlertRule> {
    let mut rules = vec![
        AlertRule::threshold(
            "LaneStalled",
            Severity::Critical,
            Selector::metric("tsp_serve_lane_stall_seconds"),
            Cmp::Gt,
            cfg.stall_seconds,
        ),
        AlertRule::threshold(
            "QueueAgeSlo",
            Severity::Warning,
            Selector::metric("tsp_serve_queue_age_seconds"),
            Cmp::Gt,
            cfg.queue_age_slo_seconds,
        ),
        AlertRule::threshold(
            "TenantStarved",
            Severity::Warning,
            Selector::metric("tsp_serve_tenant_quota_ratio"),
            Cmp::Ge,
            1.0,
        )
        .with_for_seconds(cfg.starvation_for_seconds),
        AlertRule::burn_rate(
            "RejectionSpike",
            Severity::Critical,
            Selector::metric("tsp_serve_rejections_total"),
            Selector::metric("tsp_serve_requests_total"),
            cfg.rejection_budget,
            cfg.rejection_long_seconds,
            cfg.rejection_short_seconds,
            cfg.rejection_factor,
        ),
        AlertRule::threshold(
            "LatencyP99Burn",
            Severity::Critical,
            Selector::metric("tsp_serve_latency_seconds")
                .with_label("stage", "end_to_end")
                .with_label("quantile", "p99"),
            Cmp::Gt,
            cfg.p99_slo_seconds,
        )
        .with_for_seconds(cfg.p99_for_seconds),
    ];
    rules.extend(cfg.extra_rules.iter().cloned());
    rules
}

impl std::fmt::Debug for SolveService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveService")
            .field("lanes", &self.inner.slots.lanes())
            .field("queue_depth", &self.inner.queue.depth())
            .finish()
    }
}

impl SolveService {
    /// Boot the service: warm the slot pool (arena per device), then
    /// start one worker per lane. `telemetry` receives the service
    /// gauges/histograms and every job's solver metrics; `prof` owns
    /// the device-memory ledger the arena guarantee is audited with.
    pub fn start(
        cfg: ServiceConfig,
        telemetry: Telemetry,
        prof: Profiler,
    ) -> Result<SolveService, SimError> {
        let slots = SlotPool::new(
            cfg.spec.clone(),
            cfg.devices,
            cfg.streams,
            cfg.slot_bytes,
            &telemetry,
            &prof,
        )?;
        let latency = telemetry.registry().map(|r| {
            r.histogram(
                "tsp_serve_solve_seconds",
                "End-to-end solve latency (slot acquired to terminal state)",
                SECONDS_BUCKETS,
            )
        });
        let health = (cfg.alerts.enabled && telemetry.registry().is_some()).then(|| {
            let mut engine = AlertEngine::new();
            for rule in built_in_rules(&cfg.alerts) {
                engine.push_rule(rule);
            }
            // The journal appends from the very first tick, which can
            // precede the first job artifact — the dir must exist now.
            // Touching the (possibly empty) journal makes a healthy
            // run inspectable too: `tsp-inspect alerts` renders the
            // empty file as "no alert transitions".
            if let Some(dir) = cfg.artifacts_dir.as_ref() {
                let _ = std::fs::create_dir_all(dir);
                let _ = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join("alerts.jsonl"));
            }
            Health {
                engine: Mutex::new(engine),
                path: cfg.artifacts_dir.as_ref().map(|d| d.join("alerts.jsonl")),
                transitions: Mutex::new(Vec::new()),
                evaluations: AtomicU64::new(0),
            }
        });
        let lanes = slots.lanes();
        let inner = Arc::new(Inner {
            queue: AdmissionQueue::new(cfg.queue_capacity, cfg.per_tenant_quota, &telemetry),
            slots,
            jobs: Mutex::new(HashMap::new()),
            telemetry,
            prof,
            latency,
            artifacts_dir: cfg.artifacts_dir,
            max_cities: cfg.max_cities,
            request_spans: cfg.request_spans,
            access_log: cfg.access_log,
            stage_latency: Mutex::new(
                LATENCY_STAGES
                    .iter()
                    .map(|&stage| (stage, RollingQuantiles::new()))
                    .collect(),
            ),
            rejections: Mutex::new(BTreeMap::new()),
            started: Instant::now(),
            lane_health: Mutex::new(vec![
                LaneHealth {
                    busy: false,
                    job_id: None,
                    last_beat: 0.0,
                };
                lanes
            ]),
            health,
            per_tenant_quota: cfg.per_tenant_quota,
            seen_tenants: Mutex::new(BTreeSet::new()),
            stopping: AtomicBool::new(false),
            injected_stall: cfg.injected_stall,
        });
        let workers = (0..inner.slots.lanes())
            .map(|lane| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("tsp-serve-worker-{lane}"))
                    .spawn(move || worker(&inner, lane))
                    .expect("spawn worker thread")
            })
            .collect();
        let watchdog = (inner.health.is_some() && cfg.alerts.watchdog_interval_ms > 0).then(|| {
            let inner = inner.clone();
            let interval = Duration::from_millis(cfg.alerts.watchdog_interval_ms);
            std::thread::Builder::new()
                .name("tsp-serve-watchdog".to_string())
                .spawn(move || {
                    while !inner.stopping.load(Ordering::Relaxed) {
                        std::thread::sleep(interval);
                        if inner.stopping.load(Ordering::Relaxed) {
                            break;
                        }
                        inner.watchdog_tick();
                    }
                })
                .expect("spawn watchdog thread")
        });
        Ok(SolveService {
            inner,
            workers: Mutex::new(workers),
            watchdog: Mutex::new(watchdog),
            seq: AtomicU64::new(0),
            reports: Mutex::new(Vec::new()),
        })
    }

    /// Validate and admit a request. Typed rejections: 400 on a bad
    /// payload, 400 on an oversized instance, 503 on an already-past
    /// deadline, 429/503 from admission — none of which ever reach a
    /// device lane.
    pub fn submit(&self, request: SolveRequest) -> Result<SolveResponse, ApiError> {
        self.submit_traced(request, "")
    }

    /// [`SolveService::submit`] with a correlating W3C trace id: the
    /// id is echoed on the response and every later status, stamped
    /// into the job's journal lines and span, and tagged onto its
    /// Chrome trace. An empty `trace_id` means "uncorrelated".
    pub fn submit_traced(
        &self,
        request: SolveRequest,
        trace_id: &str,
    ) -> Result<SolveResponse, ApiError> {
        let received = Instant::now();
        // Denominator for the rejection burn-rate rule: every
        // submission attempt, accepted or not.
        if let Some(registry) = self.inner.telemetry.registry() {
            registry
                .counter("tsp_serve_requests_total", "Solve submissions received")
                .inc();
        }
        let inst = request.instance().map_err(|err| self.reject(err))?;
        if inst.len() > self.inner.max_cities {
            return Err(self.reject(ApiError::new(
                ErrorCode::Unsupported,
                format!(
                    "instance has {} cities; this service accepts at most {}",
                    inst.len(),
                    self.inner.max_cities
                ),
            )));
        }
        // A deadline of zero is already past: reject it here, before
        // admission, so it provably never occupies a queue slot or lane.
        if request.deadline_ms == Some(0) {
            return Err(self.reject(ApiError::new(
                ErrorCode::DeadlineExceeded,
                "the deadline expired before the job could be admitted",
            )));
        }
        let job_id = format!("job-{:08x}", self.seq.fetch_add(1, Ordering::Relaxed));
        let ticket = Ticket {
            job_id: job_id.clone(),
            tenant: request.tenant.clone(),
        };
        let deadline = request
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let span = self.inner.request_spans.then(|| {
            let mut span = RequestSpan::new(&job_id, &request.tenant);
            span.trace_id = trace_id.to_string();
            span.stamp(Stage::Received, 0.0, 0.0);
            // Stamp the admission transitions *before* the ticket hits
            // the queue: a worker may dequeue the job the instant
            // `submit` returns, and its stamps must land after these.
            // If admission refuses, the whole entry (and span) is
            // removed, so the optimistic stamps never escape. Both
            // carry the same clock read — admission *is* the enqueue.
            let wall = received.elapsed().as_secs_f64();
            span.stamp(Stage::Admitted, wall, 0.0);
            span.stamp(Stage::Queued, wall, 0.0);
            span
        });
        let mut status = JobStatus::queued(&job_id, &request.tenant);
        if !trace_id.is_empty() {
            status = status.with_trace_id(trace_id);
        }
        let entry = JobEntry {
            status,
            request,
            cancel: CancelToken::new(),
            deadline,
            received,
            span,
        };
        // Insert before admitting so a worker popping the ticket
        // always finds the entry; remove again if admission refuses.
        self.inner
            .jobs
            .lock()
            .unwrap()
            .insert(job_id.clone(), entry);
        if let Err(err) = self.inner.queue.submit(ticket) {
            self.inner.jobs.lock().unwrap().remove(&job_id);
            return Err(self.reject(err));
        }
        let mut response = SolveResponse::queued(job_id);
        if !trace_id.is_empty() {
            response = response.with_trace_id(trace_id);
        }
        Ok(response)
    }

    /// Count a typed rejection and hand the error back.
    fn reject(&self, err: ApiError) -> ApiError {
        self.inner.count_rejection(err.code);
        err
    }

    /// Current status of a job.
    pub fn status(&self, job_id: &str) -> Result<JobStatus, ApiError> {
        self.inner
            .jobs
            .lock()
            .unwrap()
            .get(job_id)
            .map(|e| e.status.clone())
            .ok_or_else(|| ApiError::new(ErrorCode::NotFound, format!("no job {job_id:?}")))
    }

    /// Request cancellation. A queued job turns terminal immediately;
    /// a running job's solver observes the token at its next ILS
    /// iteration and lands in [`JobState::Cancelled`]. Idempotent on
    /// terminal jobs.
    pub fn cancel(&self, job_id: &str) -> Result<JobStatus, ApiError> {
        let mut jobs = self.inner.jobs.lock().unwrap();
        let entry = jobs
            .get_mut(job_id)
            .ok_or_else(|| ApiError::new(ErrorCode::NotFound, format!("no job {job_id:?}")))?;
        if !entry.status.state.is_terminal() {
            entry.cancel.cancel();
            if entry.status.state == JobState::Queued {
                // The worker that later pops the ticket sees the
                // terminal state and only credits the quota back.
                entry.status.state = JobState::Cancelled;
                if let Some(span) = entry.span.as_mut() {
                    span.stamp(
                        Stage::Cancelled,
                        entry.received.elapsed().as_secs_f64(),
                        0.0,
                    );
                }
            }
        }
        Ok(entry.status.clone())
    }

    /// The telemetry handle the service publishes into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The profiler owning the device-memory ledger.
    pub fn profiler(&self) -> &Profiler {
        &self.inner.prof
    }

    /// Live slot-pool occupancy.
    pub fn occupancy(&self) -> usize {
        self.inner.slots.occupancy()
    }

    /// Admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Count a typed rejection that never reached [`SolveService::submit`]
    /// (the HTTP layer's parse failures and unknown-job 404s).
    pub fn count_rejection(&self, code: ErrorCode) {
        self.inner.count_rejection(code);
    }

    /// The configured access-log path, if any (the HTTP server wires
    /// it into [`tsp_telemetry::AccessLog`]).
    pub fn access_log_path(&self) -> Option<&std::path::Path> {
        self.inner.access_log.as_deref()
    }

    /// A live operational snapshot: pool pressure, every known job
    /// with its lane and trace id, rolling latency quantiles per
    /// lifecycle stage, and rejection totals per error code. Purely
    /// observational — building it takes the bookkeeping locks but
    /// never touches a device lane.
    pub fn ops_snapshot(&self) -> OpsSnapshot {
        let mut snap = OpsSnapshot::new(self.inner.slots.lanes() as u64);
        snap.queue_depth = self.inner.queue.depth() as u64;
        snap.slot_occupancy = self.inner.slots.occupancy() as u64;
        {
            let jobs = self.inner.jobs.lock().unwrap();
            let mut ids: Vec<&String> = jobs.keys().collect();
            ids.sort();
            for id in ids {
                let entry = &jobs[id];
                let mut job = OpsJob::new(id, &entry.status.tenant, entry.status.state);
                job.trace_id = entry.status.trace_id.clone();
                if let Some(span) = &entry.span {
                    if let Some(lease) = span.stage(Stage::Leased) {
                        job.device = lease.device;
                        job.stream = lease.stream;
                    }
                    job.end_to_end_seconds = span.end_to_end_seconds();
                }
                snap.jobs.push(job);
            }
        }
        for (stage, rolling) in self.inner.stage_latency.lock().unwrap().iter() {
            snap.latency.push(OpsLatency::new(
                *stage,
                rolling.count(),
                rolling.estimates(),
            ));
        }
        snap.rejections = self
            .inner
            .rejections
            .lock()
            .unwrap()
            .iter()
            .map(|(&code, &n)| (code.to_string(), n))
            .collect();
        snap.lane_health = self.inner.lane_rows();
        if let Some(health) = &self.inner.health {
            snap.alerts_firing = health.engine.lock().unwrap().firing_count() as u64;
        }
        snap
    }

    /// Run one watchdog evaluation on the caller's thread: refresh the
    /// derived health gauges, evaluate every alert rule at the current
    /// service clock, and journal any transitions. This is the manual
    /// drive for deterministic tests and smoke phases
    /// ([`AlertConfig::watchdog_interval_ms`] `= 0`); with a
    /// background watchdog it simply adds one extra evaluation.
    pub fn watchdog_tick(&self) {
        self.inner.watchdog_tick();
    }

    /// The alert engine's live census: every pending/firing/resolved
    /// instance plus lifetime transition and evaluation counts.
    /// Empty (zero rules) when alerting is disabled or telemetry is
    /// detached.
    pub fn alerts_snapshot(&self) -> AlertsSnapshot {
        let Some(health) = &self.inner.health else {
            return AlertsSnapshot::new(0);
        };
        let engine = health.engine.lock().unwrap();
        let mut snap = AlertsSnapshot::new(engine.rules().len() as u64);
        for active in engine.active() {
            let mut row = OpsAlert::new(
                &active.rule,
                active.severity.as_str(),
                active.state.as_str(),
            );
            row.labels = active.labels.clone();
            row.since_seconds = active.since_seconds;
            row.value = active.value;
            snap.alerts.push(row);
        }
        snap.firing = engine.firing_count() as u64;
        snap.transitions_total = health.transitions.lock().unwrap().len() as u64;
        snap.evaluations_total = health.evaluations.load(Ordering::Relaxed);
        snap
    }

    /// Every alert transition journaled so far, in evaluation order —
    /// the in-memory mirror of `alerts.jsonl`.
    pub fn alert_transitions(&self) -> Vec<AlertTransition> {
        self.inner
            .health
            .as_ref()
            .map(|h| h.transitions.lock().unwrap().clone())
            .unwrap_or_default()
    }

    /// Drain the queue, join the workers, collect the per-stream
    /// modeled schedules, and tear the arenas down (balancing the
    /// ledger). Idempotent; also runs on drop.
    pub fn shutdown(&self) -> Vec<StreamReport> {
        self.inner.stopping.store(true, Ordering::Relaxed);
        self.inner.queue.close();
        if let Some(watchdog) = self.watchdog.lock().unwrap().take() {
            let _ = watchdog.join();
        }
        for worker in self.workers.lock().unwrap().drain(..) {
            let _ = worker.join();
        }
        let mut reports = self.reports.lock().unwrap();
        if reports.is_empty() {
            *reports = self.inner.slots.synchronize();
            self.inner.slots.release_arenas();
        }
        reports.clone()
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker(inner: &Inner, lane: usize) {
    while let Some(ticket) = inner.queue.pop() {
        inner.lane_busy(lane, &ticket.job_id);
        run_ticket(inner, lane, &ticket);
        inner.lane_idle(lane);
        inner.queue.finish(&ticket.tenant);
    }
}

fn run_ticket(inner: &Inner, lane: usize, ticket: &Ticket) {
    let Some((request, base_token, deadline, trace_id)) = ({
        let jobs = inner.jobs.lock().unwrap();
        jobs.get(&ticket.job_id).and_then(|entry| {
            if entry.status.state.is_terminal() {
                None // cancelled while queued; quota credit only
            } else {
                Some((
                    entry.request.clone(),
                    entry.cancel.clone(),
                    entry.deadline,
                    entry.status.trace_id.clone().unwrap_or_default(),
                ))
            }
        })
    }) else {
        return;
    };
    stamp_stage(inner, &ticket.job_id, Stage::Dequeued);
    inner.beat(lane);
    let token = match deadline {
        Some(deadline) => base_token.clone().with_deadline(deadline),
        None => base_token.clone(),
    };
    // Deadline/cancel re-check BEFORE leasing a slot: an expired job
    // must never reach a device lane.
    if token.is_cancelled() {
        finish_job(
            inner,
            ticket,
            expired_or_cancelled(&base_token),
            None,
            None,
            None,
            None,
        );
        return;
    }

    let lease = inner.slots.acquire();
    if let Some(entry) = inner.jobs.lock().unwrap().get_mut(&ticket.job_id) {
        if let Some(span) = entry.span.as_mut() {
            span.stamp_lease(
                entry.received.elapsed().as_secs_f64(),
                lease.device_index() as u64,
                lease.stream().index() as u64,
            );
        }
    }
    inner.beat(lane);
    set_state(inner, &ticket.job_id, JobState::Running);
    let mut journal = Journal::attached();
    if !trace_id.is_empty() {
        journal = journal.with_trace_id(&trace_id);
    }
    let job_prof = Profiler::attached();
    // A per-job event recorder feeds the trace-tagged `trace.json`
    // artifact; it only records when spans will actually be persisted.
    let recorder = if inner.request_spans && inner.artifacts_dir.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    stamp_stage(inner, &ticket.job_id, Stage::Solving);
    inner.beat(lane);
    // Fault injection: hold the lane without heartbeating so the
    // watchdog sees a growing stall. The solve itself is untouched —
    // the stall happens strictly before it starts.
    if let Some((tenant, millis)) = &inner.injected_stall {
        if *tenant == ticket.tenant {
            std::thread::sleep(Duration::from_millis(*millis));
        }
    }
    let started = Instant::now();
    let outcome = solve(
        inner, &request, &journal, &job_prof, &recorder, &token, &lease,
    );
    if let Some(latency) = &inner.latency {
        latency.observe(started.elapsed().as_secs_f64());
    }
    drop(lease);
    inner.beat(lane);

    match outcome {
        Ok(solution) => {
            let state = if token.is_cancelled() {
                expired_or_cancelled(&base_token)
            } else {
                (JobState::Done, None)
            };
            finish_job(
                inner,
                ticket,
                state,
                Some(&solution),
                Some(&journal),
                Some(&job_prof),
                Some(&recorder),
            );
        }
        Err(err) => {
            finish_job(
                inner,
                ticket,
                (JobState::Failed, Some(err)),
                None,
                Some(&journal),
                Some(&job_prof),
                Some(&recorder),
            );
        }
    }
}

/// Stamp `stage` on the job's span at the current wall offset (no-op
/// when spans are off or the job is gone).
fn stamp_stage(inner: &Inner, job_id: &str, stage: Stage) {
    if let Some(entry) = inner.jobs.lock().unwrap().get_mut(job_id) {
        if let Some(span) = entry.span.as_mut() {
            span.stamp(stage, entry.received.elapsed().as_secs_f64(), 0.0);
        }
    }
}

fn solve(
    inner: &Inner,
    request: &SolveRequest,
    journal: &Journal,
    job_prof: &Profiler,
    recorder: &Recorder,
    token: &CancelToken,
    lease: &crate::pool::SlotLease<'_>,
) -> Result<Solution, ApiError> {
    let inst = request.instance()?;
    let solver = SolverBuilder::from_request(request)?
        .telemetry(
            TelemetryOptions::new()
                .with_registry(inner.telemetry.clone())
                .with_journal(journal.clone()),
        )
        .profiler(job_prof.clone())
        .recorder(recorder.clone())
        .cancel(token.clone())
        .build();
    solver
        .run_on(&inst, lease.device(), lease.stream())
        .map_err(|e| ApiError::new(ErrorCode::Internal, e.to_string()))
}

/// A tripped token means either an explicit `DELETE` (the shared flag
/// is armed) or a passed deadline (it is not).
fn expired_or_cancelled(base_token: &CancelToken) -> (JobState, Option<ApiError>) {
    if base_token.is_cancelled() {
        (JobState::Cancelled, None)
    } else {
        (
            JobState::Expired,
            Some(ApiError::new(
                ErrorCode::DeadlineExceeded,
                "the deadline passed before the solve completed",
            )),
        )
    }
}

fn set_state(inner: &Inner, job_id: &str, state: JobState) {
    if let Some(entry) = inner.jobs.lock().unwrap().get_mut(job_id) {
        entry.status.state = state;
    }
}

fn finish_job(
    inner: &Inner,
    ticket: &Ticket,
    (state, error): (JobState, Option<ApiError>),
    solution: Option<&Solution>,
    journal: Option<&Journal>,
    job_prof: Option<&Profiler>,
    recorder: Option<&Recorder>,
) {
    let run_id = solution.map(|s| s.run_id.clone());
    let modeled = solution.map(|s| s.modeled_seconds()).unwrap_or(0.0);
    let writing = inner.artifacts_dir.is_some() && journal.is_some() && job_prof.is_some();
    let trace_id = {
        let mut jobs = inner.jobs.lock().unwrap();
        let mut trace_id = String::new();
        if let Some(entry) = jobs.get_mut(&ticket.job_id) {
            trace_id = entry.status.trace_id.clone().unwrap_or_default();
            if let Some(span) = entry.span.as_mut() {
                if let Some(run_id) = &run_id {
                    span.run_id = run_id.clone();
                }
                if writing {
                    // The artifacts→terminal window below covers the
                    // actual writes.
                    span.stamp(
                        Stage::Artifacts,
                        entry.received.elapsed().as_secs_f64(),
                        modeled,
                    );
                }
            }
        }
        trace_id
    };
    if let (Some(dir), Some(journal), Some(job_prof)) = (&inner.artifacts_dir, journal, job_prof) {
        write_artifacts(
            inner,
            dir,
            &ticket.job_id,
            run_id.as_deref(),
            &trace_id,
            journal,
            job_prof,
            recorder,
        );
    }
    // Terminal span stamp, then persist the completed span before the
    // status flips terminal: a client that polls a terminal state must
    // find every artifact — request.json included — already durable.
    let span = {
        let mut jobs = inner.jobs.lock().unwrap();
        jobs.get_mut(&ticket.job_id).and_then(|entry| {
            let span = entry.span.as_mut()?;
            let stage = Stage::terminal_for(state)?;
            span.stamp(stage, entry.received.elapsed().as_secs_f64(), modeled);
            Some(span.clone())
        })
    };
    if let Some(span) = &span {
        if let Some(dir) = &inner.artifacts_dir {
            let job_dir = dir.join(&ticket.job_id);
            if std::fs::create_dir_all(&job_dir).is_ok() {
                let _ = std::fs::write(job_dir.join("request.json"), span.to_json().to_string());
            }
        }
    }
    {
        let mut jobs = inner.jobs.lock().unwrap();
        if let Some(entry) = jobs.get_mut(&ticket.job_id) {
            entry.status.state = state;
            entry.status.error = error;
            if let Some(solution) = solution {
                entry.status.run_id = Some(solution.run_id.clone());
                entry.status.tour = Some(solution.tour.as_slice().to_vec());
                entry.status.length = Some(solution.length);
                entry.status.initial_length = Some(solution.initial_length);
                entry.status.chains = Some(solution.chains);
                entry.status.modeled_seconds = Some(solution.modeled_seconds());
            }
        }
    }
    if let Some(span) = span {
        inner.observe_latency(&span);
    }
}

/// Leave a `tsp-inspect`-compatible artifact set for the job. Uses
/// the flush-on-drop [`JournalWriter`] so even an interrupted process
/// never leaves a truncated JSONL line behind.
#[allow(clippy::too_many_arguments)]
fn write_artifacts(
    inner: &Inner,
    dir: &std::path::Path,
    job_id: &str,
    run_id: Option<&str>,
    trace_id: &str,
    journal: &Journal,
    job_prof: &Profiler,
    recorder: Option<&Recorder>,
) {
    let job_dir = dir.join(job_id);
    if std::fs::create_dir_all(&job_dir).is_err() {
        return;
    }
    if let Ok(mut writer) = JournalWriter::create(job_dir.join("journal.jsonl")) {
        let _ = writer.append_all(journal);
    }
    let report = job_prof.report();
    let folded = match report.flamegraph() {
        f if f.is_empty() => report.flamegraph_wall(),
        f => f,
    };
    let _ = std::fs::write(job_dir.join("run.folded"), folded);
    let _ = std::fs::write(
        job_dir.join("memory.json"),
        inner.prof.memory_report().to_json_string(),
    );
    let mut manifest = Manifest::new(run_id.unwrap_or(job_id));
    manifest
        .push("journal", "journal.jsonl")
        .push("flamegraph", "run.folded")
        .push("memory", "memory.json");
    if inner.request_spans {
        // The trace-tagged Chrome trace of the solve's recorded events.
        if let Some(recorder) = recorder {
            let trace =
                chrome_trace_with_ids(&recorder.events(), run_id.unwrap_or(job_id), trace_id);
            if std::fs::write(job_dir.join("trace.json"), trace).is_ok() {
                manifest.push("trace", "trace.json");
            }
        }
        // request.json is written by `finish_job` right after the
        // terminal stamp; index it here so the manifest is complete.
        manifest.push("request", "request.json");
    }
    let _ = std::fs::write(job_dir.join("manifest.json"), manifest.to_json_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_config_round_trips_through_json() {
        let cfg = ServiceConfig::default()
            .with_spec(gpu_sim::spec::radeon_7970())
            .with_devices(3)
            .with_streams(1)
            .with_slot_bytes(8 << 20)
            .with_queue_capacity(64)
            .with_per_tenant_quota(4)
            .with_max_cities(1024)
            .with_artifacts_dir("/tmp/artifacts")
            .with_request_spans(false)
            .with_access_log("/tmp/access.jsonl")
            .with_alerts(
                AlertConfig::default()
                    .with_watchdog_interval_ms(0)
                    .with_stall_seconds(1.5)
                    .with_queue_age_slo_seconds(2.5)
                    .with_starvation_for_seconds(0.5)
                    .with_p99_slo(10.0, 3.0)
                    .with_rejection_burn(0.1, 30.0, 5.0, 2.0)
                    .with_rule(AlertRule::threshold(
                        "CustomDepth",
                        Severity::Info,
                        Selector::metric("tsp_serve_queue_depth"),
                        Cmp::Gt,
                        100.0,
                    )),
            );
        let text = cfg.to_json().to_string();
        let back = ServiceConfig::parse(&text).unwrap();
        // ServiceConfig has no PartialEq (DeviceSpec); the serialized
        // form is the equality witness.
        assert_eq!(back.to_json().to_string(), text);
        assert_eq!(back.spec.digest(), cfg.spec.digest());
        assert_eq!(back.devices, 3);
        assert_eq!(back.alerts.extra_rules.len(), 1);
        assert_eq!(back.alerts.stall_seconds, 1.5);

        // Absent fields take defaults; unknown members are ignored;
        // unknown specs are a hard error.
        let sparse = ServiceConfig::parse("{\"devices\": 1, \"future\": true}").unwrap();
        assert_eq!(sparse.devices, 1);
        assert_eq!(sparse.streams, ServiceConfig::default().streams);
        assert!(ServiceConfig::parse("{\"spec\": \"quantum_annealer\"}")
            .unwrap_err()
            .contains("unknown device spec"));
    }

    #[test]
    fn built_in_rules_cover_the_fleet_health_surface() {
        let rules = built_in_rules(&AlertConfig::default().with_rule(AlertRule::threshold(
            "Extra",
            Severity::Info,
            Selector::metric("x"),
            Cmp::Gt,
            0.0,
        )));
        let names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "LaneStalled",
                "QueueAgeSlo",
                "TenantStarved",
                "RejectionSpike",
                "LatencyP99Burn",
                "Extra"
            ]
        );
    }

    #[test]
    fn watchdog_catches_an_injected_stall_and_recovery() {
        let telemetry = Telemetry::attached();
        let service = SolveService::start(
            ServiceConfig::default()
                .with_devices(1)
                .with_streams(1)
                .with_alerts(
                    AlertConfig::default()
                        .with_watchdog_interval_ms(0) // manual ticks
                        .with_stall_seconds(0.05),
                )
                .with_injected_stall("stall-tenant", 300),
            telemetry.clone(),
            Profiler::attached(),
        )
        .unwrap();

        // Healthy baseline: nothing fires on an idle service.
        service.watchdog_tick();
        assert_eq!(service.alerts_snapshot().firing, 0);

        let coords: Vec<(f64, f64)> = (0..32)
            .map(|i| (f64::from(i % 8), f64::from(i / 8)))
            .collect();
        let request = SolveRequest::coords("stall", coords)
            .with_tenant("stall-tenant")
            .with_seed(7);
        let job = service.submit(request).unwrap().job_id;

        // Poll the watchdog until the stalled lane crosses the
        // threshold (the worker holds the lane ~300ms without beats).
        let mut fired = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(20));
            service.watchdog_tick();
            let snap = service.alerts_snapshot();
            if snap
                .alerts
                .iter()
                .any(|a| a.rule == "LaneStalled" && a.state == "firing")
            {
                fired = true;
                break;
            }
        }
        assert!(fired, "LaneStalled never fired during the injected stall");
        assert!(service.ops_snapshot().alerts_firing >= 1);

        // Wait for the job to finish; the lane goes idle and the
        // alert resolves, then clears.
        for _ in 0..250 {
            if service.status(&job).unwrap().state.is_terminal() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(service.status(&job).unwrap().state.is_terminal());
        service.watchdog_tick(); // firing -> resolved
        service.watchdog_tick(); // resolved -> inactive
        assert_eq!(service.alerts_snapshot().firing, 0);

        // The transition history walks the full lifecycle and the
        // ALERTS series appeared in the exposition while firing.
        let transitions = service.alert_transitions();
        let states: Vec<&str> = transitions
            .iter()
            .filter(|t| t.rule == "LaneStalled")
            .map(|t| t.to.as_str())
            .collect();
        assert!(states.contains(&"firing"), "transitions: {states:?}");
        assert!(states.contains(&"resolved"), "transitions: {states:?}");
        service.shutdown();
    }
}
